//! Quickstart: quantize one linear layer with MicroScopiQ and inspect the
//! result — outlier preservation, effective bit width, packed layout.
//!
//! Run with: `cargo run --release --example quickstart`

use microscopiq::core::traits::{LayerTensors, WeightQuantizer};
use microscopiq::core::{MicroScopiQ, QuantConfig};
use microscopiq_linalg::{Matrix, SeededRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic layer: Gaussian body (σ = 0.02) plus a few large
    // outliers, the weight structure that breaks plain low-bit formats.
    let mut rng = SeededRng::new(42);
    let mut weights = Matrix::from_fn(64, 256, |_, _| rng.normal(0.0, 0.02));
    let outliers = [(3usize, 17usize, 0.35), (10, 140, -0.28), (40, 200, 0.22)];
    for &(r, c, v) in &outliers {
        weights[(r, c)] = v;
    }
    // Calibration must cover the input space: with fewer samples than
    // input dims the GPTQ Hessian is rank-deficient and compensation can
    // push errors into unobserved directions (see EXPERIMENTS.md on
    // held-out evaluation).
    let calibration = Matrix::from_fn(256, 384, |_, _| rng.normal(0.0, 1.0));
    let layer = LayerTensors::new(weights, calibration)?;

    // The paper's W2 configuration: MX-INT-2_128 inliers, MX-FP-4_{8,8}
    // outliers, Hessian pruning + redistribution, GPTQ compensation.
    let quantizer = MicroScopiQ::new(QuantConfig::w2().build()?);
    let result = quantizer.quantize_layer(&layer)?;

    println!("== MicroScopiQ W2 quantization ==");
    println!("output error : {:.4}", result.output_error(&layer));
    println!("weight error : {:.4}", result.weight_error(&layer));
    println!(
        "EBW          : {:.2} bits/element (paper reports ≈2.36)",
        result.stats.effective_bit_width
    );
    println!(
        "outliers     : {:.2}% of weights, {:.2}% of μBs carry metadata",
        result.stats.outlier_fraction * 100.0,
        result.stats.outlier_micro_block_fraction * 100.0
    );

    println!("\noutlier reconstruction at 2-bit budget:");
    for &(r, c, v) in &outliers {
        let dq = result.dequantized[(r, c)];
        println!(
            "  w[{r:>2},{c:>3}] = {v:+.3} → {dq:+.3} ({:+.1}% error)",
            (dq - v) / v * 100.0
        );
    }

    // The packed layout round-trips through bytes (off-chip format, Fig. 5).
    let packed = result.packed.as_ref().expect("default mode packs");
    let bytes = packed.to_bytes();
    println!(
        "\npacked size  : {} bytes for {} weights ({:.2} bits/element incl. container)",
        bytes.len(),
        64 * 256,
        bytes.len() as f64 * 8.0 / (64.0 * 256.0)
    );
    let restored = microscopiq::core::packed::PackedLayer::from_bytes(&bytes)?;
    assert_eq!(restored.dequantize(), packed.dequantize());
    println!("byte round-trip: OK (bit-exact)");
    Ok(())
}
