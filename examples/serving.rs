//! Serving front-end walkthrough: a threaded `Server` over the packed
//! runtime — concurrent client threads, per-token streaming, mid-flight
//! cancellation, and a per-request deadline.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use microscopiq::core::{MicroScopiQ, QuantConfig};
use microscopiq::fm::{PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq::linalg::SeededRng;
use microscopiq::runtime::{
    Deadline, GenRequest, RequestOptions, RuntimeEngine, Server, ServerConfig, StreamEvent,
};

fn main() {
    // 1. A quantized model behind the fused packed-weight engine.
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 64,
    };
    let fm = TinyFm::teacher(cfg, 5);
    let mut rng = SeededRng::new(6);
    let calib: Vec<Vec<usize>> = (0..4).map(|_| fm.generate(12, 0.9, &mut rng)).collect();
    let quantizer = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    let packed = PackedTinyFm::quantize_from(&fm, &quantizer, &calib).unwrap();
    println!(
        "model: {} layers, d_model {}, packed at ~4 bits",
        cfg.n_layers, cfg.d_model
    );

    // 2. Spawn the serving worker: continuous batching up to 8 requests
    //    per decode step, a bounded admission queue, exact KV caches.
    let server = Server::spawn(
        packed,
        RuntimeEngine::parallel(),
        ServerConfig {
            max_batch: 8,
            queue_capacity: 32,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    // 3. Four client threads, each streaming its own request — tokens
    //    arrive as decode steps complete, not at end of generation.
    std::thread::scope(|scope| {
        for client in 0..4 {
            let handle = handle.clone();
            scope.spawn(move || {
                let stream = handle
                    .submit(GenRequest {
                        prompt: vec![1 + client, 2, 3],
                        max_new_tokens: 12,
                        temperature: 1.2,
                        seed: 40 + client as u64,
                        ..Default::default()
                    })
                    .expect("submit");
                let mut tokens = Vec::new();
                for ev in stream {
                    match ev {
                        StreamEvent::Token(t) => tokens.push(t),
                        StreamEvent::Sample { .. } => {}
                        StreamEvent::Finished(res) => {
                            println!(
                                "client {client}: streamed {} tokens -> {:?}",
                                res.new_tokens,
                                &res.tokens[res.tokens.len() - res.new_tokens..]
                            );
                        }
                        StreamEvent::Error(e) => println!("client {client}: error: {e}"),
                    }
                }
            });
        }
    });

    // 4. Cancellation: drop a stream after the first token — the worker
    //    reclaims its slot and KV cache, nobody else notices.
    let mut impatient = handle
        .submit(GenRequest {
            prompt: vec![7, 8],
            max_new_tokens: 1_000,
            temperature: 0.9,
            seed: 99,
            ..Default::default()
        })
        .unwrap();
    if let Some(StreamEvent::Token(t)) = impatient.next_event() {
        println!("impatient client: got token {t}, hanging up");
    }
    drop(impatient);

    // 5. Deadlines: a request that must finish within 4 decode steps of
    //    admission streams what it managed, then expires.
    let deadlined = handle
        .submit_with(
            GenRequest {
                prompt: vec![9, 10, 11],
                max_new_tokens: 50,
                temperature: 0.8,
                seed: 100,
                ..Default::default()
            },
            RequestOptions {
                deadline: Some(Deadline::Steps(4)),
                ..RequestOptions::default()
            },
        )
        .unwrap();
    match deadlined.collect() {
        Ok(res) => println!(
            "deadlined client: finished anyway ({} tokens)",
            res.new_tokens
        ),
        Err(e) => println!("deadlined client: {e}"),
    }

    // 6. Graceful shutdown: drains in-flight work, returns accounting.
    drop(handle);
    let report = server.shutdown();
    println!(
        "report: served {}, cancelled {}, expired {}, peak {} streams, {} decode steps, final KV rows {}",
        report.served,
        report.cancelled,
        report.expired,
        report.peak_live,
        report.session.steps,
        report.final_kv_rows
    );
    assert_eq!(report.final_kv_rows, 0);
}
