//! Quantize a synthetic LLaMA-3-8B-like model end to end and compare
//! MicroScopiQ against GPTQ, AWQ, OliVe, and GOBO — the Table 2 workflow
//! at example scale. Also runs the proxy-free TinyFM check: a real tiny
//! transformer whose teacher-data perplexity measures quantization damage
//! with no proxy mapping at all.
//!
//! Run with: `cargo run --release --example llm_quantization`

use microscopiq::core::traits::WeightQuantizer;
use microscopiq_baselines::{Awq, Gobo, Gptq, Olive};
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::metrics::PerplexityMap;
use microscopiq_fm::tinyfm::{TinyFm, TinyFmConfig};
use microscopiq_fm::{evaluate_weight_only, model};
use microscopiq_linalg::SeededRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = model("LLaMA-3-8B");
    let fp_ppl = spec.fp_ppl.unwrap();
    println!(
        "model: {} (hidden {}, {} blocks; proxy layers: {:?})",
        spec.name,
        spec.hidden,
        spec.n_blocks,
        spec.layers
            .iter()
            .map(|l| (l.name, l.d_row, l.d_col))
            .collect::<Vec<_>>()
    );

    // κ anchored on GPTQ-W4 as in the benches.
    let anchor = evaluate_weight_only(&spec, &Gptq::new(4, 128), 48)?.mean_output_error();
    let map = PerplexityMap::calibrate(anchor);

    let methods: Vec<(&str, Box<dyn WeightQuantizer>)> = vec![
        ("GPTQ W4", Box::new(Gptq::new(4, 128))),
        ("AWQ  W4", Box::new(Awq::new(4, 128))),
        ("OliVe W4", Box::new(Olive::new(4))),
        ("GOBO W4", Box::new(Gobo::new(4))),
        ("MicroScopiQ W4", Box::new(MicroScopiQ::w4())),
        ("MicroScopiQ W2", Box::new(MicroScopiQ::w2())),
    ];
    println!(
        "\n{:<16} {:>8} {:>7} {:>10}",
        "method", "error", "EBW", "proxy PPL"
    );
    for (name, q) in &methods {
        let eval = evaluate_weight_only(&spec, q.as_ref(), 48)?;
        println!(
            "{:<16} {:>8.4} {:>7.2} {:>10.2}",
            name,
            eval.mean_output_error(),
            eval.mean_ebw(),
            map.ppl(fp_ppl, eval.mean_output_error())
        );
    }

    // TinyFM: honest end-to-end perplexity on teacher-generated data.
    println!("\n== TinyFM end-to-end check (no proxy) ==");
    let teacher = TinyFm::teacher(TinyFmConfig::default(), 7);
    let mut rng = SeededRng::new(13);
    let calib: Vec<Vec<usize>> = (0..6)
        .map(|_| teacher.generate(20, 0.8, &mut rng))
        .collect();
    let eval_data: Vec<Vec<usize>> = (0..10)
        .map(|_| teacher.generate(24, 0.8, &mut rng))
        .collect();
    let teacher_ppl = teacher.perplexity(&eval_data);
    println!("teacher PPL on its own data: {teacher_ppl:.2}");

    // Heavier Hessian damping: TinyFM's small correlated calibration set
    // destabilizes low-bit compensation at the LLM-default percdamp.
    let tiny_cfg = |bits: u32| {
        QuantConfig::builder(bits)
            .macro_block(64)
            .row_block(64)
            .percdamp(5.0)
            .build()
            .expect("valid")
    };
    for (name, q) in [
        ("MicroScopiQ W4", MicroScopiQ::new(tiny_cfg(4))),
        ("MicroScopiQ W2", MicroScopiQ::new(tiny_cfg(2))),
    ] {
        let student = teacher.quantize_with(&q, &calib)?;
        let ppl = student.perplexity(&eval_data);
        println!(
            "{name}: student PPL {ppl:.2} (×{:.3} of teacher)",
            ppl / teacher_ppl
        );
    }
    Ok(())
}
