//! Design-space exploration: sweep the outlier group size B_μ (Fig. 14)
//! and the number of ReCoN units (Fig. 18a) to find the paper's balance
//! points — B_μ = 8 and time-multiplexed ReCoN.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use microscopiq_accel::area::microscopiq_area;
use microscopiq_accel::perf::{workload_latency, AccelConfig};
use microscopiq_accel::workload::{model_workload, Phase};
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{evaluate_weight_only, model};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = model("LLaMA-3-8B");

    println!("== B_μ sweep (algorithm side, Fig. 14) ==");
    println!("{:>5} {:>9} {:>7}", "B_μ", "error", "EBW");
    let mut best: Option<(usize, f64)> = None;
    for bmu in [2usize, 4, 8, 16, 32, 64] {
        let q = MicroScopiQ::new(QuantConfig::w2().micro_block(bmu).build()?);
        let eval = evaluate_weight_only(&spec, &q, 32)?;
        let err = eval.mean_output_error();
        println!("{bmu:>5} {err:>9.4} {:>7.2}", eval.mean_ebw());
        if best.as_ref().is_none_or(|(_, e)| err < *e) {
            best = Some((bmu, err));
        }
    }
    let (best_bmu, _) = best.unwrap();
    println!("→ best accuracy at B_μ = {best_bmu} (paper: 8, balancing error vs EBW)");

    println!("\n== ReCoN unit sweep (hardware side, Fig. 18a) ==");
    let wl = model_workload(&spec, Phase::Prefill(512));
    let occupancy = 1.0 - (1.0 - spec.outlier_profile.rate).powi(8);
    let base_cfg = AccelConfig::paper_64x64(2, 1);
    let base = workload_latency(&wl, &base_cfg, 2.36, occupancy).total_cycles;
    let base_area = microscopiq_area(64, 64, 1).total_mm2();
    println!("{:>6} {:>10} {:>10}", "units", "latency×", "area×");
    for units in [1usize, 2, 4, 8, 16, 64] {
        let cfg = AccelConfig::paper_64x64(2, units);
        let lat = workload_latency(&wl, &cfg, 2.36, occupancy).total_cycles;
        let area = microscopiq_area(64, 64, units).total_mm2();
        println!("{units:>6} {:>10.3} {:>10.3}", lat / base, area / base_area);
    }
    println!("→ latency saturates once capacity covers demand; area keeps climbing —\n  the paper picks few shared units (design A/B of Fig. 15)");
    Ok(())
}
