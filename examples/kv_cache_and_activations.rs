//! Weight–activation quantization with α-migration (§7.2) and 2-bit
//! KV-cache quantization (Table 7's final row).
//!
//! Run with: `cargo run --release --example kv_cache_and_activations`

use microscopiq_core::activation::{migrate_difficulty, quantize_activations};
use microscopiq_core::kv_cache::{attention_output_error, quantize_kv_cache, KvCacheConfig};
use microscopiq_core::traits::{LayerTensors, WeightQuantizer};
use microscopiq_core::MicroScopiQ;
use microscopiq_linalg::{Matrix, SeededRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeededRng::new(21);

    // A layer whose activations carry hot outlier channels.
    let w = Matrix::from_fn(64, 128, |_, _| rng.normal(0.0, 0.02));
    let mut x = Matrix::from_fn(128, 96, |_, _| rng.normal(0.0, 0.8));
    for s in 0..96 {
        x[(7, s)] *= 25.0;
        x[(63, s)] *= 18.0;
    }
    let layer = LayerTensors::new(w, x)?;
    let reference = layer.weights.matmul(&layer.calibration);
    let rel = |m: &Matrix| reference.frobenius_distance(m) / reference.frobenius_norm();

    println!("== W4A4 with and without α-migration ==");
    let q = MicroScopiQ::w4();
    for alpha in [0.0, 0.5, 0.7] {
        let migrated = migrate_difficulty(&layer, alpha)?;
        let qw = q.quantize_layer(&migrated)?;
        let qx = quantize_activations(&migrated.calibration, 4, 128);
        let out = qw.dequantized.matmul(&qx);
        println!("α = {alpha:.1}: combined output error {:.4}", rel(&out));
    }
    println!("(the paper migrates at α = 0.7 — MicroScopiQ's weight path absorbs the outliers)");

    println!("\n== 2-bit KV-cache quantization (KIVI-style) ==");
    let tokens = 512;
    let channels = 128;
    let keys = Matrix::from_fn(tokens, channels, |_, c| {
        rng.normal(0.0, if c % 13 == 0 { 2.2 } else { 0.5 })
    });
    let values = Matrix::from_fn(tokens, channels, |_, _| rng.normal(0.0, 0.8));
    let queries = Matrix::from_fn(16, channels, |_, _| rng.normal(0.0, 0.5));
    for (label, cfg) in [
        ("2-bit, residual 128", KvCacheConfig::default()),
        (
            "2-bit, no residual",
            KvCacheConfig {
                residual: 0,
                ..KvCacheConfig::default()
            },
        ),
        (
            "4-bit, residual 128",
            KvCacheConfig {
                bits: 4,
                ..KvCacheConfig::default()
            },
        ),
    ] {
        let qkv = quantize_kv_cache(&keys, &values, cfg)?;
        let err = attention_output_error(&queries, &keys, &values, &qkv);
        println!("{label}: attention output error {err:.4}");
    }
    println!("(the FP residual window absorbs most of the recency-weighted damage)");
    Ok(())
}
