//! Packed inference end to end: quantize a TinyFM with MicroScopiQ, serve
//! a batch of concurrent generation requests straight from the packed
//! weights through `microscopiq-runtime` — incremental KV-cached decode,
//! one segment-packed forward per step, completions streamed from
//! `Session::step` — and verify against the dense dequantized
//! full-prefix-recompute path: identical tokens, logit divergence
//! < 1e-9, and the dense weight matrices never materialized inside the
//! forward pass.
//!
//! ```sh
//! cargo run --release --example packed_inference
//! ```

use microscopiq::core::{MicroScopiQ, QuantConfig};
use microscopiq::fm::{sample_token, DequantGemm, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq::linalg::SeededRng;
use microscopiq::runtime::{GenRequest, RuntimeEngine, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A teacher TinyFM with FM-style weight outliers, quantized to the
    //    packed MicroScopiQ W2 format (bb = 2, outliers at e1m2 ×2 width).
    let teacher = TinyFm::teacher(TinyFmConfig::default(), 7);
    let mut rng = SeededRng::new(13);
    let calib: Vec<Vec<usize>> = (0..4)
        .map(|_| teacher.generate(12, 1.0, &mut rng))
        .collect();
    let quantizer = MicroScopiQ::new(
        QuantConfig::w2()
            .macro_block(64)
            .row_block(64)
            .percdamp(5.0)
            .build()?,
    );
    let packed = PackedTinyFm::quantize_from(&teacher, &quantizer, &calib)?;
    let cfg = packed.config();
    println!(
        "packed TinyFM: d_model={} layers={} vocab={} — {} packed weight bytes\n",
        cfg.d_model,
        cfg.n_layers,
        cfg.vocab,
        packed.packed_bytes()
    );

    // 2. Batched serving through the runtime: concurrent requests, one
    //    segment-packed forward per decode step, fused dequant-GEMM with
    //    the decoded-tile cache underneath.
    let engine = RuntimeEngine::parallel();
    println!(
        "engine: {} worker thread(s), decoded-tile cache enabled",
        engine.threads()
    );
    let requests: Vec<GenRequest> = (0..6)
        .map(|i| GenRequest {
            prompt: vec![2 + i, 40 + i, 7],
            max_new_tokens: 10 + (i % 3),
            temperature: 0.9,
            seed: 1000 + i as u64,
            ..Default::default()
        })
        .collect();
    let mut session = Session::new(packed.clone(), engine, 4);
    for r in &requests {
        session.submit(r.clone());
    }
    // Drive decode steps by hand: each step is ONE segment-packed forward
    // (prompt prefill the first time a request is scheduled, a single
    // KV-cached token afterwards), and returns whatever finished on that
    // step — completions stream out without polling.
    let mut results = Vec::new();
    while results.len() < requests.len() {
        let step_before = session.stats().steps;
        for done in session.step() {
            println!(
                "  [step {:>2}] request {} finished ({} new tokens)",
                step_before + 1,
                done.id,
                done.new_tokens
            );
            results.push(done);
        }
    }
    results.sort_by_key(|r| r.id);
    let stats = session.stats();
    println!(
        "served {} requests in {} batched steps (max batch {}), {} prompt tokens prefilled, {} tokens generated",
        results.len(),
        stats.steps,
        stats.max_batch_used,
        stats.prefill_tokens,
        stats.tokens_generated
    );
    if let Some(cache) = session.engine().cache_stats() {
        println!(
            "decoded-tile cache: {} hits / {} misses, {} bytes resident",
            cache.hits, cache.misses, cache.resident_bytes
        );
    }

    // 3. Parity: regenerate every request solo on the dense dequantized
    //    path (dequantize-then-matmul engine) — tokens must be identical.
    let mut mismatches = 0;
    for (req, res) in requests.iter().zip(results.iter()) {
        let mut tokens = req.prompt.clone();
        let mut sampler = SeededRng::new(req.seed);
        for _ in 0..req.max_new_tokens {
            let logits = packed.forward(&tokens, &DequantGemm);
            let t = tokens.len() - 1;
            tokens.push(sample_token(&logits, t, req.temperature, &mut sampler));
        }
        let ok = tokens == res.tokens;
        if !ok {
            mismatches += 1;
        }
        println!(
            "request {}: {:>2} new tokens, dense parity {} — {:?}",
            res.id,
            res.new_tokens,
            if ok { "OK" } else { "MISMATCH" },
            &res.tokens
        );
    }
    assert_eq!(mismatches, 0, "batched runtime output diverged from dense");

    // 4. Logit-level check on one full sequence: runtime vs dense engine.
    let probe = &results[0].tokens;
    let runtime_logits = packed.forward(probe, &RuntimeEngine::parallel());
    let dense_logits = packed.forward(probe, &DequantGemm);
    let max_div = runtime_logits
        .as_slice()
        .iter()
        .zip(dense_logits.as_slice().iter())
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
    println!("\nmax logit divergence runtime vs dense: {max_div:.3e}");
    assert!(max_div < 1e-9, "logit divergence {max_div} exceeds 1e-9");
    println!("packed execution matches the dense dequantized path.");
    Ok(())
}
