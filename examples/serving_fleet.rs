//! Serving-fleet walkthrough: the HTTP/1.1 wire front-end over a
//! multi-worker fleet — JSON requests over real TCP sockets, SSE-style
//! token streaming, QoS classes on the wire, the `/metrics` and
//! `/healthz` routes, and a graceful drain.
//!
//! ```sh
//! cargo run --release --example serving_fleet
//! ```

use microscopiq::core::{MicroScopiQ, QuantConfig};
use microscopiq::fm::{PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq::linalg::SeededRng;
use microscopiq::runtime::net::{json, HttpClient, HttpConfig, HttpServer, Json};
use microscopiq::runtime::{FleetConfig, RuntimeEngine, ServerConfig};

fn main() {
    // 1. A quantized model behind the fused packed-weight engine —
    //    every fleet worker gets a clone of the same packed weights, so
    //    replicas are bitwise identical and any worker may serve any
    //    request.
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 64,
    };
    let fm = TinyFm::teacher(cfg, 5);
    let mut rng = SeededRng::new(6);
    let calib: Vec<Vec<usize>> = (0..4).map(|_| fm.generate(12, 0.9, &mut rng)).collect();
    let quantizer = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    let packed = PackedTinyFm::quantize_from(&fm, &quantizer, &calib).unwrap();

    // 2. Bind the wire front-end on an OS-assigned port: two replicated
    //    workers behind a least-loaded router, each with its own engine
    //    and continuous-batching session.
    let server = HttpServer::bind(
        "127.0.0.1:0",
        packed,
        |_worker| RuntimeEngine::parallel(),
        HttpConfig {
            fleet: FleetConfig {
                workers: 2,
                server: ServerConfig {
                    max_batch: 8,
                    queue_capacity: 32,
                    ..ServerConfig::default()
                },
                ..FleetConfig::default()
            },
            ..HttpConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    println!("fleet listening on http://{addr} (2 workers)");

    // 3. Three clients over real TCP connections, one per QoS class.
    //    Tokens stream back as SSE `data:` events while decode steps
    //    complete; the terminal event carries the full result and the
    //    worker index that served it.
    std::thread::scope(|scope| {
        for (client, class) in ["interactive", "batch", "best_effort"]
            .into_iter()
            .enumerate()
        {
            scope.spawn(move || {
                let mut conn = HttpClient::connect(addr).expect("connect");
                let body = json::obj([
                    (
                        "prompt",
                        Json::Arr(vec![
                            Json::Num(1.0 + client as f64),
                            Json::Num(2.0),
                            Json::Num(3.0),
                        ]),
                    ),
                    ("max_new_tokens", Json::Num(8.0)),
                    ("temperature", Json::Num(1.2)),
                    ("seed", Json::Num(40.0 + client as f64)),
                    ("class", Json::Str(class.to_string())),
                ])
                .render();
                let mut stream = conn.generate(&body).expect("generate");
                let mut streamed = Vec::new();
                while let Some(ev) = stream.next_event().expect("stream") {
                    if let Some(t) = ev.get("token").and_then(Json::as_usize) {
                        streamed.push(t);
                    } else if ev.get("done").is_some() {
                        let worker = ev.get("worker").and_then(Json::as_usize).unwrap();
                        println!(
                            "{class} client: worker {worker} streamed {} tokens -> {streamed:?}",
                            streamed.len()
                        );
                    }
                }
            });
        }
    });

    // 4. Observability routes: `/healthz` reports fleet liveness as
    //    JSON; `/metrics` concatenates every worker's Prometheus
    //    exposition text, sectioned by worker index.
    let mut conn = HttpClient::connect(addr).unwrap();
    let health = conn.get("/healthz").unwrap();
    println!("healthz: {} {}", health.status, health.text().trim());
    let metrics = conn.get("/metrics").unwrap();
    let served_lines = metrics
        .text()
        .lines()
        .filter(|l| {
            l.starts_with("# ---- worker") || l.starts_with("microscopiq_requests_finished_total")
        })
        .collect::<Vec<_>>()
        .join("\n");
    println!("metrics (request counters per worker):\n{served_lines}");
    drop(conn);

    // 5. Graceful shutdown: stop accepting, join connection threads,
    //    drain every worker, aggregate the per-worker reports.
    let report = server.shutdown();
    println!(
        "fleet report: served {} across {} workers, final KV rows {}",
        report.total(|r| r.served),
        report.per_worker.len(),
        report.total(|r| r.final_kv_rows)
    );
    assert_eq!(report.lost(), 0);
    assert_eq!(report.total(|r| r.final_kv_rows), 0);
}
