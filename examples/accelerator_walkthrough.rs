//! The Fig. 8 walkthrough plus a bit-exact GEMM on the functional
//! accelerator: quantize a layer hardware-style (OutputChannel axis), run
//! it through the PE + ReCoN datapath, and verify against the dequantized
//! reference. Then size the full-model run with the analytic models.
//!
//! Run with: `cargo run --release --example accelerator_walkthrough`

use microscopiq_accel::area::microscopiq_area;
use microscopiq_accel::array::{execute_gemm, QuantizedActs};
use microscopiq_accel::energy::{microscopiq_energy, EnergyConstants};
use microscopiq_accel::perf::{workload_latency, AccelConfig};
use microscopiq_accel::recon::{ColumnInput, ReCoN};
use microscopiq_accel::workload::{model_workload, Phase};
use microscopiq_core::config::{GroupAxis, QuantConfig};
use microscopiq_core::microblock::PermEntry;
use microscopiq_core::solver::solve;
use microscopiq_core::traits::LayerTensors;
use microscopiq_fm::model;
use microscopiq_linalg::{Matrix, SeededRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1 — the paper's Fig. 8 example: outlier 1.5 (mantissa 10₂),
    // iAct = 32, iAcc = 8 → merged partial sum 56.
    println!("== Fig. 8 walkthrough ==");
    let recon = ReCoN::new(4);
    let fp = |v: i64| v << 2;
    let inputs = [
        ColumnInput::Psum(fp(10)),
        ColumnInput::Psum(fp(10)),
        ColumnInput::Offload {
            res: 32,
            iacc: fp(8),
        }, // Upper {0,1}·32
        ColumnInput::Offload {
            res: 0,
            iacc: fp(8),
        }, // Lower {0,0}·32
    ];
    let perm = [PermEntry {
        upper_loc: 2,
        lower_loc: 3,
    }];
    let routed = recon.route(&inputs, &perm, &[32], 2);
    println!(
        "merged outlier psum = {} (expected 56); pruned column passes iAcc = {}",
        routed.outputs[2] >> 2,
        routed.outputs[3] >> 2
    );
    assert_eq!(routed.outputs[2] >> 2, 56);

    // Part 2 — bit-exact GEMM through the functional array.
    println!("\n== functional GEMM vs dequantized reference ==");
    let mut rng = SeededRng::new(11);
    let mut w = Matrix::from_fn(64, 64, |_, _| rng.normal(0.0, 0.02));
    for _ in 0..80 {
        let r = rng.below(64);
        let c = rng.below(64);
        w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.4);
    }
    let x = Matrix::from_fn(64, 96, |_, _| rng.normal(0.0, 1.0));
    let layer = LayerTensors::new(w, x)?;
    let cfg = QuantConfig::w2()
        .macro_block(64)
        .row_block(64)
        .group_axis(GroupAxis::OutputChannel)
        .build()?;
    let packed = solve(&layer, &cfg)?.packed.expect("packable");
    let acts = QuantizedActs::from_f64(&Matrix::from_fn(64, 8, |_, _| rng.normal(0.0, 1.0)));
    let exec = execute_gemm(&packed, &acts);
    let reference = packed.dequantize().matmul(&acts.dequantize());
    println!(
        "‖array − reference‖F = {:.2e} over {} MACs ({} ReCoN merges, {} switch ops)",
        exec.outputs.frobenius_distance(&reference),
        exec.counters.macs,
        exec.counters.merges,
        exec.counters.switch_ops
    );
    assert!(exec.outputs.frobenius_distance(&reference) < 1e-9);

    // Part 3 — full-model latency/energy/area with the analytic models.
    println!("\n== LLaMA-3-8B on the 64×64 accelerator (analytic) ==");
    let spec = model("LLaMA-3-8B");
    let wl = model_workload(&spec, Phase::Prefill(512));
    let occupancy = 1.0 - (1.0 - spec.outlier_profile.rate).powi(8);
    for (label, bb, ebw) in [("bb=4 (v1)", 4u32, 4.15), ("bb=2 (v2)", 2, 2.36)] {
        let cfg = AccelConfig::paper_64x64(bb, 1);
        let lat = workload_latency(&wl, &cfg, ebw, occupancy);
        let energy = microscopiq_energy(
            &wl,
            &cfg,
            &lat,
            ebw,
            occupancy,
            4,
            &EnergyConstants::default(),
        );
        println!(
            "{label}: {:.2} ms, {:.1} mJ, utilization {:.1}%, ReCoN conflicts {:.1}%",
            lat.ms(cfg.freq_ghz),
            energy.total_mj(),
            lat.utilization * 100.0,
            lat.conflict_fraction * 100.0
        );
    }
    let area = microscopiq_area(64, 64, 1);
    println!(
        "compute area: {:.4} mm² ({:.2}% outlier-handling overhead)",
        area.total_mm2(),
        area.outlier_overhead_fraction() * 100.0
    );
    Ok(())
}
