//! Deterministic, seedable random sampling with the distributions needed to
//! synthesize foundational-model weight tensors.
//!
//! The weight synthesizer (crate `microscopiq-fm`) needs a Gaussian body,
//! a lognormal/Student-t heavy tail for outliers, and reproducibility across
//! runs. Everything routes through [`SeededRng`], a thin deterministic
//! wrapper over `rand`'s `StdRng`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic random source with the samplers the synthetic-model
/// substrate needs.
///
/// # Examples
///
/// ```
/// use microscopiq_linalg::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug)]
pub struct SeededRng {
    inner: StdRng,
    spare_normal: Option<f64>,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent stream for a named sub-task. The same
    /// `(seed, label)` pair always yields the same stream.
    pub fn fork(&self, label: &str) -> Self {
        // FNV-1a over the label mixed with a fresh draw-independent constant.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::new(h)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via Box–Muller (with spare caching).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller transform; u1 in (0,1] avoids ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal sample: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Student-t sample with `nu` degrees of freedom (heavy-tailed outlier
    /// magnitudes). Uses the normal/chi-square ratio construction.
    ///
    /// # Panics
    ///
    /// Panics if `nu <= 0`.
    pub fn student_t(&mut self, nu: f64) -> f64 {
        assert!(nu > 0.0, "degrees of freedom must be positive");
        let z = self.standard_normal();
        // Chi-square(nu) as sum of floor(nu) squared normals plus a
        // gamma-ish fractional correction via an extra scaled draw.
        let k = nu.floor() as usize;
        let mut chi2 = 0.0;
        for _ in 0..k.max(1) {
            let g = self.standard_normal();
            chi2 += g * g;
        }
        let frac = nu - k as f64;
        if frac > 1e-9 {
            let g = self.standard_normal();
            chi2 += frac * g * g;
        }
        z / (chi2 / nu).sqrt()
    }

    /// Random sign (±1).
    pub fn sign(&mut self) -> f64 {
        if self.chance(0.5) {
            1.0
        } else {
            -1.0
        }
    }

    /// Chooses `k` distinct indices from `[0, n)` (Floyd's algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} from {n}");
        let mut chosen = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(99);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.normal(3.0, 2.0)).collect();
        assert!((mean(&samples) - 3.0).abs() < 0.1);
        assert!((std_dev(&samples) - 2.0).abs() < 0.1);
    }

    #[test]
    fn student_t_has_heavier_tail_than_normal() {
        let mut rng = SeededRng::new(5);
        let n = 20_000;
        let t_extreme = (0..n).filter(|_| rng.student_t(3.0).abs() > 4.0).count();
        let z_extreme = (0..n).filter(|_| rng.standard_normal().abs() > 4.0).count();
        assert!(t_extreme > z_extreme, "t: {t_extreme} vs z: {z_extreme}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SeededRng::new(11);
        for _ in 0..1000 {
            assert!(rng.lognormal(0.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn choose_distinct_yields_unique_in_range() {
        let mut rng = SeededRng::new(3);
        for _ in 0..50 {
            let picks = rng.choose_distinct(20, 8);
            assert_eq!(picks.len(), 8);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "duplicates in {picks:?}");
            assert!(picks.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn fork_is_deterministic_per_label() {
        let root = SeededRng::new(42);
        let mut a = root.fork("weights");
        let mut b = root.fork("weights");
        let mut c = root.fork("activations");
        let x = a.uniform();
        assert_eq!(x, b.uniform());
        assert_ne!(x, c.uniform());
    }

    #[test]
    fn below_bounds() {
        let mut rng = SeededRng::new(8);
        for _ in 0..1000 {
            assert!(rng.below(3) < 3);
        }
    }
}
