//! Cholesky factorization and SPD inversion for the GPTQ Hessian.
//!
//! GPTQ-style solvers (Algorithm 1 of the paper, following Frantar et al.)
//! need `H⁻¹ = (2XXᵀ + λI)⁻¹` and, for the numerically stable column
//! recurrence, the *upper* Cholesky factor of `H⁻¹`. Both are provided here
//! on top of a plain lower-triangular Cholesky factorization.

use crate::matrix::Matrix;
use std::error::Error;
use std::fmt;

/// Error produced when a matrix is not symmetric positive definite enough
/// to factorize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CholeskyError {
    /// Pivot index at which factorization broke down.
    pub pivot: usize,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite (non-positive pivot at index {})",
            self.pivot
        )
    }
}

impl Error for CholeskyError {}

/// Computes the lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// # Errors
///
/// Returns [`CholeskyError`] if a pivot is non-positive (matrix is not SPD).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky(a: &Matrix) -> Result<Matrix, CholeskyError> {
    assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(CholeskyError { pivot: j });
        }
        let djj = diag.sqrt();
        l[(j, j)] = djj;
        for i in (j + 1)..n {
            let mut v = a[(i, j)];
            for k in 0..j {
                v -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = v / djj;
        }
    }
    Ok(l)
}

/// Inverts a lower-triangular matrix by forward substitution.
///
/// # Panics
///
/// Panics if `l` is not square or has a zero diagonal entry.
fn invert_lower_triangular(l: &Matrix) -> Matrix {
    let n = l.rows();
    assert_eq!(n, l.cols(), "triangular inverse requires a square matrix");
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        assert!(l[(j, j)] != 0.0, "singular triangular matrix");
        inv[(j, j)] = 1.0 / l[(j, j)];
        for i in (j + 1)..n {
            let mut s = 0.0;
            for k in j..i {
                s += l[(i, k)] * inv[(k, j)];
            }
            inv[(i, j)] = -s / l[(i, i)];
        }
    }
    inv
}

/// Inverts a symmetric positive definite matrix via Cholesky:
/// `A⁻¹ = L⁻ᵀ·L⁻¹`.
///
/// # Errors
///
/// Returns [`CholeskyError`] if `a` is not SPD.
pub fn spd_inverse(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let l = cholesky(a)?;
    let linv = invert_lower_triangular(&l);
    // A⁻¹ = (L·Lᵀ)⁻¹ = L⁻ᵀ·L⁻¹; compute as linvᵀ · linv.
    Ok(linv.transpose().matmul(&linv))
}

/// Computes the upper Cholesky factor `U` of `A⁻¹` (so `A⁻¹ = Uᵀ·U` with `U`
/// upper-triangular), the form GPTQ's column recurrence consumes.
///
/// # Errors
///
/// Returns [`CholeskyError`] if `a` is not SPD.
pub fn upper_cholesky_of_inverse(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let inv = spd_inverse(a)?;
    // A⁻¹ = L'·L'ᵀ (lower factor of the inverse). GPTQ uses the transposed
    // (upper) factor so that row j carries the couplings of column j to all
    // later columns.
    let l = cholesky(&inv)?;
    Ok(l.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example(n: usize) -> Matrix {
        // B·Bᵀ + n·I is comfortably SPD.
        let b = Matrix::from_fn(n, n, |r, c| ((r * 3 + c * 5) % 7) as f64 / 7.0 + 0.1);
        let mut a = b.gram();
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = spd_example(8);
        let l = cholesky(&a).expect("SPD");
        let recon = l.matmul(&l.transpose());
        assert!(a.frobenius_distance(&recon) < 1e-9);
    }

    #[test]
    fn cholesky_factor_is_lower_triangular() {
        let a = spd_example(6);
        let l = cholesky(&a).expect("SPD");
        for r in 0..6 {
            for c in (r + 1)..6 {
                assert_eq!(l[(r, c)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = cholesky(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.to_string().contains("not positive definite"));
    }

    #[test]
    fn spd_inverse_gives_identity() {
        let a = spd_example(10);
        let inv = spd_inverse(&a).expect("SPD");
        let eye = a.matmul(&inv);
        assert!(eye.frobenius_distance(&Matrix::identity(10)) < 1e-8);
    }

    #[test]
    fn upper_factor_reconstructs_inverse() {
        let a = spd_example(7);
        let u = upper_cholesky_of_inverse(&a).expect("SPD");
        // U is upper triangular.
        for r in 0..7 {
            for c in 0..r {
                assert_eq!(u[(r, c)], 0.0);
            }
        }
        let inv = spd_inverse(&a).expect("SPD");
        let recon = u.transpose().matmul(&u);
        assert!(inv.frobenius_distance(&recon) < 1e-8);
    }

    #[test]
    fn triangular_inverse_matches_direct() {
        let a = spd_example(5);
        let l = cholesky(&a).expect("SPD");
        let linv = invert_lower_triangular(&l);
        let eye = l.matmul(&linv);
        assert!(eye.frobenius_distance(&Matrix::identity(5)) < 1e-10);
    }
}
