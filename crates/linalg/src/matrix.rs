//! Row-major dense `f64` matrix with the handful of operations the
//! quantization pipeline and simulators need.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use microscopiq_linalg::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self · rhs` using a cache-blocked ikj loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        const BLOCK: usize = 64;
        for kb in (0..self.cols).step_by(BLOCK) {
            let kend = (kb + BLOCK).min(self.cols);
            for i in 0..self.rows {
                for k in kb..kend {
                    let a = self.data[i * self.cols + k];
                    if a == 0.0 {
                        continue;
                    }
                    let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                    let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    for (o, r) in orow.iter_mut().zip(rrow.iter()) {
                        *o += a * r;
                    }
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(v.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect()
    }

    /// Computes `self · selfᵀ` without materialising the transpose.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.rows, self.rows);
        for i in 0..self.rows {
            for j in i..self.rows {
                let dot: f64 = self
                    .row(i)
                    .iter()
                    .zip(self.row(j).iter())
                    .map(|(a, b)| a * b)
                    .sum();
                g[(i, j)] = dot;
                g[(j, i)] = dot;
            }
        }
        g
    }

    /// Adds `value` to every diagonal entry (dampening helper).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, value: f64) {
        assert_eq!(self.rows, self.cols, "diagonal requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += value;
        }
    }

    /// Returns the main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Scales every element in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm of `self − other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn frobenius_distance(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Converts to an `f32` row-major vector (boundary with quantizers).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        self.data.iter().map(|&v| v as f32).collect()
    }

    /// Builds a matrix from `f32` row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_f32(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Self {
            rows,
            cols,
            data: data.iter().map(|&v| v as f64).collect(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        let i2 = Matrix::identity(2);
        assert_eq!(a.matmul(&i3), a);
        assert_eq!(i2.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::from_fn(5, 3, |r, c| (r * 7 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_fn(4, 6, |r, c| ((r + 1) * (c + 2)) as f64 / 3.0);
        let explicit = a.matmul(&a.transpose());
        let gram = a.gram();
        assert!(gram.frobenius_distance(&explicit) < 1e-9);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |r, c| (r as f64) - (c as f64) * 0.5);
        let v = vec![1.0, -2.0, 0.5, 3.0];
        let as_col = Matrix::from_vec(4, 1, v.clone());
        let via_matmul = a.matmul(&as_col);
        let via_matvec = a.matvec(&v);
        for (i, x) in via_matvec.iter().enumerate() {
            assert!((x - via_matmul[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(2.5);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 2.5 } else { 0.0 };
                assert_eq!(a[(r, c)], expect);
            }
        }
    }

    #[test]
    fn frobenius_norm_of_known_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn f32_roundtrip_preserves_values_within_precision() {
        let a = Matrix::from_fn(3, 3, |r, c| (r as f64) * 0.125 + (c as f64) * 0.25);
        let b = Matrix::from_f32(3, 3, &a.to_f32_vec());
        assert!(a.frobenius_distance(&b) < 1e-6);
    }

    #[test]
    fn row_and_col_accessors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
        assert_eq!(a.diagonal(), vec![1.0, 4.0]);
    }
}
