//! Summary statistics used by the 3σ outlier rule and the experiment
//! harness (box plots of Fig. 2(a), outlier diversity of Fig. 14).

/// Arithmetic mean of a slice. Returns 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation. Returns 0 for slices shorter than 2.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Linear-interpolated percentile (`p` in `[0, 100]`).
///
/// # Panics
///
/// Panics if `values` is empty or `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number-style summary of a sample (used for the paper's box plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes the summary of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of empty slice");
        Self {
            min: percentile(values, 0.0),
            q1: percentile(values, 25.0),
            median: percentile(values, 50.0),
            q3: percentile(values, 75.0),
            max: percentile(values, 100.0),
            mean: mean(values),
            std_dev: std_dev(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints_are_min_max() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_is_ordered() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 * 37.0) % 13.0).collect();
        let s = Summary::of(&v);
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }
}
