//! Dense linear algebra, statistics, and deterministic random sampling
//! substrate for the MicroScopiQ reproduction.
//!
//! The quantization framework needs a small, predictable numeric kernel:
//! row-major [`Matrix`] with blocked matmul, a Cholesky-based SPD inverse for
//! the GPTQ Hessian `H = 2XXᵀ + λI`, summary statistics for the 3σ outlier
//! rule, and seeded heavy-tailed samplers for synthetic foundational-model
//! weights. Everything here is `f64`; quantization-facing tensors are `f32`
//! and convert at the boundary.
//!
//! # Examples
//!
//! ```
//! use microscopiq_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

pub mod cholesky;
pub mod matrix;
pub mod rng;
pub mod stats;

pub use cholesky::{cholesky, spd_inverse, upper_cholesky_of_inverse, CholeskyError};
pub use matrix::Matrix;
pub use rng::SeededRng;
pub use stats::{mean, percentile, std_dev, Summary};
