//! Property-based tests over the MicroScopiQ quantization invariants.

use microscopiq_core::config::{GroupAxis, QuantConfig};
use microscopiq_core::microblock::{MicroBlockPlan, PermutationList};
use microscopiq_core::packed::PackedLayer;
use microscopiq_core::solver::solve;
use microscopiq_core::traits::LayerTensors;
use microscopiq_linalg::{Matrix, SeededRng};
use proptest::prelude::*;

/// Builds a reproducible synthetic layer from a seed and geometry.
fn build_layer(d_row: usize, d_col: usize, outlier_rate: f64, seed: u64) -> LayerTensors {
    let mut rng = SeededRng::new(seed);
    let mut w = Matrix::from_fn(d_row, d_col, |_, _| rng.normal(0.0, 0.02));
    let n_out = ((d_row * d_col) as f64 * outlier_rate).round() as usize;
    for _ in 0..n_out {
        let r = rng.below(d_row);
        let c = rng.below(d_col);
        w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.5);
    }
    let x = Matrix::from_fn(d_col, d_col + 8, |_, _| rng.normal(0.0, 1.0));
    LayerTensors::new(w, x).unwrap()
}

fn small_cfg(axis: GroupAxis, bits: u32) -> QuantConfig {
    QuantConfig::builder(bits)
        .macro_block(16)
        .row_block(16)
        .group_axis(axis)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central invariant: pack → bytes → unpack → dequantize is
    /// identical to the solver's dequantized view — across bit budgets,
    /// both grouping axes, and outlier densities from outlier-free to
    /// heavy (where most micro-blocks carry metadata).
    #[test]
    fn pack_serialize_roundtrip(
        seed in 0u64..1000,
        rows in 4usize..24,
        cols_blocks in 1usize..4,
        bits in prop_oneof![Just(2u32), Just(4u32)],
        axis in prop_oneof![Just(GroupAxis::DotProduct), Just(GroupAxis::OutputChannel)],
        rate in prop_oneof![Just(0.0), 0.005f64..0.04, 0.08f64..0.15],
    ) {
        let cols = cols_blocks * 16;
        let layer = build_layer(rows, cols, rate, seed);
        let out = solve(&layer, &small_cfg(axis, bits)).unwrap();
        let packed = out.packed.expect("packable");
        // Note rate 0.0 still exercises sparse metadata: the 3σ classifier
        // flags natural Gaussian tail samples, so most (not all)
        // micro-blocks are metadata-free.
        let bytes = packed.to_bytes();
        let back = PackedLayer::from_bytes(&bytes).unwrap();
        prop_assert!(back.dequantize().frobenius_distance(&out.dequantized) < 1e-9);
        prop_assert_eq!(back.effective_bit_width().to_bits(),
                        packed.effective_bit_width().to_bits());
        prop_assert_eq!(&back, &packed);
    }

    /// N:M structured-sparsity invariant: exactly one pruned slot per kept
    /// outlier, and EBW stays within the Eq. 4 envelope [bb, EBW_O].
    #[test]
    fn nm_pattern_and_ebw_envelope(seed in 0u64..1000, rate in 0.0f64..0.06) {
        let layer = build_layer(8, 64, rate, seed);
        let cfg = small_cfg(GroupAxis::DotProduct, 2);
        let out = solve(&layer, &cfg).unwrap();
        prop_assert!((out.stats.pruned_fraction - out.stats.outlier_fraction).abs() < 1e-12);
        let ebw = out.stats.effective_bit_width;
        prop_assert!((2.0..=6.0).contains(&ebw), "ebw {}", ebw);
        // Eq. 4 cross-check from the micro-block occupancy.
        let x = out.stats.outlier_micro_block_fraction;
        let expect = 2.0 * (1.0 - x) + 6.0 * x;
        prop_assert!((ebw - expect).abs() < 1e-9, "ebw {} vs eq4 {}", ebw, expect);
    }

    /// Quantization is deterministic.
    #[test]
    fn quantization_is_deterministic(seed in 0u64..500) {
        let layer = build_layer(6, 32, 0.02, seed);
        let cfg = small_cfg(GroupAxis::DotProduct, 2);
        let a = solve(&layer, &cfg).unwrap();
        let b = solve(&layer, &cfg).unwrap();
        prop_assert_eq!(a.dequantized, b.dequantized);
    }

    /// Dequantized inliers never exceed the representable inlier range of
    /// their block scale, and reconstruction error of the whole tensor is
    /// bounded relative to the clean-signal norm.
    #[test]
    fn reconstruction_is_sane(seed in 0u64..500) {
        let layer = build_layer(8, 32, 0.03, seed);
        let cfg = small_cfg(GroupAxis::DotProduct, 4);
        let out = solve(&layer, &cfg).unwrap();
        let rel = out.dequantized.frobenius_distance(&layer.weights)
            / layer.weights.frobenius_norm();
        prop_assert!(rel < 0.8, "relative reconstruction error {}", rel);
        prop_assert!(out.dequantized.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Permutation lists survive the bit encoding for every legal shape.
    #[test]
    fn perm_list_roundtrip(
        count in 0usize..=4,
        seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut slots: Vec<usize> = (0..8).collect();
        // Shuffle via random draws.
        for i in (1..slots.len()).rev() {
            let j = rng.below(i + 1);
            slots.swap(i, j);
        }
        let entries: Vec<_> = (0..count)
            .map(|k| microscopiq_core::microblock::PermEntry {
                upper_loc: slots[2 * k] as u8,
                lower_loc: slots[2 * k + 1] as u8,
            })
            .collect();
        let list = PermutationList::new(entries.clone(), 8);
        let back = PermutationList::from_bits(list.to_bits(8), 8).unwrap();
        prop_assert_eq!(back.entries(), entries.as_slice());
    }

    /// Micro-block plans always satisfy their structural invariants.
    #[test]
    fn plan_invariants(
        flagged_bits in 0u8..=255,
        seed in 0u64..1000,
    ) {
        let flagged: Vec<bool> = (0..8).map(|i| (flagged_bits >> i) & 1 == 1).collect();
        let mut rng = SeededRng::new(seed);
        let weights: Vec<f64> = (0..8)
            .map(|i| if flagged[i] { rng.sign() * rng.uniform_range(0.2, 0.9) } else { rng.normal(0.0, 0.02) })
            .collect();
        let saliency: Vec<f64> = weights.iter().map(|w| w * w).collect();
        let plan = MicroBlockPlan::build(&flagged, &weights, &saliency, true);
        prop_assert!(plan.check_invariants());
        prop_assert!(plan.n_outliers() <= 4);
        prop_assert_eq!(plan.n_outliers() + plan.demoted,
                        flagged.iter().filter(|&&f| f).count());
    }
}
