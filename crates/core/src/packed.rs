//! The packed MicroScopiQ tensor: fixed-budget weight slots plus per-block
//! metadata, matching the off-chip layout of Fig. 5, with the effective
//! bit width of Eq. 4.
//!
//! Layout (per macro-block): an 8-bit `Isf` scale, then per micro-block a
//! 1-bit outlier identifier and — only for outlier-bearing blocks — the
//! 8-bit MXScale and the permutation list. Weight slots always hold exactly
//! `bb` bits: inlier codes in two's complement, outlier Upper/Lower halves
//! in sign-magnitude.

use crate::config::GroupAxis;
use crate::error::QuantError;
use crate::microblock::PermutationList;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use microscopiq_linalg::Matrix;
use microscopiq_mx::fp::TinyFloat;
use microscopiq_mx::halves::unpack_sign_mag;
use microscopiq_mx::mxfp::MxScale;
use microscopiq_mx::scale::Pow2Scale;
use std::sync::OnceLock;

const MAGIC: &[u8; 4] = b"MSPQ";
const VERSION: u8 = 1;

/// Metadata attached to an outlier-bearing micro-block.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroBlockMeta {
    /// Shared MXScale (level-1 scale ‖ μX).
    pub mxscale: MxScale,
    /// Permutation list locating the outlier halves.
    pub perm: PermutationList,
}

/// One packed micro-block: `B_μ` fixed-width slots plus optional metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedMicroBlock {
    /// Raw slot bit patterns (`bb` significant bits each).
    pub codes: Vec<u8>,
    /// Present iff the block contains outliers.
    pub meta: Option<MicroBlockMeta>,
}

/// One packed macro-block: shared inlier scale plus its micro-blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedMacroBlock {
    /// Shared inlier scale `2^Isf`.
    pub isf: Pow2Scale,
    /// Micro-blocks in order.
    pub micro_blocks: Vec<PackedMicroBlock>,
}

/// Placement of one macro-block group within the weight matrix (see
/// [`PackedLayer::group_span`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSpan {
    /// Line index: row for [`GroupAxis::DotProduct`], column for
    /// [`GroupAxis::OutputChannel`].
    pub line: usize,
    /// Starting element offset within the line.
    pub offset: usize,
    /// Number of elements the group covers.
    pub len: usize,
}

/// A complete packed layer.
#[derive(Debug, Clone)]
pub struct PackedLayer {
    axis: GroupAxis,
    d_row: usize,
    d_col: usize,
    inlier_bits: u32,
    micro_block: usize,
    macro_block: usize,
    groups: Vec<PackedMacroBlock>,
    /// Lazily computed content fingerprint (see
    /// [`PackedLayer::content_fingerprint`]); excluded from equality.
    fingerprint: OnceLock<u64>,
    /// Lazily computed (outlier micro-blocks, total micro-blocks) counts;
    /// excluded from equality.
    outlier_counts: OnceLock<(usize, usize)>,
}

impl PartialEq for PackedLayer {
    fn eq(&self, other: &Self) -> bool {
        self.axis == other.axis
            && self.d_row == other.d_row
            && self.d_col == other.d_col
            && self.inlier_bits == other.inlier_bits
            && self.micro_block == other.micro_block
            && self.macro_block == other.macro_block
            && self.groups == other.groups
    }
}

impl PackedLayer {
    /// Assembles a packed layer.
    ///
    /// # Panics
    ///
    /// Panics if the group/micro-block structure does not tile the tensor
    /// dimensions (groups per line, blocks per group, slots per block).
    pub fn new(
        axis: GroupAxis,
        d_row: usize,
        d_col: usize,
        inlier_bits: u32,
        micro_block: usize,
        macro_block: usize,
        groups: Vec<PackedMacroBlock>,
    ) -> Self {
        let (lines, line_len) = match axis {
            GroupAxis::DotProduct => (d_row, d_col),
            GroupAxis::OutputChannel => (d_col, d_row),
        };
        let mabs_per_line = line_len.div_ceil(macro_block);
        assert_eq!(
            groups.len(),
            lines * mabs_per_line,
            "group count does not tile the tensor"
        );
        for (g, group) in groups.iter().enumerate() {
            let mab_index = g % mabs_per_line;
            let mab_len = (line_len - mab_index * macro_block).min(macro_block);
            assert_eq!(
                group.micro_blocks.len(),
                mab_len.div_ceil(micro_block),
                "micro-block count mismatch in group {g}"
            );
            let mut remaining = mab_len;
            for mb in &group.micro_blocks {
                let expect = remaining.min(micro_block);
                assert_eq!(mb.codes.len(), expect, "slot count mismatch in group {g}");
                remaining -= expect;
            }
        }
        Self {
            axis,
            d_row,
            d_col,
            inlier_bits,
            micro_block,
            macro_block,
            groups,
            fingerprint: OnceLock::new(),
            outlier_counts: OnceLock::new(),
        }
    }

    /// Grouping axis.
    pub fn axis(&self) -> GroupAxis {
        self.axis
    }

    /// Output-channel count.
    pub fn d_row(&self) -> usize {
        self.d_row
    }

    /// Input-feature count.
    pub fn d_col(&self) -> usize {
        self.d_col
    }

    /// Per-element bit budget `bb`.
    pub fn inlier_bits(&self) -> u32 {
        self.inlier_bits
    }

    /// Micro-block size.
    pub fn micro_block(&self) -> usize {
        self.micro_block
    }

    /// Macro-block size.
    pub fn macro_block(&self) -> usize {
        self.macro_block
    }

    /// The packed macro-blocks in layout order.
    pub fn groups(&self) -> &[PackedMacroBlock] {
        &self.groups
    }

    /// The outlier element format implied by `bb` (e1m2 at 2-bit budget,
    /// e3m4 at 4-bit).
    pub fn outlier_format(&self) -> TinyFloat {
        TinyFloat::for_outlier_bits(self.inlier_bits * 2)
    }

    /// Fraction of micro-blocks carrying outlier metadata. Computed once
    /// and memoized — kernel dispatch keys on it per GEMM call, so the
    /// count must not be re-walked on the hot path.
    pub fn outlier_micro_block_fraction(&self) -> f64 {
        let (with, total) = *self.outlier_counts.get_or_init(|| {
            let mut total = 0usize;
            let mut with = 0usize;
            for g in &self.groups {
                for mb in &g.micro_blocks {
                    total += 1;
                    if mb.meta.is_some() {
                        with += 1;
                    }
                }
            }
            (with, total)
        });
        if total == 0 {
            0.0
        } else {
            with as f64 / total as f64
        }
    }

    /// Effective bit width per Eq. 4: micro-blocks without outliers cost
    /// `bb` bits/element; outlier-bearing blocks add the permutation list
    /// and the 8-bit MXScale. The shared `Isf` and the 1-bit identifier
    /// are excluded, as in the paper.
    pub fn effective_bit_width(&self) -> f64 {
        let bb = self.inlier_bits as f64;
        let mut bits = 0.0;
        let mut elems = 0usize;
        for g in &self.groups {
            for mb in &g.micro_blocks {
                let n = mb.codes.len();
                elems += n;
                bits += bb * n as f64;
                if mb.meta.is_some() {
                    let loc_bits = (self.micro_block as u32).ilog2() as f64;
                    let perm_bits = (self.micro_block as f64 / 2.0) * 2.0 * loc_bits;
                    bits += perm_bits + 8.0;
                }
            }
        }
        if elems == 0 {
            bb
        } else {
            bits / elems as f64
        }
    }

    /// Effective bit width including every stored bit (Isf amortized over
    /// the macro-block and the 1-bit identifier) — the "honest" variant the
    /// paper argues contributes only 0.05–0.09 extra bits.
    pub fn effective_bit_width_exact(&self) -> f64 {
        let mut bits = 0.0;
        let mut elems = 0usize;
        for g in &self.groups {
            let group_elems: usize = g.micro_blocks.iter().map(|m| m.codes.len()).sum();
            bits += 8.0; // Isf
            elems += group_elems;
            for mb in &g.micro_blocks {
                bits += 1.0 + self.inlier_bits as f64 * mb.codes.len() as f64;
                if mb.meta.is_some() {
                    let loc_bits = (self.micro_block as u32).ilog2() as f64;
                    bits += (self.micro_block as f64 / 2.0) * 2.0 * loc_bits + 8.0;
                }
            }
        }
        if elems == 0 {
            self.inlier_bits as f64
        } else {
            bits / elems as f64
        }
    }

    /// Number of lines the grouping axis walks: rows for
    /// [`GroupAxis::DotProduct`], columns for [`GroupAxis::OutputChannel`].
    pub fn lines(&self) -> usize {
        match self.axis {
            GroupAxis::DotProduct => self.d_row,
            GroupAxis::OutputChannel => self.d_col,
        }
    }

    /// Elements per line along the grouping axis.
    pub fn line_len(&self) -> usize {
        match self.axis {
            GroupAxis::DotProduct => self.d_col,
            GroupAxis::OutputChannel => self.d_row,
        }
    }

    /// Macro-block groups per line.
    pub fn groups_per_line(&self) -> usize {
        self.line_len().div_ceil(self.macro_block)
    }

    /// Number of macro-block groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Placement of group `g` within the weight matrix: the line it lives
    /// on, its starting element offset within that line, and its element
    /// count. Runtimes use this to walk packed blocks without materializing
    /// the dense matrix.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group_span(&self, g: usize) -> GroupSpan {
        assert!(g < self.groups.len(), "group index out of range");
        let per_line = self.groups_per_line();
        let line = g / per_line;
        let offset = (g % per_line) * self.macro_block;
        let len = (self.line_len() - offset).min(self.macro_block);
        GroupSpan { line, offset, len }
    }

    /// Content fingerprint: a 64-bit hash of the geometry, every group's
    /// scale bytes and permutation words, and every slot code — any
    /// content change changes the fingerprint, and equal content hashes
    /// equally, so it is a sound content-addressed cache key (runtimes key
    /// decoded-block caches on it). Computed once and memoized; the memo
    /// is ignored by `PartialEq`/serialization.
    pub fn content_fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut mix64 = |w: u64| {
                h = (h ^ w).wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(27);
            };
            for v in [
                self.d_row as u64,
                self.d_col as u64,
                self.inlier_bits as u64,
                ((self.micro_block as u64) << 32) | self.macro_block as u64,
                self.groups.len() as u64,
            ] {
                mix64(v);
            }
            for g in &self.groups {
                mix64(g.isf.to_e8m0_byte() as u64);
                for mb in &g.micro_blocks {
                    if let Some(meta) = &mb.meta {
                        mix64(
                            ((meta.mxscale.to_byte() as u64) << 56)
                                ^ meta.perm.to_bits(self.micro_block),
                        );
                    }
                    let mut chunks = mb.codes.chunks_exact(8);
                    for c in &mut chunks {
                        mix64(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
                    }
                    // Remainder bytes fold at 9-bit stride: the 0x100
                    // marker per byte keeps [2,5] and [3,5] (and any
                    // length/value confusion) distinct.
                    let mut tail = 0u64;
                    for &b in chunks.remainder() {
                        tail = (tail << 9) | (0x100 | b as u64);
                    }
                    if tail != 0 {
                        mix64(tail);
                    }
                }
            }
            // Final avalanche so nearby inputs spread across the key space.
            h ^= h >> 31;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^ (h >> 29)
        })
    }

    /// Reassembles one outlier's exact value from its Upper/Lower
    /// sign-magnitude halves: the merged mantissa under the block's
    /// MXScale, with the shared `Isf` divided back out (§4.2). Shared by
    /// every decode path so outliers always reconstruct identically.
    fn outlier_value(&self, meta: &MicroBlockMeta, isf: Pow2Scale, up: u8, lo: u8) -> f64 {
        let bb = self.inlier_bits;
        let fmt = self.outlier_format();
        let mb_bits = fmt.mantissa_bits();
        // Dequantized outlier exponent: MXScale total − Isf (§4.2).
        let exp = meta.mxscale.total_exponent() - isf.exponent();
        let upper = unpack_sign_mag(up, bb);
        let lower = unpack_sign_mag(lo, bb);
        // The sign is duplicated into both halves; read it from the
        // Upper slot's raw sign bit.
        let sign = (up >> (bb - 1)) & 1 == 1;
        let mantissa = (upper.unsigned_abs() << (mb_bits / 2)) | lower.unsigned_abs();
        let frac = 1.0 + mantissa as f64 / fmt.mantissa_levels() as f64;
        let mag = frac * (exp as f64).exp2();
        if sign {
            -mag
        } else {
            mag
        }
    }

    /// Decodes one micro-block into `out` (one value per slot; `out` must
    /// hold at least `mb.codes.len()` elements). Inlier slots decode as
    /// two's complement × `2^Isf`; outlier-bearing blocks reassemble the
    /// Upper/Lower sign-magnitude halves through the permutation list and
    /// zero the pruned host slots.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the micro-block.
    pub fn decode_micro_block_into(&self, mb: &PackedMicroBlock, isf: Pow2Scale, out: &mut [f64]) {
        let bb = self.inlier_bits;
        assert!(out.len() >= mb.codes.len(), "decode buffer too small");
        for (o, &c) in out.iter_mut().zip(mb.codes.iter()) {
            // Default: inlier two's-complement decode.
            let shift = 8 - bb;
            let signed = ((c << shift) as i8 >> shift) as i32;
            *o = isf.unapply(signed as f64);
        }
        if let Some(meta) = &mb.meta {
            for e in meta.perm.entries() {
                let up = mb.codes[e.upper_loc as usize];
                let lo = mb.codes[e.lower_loc as usize];
                out[e.upper_loc as usize] = self.outlier_value(meta, isf, up, lo);
                out[e.lower_loc as usize] = 0.0; // pruned slot
            }
        }
    }

    /// Decodes every slot of group `g` into `out` (at least
    /// [`GroupSpan::len`] elements), in line order.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range or `out` is too short.
    pub fn decode_group_into(&self, g: usize, out: &mut [f64]) {
        let group = &self.groups[g];
        let mut offset = 0;
        for mb in &group.micro_blocks {
            self.decode_micro_block_into(mb, group.isf, &mut out[offset..]);
            offset += mb.codes.len();
        }
    }

    /// Borrowed view of group `g`: placement, scale, and allocation-free
    /// decode entry points for kernels that walk packed blocks directly.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group(&self, g: usize) -> GroupView<'_> {
        assert!(g < self.groups.len(), "group index out of range");
        GroupView {
            layer: self,
            index: g,
        }
    }

    /// Iterates borrowed views over every group in layout order.
    pub fn iter_groups(&self) -> impl ExactSizeIterator<Item = GroupView<'_>> + '_ {
        (0..self.groups.len()).map(move |g| GroupView {
            layer: self,
            index: g,
        })
    }

    /// Reconstructs the full dequantized weight matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut w = Matrix::zeros(self.d_row, self.d_col);
        let mut buf = vec![0.0; self.macro_block];
        for (g, span) in (0..self.groups.len()).map(|g| (g, self.group_span(g))) {
            self.decode_group_into(g, &mut buf);
            for (i, &v) in buf[..span.len].iter().enumerate() {
                match self.axis {
                    GroupAxis::DotProduct => w[(span.line, span.offset + i)] = v,
                    GroupAxis::OutputChannel => w[(span.offset + i, span.line)] = v,
                }
            }
        }
        w
    }

    /// Serializes to the byte layout of Fig. 5 (weights + hardware-managed
    /// metadata).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(match self.axis {
            GroupAxis::DotProduct => 0,
            GroupAxis::OutputChannel => 1,
        });
        buf.put_u8(self.inlier_bits as u8);
        buf.put_u16(self.micro_block as u16);
        buf.put_u16(self.macro_block as u16);
        buf.put_u32(self.d_row as u32);
        buf.put_u32(self.d_col as u32);
        buf.put_u32(self.groups.len() as u32);
        for g in &self.groups {
            buf.put_u8(g.isf.to_e8m0_byte());
            buf.put_u16(g.micro_blocks.len() as u16);
            for mb in &g.micro_blocks {
                buf.put_u8(mb.codes.len() as u8);
                match &mb.meta {
                    None => buf.put_u8(0),
                    Some(meta) => {
                        buf.put_u8(1 | ((meta.perm.len() as u8) << 4));
                        buf.put_u8(meta.mxscale.to_byte());
                        // Permutation payload: Bμ/2 entries × 2·log2(Bμ)
                        // bits, byte-padded (3 bytes at Bμ = 8).
                        let payload = meta.perm.to_bits(self.micro_block) & ((1 << 56) - 1);
                        let loc_bits = (self.micro_block as u32).ilog2();
                        let payload_bytes =
                            ((self.micro_block as u32 / 2) * 2 * loc_bits).div_ceil(8);
                        for b in 0..payload_bytes {
                            buf.put_u8((payload >> (8 * b)) as u8);
                        }
                    }
                }
                // Slot codes, bb bits each, packed little-endian into bytes.
                let mut acc = 0u32;
                let mut nbits = 0u32;
                for &c in &mb.codes {
                    acc |= ((c as u32) & ((1 << self.inlier_bits) - 1)) << nbits;
                    nbits += self.inlier_bits;
                    while nbits >= 8 {
                        buf.put_u8(acc as u8);
                        acc >>= 8;
                        nbits -= 8;
                    }
                }
                if nbits > 0 {
                    buf.put_u8(acc as u8);
                }
            }
        }
        buf.freeze()
    }

    /// Deserializes from [`PackedLayer::to_bytes`] output, validating all
    /// structural metadata.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::CorruptMetadata`] on truncation, bad magic,
    /// or out-of-range fields.
    pub fn from_bytes(data: &[u8]) -> Result<Self, QuantError> {
        let corrupt = |offset: usize, reason: &str| QuantError::CorruptMetadata {
            offset,
            reason: reason.to_string(),
        };
        let mut buf = data;
        let total = data.len();
        let off = |buf: &[u8]| total - buf.len();
        if buf.remaining() < 23 {
            return Err(corrupt(0, "truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(corrupt(0, "bad magic"));
        }
        if buf.get_u8() != VERSION {
            return Err(corrupt(4, "unsupported version"));
        }
        let axis = match buf.get_u8() {
            0 => GroupAxis::DotProduct,
            1 => GroupAxis::OutputChannel,
            _ => return Err(corrupt(5, "bad axis")),
        };
        let inlier_bits = buf.get_u8() as u32;
        if inlier_bits != 2 && inlier_bits != 4 {
            return Err(corrupt(6, "bad inlier bits"));
        }
        let micro_block = buf.get_u16() as usize;
        let macro_block = buf.get_u16() as usize;
        if micro_block < 2
            || !micro_block.is_power_of_two()
            || !macro_block.is_multiple_of(micro_block)
        {
            return Err(corrupt(7, "bad block geometry"));
        }
        let d_row = buf.get_u32() as usize;
        let d_col = buf.get_u32() as usize;
        let n_groups = buf.get_u32() as usize;
        let fmt = TinyFloat::for_outlier_bits(inlier_bits * 2);
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            if buf.remaining() < 3 {
                return Err(corrupt(off(buf), "truncated group header"));
            }
            let isf = Pow2Scale::from_e8m0_byte(buf.get_u8());
            let n_micro = buf.get_u16() as usize;
            let mut micro_blocks = Vec::with_capacity(n_micro);
            for _ in 0..n_micro {
                if buf.remaining() < 2 {
                    return Err(corrupt(off(buf), "truncated micro-block header"));
                }
                let n_codes = buf.get_u8() as usize;
                if n_codes == 0 || n_codes > micro_block {
                    return Err(corrupt(off(buf), "bad slot count"));
                }
                let flag = buf.get_u8();
                let meta = if flag & 1 == 1 {
                    let count = (flag >> 4) as usize;
                    if count > micro_block / 2 {
                        return Err(corrupt(off(buf), "permutation count exceeds Bμ/2"));
                    }
                    if buf.remaining() < 1 {
                        return Err(corrupt(off(buf), "truncated mxscale"));
                    }
                    let mxscale = MxScale::from_byte(buf.get_u8(), fmt);
                    let loc_bits = (micro_block as u32).ilog2();
                    let payload_bytes =
                        (((micro_block as u32 / 2) * 2 * loc_bits).div_ceil(8)) as usize;
                    if buf.remaining() < payload_bytes {
                        return Err(corrupt(off(buf), "truncated permutation list"));
                    }
                    let mut payload = 0u64;
                    for b in 0..payload_bytes {
                        payload |= (buf.get_u8() as u64) << (8 * b);
                    }
                    let perm =
                        PermutationList::from_bits(payload | ((count as u64) << 56), micro_block)?;
                    for e in perm.entries() {
                        if e.upper_loc as usize >= n_codes || e.lower_loc as usize >= n_codes {
                            return Err(corrupt(off(buf), "permutation location out of range"));
                        }
                    }
                    Some(MicroBlockMeta { mxscale, perm })
                } else {
                    None
                };
                let code_bytes = (n_codes * inlier_bits as usize).div_ceil(8);
                if buf.remaining() < code_bytes {
                    return Err(corrupt(off(buf), "truncated slot codes"));
                }
                let mut codes = Vec::with_capacity(n_codes);
                let mut acc = 0u32;
                let mut nbits = 0u32;
                for _ in 0..n_codes {
                    if nbits < inlier_bits {
                        acc |= (buf.get_u8() as u32) << nbits;
                        nbits += 8;
                    }
                    codes.push((acc & ((1 << inlier_bits) - 1)) as u8);
                    acc >>= inlier_bits;
                    nbits -= inlier_bits;
                }
                micro_blocks.push(PackedMicroBlock { codes, meta });
            }
            groups.push(PackedMacroBlock { isf, micro_blocks });
        }
        // Structural validation of group tiling also happens in `new`, but
        // a corrupt count must surface as an error rather than a panic.
        let (lines, line_len) = match axis {
            GroupAxis::DotProduct => (d_row, d_col),
            GroupAxis::OutputChannel => (d_col, d_row),
        };
        if groups.len() != lines * line_len.div_ceil(macro_block) {
            return Err(corrupt(total, "group count does not tile tensor"));
        }
        Ok(Self {
            axis,
            d_row,
            d_col,
            inlier_bits,
            micro_block,
            macro_block,
            groups,
            fingerprint: OnceLock::new(),
            outlier_counts: OnceLock::new(),
        })
    }
}

/// A borrowed view of one macro-block group: placement plus decode entry
/// points that write into caller-owned buffers, so kernels walking packed
/// blocks never allocate per group.
///
/// Obtained from [`PackedLayer::group`] / [`PackedLayer::iter_groups`].
#[derive(Debug, Clone, Copy)]
pub struct GroupView<'a> {
    layer: &'a PackedLayer,
    index: usize,
}

impl GroupView<'_> {
    /// The group's index in layout order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Placement of the group within the weight matrix.
    #[inline]
    pub fn span(&self) -> GroupSpan {
        self.layer.group_span(self.index)
    }

    /// The group's shared inlier scale `2^Isf`.
    #[inline]
    pub fn isf(&self) -> Pow2Scale {
        self.layer.groups[self.index].isf
    }

    /// Whether any micro-block in the group carries outlier metadata.
    pub fn has_outliers(&self) -> bool {
        self.layer.groups[self.index]
            .micro_blocks
            .iter()
            .any(|mb| mb.meta.is_some())
    }

    /// Decodes every slot into `out` (at least [`GroupSpan::len`]
    /// elements), exactly like [`PackedLayer::decode_group_into`].
    ///
    /// # Panics
    ///
    /// Panics if `out` is too short.
    pub fn decode_into(&self, out: &mut [f64]) {
        self.layer.decode_group_into(self.index, out);
    }

    /// Decodes the group's **unscaled** inlier codes as `f32` into `out`
    /// (two's-complement integer values; exact in `f32`), writing `0.0`
    /// into outlier host slots and pruned slots, and reports each
    /// outlier's exact `f64` decoded value through `on_outlier(slot,
    /// value)` (slot is group-relative). Multiplying an inlier entry by
    /// `isf().value()` recovers the decoded weight, so a kernel can hoist
    /// the per-group scale out of its inner loop and fix outliers up in
    /// full precision afterwards. Writes every slot, allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`GroupSpan::len`].
    pub fn decode_codes_f32(&self, out: &mut [f32], mut on_outlier: impl FnMut(usize, f64)) {
        let group = &self.layer.groups[self.index];
        let bb = self.layer.inlier_bits;
        // Group length comes from the layer geometry (validated to match
        // the micro-block contents at construction) — no re-walk needed.
        assert!(out.len() >= self.span().len, "decode buffer too small");
        let shift = 8 - bb;
        let mut base = 0usize;
        for mb in &group.micro_blocks {
            for (o, &c) in out[base..].iter_mut().zip(mb.codes.iter()) {
                *o = ((c << shift) as i8 >> shift) as f32;
            }
            if let Some(meta) = &mb.meta {
                for e in meta.perm.entries() {
                    let up = mb.codes[e.upper_loc as usize];
                    let lo = mb.codes[e.lower_loc as usize];
                    out[base + e.upper_loc as usize] = 0.0;
                    out[base + e.lower_loc as usize] = 0.0;
                    on_outlier(
                        base + e.upper_loc as usize,
                        self.layer.outlier_value(meta, group.isf, up, lo),
                    );
                }
            }
            base += mb.codes.len();
        }
    }

    /// Number of micro-blocks in the group.
    #[inline]
    pub fn micro_block_count(&self) -> usize {
        self.layer.groups[self.index].micro_blocks.len()
    }

    /// Iterates `(codes, has_outliers)` over the group's micro-blocks in
    /// slot order — one walk of the micro-block array, for kernels whose
    /// inner loop would otherwise pay the `groups[g].micro_blocks[i]`
    /// index chain once per accessor call.
    #[inline]
    pub fn micro_blocks_raw(&self) -> impl Iterator<Item = (&[u8], bool)> + '_ {
        self.layer.groups[self.index]
            .micro_blocks
            .iter()
            .map(|mb| (mb.codes.as_slice(), mb.meta.is_some()))
    }

    /// The raw code bytes of micro-block `i` (one byte per slot).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn micro_block_codes(&self, i: usize) -> &[u8] {
        &self.layer.groups[self.index].micro_blocks[i].codes
    }

    /// Whether micro-block `i` carries outlier metadata. When `false`,
    /// every code in [`Self::micro_block_codes`] is a plain two's-complement
    /// inlier — a kernel may decode the bytes directly without consulting
    /// the permutation list.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn micro_block_has_outliers(&self, i: usize) -> bool {
        self.layer.groups[self.index].micro_blocks[i].meta.is_some()
    }

    /// Decodes micro-block `i`'s **unscaled** inlier codes as `f32` into
    /// `out`, zeroing outlier host and pruned slots and reporting each
    /// outlier's exact `f64` value through `on_outlier(slot, value)` —
    /// slots are **micro-block-relative**. Walking every micro-block with
    /// this composes to exactly [`Self::decode_codes_f32`] over the group.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `out` is shorter than the
    /// micro-block.
    pub fn decode_micro_block_codes_f32(
        &self,
        i: usize,
        out: &mut [f32],
        mut on_outlier: impl FnMut(usize, f64),
    ) {
        let group = &self.layer.groups[self.index];
        let mb = &group.micro_blocks[i];
        let bb = self.layer.inlier_bits;
        assert!(out.len() >= mb.codes.len(), "decode buffer too small");
        let shift = 8 - bb;
        for (o, &c) in out.iter_mut().zip(mb.codes.iter()) {
            *o = ((c << shift) as i8 >> shift) as f32;
        }
        if let Some(meta) = &mb.meta {
            for e in meta.perm.entries() {
                let up = mb.codes[e.upper_loc as usize];
                let lo = mb.codes[e.lower_loc as usize];
                out[e.upper_loc as usize] = 0.0;
                out[e.lower_loc as usize] = 0.0;
                on_outlier(
                    e.upper_loc as usize,
                    self.layer.outlier_value(meta, group.isf, up, lo),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microblock::PermEntry;

    fn sample_layer() -> PackedLayer {
        // 2 rows × 16 cols, macro=16, micro=8, bb=2.
        let mk_plain = || PackedMicroBlock {
            codes: vec![0b01, 0b11, 0b00, 0b01, 0b11, 0b00, 0b01, 0b00],
            meta: None,
        };
        let mk_outlier = || PackedMicroBlock {
            // Slot 2 = Upper {s=0, m1=1} → 0b01; slot 5 = Lower {s=0, m0=0} → 0b00.
            codes: vec![0b01, 0b11, 0b01, 0b01, 0b11, 0b00, 0b01, 0b00],
            meta: Some(MicroBlockMeta {
                mxscale: MxScale::new(2, 0, TinyFloat::E1M2),
                perm: PermutationList::new(
                    vec![PermEntry {
                        upper_loc: 2,
                        lower_loc: 5,
                    }],
                    8,
                ),
            }),
        };
        let group = |outlier: bool| PackedMacroBlock {
            isf: Pow2Scale::new(-3),
            micro_blocks: vec![if outlier { mk_outlier() } else { mk_plain() }, mk_plain()],
        };
        PackedLayer::new(
            GroupAxis::DotProduct,
            2,
            16,
            2,
            8,
            16,
            vec![group(true), group(false)],
        )
    }

    #[test]
    fn ebw_matches_eq4_by_hand() {
        let layer = sample_layer();
        // 4 μBs, 1 with outliers: EBW = (3·2 + 1·6)/4 = 3.0
        // (EBW_O = (24 + 16 + 8)/8 = 6 at bb=2, Bμ=8 — the paper's number).
        assert!((layer.effective_bit_width() - 3.0).abs() < 1e-12);
        assert!((layer.outlier_micro_block_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exact_ebw_adds_small_overhead() {
        let layer = sample_layer();
        let eq4 = layer.effective_bit_width();
        let exact = layer.effective_bit_width_exact();
        assert!(exact > eq4);
        // Paper: identifier + Isf ≈ 0.05–0.7 extra bits depending on Bμ/BM.
        assert!(exact - eq4 < 1.0, "overhead {}", exact - eq4);
    }

    #[test]
    fn inlier_decode_is_twos_complement_times_scale() {
        let layer = sample_layer();
        let w = layer.dequantize();
        // Group 1 (row 0, cols 8..16) first μB: codes 01,11,00,… at 2^-3:
        // +1→0.125, −1→−0.125, 0→0.
        assert_eq!(w[(0, 8)], 0.125);
        assert_eq!(w[(0, 9)], -0.125);
        assert_eq!(w[(0, 10)], 0.0);
    }

    #[test]
    fn outlier_decode_reconstructs_merged_value() {
        let layer = sample_layer();
        let w = layer.dequantize();
        // μB 0 of row 0: upper at slot 2 {s0,m1=1}, lower at slot 5 {s0,m0=0}
        // → mantissa 10₂, value 1.5 × 2^(total −Isf) = 1.5 × 2^(2−(−3)) = 48.
        assert_eq!(w[(0, 2)], 48.0);
        assert_eq!(w[(0, 5)], 0.0, "pruned slot decodes to zero");
    }

    #[test]
    fn per_micro_block_decode_composes_to_group_decode() {
        let layer = sample_layer();
        for view in layer.iter_groups() {
            let len = view.span().len;
            let mut whole = vec![f32::NAN; len];
            let mut whole_outliers = Vec::new();
            view.decode_codes_f32(&mut whole, |slot, v| whole_outliers.push((slot, v)));

            let mut stitched = vec![f32::NAN; len];
            let mut stitched_outliers = Vec::new();
            let mut base = 0usize;
            for i in 0..view.micro_block_count() {
                let codes = view.micro_block_codes(i);
                let mut buf = vec![f32::NAN; codes.len()];
                view.decode_micro_block_codes_f32(i, &mut buf, |slot, v| {
                    stitched_outliers.push((base + slot, v));
                });
                stitched[base..base + codes.len()].copy_from_slice(&buf);
                if !view.micro_block_has_outliers(i) {
                    // Meta-less blocks must decode byte-for-byte as plain
                    // two's-complement inliers.
                    let bb = 2u32;
                    for (&c, &v) in codes.iter().zip(buf.iter()) {
                        let shift = 8 - bb;
                        assert_eq!(((c << shift) as i8 >> shift) as f32, v);
                    }
                }
                base += codes.len();
            }
            assert_eq!(base, len);
            assert_eq!(whole, stitched);
            assert_eq!(whole_outliers, stitched_outliers);
        }
    }

    #[test]
    fn bytes_roundtrip_preserves_layer() {
        let layer = sample_layer();
        let bytes = layer.to_bytes();
        let back = PackedLayer::from_bytes(&bytes).unwrap();
        assert_eq!(back, layer);
        assert_eq!(back.dequantize(), layer.dequantize());
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let bytes = sample_layer().to_bytes();
        for cut in [0, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            let err = PackedLayer::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_layer().to_bytes().to_vec();
        bytes[0] = b'X';
        let err = PackedLayer::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn corrupt_perm_count_is_rejected() {
        let bytes = sample_layer().to_bytes().to_vec();
        // Find the flagged micro-block byte (flag = 1 | count<<4) and bump
        // its count beyond Bμ/2.
        let mut mutated = bytes.clone();
        for i in 23..bytes.len() {
            if bytes[i] == 0x11 {
                mutated[i] = 0x71; // count 7 > 4
                break;
            }
        }
        assert!(PackedLayer::from_bytes(&mutated).is_err());
    }

    #[test]
    fn serialized_size_tracks_ebw() {
        let layer = sample_layer();
        let bytes = layer.to_bytes();
        // 32 weights at ~3 bits ≈ 12 bytes payload + headers; the container
        // must stay within a small constant of the information content.
        assert!(bytes.len() < 80, "serialized {} bytes", bytes.len());
    }

    #[test]
    fn fingerprint_distinguishes_remainder_code_low_bits() {
        // Regression: micro-blocks shorter than 8 slots fold their codes
        // into a tail word; codes [2,5,0,1] and [3,5,0,1] (differing only
        // in the low bit of a non-final byte) must not collide.
        let mk = |c0: u8| {
            let group = PackedMacroBlock {
                isf: Pow2Scale::new(-3),
                micro_blocks: vec![PackedMicroBlock {
                    codes: vec![c0, 1, 0, 1],
                    meta: None,
                }],
            };
            PackedLayer::new(GroupAxis::DotProduct, 1, 4, 2, 4, 4, vec![group])
        };
        assert_ne!(mk(2).content_fingerprint(), mk(3).content_fingerprint());
        assert_eq!(mk(2).content_fingerprint(), mk(2).content_fingerprint());
    }

    #[test]
    fn fingerprint_survives_byte_roundtrip_and_ignores_memo() {
        let layer = sample_layer();
        let back = PackedLayer::from_bytes(&layer.to_bytes()).unwrap();
        // Equality ignores the memo cell; fingerprints agree on content.
        assert_eq!(back, layer);
        assert_eq!(back.content_fingerprint(), layer.content_fingerprint());
    }

    #[test]
    fn group_view_codes_plus_scale_reconstruct_decode() {
        // plane × isf + exact outlier fixups == decode_group_into, slot
        // for slot — the contract the lane-blocked kernels build on.
        let layer = sample_layer();
        let mut reference = vec![0.0_f64; layer.macro_block()];
        let mut plane = vec![0.0_f32; layer.macro_block()];
        for view in layer.iter_groups() {
            let span = view.span();
            view.decode_into(&mut reference);
            let mut outliers: Vec<(usize, f64)> = Vec::new();
            view.decode_codes_f32(&mut plane, |slot, v| outliers.push((slot, v)));
            let scale = view.isf().value();
            let mut rebuilt: Vec<f64> = plane[..span.len]
                .iter()
                .map(|&c| c as f64 * scale)
                .collect();
            for &(slot, v) in &outliers {
                rebuilt[slot] = v;
            }
            assert_eq!(rebuilt, &reference[..span.len], "group {}", view.index());
            assert_eq!(view.has_outliers(), !outliers.is_empty());
            assert_eq!(view.span(), layer.group_span(view.index()));
        }
    }

    #[test]
    fn outlier_fraction_is_memoized_and_correct() {
        let layer = sample_layer();
        // 4 micro-blocks, 1 with outliers.
        assert!((layer.outlier_micro_block_fraction() - 0.25).abs() < 1e-12);
        // Second call hits the memo (same value; exercises the OnceLock path).
        assert!((layer.outlier_micro_block_fraction() - 0.25).abs() < 1e-12);
        let back = PackedLayer::from_bytes(&layer.to_bytes()).unwrap();
        assert!((back.outlier_micro_block_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn output_channel_axis_roundtrip() {
        // 16 rows × 1 col, grouped along output channels.
        let group = PackedMacroBlock {
            isf: Pow2Scale::new(-2),
            micro_blocks: vec![
                PackedMicroBlock {
                    codes: vec![1, 0, 3, 1, 0, 0, 1, 3],
                    meta: None,
                },
                PackedMicroBlock {
                    codes: vec![0, 1, 0, 0, 1, 0, 0, 0],
                    meta: None,
                },
            ],
        };
        let layer = PackedLayer::new(GroupAxis::OutputChannel, 16, 1, 2, 8, 16, vec![group]);
        let w = layer.dequantize();
        assert_eq!(w.rows(), 16);
        assert_eq!(w.cols(), 1);
        assert_eq!(w[(0, 0)], 0.25); // code 1 × 2^-2
        assert_eq!(w[(2, 0)], -0.25); // code 3 = −1 in 2-bit two's complement
        let back = PackedLayer::from_bytes(&layer.to_bytes()).unwrap();
        assert_eq!(back, layer);
    }
}
