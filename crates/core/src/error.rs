//! Error types for the quantization framework.

use std::error::Error;
use std::fmt;

/// Errors produced by the quantization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A weight or calibration tensor contained NaN or infinity.
    NonFiniteInput {
        /// Which tensor was malformed.
        tensor: &'static str,
    },
    /// Weight and calibration shapes disagree.
    ShapeMismatch {
        /// Weight columns (input features).
        weight_cols: usize,
        /// Calibration rows (input features).
        calib_rows: usize,
    },
    /// The (damped) Hessian could not be factorized.
    HessianNotPositiveDefinite {
        /// Pivot at which Cholesky broke down.
        pivot: usize,
    },
    /// A configuration constraint was violated.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Packed-layer bytes failed validation during deserialization.
    CorruptMetadata {
        /// Byte offset (approximate) of the inconsistency.
        offset: usize,
        /// What failed to validate.
        reason: String,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::NonFiniteInput { tensor } => {
                write!(f, "non-finite values in {tensor} tensor")
            }
            QuantError::ShapeMismatch {
                weight_cols,
                calib_rows,
            } => write!(
                f,
                "weight columns ({weight_cols}) do not match calibration rows ({calib_rows})"
            ),
            QuantError::HessianNotPositiveDefinite { pivot } => write!(
                f,
                "damped hessian is not positive definite (pivot {pivot}); increase percdamp"
            ),
            QuantError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            QuantError::CorruptMetadata { offset, reason } => {
                write!(f, "corrupt packed metadata near byte {offset}: {reason}")
            }
        }
    }
}

impl Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = QuantError::ShapeMismatch {
            weight_cols: 128,
            calib_rows: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("128") && msg.contains("64"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantError>();
    }
}
