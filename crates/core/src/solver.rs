//! The GPTQ-style block solver executing MicroScopiQ quantization
//! (Algorithm 1 of the paper).
//!
//! Processing walks the Hessian (input) dimension in compensation blocks of
//! `row_block` columns. Within a block, scale factors and outlier plans are
//! snapshotted per macro-block, columns are quantized in order, and the
//! quantization error of each column is propagated into not-yet-quantized
//! columns through the upper Cholesky factor of `H⁻¹` (L31–33); remaining
//! columns outside the block are updated once per block (L36).
//!
//! Both grouping axes are supported (see DESIGN.md §2): `DotProduct`
//! snapshots each row's macro-block before its columns are processed;
//! `OutputChannel` quantizes one full column at a time with macro-blocks
//! spanning output channels.

use crate::config::{GroupAxis, OutlierMode, QuantConfig};
use crate::error::QuantError;
use crate::hessian::HessianState;
use crate::microblock::{MicroBlockPlan, SlotRole};
use crate::outlier::classify_outliers;
use crate::packed::{MicroBlockMeta, PackedLayer, PackedMacroBlock, PackedMicroBlock};
use crate::traits::{LayerTensors, QuantStats};
use microscopiq_linalg::Matrix;
use microscopiq_mx::fp::TinyFloat;
use microscopiq_mx::halves::{split_into_halves, OutlierHalves};
use microscopiq_mx::mxfp::{MxFpBlock, MxScale};
use microscopiq_mx::mxint::{int_format_max, MxIntBlock};
use microscopiq_mx::scale::Pow2Scale;

/// Result of running the solver over one layer.
#[derive(Debug, Clone)]
pub struct SolverOutput {
    /// Dequantized weights.
    pub dequantized: Matrix,
    /// Packed hardware layout (only for the packable default mode).
    pub packed: Option<PackedLayer>,
    /// Measured statistics.
    pub stats: QuantStats,
}

/// Per-micro-block quantization state produced during planning.
#[derive(Debug, Clone)]
struct MicroBlockQuant {
    plan: MicroBlockPlan,
    /// Dequantized value per kept outlier (aligned with
    /// `plan.outlier_positions`), in original weight units.
    outlier_deq: Vec<f64>,
    /// Sign/mantissa halves per kept outlier.
    halves: Vec<OutlierHalves>,
    /// Storage-form MXScale (total exponent − Isf = applied exponent).
    mxscale: Option<MxScale>,
}

/// Planning result for one macro-block segment of one line.
#[derive(Debug, Clone)]
struct SegmentQuant {
    isf: Pow2Scale,
    micro: Vec<MicroBlockQuant>,
}

impl SegmentQuant {
    fn slot_role(&self, offset: usize, micro_block: usize) -> (usize, SlotRole) {
        let mb = offset / micro_block;
        let pos = offset % micro_block;
        (mb, self.micro[mb].plan.roles[pos])
    }
}

/// Plans one macro-block segment: outlier classification, inlier scale,
/// per-micro-block pruning plans and outlier quantization.
fn plan_segment(snapshot: &[f64], saliency: &[f64], cfg: &QuantConfig) -> SegmentQuant {
    let bb = cfg.inlier_bits;
    let flagged = match cfg.outlier_mode {
        OutlierMode::Ignore => vec![false; snapshot.len()],
        _ => classify_outliers(snapshot, cfg.sigma_threshold),
    };
    // Isf from the inlier maximum only (§4.2), with optional clipping.
    let inlier_max = snapshot
        .iter()
        .zip(flagged.iter())
        .filter(|(_, &f)| !f)
        .fold(0.0_f64, |m, (v, _)| m.max(v.abs()))
        * cfg.clip_ratio;
    let isf = if inlier_max > 0.0 {
        Pow2Scale::from_max(inlier_max, int_format_max(bb) as f64)
    } else {
        // Degenerate segment (all-outlier or all-zero): neutral scale.
        Pow2Scale::one()
    };

    let fmt = TinyFloat::for_outlier_bits(cfg.outlier_bits);
    let prescale = |v: f64| {
        if cfg.prescale_outliers {
            v * isf.value()
        } else {
            v
        }
    };
    let unprescale_exp = if cfg.prescale_outliers {
        -isf.exponent()
    } else {
        0
    };

    let mut micro = Vec::with_capacity(snapshot.len().div_ceil(cfg.micro_block));
    // For MxFpMacroBlock mode, outliers across the whole segment share one
    // scale; collect first, quantize once, then scatter.
    let mut mab_outliers: Vec<(usize, usize, f64)> = Vec::new(); // (μB, k, value)

    for (mb_idx, start) in (0..snapshot.len()).step_by(cfg.micro_block).enumerate() {
        let end = (start + cfg.micro_block).min(snapshot.len());
        let slots = &snapshot[start..end];
        let plan = MicroBlockPlan::build(
            &flagged[start..end],
            slots,
            &saliency[start..end],
            cfg.prune_redistribute && cfg.outlier_mode != OutlierMode::Ignore,
        );
        let n = plan.n_outliers();
        let mut mbq = MicroBlockQuant {
            plan,
            outlier_deq: Vec::new(),
            halves: Vec::new(),
            mxscale: None,
        };
        if n > 0 {
            let values: Vec<f64> = mbq
                .plan
                .outlier_positions
                .iter()
                .map(|&p| prescale(slots[p]))
                .collect();
            match cfg.outlier_mode {
                OutlierMode::Ignore => {}
                OutlierMode::MxFpMicroBlock => {
                    let block = MxFpBlock::quantize(&values, fmt);
                    for i in 0..n {
                        let v = block.dequantize_element(i) * (unprescale_exp as f64).exp2();
                        mbq.outlier_deq.push(v);
                        mbq.halves.push(split_into_halves(
                            block.signs()[i],
                            block.mantissas()[i],
                            fmt.mantissa_bits(),
                        ));
                    }
                    // Storage MXScale: decode applies total − Isf, so when
                    // prescaling is off the Isf must be pre-added here.
                    let adjust = if cfg.prescale_outliers {
                        0
                    } else {
                        isf.exponent()
                    };
                    mbq.mxscale = Some(MxScale::new(
                        block.scale().level1() + adjust,
                        block.scale().micro(),
                        fmt,
                    ));
                }
                OutlierMode::MxFpMacroBlock => {
                    for (k, &v) in values.iter().enumerate() {
                        mab_outliers.push((mb_idx, k, v));
                        mbq.outlier_deq.push(0.0); // filled after segment pass
                    }
                }
                OutlierMode::MxIntMicroBlock => {
                    let block = MxIntBlock::quantize(&values, cfg.outlier_bits);
                    for (i, d) in block.dequantize().into_iter().enumerate() {
                        let _ = i;
                        mbq.outlier_deq.push(d * (unprescale_exp as f64).exp2());
                    }
                }
            }
        }
        micro.push(mbq);
    }

    if cfg.outlier_mode == OutlierMode::MxFpMacroBlock && !mab_outliers.is_empty() {
        let values: Vec<f64> = mab_outliers.iter().map(|&(_, _, v)| v).collect();
        let block = MxFpBlock::quantize(&values, fmt);
        for (i, &(mb_idx, k, _)) in mab_outliers.iter().enumerate() {
            micro[mb_idx].outlier_deq[k] =
                block.dequantize_element(i) * (unprescale_exp as f64).exp2();
        }
    }

    SegmentQuant { isf, micro }
}

/// Accumulated solver statistics.
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    outliers: usize,
    pruned: usize,
    demoted: usize,
    micro_blocks: usize,
    micro_blocks_with_outliers: usize,
    elements: usize,
}

impl Counters {
    fn absorb_segment(&mut self, seg: &SegmentQuant) {
        for mbq in &seg.micro {
            self.micro_blocks += 1;
            self.elements += mbq.plan.roles.len();
            let n = mbq.plan.n_outliers();
            self.outliers += n;
            self.pruned += mbq.plan.pruned_positions.len();
            self.demoted += mbq.plan.demoted;
            if n > 0 {
                self.micro_blocks_with_outliers += 1;
            }
        }
    }

    fn into_stats(self, ebw: f64) -> QuantStats {
        let total = self.elements.max(1) as f64;
        QuantStats {
            effective_bit_width: ebw,
            outlier_fraction: self.outliers as f64 / total,
            pruned_fraction: self.pruned as f64 / total,
            outlier_micro_block_fraction: self.micro_blocks_with_outliers as f64
                / self.micro_blocks.max(1) as f64,
            demoted_outlier_fraction: self.demoted as f64
                / (self.outliers + self.demoted).max(1) as f64,
        }
    }
}

/// Whether this configuration produces the hardware packed layout.
fn packable(cfg: &QuantConfig) -> bool {
    cfg.outlier_mode == OutlierMode::MxFpMicroBlock && cfg.prune_redistribute
}

/// Analytic EBW for non-packable (side-band outlier) configurations:
/// aligned budget plus unaligned outlier storage (value + 16-bit index),
/// the group-A overhead the paper contrasts against.
fn sideband_ebw(cfg: &QuantConfig, counters: &Counters) -> f64 {
    let bb = cfg.inlier_bits as f64;
    if cfg.outlier_mode == OutlierMode::Ignore {
        return bb;
    }
    let frac = counters.outliers as f64 / counters.elements.max(1) as f64;
    bb + frac * (cfg.outlier_bits as f64 + 16.0)
}

/// Quantizes one micro-block slot given its role, returning
/// `(dequantized value, raw slot bits)`.
fn quantize_slot(
    role: SlotRole,
    current: f64,
    seg: &SegmentQuant,
    mb: usize,
    cfg: &QuantConfig,
) -> (f64, u8) {
    let bb = cfg.inlier_bits;
    match role {
        SlotRole::Inlier => {
            let code = MxIntBlock::quantize_scalar(current, bb, seg.isf);
            let dq = MxIntBlock::dequantize_scalar(code, seg.isf);
            (dq, (code as u8) & ((1 << bb) - 1))
        }
        SlotRole::OutlierUpper(k) => {
            let mbq = &seg.micro[mb];
            let bits = if k < mbq.halves.len() {
                mbq.halves[k].upper_bits(bb)
            } else {
                0
            };
            (mbq.outlier_deq[k], bits)
        }
        SlotRole::PrunedLower(k) => {
            let mbq = &seg.micro[mb];
            let bits = if k < mbq.halves.len() {
                mbq.halves[k].lower_bits(bb)
            } else {
                0
            };
            (0.0, bits)
        }
    }
}

/// Runs the solver.
///
/// # Errors
///
/// Propagates [`QuantError`] from Hessian construction.
pub fn solve(layer: &LayerTensors, cfg: &QuantConfig) -> Result<SolverOutput, QuantError> {
    match cfg.group_axis {
        GroupAxis::DotProduct => solve_dot_product(layer, cfg),
        GroupAxis::OutputChannel => solve_output_channel(layer, cfg),
    }
}

fn make_hessian(layer: &LayerTensors, cfg: &QuantConfig) -> Result<HessianState, QuantError> {
    if cfg.error_compensation {
        HessianState::from_calibration(&layer.calibration, cfg.percdamp)
    } else {
        Ok(HessianState::identity(layer.d_col()))
    }
}

fn solve_dot_product(layer: &LayerTensors, cfg: &QuantConfig) -> Result<SolverOutput, QuantError> {
    let d_row = layer.d_row();
    let d_col = layer.d_col();
    let hessian = make_hessian(layer, cfg)?;
    let mut work = layer.weights.clone();
    let mut deq = Matrix::zeros(d_row, d_col);
    let mut counters = Counters::default();

    let mabs_per_line = d_col.div_ceil(cfg.macro_block);
    let mut packed_groups: Vec<Option<PackedMacroBlock>> = vec![None; d_row * mabs_per_line];

    let mut comp_start = 0;
    while comp_start < d_col {
        let comp_end = (comp_start + cfg.row_block).min(d_col);
        let comp_len = comp_end - comp_start;
        let mut err_block = Matrix::zeros(d_row, comp_len);

        let mut mab_start = comp_start;
        while mab_start < comp_end {
            let mab_end = (mab_start + cfg.macro_block).min(comp_end);
            let mab_len = mab_end - mab_start;
            let mab_index = mab_start / cfg.macro_block;

            // Phase A: snapshot planning per row.
            let segments: Vec<SegmentQuant> = (0..d_row)
                .map(|r| {
                    let snap = &work.row(r)[mab_start..mab_end];
                    let saliency: Vec<f64> = snap
                        .iter()
                        .enumerate()
                        .map(|(i, &w)| hessian.saliency(w, mab_start + i))
                        .collect();
                    plan_segment(snap, &saliency, cfg)
                })
                .collect();
            for seg in &segments {
                counters.absorb_segment(seg);
            }

            // Packed skeleton: codes filled during phase B.
            let mut codes: Vec<Vec<u8>> = (0..d_row).map(|_| vec![0u8; mab_len]).collect();

            // Phase B: column pass with in-block compensation.
            #[allow(clippy::needless_range_loop)] // jj also offsets into `codes` rows below
            for jj in 0..mab_len {
                let j = mab_start + jj;
                let urow = if cfg.error_compensation {
                    hessian.update_row(j, comp_end)
                } else {
                    Vec::new()
                };
                for r in 0..d_row {
                    let seg = &segments[r];
                    let (mb, role) = seg.slot_role(jj, cfg.micro_block);
                    let (dq, bits) = quantize_slot(role, work[(r, j)], seg, mb, cfg);
                    deq[(r, j)] = dq;
                    codes[r][jj] = bits;
                    let e = (work[(r, j)] - dq) / hessian.diag(j);
                    err_block[(r, j - comp_start)] = e;
                    if !urow.is_empty() {
                        let row = work.row_mut(r);
                        for (k, &u) in urow.iter().enumerate() {
                            row[j + 1 + k] -= e * u;
                        }
                    }
                }
            }

            // Assemble packed macro-blocks for this MaB.
            if packable(cfg) {
                for (r, seg) in segments.iter().enumerate() {
                    let mut micro_blocks = Vec::with_capacity(seg.micro.len());
                    let mut off = 0;
                    for mbq in &seg.micro {
                        let len = mbq.plan.roles.len();
                        let meta = mbq.mxscale.map(|mxscale| MicroBlockMeta {
                            mxscale,
                            perm: mbq.plan.perm.clone(),
                        });
                        micro_blocks.push(PackedMicroBlock {
                            codes: codes[r][off..off + len].to_vec(),
                            meta,
                        });
                        off += len;
                    }
                    packed_groups[r * mabs_per_line + mab_index] = Some(PackedMacroBlock {
                        isf: seg.isf,
                        micro_blocks,
                    });
                }
            }
            mab_start = mab_end;
        }

        // Phase C: propagate block errors into all later columns (L36).
        if cfg.error_compensation && comp_end < d_col {
            for r in 0..d_row {
                for k in comp_end..d_col {
                    let mut acc = 0.0;
                    for jj in 0..comp_len {
                        let e = err_block[(r, jj)];
                        if e != 0.0 {
                            acc += e * hessian.coupling(comp_start + jj, k);
                        }
                    }
                    work[(r, k)] -= acc;
                }
            }
        }
        comp_start = comp_end;
    }

    finish(
        layer,
        cfg,
        deq,
        packed_groups,
        counters,
        GroupAxis::DotProduct,
    )
}

fn solve_output_channel(
    layer: &LayerTensors,
    cfg: &QuantConfig,
) -> Result<SolverOutput, QuantError> {
    let d_row = layer.d_row();
    let d_col = layer.d_col();
    let hessian = make_hessian(layer, cfg)?;
    let mut work = layer.weights.clone();
    let mut deq = Matrix::zeros(d_row, d_col);
    let mut counters = Counters::default();

    let mabs_per_line = d_row.div_ceil(cfg.macro_block);
    let mut packed_groups: Vec<Option<PackedMacroBlock>> = vec![None; d_col * mabs_per_line];

    let mut comp_start = 0;
    while comp_start < d_col {
        let comp_end = (comp_start + cfg.row_block).min(d_col);
        let comp_len = comp_end - comp_start;
        let mut err_block = Matrix::zeros(d_row, comp_len);

        for j in comp_start..comp_end {
            let col: Vec<f64> = (0..d_row).map(|r| work[(r, j)]).collect();
            // Within a column the Hessian diagonal is constant, so the
            // saliency ordering reduces to |w|² (DESIGN.md §2).
            let saliency: Vec<f64> = col.iter().map(|&w| w * w).collect();

            let urow = if cfg.error_compensation {
                hessian.update_row(j, comp_end)
            } else {
                Vec::new()
            };

            for (mab_index, mab_start) in (0..d_row).step_by(cfg.macro_block).enumerate() {
                let mab_end = (mab_start + cfg.macro_block).min(d_row);
                let seg =
                    plan_segment(&col[mab_start..mab_end], &saliency[mab_start..mab_end], cfg);
                counters.absorb_segment(&seg);
                let mut codes = vec![0u8; mab_end - mab_start];
                for (i, r) in (mab_start..mab_end).enumerate() {
                    let (mb, role) = seg.slot_role(i, cfg.micro_block);
                    let (dq, bits) = quantize_slot(role, work[(r, j)], &seg, mb, cfg);
                    deq[(r, j)] = dq;
                    codes[i] = bits;
                    let e = (work[(r, j)] - dq) / hessian.diag(j);
                    err_block[(r, j - comp_start)] = e;
                    if !urow.is_empty() {
                        let row = work.row_mut(r);
                        for (k, &u) in urow.iter().enumerate() {
                            row[j + 1 + k] -= e * u;
                        }
                    }
                }
                if packable(cfg) {
                    let mut micro_blocks = Vec::with_capacity(seg.micro.len());
                    let mut off = 0;
                    for mbq in &seg.micro {
                        let len = mbq.plan.roles.len();
                        let meta = mbq.mxscale.map(|mxscale| MicroBlockMeta {
                            mxscale,
                            perm: mbq.plan.perm.clone(),
                        });
                        micro_blocks.push(PackedMicroBlock {
                            codes: codes[off..off + len].to_vec(),
                            meta,
                        });
                        off += len;
                    }
                    packed_groups[j * mabs_per_line + mab_index] = Some(PackedMacroBlock {
                        isf: seg.isf,
                        micro_blocks,
                    });
                }
            }
        }

        if cfg.error_compensation && comp_end < d_col {
            for r in 0..d_row {
                for k in comp_end..d_col {
                    let mut acc = 0.0;
                    for jj in 0..comp_len {
                        let e = err_block[(r, jj)];
                        if e != 0.0 {
                            acc += e * hessian.coupling(comp_start + jj, k);
                        }
                    }
                    work[(r, k)] -= acc;
                }
            }
        }
        comp_start = comp_end;
    }

    finish(
        layer,
        cfg,
        deq,
        packed_groups,
        counters,
        GroupAxis::OutputChannel,
    )
}

fn finish(
    layer: &LayerTensors,
    cfg: &QuantConfig,
    deq: Matrix,
    packed_groups: Vec<Option<PackedMacroBlock>>,
    counters: Counters,
    axis: GroupAxis,
) -> Result<SolverOutput, QuantError> {
    let packed = if packable(cfg) {
        let groups: Vec<PackedMacroBlock> = packed_groups
            .into_iter()
            .map(|g| g.expect("all groups filled"))
            .collect();
        Some(PackedLayer::new(
            axis,
            layer.d_row(),
            layer.d_col(),
            cfg.inlier_bits,
            cfg.micro_block,
            cfg.macro_block,
            groups,
        ))
    } else {
        None
    };
    let ebw = packed
        .as_ref()
        .map(|p| p.effective_bit_width())
        .unwrap_or_else(|| sideband_ebw(cfg, &counters));
    let stats = counters.into_stats(ebw);
    Ok(SolverOutput {
        dequantized: deq,
        packed,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_linalg::SeededRng;

    /// Synthetic layer with a Gaussian body and injected outliers.
    fn test_layer(d_row: usize, d_col: usize, outlier_rate: f64, seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(d_row, d_col, |_, _| rng.normal(0.0, 0.02));
        let n_out = ((d_row * d_col) as f64 * outlier_rate) as usize;
        for _ in 0..n_out {
            let r = rng.below(d_row);
            let c = rng.below(d_col);
            w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.4);
        }
        let x = Matrix::from_fn(d_col, d_col + 16, |_, _| rng.normal(0.0, 1.0));
        LayerTensors::new(w, x).unwrap()
    }

    fn w2_cfg() -> QuantConfig {
        QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap()
    }

    #[test]
    fn packed_dequantize_matches_solver_output() {
        // The core invariant: the solver's dequantized view and the packed
        // layout decode to the same tensor, on both axes.
        for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
            let layer = test_layer(16, 32, 0.02, 7);
            let cfg = QuantConfig::w2()
                .macro_block(16)
                .row_block(16)
                .group_axis(axis)
                .build()
                .unwrap();
            let out = solve(&layer, &cfg).unwrap();
            let packed = out.packed.expect("default mode is packable");
            let decoded = packed.dequantize();
            assert!(
                out.dequantized.frobenius_distance(&decoded) < 1e-9,
                "axis {axis:?}: packed decode diverges"
            );
        }
    }

    #[test]
    fn outliers_survive_with_small_relative_error() {
        let layer = test_layer(8, 32, 0.03, 21);
        let out = solve(&layer, &w2_cfg()).unwrap();
        // Every weight ≥ 0.15 in magnitude must survive at high precision:
        // clipping to the 2-bit inlier range would leave ~0.06. A single
        // outlier sharing its μX with a larger block-mate can be pulled up
        // to the block's exponent floor (≤ 2× in the worst case), so the
        // per-element bound is a factor window plus sign preservation; the
        // *mean* relative error across outliers stays tight.
        let mut checked = 0;
        let mut total_rel = 0.0;
        for r in 0..8 {
            for c in 0..32 {
                let w = layer.weights[(r, c)];
                if w.abs() >= 0.15 {
                    let d = out.dequantized[(r, c)];
                    // The slot may legitimately be zero if this outlier's
                    // inlier neighbours were all outliers too; with 3%
                    // injection that does not happen.
                    assert!(d * w > 0.0, "outlier at ({r},{c}) flipped: {w} → {d}");
                    let factor = d.abs() / w.abs();
                    assert!(
                        (0.4..=2.5).contains(&factor),
                        "outlier at ({r},{c}): {w} → {d}"
                    );
                    total_rel += (d - w).abs() / w.abs();
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "test layer must contain outliers");
        let mean_rel = total_rel / checked as f64;
        assert!(mean_rel < 0.3, "mean outlier error too large: {mean_rel}");
    }

    #[test]
    fn error_compensation_reduces_output_error() {
        let layer = test_layer(8, 64, 0.02, 13);
        let with = QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap();
        let without = QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .error_compensation(false)
            .build()
            .unwrap();
        let out_with = solve(&layer, &with).unwrap();
        let out_without = solve(&layer, &without).unwrap();
        let err = |o: &SolverOutput| {
            let reference = layer.weights.matmul(&layer.calibration);
            let got = o.dequantized.matmul(&layer.calibration);
            reference.frobenius_distance(&got) / reference.frobenius_norm()
        };
        assert!(
            err(&out_with) < err(&out_without),
            "compensation should reduce output error: {} vs {}",
            err(&out_with),
            err(&out_without)
        );
    }

    #[test]
    fn outlier_handling_beats_ignoring_outliers() {
        let layer = test_layer(8, 64, 0.03, 17);
        let full = w2_cfg();
        let ignore = QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .outlier_mode(OutlierMode::Ignore)
            .build()
            .unwrap();
        let e_full = solve(&layer, &full)
            .unwrap()
            .dequantized
            .frobenius_distance(&layer.weights);
        let e_ignore = solve(&layer, &ignore)
            .unwrap()
            .dequantized
            .frobenius_distance(&layer.weights);
        assert!(
            e_full < e_ignore * 0.8,
            "full {e_full} vs ignore {e_ignore}"
        );
    }

    #[test]
    fn pruned_count_equals_outlier_count() {
        let layer = test_layer(8, 64, 0.02, 19);
        let out = solve(&layer, &w2_cfg()).unwrap();
        assert!(out.stats.outlier_fraction > 0.0);
        assert!(
            (out.stats.pruned_fraction - out.stats.outlier_fraction).abs() < 1e-12,
            "N:M invariant: one pruned slot per kept outlier"
        );
    }

    #[test]
    fn ebw_in_paper_range_for_w2() {
        let layer = test_layer(16, 128, 0.01, 23);
        let cfg = QuantConfig::w2().build().unwrap();
        let out = solve(&layer, &cfg).unwrap();
        let ebw = out.stats.effective_bit_width;
        // bb=2, Bμ=8: EBW ∈ [2, 6]; with ~1% outliers the paper reports 2.36.
        assert!((2.0..3.5).contains(&ebw), "ebw = {ebw}");
    }

    #[test]
    fn zero_weight_layer_is_handled() {
        let w = Matrix::zeros(4, 16);
        let mut rng = SeededRng::new(29);
        let x = Matrix::from_fn(16, 24, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let out = solve(&layer, &w2_cfg()).unwrap();
        assert_eq!(out.dequantized.frobenius_norm(), 0.0);
        assert_eq!(out.stats.outlier_fraction, 0.0);
    }

    #[test]
    fn all_outlier_micro_block_demotes_excess() {
        // A block where most values are huge: at most Bμ/2 survive as
        // outliers; demotions are counted.
        let mut w = Matrix::zeros(1, 16);
        for c in 0..16 {
            w[(0, c)] = if c < 12 { 0.5 + c as f64 * 0.01 } else { 0.001 };
        }
        let mut rng = SeededRng::new(31);
        let x = Matrix::from_fn(16, 24, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let out = solve(&layer, &w2_cfg()).unwrap();
        // Must not panic and must record some quantization result.
        assert!(out.dequantized.frobenius_norm() > 0.0);
    }

    #[test]
    fn non_aligned_dimensions_are_supported() {
        // d_col = 40 is not a multiple of macro(16) or micro(8) blocks.
        let layer = test_layer(5, 40, 0.02, 37);
        let out = solve(&layer, &w2_cfg()).unwrap();
        let packed = out.packed.unwrap();
        assert_eq!(packed.dequantize().cols(), 40);
        assert!(out.dequantized.frobenius_distance(&packed.dequantize()) < 1e-9);
    }

    #[test]
    fn w4_mode_produces_lower_error_than_w2() {
        let layer = test_layer(8, 64, 0.02, 41);
        let w2 = w2_cfg();
        let w4 = QuantConfig::w4()
            .macro_block(16)
            .row_block(16)
            .build()
            .unwrap();
        let e2 = solve(&layer, &w2)
            .unwrap()
            .dequantized
            .frobenius_distance(&layer.weights);
        let e4 = solve(&layer, &w4)
            .unwrap()
            .dequantized
            .frobenius_distance(&layer.weights);
        assert!(e4 < e2, "W4 error {e4} must beat W2 error {e2}");
    }

    #[test]
    fn sideband_mode_reports_higher_ebw() {
        let layer = test_layer(8, 64, 0.03, 43);
        let sideband = QuantConfig::w2()
            .macro_block(16)
            .row_block(16)
            .prune_redistribute(false)
            .build()
            .unwrap();
        let out = solve(&layer, &sideband).unwrap();
        assert!(out.packed.is_none());
        assert!(out.stats.effective_bit_width > 2.0);
        assert_eq!(out.stats.pruned_fraction, 0.0);
    }
}
