//! GPTQ Hessian machinery (§4.1): `H = 2XXᵀ + λI`, its inverse, and the
//! upper Cholesky factor of the inverse that drives both error
//! compensation and the pruning saliency `w²/[H⁻¹]ₚₚ`.

use crate::error::QuantError;
use microscopiq_linalg::{upper_cholesky_of_inverse, Matrix};

/// The prepared Hessian state for one layer.
#[derive(Debug, Clone)]
pub struct HessianState {
    /// Upper Cholesky factor `U` of `H⁻¹` (so `H⁻¹ = Uᵀ·U`).
    chol_inv_upper: Matrix,
}

impl HessianState {
    /// Builds the damped Hessian `2XXᵀ + λI` from calibration activations
    /// (`d_col × n_samples`) with `λ = percdamp · mean(diag(2XXᵀ))` and
    /// factorizes its inverse.
    ///
    /// Dead input dimensions (zero diagonal) are handled by the damping
    /// term, matching GPTQ's practice.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::HessianNotPositiveDefinite`] if the damped
    /// Hessian still cannot be factorized.
    pub fn from_calibration(calibration: &Matrix, percdamp: f64) -> Result<Self, QuantError> {
        let mut h = calibration.gram();
        h.scale(2.0);
        let mean_diag: f64 = h.diagonal().iter().sum::<f64>() / h.rows() as f64;
        // Guard fully-degenerate calibration with an absolute floor.
        let damp = (percdamp * mean_diag).max(1e-8);
        h.add_diagonal(damp);
        let chol_inv_upper = upper_cholesky_of_inverse(&h)
            .map_err(|e| QuantError::HessianNotPositiveDefinite { pivot: e.pivot })?;
        Ok(Self { chol_inv_upper })
    }

    /// Builds the state for a quantizer that performs no compensation:
    /// the identity factor, under which saliency reduces to `w²` and
    /// compensation updates vanish.
    pub fn identity(dim: usize) -> Self {
        Self {
            chol_inv_upper: Matrix::identity(dim),
        }
    }

    /// The Hessian dimension (`d_col`).
    pub fn dim(&self) -> usize {
        self.chol_inv_upper.rows()
    }

    /// The diagonal entry `U[j,j]`, GPTQ's per-column error normalizer.
    pub fn diag(&self, j: usize) -> f64 {
        self.chol_inv_upper[(j, j)]
    }

    /// Pruning saliency of weight `w` at Hessian index `p`
    /// (Algorithm 1 L17): `w² / [H⁻¹]ₚₚ` with `[H⁻¹]ₚₚ` taken as
    /// `U[p,p]²` — the conditional variance once earlier columns are fixed,
    /// as in SparseGPT.
    pub fn saliency(&self, weight: f64, p: usize) -> f64 {
        let d = self.diag(p);
        weight * weight / (d * d)
    }

    /// The compensation row `U[j, j+1..end]` used to update not-yet-
    /// quantized columns after column `j` is quantized.
    pub fn update_row(&self, j: usize, end: usize) -> Vec<f64> {
        (j + 1..end).map(|k| self.chol_inv_upper[(j, k)]).collect()
    }

    /// Cross-block coupling `U[j, k]` for the post-block update
    /// (Algorithm 1 L36).
    pub fn coupling(&self, j: usize, k: usize) -> f64 {
        self.chol_inv_upper[(j, k)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_linalg::SeededRng;

    fn random_calibration(d: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        Matrix::from_fn(d, n, |_, _| rng.normal(0.0, 1.0))
    }

    #[test]
    fn builds_from_well_conditioned_calibration() {
        let x = random_calibration(16, 64, 1);
        let h = HessianState::from_calibration(&x, 0.01).unwrap();
        assert_eq!(h.dim(), 16);
        for j in 0..16 {
            assert!(h.diag(j) > 0.0);
        }
    }

    #[test]
    fn survives_rank_deficient_calibration_via_damping() {
        // Fewer samples than dimensions → XXᵀ is singular; damping rescues.
        let x = random_calibration(32, 4, 2);
        let h = HessianState::from_calibration(&x, 0.01);
        assert!(h.is_ok());
    }

    #[test]
    fn survives_dead_input_channel() {
        let mut x = random_calibration(8, 32, 3);
        for s in 0..32 {
            x[(5, s)] = 0.0;
        }
        assert!(HessianState::from_calibration(&x, 0.01).is_ok());
    }

    #[test]
    fn saliency_grows_with_weight_magnitude() {
        let x = random_calibration(8, 64, 4);
        let h = HessianState::from_calibration(&x, 0.01).unwrap();
        assert!(h.saliency(0.5, 3) > h.saliency(0.1, 3));
    }

    #[test]
    fn saliency_reflects_input_energy() {
        // A channel with much larger activation energy has a smaller
        // conditional variance [H⁻¹]ₚₚ, hence larger saliency for equal w.
        let mut x = random_calibration(8, 128, 5);
        for s in 0..128 {
            x[(2, s)] *= 10.0;
        }
        let h = HessianState::from_calibration(&x, 0.01).unwrap();
        assert!(
            h.saliency(0.3, 2) > h.saliency(0.3, 6),
            "hot channel saliency {} vs cold {}",
            h.saliency(0.3, 2),
            h.saliency(0.3, 6)
        );
    }

    #[test]
    fn identity_state_has_unit_diag_and_no_coupling() {
        let h = HessianState::identity(12);
        assert_eq!(h.dim(), 12);
        for j in 0..12 {
            assert_eq!(h.diag(j), 1.0);
        }
        assert!(h.update_row(3, 12).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn update_row_length_matches_span() {
        let x = random_calibration(10, 40, 6);
        let h = HessianState::from_calibration(&x, 0.01).unwrap();
        assert_eq!(h.update_row(3, 10).len(), 6);
        assert_eq!(h.update_row(9, 10).len(), 0);
    }
}
