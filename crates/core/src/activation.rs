//! Activation quantization (§7.2): MX-INT-8/4 group quantization plus
//! SmoothQuant-style migration of activation outlier difficulty into the
//! weights with strength α.
//!
//! The paper migrates activation outliers to weights (α up to 0.7, higher
//! than SmoothQuant's 0.5, because MicroScopiQ's weight path absorbs the
//! extra outliers), then quantizes activations with plain MX-INT-8_128.

use crate::error::QuantError;
use crate::traits::LayerTensors;
use microscopiq_linalg::Matrix;
use microscopiq_mx::mxint::MxIntBlock;

/// Quantizes activations to MX-INT-`bits` with groups of `group` elements
/// along the feature dimension (rows of the `d_col × n_samples` layout).
///
/// Returns the dequantized activations.
///
/// # Panics
///
/// Panics if `group` is zero.
pub fn quantize_activations(x: &Matrix, bits: u32, group: usize) -> Matrix {
    assert!(group > 0, "group size must be positive");
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for s in 0..x.cols() {
        let col = x.col(s);
        for (g, chunk) in col.chunks(group).enumerate() {
            let block = MxIntBlock::quantize(chunk, bits);
            for (i, v) in block.dequantize().into_iter().enumerate() {
                out[(g * group + i, s)] = v;
            }
        }
    }
    out
}

/// SmoothQuant-style migration: per input channel `c`, the factor
/// `s_c = max|X_c|^α / max|W_{:,c}|^(1−α)` scales activations down
/// (`X_c / s_c`) and weights up (`W_{:,c} · s_c`), shifting quantization
/// difficulty from activations into weights.
///
/// Returns the transformed layer; the transformation is mathematically
/// exact (errors only appear once either side is quantized).
///
/// # Errors
///
/// Returns [`QuantError::InvalidConfig`] if `alpha` is outside `[0, 1]`.
pub fn migrate_difficulty(layer: &LayerTensors, alpha: f64) -> Result<LayerTensors, QuantError> {
    if !(0.0..=1.0).contains(&alpha) || !alpha.is_finite() {
        return Err(QuantError::InvalidConfig {
            reason: format!("migration strength alpha must be in [0, 1], got {alpha}"),
        });
    }
    let d_col = layer.d_col();
    let mut weights = layer.weights.clone();
    let mut calibration = layer.calibration.clone();
    for c in 0..d_col {
        let x_max = (0..calibration.cols())
            .map(|s| calibration[(c, s)].abs())
            .fold(0.0_f64, f64::max);
        let w_max = (0..weights.rows())
            .map(|r| weights[(r, c)].abs())
            .fold(0.0_f64, f64::max);
        if x_max == 0.0 || w_max == 0.0 {
            continue;
        }
        let s = x_max.powf(alpha) / w_max.powf(1.0 - alpha);
        if !(s.is_finite()) || s <= 0.0 {
            continue;
        }
        for r in 0..weights.rows() {
            weights[(r, c)] *= s;
        }
        for smp in 0..calibration.cols() {
            calibration[(c, smp)] /= s;
        }
    }
    LayerTensors::new(weights, calibration)
}

/// End-to-end weight–activation evaluation: output error of
/// `Q(W')·Q(X')` against the original `W·X`, where the primed tensors are
/// the α-migrated pair and `Q` applies the given quantizers.
pub fn weight_activation_error(
    layer: &LayerTensors,
    dequantized_weights: &Matrix,
    migrated_calibration: &Matrix,
    act_bits: u32,
    act_group: usize,
) -> f64 {
    let reference = layer.weights.matmul(&layer.calibration);
    let qx = quantize_activations(migrated_calibration, act_bits, act_group);
    let got = dequantized_weights.matmul(&qx);
    let denom = reference.frobenius_norm();
    if denom == 0.0 {
        0.0
    } else {
        reference.frobenius_distance(&got) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_linalg::SeededRng;

    fn layer_with_hot_channel(seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
        let mut x = Matrix::from_fn(32, 24, |_, _| rng.normal(0.0, 1.0));
        for s in 0..24 {
            x[(7, s)] *= 30.0; // activation outlier channel
        }
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn activation_quantization_error_bounded() {
        let mut rng = SeededRng::new(5);
        let x = Matrix::from_fn(64, 16, |_, _| rng.normal(0.0, 1.0));
        let q = quantize_activations(&x, 8, 16);
        let rel = x.frobenius_distance(&q) / x.frobenius_norm();
        assert!(rel < 0.01, "8-bit activation error {rel}");
    }

    #[test]
    fn fewer_bits_more_activation_error() {
        let mut rng = SeededRng::new(6);
        let x = Matrix::from_fn(64, 16, |_, _| rng.normal(0.0, 1.0));
        let e8 = x.frobenius_distance(&quantize_activations(&x, 8, 16));
        let e4 = x.frobenius_distance(&quantize_activations(&x, 4, 16));
        assert!(e4 > e8);
    }

    #[test]
    fn migration_is_mathematically_exact() {
        let layer = layer_with_hot_channel(7);
        let migrated = migrate_difficulty(&layer, 0.7).unwrap();
        let reference = layer.weights.matmul(&layer.calibration);
        let transformed = migrated.weights.matmul(&migrated.calibration);
        assert!(reference.frobenius_distance(&transformed) / reference.frobenius_norm() < 1e-10);
    }

    #[test]
    fn migration_tames_activation_outliers() {
        let layer = layer_with_hot_channel(8);
        let migrated = migrate_difficulty(&layer, 0.7).unwrap();
        let hot_before = (0..24)
            .map(|s| layer.calibration[(7, s)].abs())
            .fold(0.0, f64::max);
        let hot_after = (0..24)
            .map(|s| migrated.calibration[(7, s)].abs())
            .fold(0.0, f64::max);
        assert!(hot_after < hot_before * 0.2, "{hot_before} → {hot_after}");
    }

    #[test]
    fn migration_reduces_quantized_activation_error() {
        let layer = layer_with_hot_channel(9);
        let err_plain = {
            let qx = quantize_activations(&layer.calibration, 4, 16);
            let reference = layer.weights.matmul(&layer.calibration);
            let got = layer.weights.matmul(&qx);
            reference.frobenius_distance(&got) / reference.frobenius_norm()
        };
        let migrated = migrate_difficulty(&layer, 0.7).unwrap();
        let err_migrated = {
            let qx = quantize_activations(&migrated.calibration, 4, 16);
            let reference = layer.weights.matmul(&layer.calibration);
            let got = migrated.weights.matmul(&qx);
            reference.frobenius_distance(&got) / reference.frobenius_norm()
        };
        assert!(
            err_migrated < err_plain,
            "migrated {err_migrated} vs plain {err_plain}"
        );
    }

    #[test]
    fn alpha_out_of_range_rejected() {
        let layer = layer_with_hot_channel(10);
        assert!(migrate_difficulty(&layer, 1.5).is_err());
        assert!(migrate_difficulty(&layer, -0.1).is_err());
    }

    #[test]
    fn alpha_zero_is_identity_on_activations_scaling_direction() {
        // α = 0: s_c = 1/max|W| — weights normalized to 1, activations
        // scaled up; still exact.
        let layer = layer_with_hot_channel(11);
        let migrated = migrate_difficulty(&layer, 0.0).unwrap();
        let reference = layer.weights.matmul(&layer.calibration);
        let transformed = migrated.weights.matmul(&migrated.calibration);
        assert!(reference.frobenius_distance(&transformed) / reference.frobenius_norm() < 1e-10);
    }
}
