//! Configuration of the MicroScopiQ quantization framework.
//!
//! Every ablation row of Table 7 corresponds to a toggle here, so the
//! `table7_ablation` bench can reconstruct the paper's progressive study.

use crate::error::QuantError;

/// Which tensor dimension macro-/micro-blocks span.
///
/// See DESIGN.md §2 ("Grouping-axis note"): the paper's algorithm text
/// groups along the dot-product (input) dimension while the accelerator
/// walkthrough maps micro-blocks across output channels. Both are
/// supported; accuracy experiments default to [`GroupAxis::DotProduct`],
/// accelerator experiments use [`GroupAxis::OutputChannel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GroupAxis {
    /// Blocks span contiguous input-dimension (column) indices within a row.
    #[default]
    DotProduct,
    /// Blocks span contiguous output channels (rows) within a column.
    OutputChannel,
}

/// How outliers are treated (§3.3 and Table 7 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OutlierMode {
    /// Outliers are clipped into the inlier format (rows 2–4 of Table 7).
    Ignore,
    /// MX-FP at 2× inlier precision, scales shared per micro-block
    /// (the full MicroScopiQ treatment).
    #[default]
    MxFpMicroBlock,
    /// MX-FP at 2× inlier precision, scales shared per macro-block
    /// (Table 7 row "MX-FP-4_{128,128}").
    MxFpMacroBlock,
    /// MX-INT at 2× inlier precision per micro-block (§3.3's INT-vs-FP
    /// outlier comparison).
    MxIntMicroBlock,
}

/// Full configuration for [`crate::MicroScopiQ`].
///
/// # Examples
///
/// ```
/// use microscopiq_core::config::QuantConfig;
///
/// let cfg = QuantConfig::w2().build().unwrap();
/// assert_eq!(cfg.inlier_bits, 2);
/// assert_eq!(cfg.outlier_bits, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantConfig {
    /// Inlier element width (2 or 4); this is the per-element bit budget bb.
    pub inlier_bits: u32,
    /// Outlier element width, fixed at 2× the inlier width (4 or 8).
    pub outlier_bits: u32,
    /// Macro-block size `B_M` (inlier scale-sharing group).
    pub macro_block: usize,
    /// Micro-block size `B_μ` (outlier scale-sharing group).
    pub micro_block: usize,
    /// GPTQ error-compensation block size (paper: 128, aligned with `B_M`).
    pub row_block: usize,
    /// Outlier threshold in standard deviations (3σ rule).
    pub sigma_threshold: f64,
    /// Which dimension blocks span.
    pub group_axis: GroupAxis,
    /// Hessian dampening fraction λ = percdamp · mean(diag H).
    pub percdamp: f64,
    /// Outlier treatment.
    pub outlier_mode: OutlierMode,
    /// Pre-reduce outlier magnitude by ×2^Isf before quantization (§4.2).
    pub prescale_outliers: bool,
    /// Prune least-important inliers and redistribute outlier LSB halves
    /// (§4.3). When false, outliers are stored side-band (unaligned, like
    /// group-A techniques) and nothing is pruned.
    pub prune_redistribute: bool,
    /// Apply GPTQ-style error compensation (Algorithm 1 L31–36).
    pub error_compensation: bool,
    /// Weight-clipping ratio applied to block maxima before scale
    /// derivation (1.0 = none; Omni-MicroScopiQ grid-searches this).
    pub clip_ratio: f64,
}

impl QuantConfig {
    /// Builder seeded with the paper's W2 configuration
    /// (MX-INT-2_128 inliers, MX-FP-4_{8,8} outliers).
    pub fn w2() -> QuantConfigBuilder {
        QuantConfigBuilder::new(2)
    }

    /// Builder seeded with the paper's W4 configuration
    /// (MX-INT-4_128 inliers, MX-FP-8_{8,8} outliers).
    pub fn w4() -> QuantConfigBuilder {
        QuantConfigBuilder::new(4)
    }

    /// Builder with an explicit inlier width.
    pub fn builder(inlier_bits: u32) -> QuantConfigBuilder {
        QuantConfigBuilder::new(inlier_bits)
    }

    /// Number of micro-blocks per macro-block.
    pub fn micro_blocks_per_macro(&self) -> usize {
        self.macro_block / self.micro_block
    }

    /// Maximum outliers representable per micro-block (`B_μ / 2`).
    pub fn max_outliers_per_micro_block(&self) -> usize {
        self.micro_block / 2
    }

    /// Bits per permutation-list entry: `2·log2(B_μ)`.
    pub fn perm_entry_bits(&self) -> u32 {
        2 * (self.micro_block as u32).ilog2()
    }

    /// Total permutation-list bits for an outlier-bearing micro-block:
    /// `B_μ/2` entries (paper: 24 bits at `B_μ = 8`).
    pub fn perm_list_bits(&self) -> u32 {
        self.max_outliers_per_micro_block() as u32 * self.perm_entry_bits()
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig::w2().build().expect("default config is valid")
    }
}

/// Incremental builder for [`QuantConfig`].
#[derive(Debug, Clone)]
pub struct QuantConfigBuilder {
    cfg: QuantConfig,
}

impl QuantConfigBuilder {
    fn new(inlier_bits: u32) -> Self {
        Self {
            cfg: QuantConfig {
                inlier_bits,
                outlier_bits: inlier_bits * 2,
                macro_block: 128,
                micro_block: 8,
                row_block: 128,
                sigma_threshold: 3.0,
                group_axis: GroupAxis::DotProduct,
                percdamp: 0.01,
                outlier_mode: OutlierMode::MxFpMicroBlock,
                prescale_outliers: true,
                prune_redistribute: true,
                error_compensation: true,
                clip_ratio: 1.0,
            },
        }
    }

    /// Sets the macro-block size.
    pub fn macro_block(mut self, size: usize) -> Self {
        self.cfg.macro_block = size;
        self
    }

    /// Sets the micro-block size (Fig. 14 sweeps this).
    pub fn micro_block(mut self, size: usize) -> Self {
        self.cfg.micro_block = size;
        self
    }

    /// Sets the GPTQ compensation block size.
    pub fn row_block(mut self, size: usize) -> Self {
        self.cfg.row_block = size;
        self
    }

    /// Sets the outlier σ threshold.
    pub fn sigma_threshold(mut self, sigma: f64) -> Self {
        self.cfg.sigma_threshold = sigma;
        self
    }

    /// Sets the grouping axis.
    pub fn group_axis(mut self, axis: GroupAxis) -> Self {
        self.cfg.group_axis = axis;
        self
    }

    /// Sets the Hessian dampening fraction.
    pub fn percdamp(mut self, percdamp: f64) -> Self {
        self.cfg.percdamp = percdamp;
        self
    }

    /// Sets the outlier treatment.
    pub fn outlier_mode(mut self, mode: OutlierMode) -> Self {
        self.cfg.outlier_mode = mode;
        self
    }

    /// Enables/disables the ×2^Isf outlier magnitude pre-reduction.
    pub fn prescale_outliers(mut self, on: bool) -> Self {
        self.cfg.prescale_outliers = on;
        self
    }

    /// Enables/disables pruning + bit redistribution.
    pub fn prune_redistribute(mut self, on: bool) -> Self {
        self.cfg.prune_redistribute = on;
        self
    }

    /// Enables/disables GPTQ error compensation.
    pub fn error_compensation(mut self, on: bool) -> Self {
        self.cfg.error_compensation = on;
        self
    }

    /// Sets the clipping ratio (Omni-MicroScopiQ LWC).
    pub fn clip_ratio(mut self, ratio: f64) -> Self {
        self.cfg.clip_ratio = ratio;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] if any structural constraint is
    /// violated (widths, divisibility, power-of-two micro-blocks, ranges).
    pub fn build(self) -> Result<QuantConfig, QuantError> {
        let c = &self.cfg;
        let fail = |reason: String| Err(QuantError::InvalidConfig { reason });
        if !(c.inlier_bits == 2 || c.inlier_bits == 4) {
            return fail(format!("inlier_bits must be 2 or 4, got {}", c.inlier_bits));
        }
        if c.outlier_bits != c.inlier_bits * 2 {
            return fail(format!(
                "outlier_bits must be 2× inlier_bits ({}), got {}",
                c.inlier_bits * 2,
                c.outlier_bits
            ));
        }
        if c.micro_block < 2 || !c.micro_block.is_power_of_two() {
            return fail(format!(
                "micro_block must be a power of two ≥ 2, got {}",
                c.micro_block
            ));
        }
        if !c.macro_block.is_multiple_of(c.micro_block) {
            return fail(format!(
                "macro_block ({}) must be a multiple of micro_block ({})",
                c.macro_block, c.micro_block
            ));
        }
        if c.row_block == 0 || !c.row_block.is_multiple_of(c.macro_block) {
            return fail(format!(
                "row_block ({}) must be a positive multiple of macro_block ({})",
                c.row_block, c.macro_block
            ));
        }
        if !(c.sigma_threshold.is_finite() && c.sigma_threshold > 0.0) {
            return fail(format!(
                "sigma_threshold must be positive, got {}",
                c.sigma_threshold
            ));
        }
        if !(c.percdamp.is_finite() && c.percdamp >= 0.0) {
            return fail(format!("percdamp must be non-negative, got {}", c.percdamp));
        }
        if !(c.clip_ratio.is_finite() && c.clip_ratio > 0.0 && c.clip_ratio <= 1.0) {
            return fail(format!(
                "clip_ratio must be in (0, 1], got {}",
                c.clip_ratio
            ));
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_w2() {
        let c = QuantConfig::w2().build().unwrap();
        assert_eq!(c.inlier_bits, 2);
        assert_eq!(c.outlier_bits, 4);
        assert_eq!(c.macro_block, 128);
        assert_eq!(c.micro_block, 8);
        assert_eq!(c.micro_blocks_per_macro(), 16);
        assert_eq!(c.max_outliers_per_micro_block(), 4);
        assert_eq!(c.perm_entry_bits(), 6);
        assert_eq!(c.perm_list_bits(), 24); // paper: 24-bit perm list at Bμ=8
    }

    #[test]
    fn w4_doubles_outlier_bits() {
        let c = QuantConfig::w4().build().unwrap();
        assert_eq!(c.inlier_bits, 4);
        assert_eq!(c.outlier_bits, 8);
    }

    #[test]
    fn invalid_inlier_bits_rejected() {
        assert!(QuantConfig::builder(3).build().is_err());
        assert!(QuantConfig::builder(8).build().is_err());
    }

    #[test]
    fn non_power_of_two_micro_block_rejected() {
        let err = QuantConfig::w2().micro_block(6).build().unwrap_err();
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn macro_must_divide_by_micro() {
        assert!(QuantConfig::w2()
            .macro_block(100)
            .micro_block(8)
            .build()
            .is_err());
    }

    #[test]
    fn row_block_must_align_with_macro_block() {
        assert!(QuantConfig::w2().row_block(96).build().is_err());
        assert!(QuantConfig::w2().row_block(256).build().is_ok());
    }

    #[test]
    fn clip_ratio_range_enforced() {
        assert!(QuantConfig::w2().clip_ratio(0.0).build().is_err());
        assert!(QuantConfig::w2().clip_ratio(1.5).build().is_err());
        assert!(QuantConfig::w2().clip_ratio(0.9).build().is_ok());
    }

    #[test]
    fn group_size_sweep_configs_are_valid() {
        // Fig. 14 sweeps Bμ ∈ {2, 4, 8, 16, 32, 64, 128}.
        for bmu in [2usize, 4, 8, 16, 32, 64, 128] {
            let c = QuantConfig::w2().micro_block(bmu).build();
            assert!(c.is_ok(), "Bμ={bmu} should be valid");
        }
    }

    #[test]
    fn default_matches_w2() {
        assert_eq!(QuantConfig::default(), QuantConfig::w2().build().unwrap());
    }
}
