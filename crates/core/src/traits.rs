//! The common quantizer interface shared by MicroScopiQ and all baselines.

use crate::error::QuantError;
use crate::packed::PackedLayer;
use microscopiq_linalg::Matrix;

/// Input to layer-wise post-training quantization: the layer's weights and
/// a calibration activation sample.
#[derive(Debug, Clone)]
pub struct LayerTensors {
    /// Weights, `d_row × d_col` (output channels × input features).
    pub weights: Matrix,
    /// Calibration activations `X`, `d_col × n_samples`.
    pub calibration: Matrix,
}

impl LayerTensors {
    /// Bundles a weight matrix with calibration activations.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ShapeMismatch`] if the inner dimensions
    /// disagree, or [`QuantError::NonFiniteInput`] if either tensor contains
    /// NaN/infinity.
    pub fn new(weights: Matrix, calibration: Matrix) -> Result<Self, QuantError> {
        if weights.cols() != calibration.rows() {
            return Err(QuantError::ShapeMismatch {
                weight_cols: weights.cols(),
                calib_rows: calibration.rows(),
            });
        }
        if weights.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(QuantError::NonFiniteInput { tensor: "weights" });
        }
        if calibration.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(QuantError::NonFiniteInput {
                tensor: "calibration",
            });
        }
        Ok(Self {
            weights,
            calibration,
        })
    }

    /// Output-channel count.
    pub fn d_row(&self) -> usize {
        self.weights.rows()
    }

    /// Input-feature count.
    pub fn d_col(&self) -> usize {
        self.weights.cols()
    }
}

/// Per-layer statistics captured during quantization.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantStats {
    /// Effective bit width including metadata (Eq. 4).
    pub effective_bit_width: f64,
    /// Fraction of weights classified as outliers.
    pub outlier_fraction: f64,
    /// Fraction of weights pruned to host outlier halves.
    pub pruned_fraction: f64,
    /// Fraction of micro-blocks containing at least one outlier.
    pub outlier_micro_block_fraction: f64,
    /// Fraction of outliers that were demoted to inliers because their
    /// micro-block exceeded `B_μ/2` outliers (0 for all evaluated models).
    pub demoted_outlier_fraction: f64,
}

/// The result of quantizing one layer.
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    /// Dequantized reconstruction of the weights (`d_row × d_col`).
    pub dequantized: Matrix,
    /// Hardware-facing packed representation, when the method produces one
    /// (MicroScopiQ always does; some baselines are software-metadata only).
    pub packed: Option<PackedLayer>,
    /// Measured statistics.
    pub stats: QuantStats,
}

impl QuantizedLayer {
    /// Relative layer output error `‖WX − QX‖F / ‖WX‖F` against the given
    /// original tensors — the accuracy proxy used throughout the
    /// experiments (DESIGN.md §2).
    pub fn output_error(&self, original: &LayerTensors) -> f64 {
        let ref_out = original.weights.matmul(&original.calibration);
        let q_out = self.dequantized.matmul(&original.calibration);
        let denom = ref_out.frobenius_norm();
        if denom == 0.0 {
            return 0.0;
        }
        ref_out.frobenius_distance(&q_out) / denom
    }

    /// Relative weight reconstruction error `‖W − Q‖F / ‖W‖F`.
    pub fn weight_error(&self, original: &LayerTensors) -> f64 {
        let denom = original.weights.frobenius_norm();
        if denom == 0.0 {
            return 0.0;
        }
        original.weights.frobenius_distance(&self.dequantized) / denom
    }
}

/// A layer-wise post-training weight quantizer (MicroScopiQ or a baseline).
pub trait WeightQuantizer {
    /// Short method name as it appears in the paper's tables
    /// (e.g. `"MicroScopiQ"`, `"GPTQ"`, `"OliVe"`).
    fn name(&self) -> &str;

    /// Quantizes one layer.
    ///
    /// # Errors
    ///
    /// Implementations return [`QuantError`] for malformed inputs or
    /// numerically unusable calibration data.
    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_tensors_validates_shapes() {
        let w = Matrix::zeros(4, 8);
        let x = Matrix::zeros(6, 3);
        let err = LayerTensors::new(w, x).unwrap_err();
        assert_eq!(
            err,
            QuantError::ShapeMismatch {
                weight_cols: 8,
                calib_rows: 6
            }
        );
    }

    #[test]
    fn layer_tensors_rejects_nan() {
        let mut w = Matrix::zeros(2, 2);
        w[(0, 0)] = f64::NAN;
        let x = Matrix::zeros(2, 2);
        assert_eq!(
            LayerTensors::new(w, x).unwrap_err(),
            QuantError::NonFiniteInput { tensor: "weights" }
        );
    }

    #[test]
    fn perfect_reconstruction_has_zero_error() {
        let w = Matrix::from_fn(3, 4, |r, c| (r + c) as f64 * 0.1);
        let x = Matrix::from_fn(4, 5, |r, c| (r as f64 - c as f64) * 0.2);
        let layer = LayerTensors::new(w.clone(), x).unwrap();
        let q = QuantizedLayer {
            dequantized: w,
            packed: None,
            stats: QuantStats::default(),
        };
        assert_eq!(q.output_error(&layer), 0.0);
        assert_eq!(q.weight_error(&layer), 0.0);
    }

    #[test]
    fn output_error_scales_with_perturbation() {
        let w = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f64).sin() * 0.05);
        let x = Matrix::from_fn(4, 6, |r, c| ((r + c) as f64).cos());
        let layer = LayerTensors::new(w.clone(), x).unwrap();
        let perturb = |eps: f64| {
            let mut d = w.clone();
            for v in d.as_mut_slice() {
                *v += eps;
            }
            QuantizedLayer {
                dequantized: d,
                packed: None,
                stats: QuantStats::default(),
            }
            .output_error(&layer)
        };
        assert!(perturb(0.02) > perturb(0.005));
    }
}
