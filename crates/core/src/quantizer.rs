//! The public MicroScopiQ quantizer.

use crate::config::QuantConfig;
use crate::error::QuantError;
use crate::solver;
use crate::traits::{LayerTensors, QuantizedLayer, WeightQuantizer};

/// The MicroScopiQ post-training quantizer (§4): MX-INT inliers, MX-FP
/// outliers at 2× precision, Hessian-guided pruning, and outlier-bit
/// redistribution into the pruned slots.
///
/// # Examples
///
/// ```
/// use microscopiq_core::{MicroScopiQ, QuantConfig};
/// use microscopiq_core::traits::{LayerTensors, WeightQuantizer};
/// use microscopiq_linalg::{Matrix, SeededRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = SeededRng::new(1);
/// let w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
/// let x = Matrix::from_fn(32, 48, |_, _| rng.normal(0.0, 1.0));
/// let layer = LayerTensors::new(w, x)?;
///
/// let quantizer = MicroScopiQ::new(QuantConfig::w2().macro_block(16).row_block(16).build()?);
/// let result = quantizer.quantize_layer(&layer)?;
/// assert!(result.stats.effective_bit_width >= 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MicroScopiQ {
    config: QuantConfig,
}

impl MicroScopiQ {
    /// Creates a quantizer with the given configuration.
    pub fn new(config: QuantConfig) -> Self {
        Self { config }
    }

    /// The paper's W2 configuration (MX-INT-2_128 / MX-FP-4_{8,8}).
    pub fn w2() -> Self {
        Self::new(QuantConfig::w2().build().expect("valid"))
    }

    /// The paper's W4 configuration (MX-INT-4_128 / MX-FP-8_{8,8}).
    pub fn w4() -> Self {
        Self::new(QuantConfig::w4().build().expect("valid"))
    }

    /// The active configuration.
    pub fn config(&self) -> &QuantConfig {
        &self.config
    }
}

impl WeightQuantizer for MicroScopiQ {
    fn name(&self) -> &str {
        "MicroScopiQ"
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let out = solver::solve(layer, &self.config)?;
        Ok(QuantizedLayer {
            dequantized: out.dequantized,
            packed: out.packed,
            stats: out.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_linalg::{Matrix, SeededRng};

    #[test]
    fn name_matches_paper() {
        assert_eq!(MicroScopiQ::w2().name(), "MicroScopiQ");
    }

    #[test]
    fn end_to_end_quantization_produces_packed_layer() {
        let mut rng = SeededRng::new(3);
        let mut w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
        w[(2, 5)] = 0.3; // guaranteed outlier
        let x = Matrix::from_fn(32, 40, |_, _| rng.normal(0.0, 1.0));
        let layer = LayerTensors::new(w, x).unwrap();
        let q = MicroScopiQ::new(
            QuantConfig::w2()
                .macro_block(16)
                .row_block(16)
                .build()
                .unwrap(),
        );
        let out = q.quantize_layer(&layer).unwrap();
        let packed = out.packed.expect("packed layout");
        assert!(packed.outlier_micro_block_fraction() > 0.0);
        assert!(out.stats.outlier_fraction > 0.0);
        // Outlier reconstructed at high precision.
        assert!((out.dequantized[(2, 5)] - 0.3).abs() < 0.08);
    }
}
