//! Outlier classification (3σ rule, §3.2) and the outlier/adjacent-outlier
//! statistics behind Fig. 2(a).

use microscopiq_linalg::{mean, std_dev, Matrix};

/// Classifies each element of a block: `true` marks an outlier, defined as
/// deviating from the block mean by more than `sigma_threshold` standard
/// deviations (the 3σ rule of the paper with `sigma_threshold = 3`).
///
/// Degenerate blocks (constant, or shorter than 2 elements) have no
/// outliers.
pub fn classify_outliers(values: &[f64], sigma_threshold: f64) -> Vec<bool> {
    let m = mean(values);
    let s = std_dev(values);
    if s == 0.0 {
        return vec![false; values.len()];
    }
    values
        .iter()
        .map(|&v| (v - m).abs() > sigma_threshold * s)
        .collect()
}

/// Layer-level outlier statistics (Fig. 2(a)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OutlierStats {
    /// Percentage of weights classified as outliers.
    pub outlier_pct: f64,
    /// Percentage of weights that are part of an adjacent-outlier pair —
    /// two contiguous outliers along the dot-product dimension.
    pub adjacent_outlier_pct: f64,
    /// Total number of weights inspected.
    pub total: usize,
}

/// Computes outlier statistics for a weight matrix, classifying per
/// contiguous `block` elements of each row (the macro-block granularity)
/// and measuring adjacency along rows (the dot-product dimension, matching
/// footnote 2 of the paper).
///
/// # Panics
///
/// Panics if `block` is zero.
pub fn layer_outlier_stats(weights: &Matrix, sigma_threshold: f64, block: usize) -> OutlierStats {
    assert!(block > 0, "block size must be positive");
    let mut outliers = 0usize;
    let mut adjacent = 0usize;
    let total = weights.rows() * weights.cols();
    for r in 0..weights.rows() {
        let row = weights.row(r);
        // Classify block by block, then scan the whole row for adjacency so
        // pairs spanning a block boundary are still counted.
        let mut mask = Vec::with_capacity(row.len());
        for chunk in row.chunks(block) {
            mask.extend(classify_outliers(chunk, sigma_threshold));
        }
        outliers += mask.iter().filter(|&&b| b).count();
        let mut in_pair = vec![false; mask.len()];
        for i in 0..mask.len().saturating_sub(1) {
            if mask[i] && mask[i + 1] {
                in_pair[i] = true;
                in_pair[i + 1] = true;
            }
        }
        adjacent += in_pair.iter().filter(|&&b| b).count();
    }
    OutlierStats {
        outlier_pct: 100.0 * outliers as f64 / total as f64,
        adjacent_outlier_pct: 100.0 * adjacent as f64 / total as f64,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_block_without_extremes_has_no_3sigma_outliers() {
        // Deterministic near-uniform sample: everything within ~1.8σ.
        let vals: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mask = classify_outliers(&vals, 3.0);
        assert!(mask.iter().all(|&b| !b));
    }

    #[test]
    fn single_large_value_is_flagged() {
        let mut vals = vec![0.01; 63];
        vals.push(5.0);
        let mask = classify_outliers(&vals, 3.0);
        assert!(mask[63]);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn negative_outliers_are_flagged_too() {
        let mut vals = vec![0.01; 63];
        vals.push(-5.0);
        let mask = classify_outliers(&vals, 3.0);
        assert!(mask[63]);
    }

    #[test]
    fn constant_block_has_no_outliers() {
        let mask = classify_outliers(&[0.5; 16], 3.0);
        assert!(mask.iter().all(|&b| !b));
    }

    #[test]
    fn lower_threshold_flags_more() {
        let vals: Vec<f64> = (0..128)
            .map(|i| ((i * 37 % 97) as f64 - 48.0) / 10.0)
            .collect();
        let strict = classify_outliers(&vals, 3.0).iter().filter(|&&b| b).count();
        let loose = classify_outliers(&vals, 1.5).iter().filter(|&&b| b).count();
        assert!(loose >= strict);
    }

    #[test]
    fn adjacency_counts_pairs_only() {
        // Row: O O . O . O O O  (block large enough to classify together)
        let mut w = Matrix::zeros(1, 64);
        // Background noise.
        for c in 0..64 {
            w[(0, c)] = if c % 2 == 0 { 0.01 } else { -0.01 };
        }
        for &c in &[0usize, 1, 3, 5, 6, 7] {
            w[(0, c)] = 9.0;
        }
        let stats = layer_outlier_stats(&w, 3.0, 64);
        assert_eq!(stats.total, 64);
        assert!((stats.outlier_pct - 100.0 * 6.0 / 64.0).abs() < 1e-9);
        // Adjacent: {0,1} and {5,6,7} → 5 weights.
        assert!((stats.adjacent_outlier_pct - 100.0 * 5.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn adjacency_across_block_boundary_is_counted() {
        // Note: within a block of n elements the z-score is bounded by
        // (n−1)/√n, so small blocks need a lower σ threshold for a single
        // extreme value to be classifiable at all.
        let mut w = Matrix::zeros(1, 32);
        for c in 0..32 {
            w[(0, c)] = if c % 2 == 0 { 0.01 } else { -0.01 };
        }
        w[(0, 15)] = 9.0; // last of block 0 (block=16)
        w[(0, 16)] = 9.0; // first of block 1
        let stats = layer_outlier_stats(&w, 2.0, 16);
        assert!(stats.adjacent_outlier_pct > 0.0);
    }

    #[test]
    fn z_score_ceiling_in_tiny_blocks() {
        // A single extreme value in a block of 8 cannot exceed
        // z = 7/√8 ≈ 2.47, so the 3σ rule never fires — this is why the
        // paper classifies at macro-block (128) granularity, not per μB.
        let mut vals = vec![0.0; 7];
        vals.push(1e6);
        assert!(classify_outliers(&vals, 3.0).iter().all(|&b| !b));
        assert!(classify_outliers(&vals, 2.0)[7]);
    }

    #[test]
    fn short_blocks_are_degenerate() {
        assert_eq!(classify_outliers(&[1.0], 3.0), vec![false]);
        assert_eq!(classify_outliers(&[], 3.0), Vec::<bool>::new());
    }
}
