//! MicroScopiQ: outlier-aware microscaling post-training quantization.
//!
//! This crate implements the paper's primary contribution (§4): a PTQ
//! framework that quantizes inliers to MX-INT-(2/4) with macro-block shared
//! scales, keeps outliers at 2× precision in MX-FP with micro-block shared
//! microexponents, prunes the least-important inliers (Hessian saliency)
//! and redistributes the outlier LSB halves into the pruned slots — giving
//! a fixed per-element bit budget, aligned memory, and the effective bit
//! widths the paper reports (≈2.36 b at bb=2).
//!
//! Entry points:
//!
//! * [`MicroScopiQ`] — the quantizer, configured by [`QuantConfig`];
//! * [`traits::WeightQuantizer`] — the interface shared with baselines;
//! * [`packed::PackedLayer`] — the hardware-facing packed format (Fig. 5)
//!   with EBW per Eq. 4;
//! * [`activation`] — MX-INT activation quantization + α-migration;
//! * [`kv_cache`] — 2-bit KV-cache quantization (Table 7), plus the
//!   appendable [`LayerKvCache`] (exact or quantized-in-place storage)
//!   that backs incremental decode in `microscopiq-fm`/`-runtime`.
//!
//! # Examples
//!
//! ```
//! use microscopiq_core::{MicroScopiQ, QuantConfig};
//! use microscopiq_core::traits::{LayerTensors, WeightQuantizer};
//! use microscopiq_linalg::{Matrix, SeededRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = SeededRng::new(42);
//! let mut weights = Matrix::from_fn(16, 64, |_, _| rng.normal(0.0, 0.02));
//! weights[(3, 17)] = 0.35; // an outlier
//! let calib = Matrix::from_fn(64, 96, |_, _| rng.normal(0.0, 1.0));
//! let layer = LayerTensors::new(weights, calib)?;
//!
//! let q = MicroScopiQ::new(QuantConfig::w2().macro_block(64).row_block(64).build()?);
//! let result = q.quantize_layer(&layer)?;
//!
//! // Outliers survive 2-bit quantization at high precision…
//! assert!((result.dequantized[(3, 17)] - 0.35).abs() < 0.06);
//! // …while the effective bit width stays near the 2-bit budget.
//! assert!(result.stats.effective_bit_width < 3.0);
//! # Ok(())
//! # }
//! ```

pub mod activation;
pub mod config;
pub mod error;
pub mod hessian;
pub mod kv_cache;
pub mod microblock;
pub mod outlier;
pub mod packed;
pub mod quantizer;
pub mod solver;
pub mod traits;

pub use config::{GroupAxis, OutlierMode, QuantConfig, QuantConfigBuilder};
pub use error::QuantError;
pub use kv_cache::{KvCacheConfig, KvMode, KvSegment, KvView, LayerKvCache};
pub use quantizer::MicroScopiQ;
pub use traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};
