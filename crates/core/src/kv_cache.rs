//! KV-cache quantization (Table 7's final row), following the KIVI-style
//! scheme the paper adopts: keys quantized per channel, values per token,
//! 2-bit with group size 128, and a full-precision residual window of the
//! most recent tokens.

use crate::error::QuantError;
use microscopiq_linalg::Matrix;
use microscopiq_mx::mxint::MxIntBlock;

/// Configuration for KV-cache quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvCacheConfig {
    /// Element bits (paper: 2).
    pub bits: u32,
    /// Group size for shared scales (paper: 128).
    pub group: usize,
    /// Number of most-recent tokens kept at full precision (paper: 128).
    pub residual: usize,
}

impl Default for KvCacheConfig {
    fn default() -> Self {
        Self {
            bits: 2,
            group: 128,
            residual: 128,
        }
    }
}

/// A quantized KV cache: keys and values in `tokens × channels` layout.
#[derive(Debug, Clone)]
pub struct QuantizedKvCache {
    /// Dequantized keys.
    pub keys: Matrix,
    /// Dequantized values.
    pub values: Matrix,
}

/// Quantizes a KV cache. `keys`/`values` are `tokens × channels`; the most
/// recent `residual` tokens (highest row indices) stay full precision.
///
/// Keys are grouped **per channel** (scales shared along the token axis)
/// and values **per token** (scales shared along the channel axis),
/// following KIVI: key outliers are channel-structured, value outliers are
/// token-structured.
///
/// # Errors
///
/// Returns [`QuantError::ShapeMismatch`] if keys and values disagree in
/// shape, or [`QuantError::InvalidConfig`] for a zero group size.
pub fn quantize_kv_cache(
    keys: &Matrix,
    values: &Matrix,
    cfg: KvCacheConfig,
) -> Result<QuantizedKvCache, QuantError> {
    if keys.rows() != values.rows() || keys.cols() != values.cols() {
        return Err(QuantError::ShapeMismatch {
            weight_cols: keys.cols(),
            calib_rows: values.cols(),
        });
    }
    if cfg.group == 0 {
        return Err(QuantError::InvalidConfig {
            reason: "kv group size must be positive".to_string(),
        });
    }
    let tokens = keys.rows();
    let quant_tokens = tokens.saturating_sub(cfg.residual);

    let mut qk = keys.clone();
    let mut qv = values.clone();

    // Keys per channel: walk each column over the quantized token span.
    for c in 0..keys.cols() {
        let col: Vec<f64> = (0..quant_tokens).map(|t| keys[(t, c)]).collect();
        for (g, chunk) in col.chunks(cfg.group).enumerate() {
            let block = MxIntBlock::quantize(chunk, cfg.bits);
            for (i, v) in block.dequantize().into_iter().enumerate() {
                qk[(g * cfg.group + i, c)] = v;
            }
        }
    }
    // Values per token: walk each quantized row.
    for t in 0..quant_tokens {
        let row = values.row(t).to_vec();
        for (g, chunk) in row.chunks(cfg.group).enumerate() {
            let block = MxIntBlock::quantize(chunk, cfg.bits);
            for (i, v) in block.dequantize().into_iter().enumerate() {
                qv[(t, g * cfg.group + i)] = v;
            }
        }
    }
    Ok(QuantizedKvCache {
        keys: qk,
        values: qv,
    })
}

/// Relative attention-output error introduced by KV quantization for a
/// query matrix `q` (`queries × channels`): compares
/// `softmax(qKᵀ)·V` with full-precision vs quantized caches.
pub fn attention_output_error(
    q: &Matrix,
    keys: &Matrix,
    values: &Matrix,
    quantized: &QuantizedKvCache,
) -> f64 {
    let reference = attention(q, keys, values);
    let got = attention(q, &quantized.keys, &quantized.values);
    let denom = reference.frobenius_norm();
    if denom == 0.0 {
        0.0
    } else {
        reference.frobenius_distance(&got) / denom
    }
}

/// Scaled-dot-product attention with a numerically stable softmax.
fn attention(q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
    let scale = 1.0 / (k.cols() as f64).sqrt();
    let mut scores = q.matmul(&k.transpose());
    scores.scale(scale);
    for r in 0..scores.rows() {
        let row = scores.row_mut(r);
        let max = row.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        for s in row.iter_mut() {
            *s = (*s - max).exp();
            sum += *s;
        }
        for s in row.iter_mut() {
            *s /= sum;
        }
    }
    scores.matmul(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_linalg::SeededRng;

    fn kv(seed: u64, tokens: usize, channels: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let k = Matrix::from_fn(tokens, channels, |_, c| {
            // Channel-structured key magnitudes (KIVI's motivation).
            rng.normal(0.0, if c % 7 == 0 { 2.0 } else { 0.5 })
        });
        let v = Matrix::from_fn(tokens, channels, |_, _| rng.normal(0.0, 0.8));
        let q = Matrix::from_fn(4, channels, |_, _| rng.normal(0.0, 0.5));
        (q, k, v)
    }

    #[test]
    fn residual_tokens_stay_exact() {
        let (_, k, v) = kv(1, 64, 16);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 16,
            residual: 16,
        };
        let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
        for t in 48..64 {
            for c in 0..16 {
                assert_eq!(qkv.keys[(t, c)], k[(t, c)]);
                assert_eq!(qkv.values[(t, c)], v[(t, c)]);
            }
        }
    }

    #[test]
    fn older_tokens_are_quantized() {
        let (_, k, v) = kv(2, 64, 16);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 16,
            residual: 16,
        };
        let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
        let changed = (0..48)
            .flat_map(|t| (0..16).map(move |c| (t, c)))
            .filter(|&(t, c)| qkv.keys[(t, c)] != k[(t, c)])
            .count();
        assert!(changed > 100, "only {changed} key entries changed");
    }

    #[test]
    fn attention_error_nonzero_and_bounded() {
        // 2-bit KV on unstructured Gaussian caches is the hard case (the
        // paper's Table 7 shows a visible +0.50 PPL cost); 4-bit should be
        // comfortably accurate.
        let (q, k, v) = kv(3, 128, 32);
        let err_at = |bits| {
            let cfg = KvCacheConfig {
                bits,
                group: 32,
                residual: 32,
            };
            let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
            attention_output_error(&q, &k, &v, &qkv)
        };
        let e2 = err_at(2);
        assert!(e2 > 0.0 && e2 < 1.5, "2-bit attention error {e2}");
        assert!(err_at(4) < 0.4, "4-bit attention error {}", err_at(4));
    }

    #[test]
    fn more_bits_reduce_attention_error() {
        let (q, k, v) = kv(4, 128, 32);
        let err_at = |bits| {
            let cfg = KvCacheConfig {
                bits,
                group: 32,
                residual: 32,
            };
            let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
            attention_output_error(&q, &k, &v, &qkv)
        };
        assert!(err_at(4) < err_at(2));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let k = Matrix::zeros(8, 4);
        let v = Matrix::zeros(8, 6);
        assert!(quantize_kv_cache(&k, &v, KvCacheConfig::default()).is_err());
    }

    #[test]
    fn all_residual_cache_is_identity() {
        let (_, k, v) = kv(5, 32, 8);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 8,
            residual: 64, // more than the cache holds
        };
        let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
        assert_eq!(qkv.keys, k);
        assert_eq!(qkv.values, v);
    }
}
