//! KV-cache quantization (Table 7's final row), following the KIVI-style
//! scheme the paper adopts: keys quantized per channel, values per token,
//! 2-bit with group size 128, and a full-precision residual window of the
//! most recent tokens.
//!
//! Two entry points:
//!
//! * [`quantize_kv_cache`] — one-shot quantization of a finished cache,
//!   used for error analysis ([`attention_output_error`]);
//! * [`LayerKvCache`] — an *appendable* per-layer cache for incremental
//!   decode: tokens are appended one at a time, served exactly while they
//!   sit inside the residual window, and quantized in group-aligned chunks
//!   as they age out of it. This is what `microscopiq-fm`'s decode states
//!   hold per transformer block.

use crate::error::QuantError;
use microscopiq_linalg::Matrix;
use microscopiq_mx::mxint::MxIntBlock;

/// Configuration for KV-cache quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvCacheConfig {
    /// Element bits (paper: 2).
    pub bits: u32,
    /// Group size for shared scales (paper: 128).
    pub group: usize,
    /// Number of most-recent tokens kept at full precision (paper: 128).
    pub residual: usize,
}

impl Default for KvCacheConfig {
    fn default() -> Self {
        Self {
            bits: 2,
            group: 128,
            residual: 128,
        }
    }
}

/// A quantized KV cache: keys and values in `tokens × channels` layout.
#[derive(Debug, Clone)]
pub struct QuantizedKvCache {
    /// Dequantized keys.
    pub keys: Matrix,
    /// Dequantized values.
    pub values: Matrix,
}

/// Quantizes a KV cache. `keys`/`values` are `tokens × channels`; the most
/// recent `residual` tokens (highest row indices) stay full precision.
///
/// Keys are grouped **per channel** (scales shared along the token axis)
/// and values **per token** (scales shared along the channel axis),
/// following KIVI: key outliers are channel-structured, value outliers are
/// token-structured.
///
/// # Errors
///
/// Returns [`QuantError::ShapeMismatch`] if keys and values disagree in
/// shape, or [`QuantError::InvalidConfig`] for a zero group size.
pub fn quantize_kv_cache(
    keys: &Matrix,
    values: &Matrix,
    cfg: KvCacheConfig,
) -> Result<QuantizedKvCache, QuantError> {
    if keys.rows() != values.rows() || keys.cols() != values.cols() {
        return Err(QuantError::ShapeMismatch {
            weight_cols: keys.cols(),
            calib_rows: values.cols(),
        });
    }
    if cfg.group == 0 {
        return Err(QuantError::InvalidConfig {
            reason: "kv group size must be positive".to_string(),
        });
    }
    let tokens = keys.rows();
    let quant_tokens = tokens.saturating_sub(cfg.residual);

    let mut qk = keys.clone();
    let mut qv = values.clone();

    // Keys per channel: walk each column over the quantized token span.
    for c in 0..keys.cols() {
        let col: Vec<f64> = (0..quant_tokens).map(|t| keys[(t, c)]).collect();
        for (g, chunk) in col.chunks(cfg.group).enumerate() {
            let block = MxIntBlock::quantize(chunk, cfg.bits);
            for (i, v) in block.dequantize().into_iter().enumerate() {
                qk[(g * cfg.group + i, c)] = v;
            }
        }
    }
    // Values per token: walk each quantized row.
    for t in 0..quant_tokens {
        let row = values.row(t).to_vec();
        for (g, chunk) in row.chunks(cfg.group).enumerate() {
            let block = MxIntBlock::quantize(chunk, cfg.bits);
            for (i, v) in block.dequantize().into_iter().enumerate() {
                qv[(t, g * cfg.group + i)] = v;
            }
        }
    }
    Ok(QuantizedKvCache {
        keys: qk,
        values: qv,
    })
}

/// Relative attention-output error introduced by KV quantization for a
/// query matrix `q` (`queries × channels`): compares
/// `softmax(qKᵀ)·V` with full-precision vs quantized caches.
pub fn attention_output_error(
    q: &Matrix,
    keys: &Matrix,
    values: &Matrix,
    quantized: &QuantizedKvCache,
) -> f64 {
    let reference = attention(q, keys, values);
    let got = attention(q, &quantized.keys, &quantized.values);
    let denom = reference.frobenius_norm();
    if denom == 0.0 {
        0.0
    } else {
        reference.frobenius_distance(&got) / denom
    }
}

/// Storage mode for an appendable [`LayerKvCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KvMode {
    /// Every token stays at full fp64 precision. Incremental decode over
    /// an exact cache is bit-identical to full-prefix recompute.
    Exact,
    /// KIVI-style quantized storage: tokens inside the residual window
    /// stay exact; older tokens are quantized in group-aligned chunks
    /// (keys per channel, values per token) as they age out.
    Quantized(KvCacheConfig),
}

/// A read-only view of a cache's serving values (`tokens × channels`).
#[derive(Debug, Clone, Copy)]
pub struct KvView<'a> {
    keys: &'a [f64],
    values: &'a [f64],
    tokens: usize,
    channels: usize,
}

impl<'a> KvView<'a> {
    /// Tokens in the view.
    pub fn len(&self) -> usize {
        self.tokens
    }

    /// Whether the view holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0
    }

    /// Channels per token.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Key row for token `t` (serving values: exact inside the residual
    /// window, dequantized outside it).
    pub fn key_row(&self, t: usize) -> &'a [f64] {
        &self.keys[t * self.channels..(t + 1) * self.channels]
    }

    /// Value row for token `t`.
    pub fn value_row(&self, t: usize) -> &'a [f64] {
        &self.values[t * self.channels..(t + 1) * self.channels]
    }

    /// Materializes the view as `(keys, values)` matrices
    /// (`tokens × channels`), the shape [`attention_output_error`] takes.
    pub fn to_matrices(&self) -> (Matrix, Matrix) {
        let k = Matrix::from_vec(self.tokens, self.channels, self.keys.to_vec());
        let v = Matrix::from_vec(self.tokens, self.channels, self.values.to_vec());
        (k, v)
    }
}

/// An appendable per-layer KV cache for incremental decode.
///
/// Rows are `channels`-wide key/value vectors in token order. In
/// [`KvMode::Exact`] the cache is a plain growable fp64 store. In
/// [`KvMode::Quantized`] the most recent `residual` tokens are served
/// exactly; once a full `group` of tokens has aged past the residual
/// window it is quantized **in place** (keys per channel over the token
/// chunk, values per token over channel chunks — the same chunking
/// [`quantize_kv_cache`] uses, so an incremental cache whose quantized
/// span is group-aligned matches the one-shot path exactly) and served
/// dequantized from then on. A token is quantized at most once; its
/// serving value never changes again afterwards.
#[derive(Debug, Clone)]
pub struct LayerKvCache {
    channels: usize,
    mode: KvMode,
    /// Serving keys, `tokens × channels` row-major by token.
    keys: Vec<f64>,
    /// Serving values, same layout.
    values: Vec<f64>,
    /// Tokens `[0, quantized_tokens)` have been quantized in place.
    quantized_tokens: usize,
}

impl LayerKvCache {
    /// Creates an empty exact (fp64) cache.
    pub fn exact(channels: usize) -> Self {
        Self {
            channels,
            mode: KvMode::Exact,
            keys: Vec::new(),
            values: Vec::new(),
            quantized_tokens: 0,
        }
    }

    /// Creates an empty quantized cache.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for a zero group size.
    pub fn quantized(channels: usize, cfg: KvCacheConfig) -> Result<Self, QuantError> {
        if cfg.group == 0 {
            return Err(QuantError::InvalidConfig {
                reason: "kv group size must be positive".to_string(),
            });
        }
        Ok(Self {
            channels,
            mode: KvMode::Quantized(cfg),
            keys: Vec::new(),
            values: Vec::new(),
            quantized_tokens: 0,
        })
    }

    /// Creates an empty cache in the given mode.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for a zero group size in
    /// quantized mode.
    pub fn with_mode(channels: usize, mode: KvMode) -> Result<Self, QuantError> {
        match mode {
            KvMode::Exact => Ok(Self::exact(channels)),
            KvMode::Quantized(cfg) => Self::quantized(channels, cfg),
        }
    }

    /// Channels per token.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Tokens appended so far.
    pub fn len(&self) -> usize {
        self.keys.len() / self.channels.max(1)
    }

    /// Whether the cache holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The storage mode.
    pub fn mode(&self) -> KvMode {
        self.mode
    }

    /// Tokens whose storage has been quantized (always 0 in exact mode).
    pub fn quantized_len(&self) -> usize {
        self.quantized_tokens
    }

    /// Bytes this cache's tokens would occupy in their *storage* format:
    /// exact tokens at `2 × channels × 8` bytes (fp64 K + V rows),
    /// quantized tokens at `2 × channels × bits / 8` plus one shared
    /// exponent byte per quantization block — keys carry one block per
    /// (channel, token group), values one block per token per
    /// `group`-wide channel chunk, mirroring [`Self::append`]'s
    /// chunking. Serving buffers hold dequantized fp64 regardless; this
    /// is the accounting figure eviction policies and occupancy gauges
    /// budget against.
    pub fn storage_bytes(&self) -> usize {
        let exact_tokens = self.len() - self.quantized_tokens;
        let exact = 2 * exact_tokens * self.channels * 8;
        let quantized = match self.mode {
            KvMode::Quantized(cfg) if cfg.group > 0 => {
                let payload = 2 * self.quantized_tokens * self.channels * cfg.bits as usize / 8;
                let key_blocks = self.quantized_tokens.div_ceil(cfg.group) * self.channels;
                let value_blocks = self.quantized_tokens * self.channels.div_ceil(cfg.group);
                payload + key_blocks + value_blocks
            }
            _ => 0,
        };
        exact + quantized
    }

    /// Appends one token's key/value rows, then (in quantized mode)
    /// quantizes any full group of tokens that has aged out of the
    /// residual window.
    ///
    /// # Panics
    ///
    /// Panics if either row's length differs from `channels`.
    pub fn append(&mut self, key_row: &[f64], value_row: &[f64]) {
        assert_eq!(key_row.len(), self.channels, "key row width");
        assert_eq!(value_row.len(), self.channels, "value row width");
        self.keys.extend_from_slice(key_row);
        self.values.extend_from_slice(value_row);
        if let KvMode::Quantized(cfg) = self.mode {
            // Quantize whole groups once every token in the group is
            // older than the residual window. Group boundaries align to
            // multiples of `cfg.group` from token 0, matching the
            // one-shot chunking.
            while self.len() - self.quantized_tokens >= cfg.group + cfg.residual {
                self.quantize_group(cfg);
            }
        }
    }

    /// Quantizes tokens `[quantized_tokens, quantized_tokens + group)` in
    /// place: keys per channel along the token chunk, values per token in
    /// channel chunks.
    fn quantize_group(&mut self, cfg: KvCacheConfig) {
        let lo = self.quantized_tokens;
        let hi = lo + cfg.group;
        let ch = self.channels;
        for c in 0..ch {
            let col: Vec<f64> = (lo..hi).map(|t| self.keys[t * ch + c]).collect();
            let block = MxIntBlock::quantize(&col, cfg.bits);
            for (i, v) in block.dequantize().into_iter().enumerate() {
                self.keys[(lo + i) * ch + c] = v;
            }
        }
        for t in lo..hi {
            let row = self.values[t * ch..(t + 1) * ch].to_vec();
            for (g, chunk) in row.chunks(cfg.group).enumerate() {
                let block = MxIntBlock::quantize(chunk, cfg.bits);
                for (i, v) in block.dequantize().into_iter().enumerate() {
                    self.values[t * ch + g * cfg.group + i] = v;
                }
            }
        }
        self.quantized_tokens = hi;
    }

    /// Serving key row for token `t`.
    pub fn key_row(&self, t: usize) -> &[f64] {
        &self.keys[t * self.channels..(t + 1) * self.channels]
    }

    /// Serving value row for token `t`.
    pub fn value_row(&self, t: usize) -> &[f64] {
        &self.values[t * self.channels..(t + 1) * self.channels]
    }

    /// A read-only view over every token's serving values.
    pub fn view(&self) -> KvView<'_> {
        KvView {
            keys: &self.keys,
            values: &self.values,
            tokens: self.len(),
            channels: self.channels,
        }
    }

    /// Drops every token at position `n` and beyond — speculative-decode
    /// rollback and prefix rewind. A no-op when `n >= len()`.
    ///
    /// Truncating within the exact residual tail is always legal and the
    /// surviving prefix is bitwise untouched, so re-appending the same
    /// rows reproduces the original cache exactly. Cutting into the
    /// quantized prefix is only legal on a group boundary: quantization
    /// blocks span `group` tokens, so a mid-group cut would strand a
    /// partial block whose exponent was fit to tokens that no longer
    /// exist.
    ///
    /// # Panics
    ///
    /// Panics in quantized mode when `n` lands strictly inside the
    /// quantized prefix off a group boundary.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        if let KvMode::Quantized(cfg) = self.mode {
            if n < self.quantized_tokens {
                assert!(
                    n.is_multiple_of(cfg.group),
                    "quantized KV truncation must be group-aligned: \
                     n = {n}, group = {}, quantized prefix = {}",
                    cfg.group,
                    self.quantized_tokens
                );
                self.quantized_tokens = n;
            }
        }
        self.keys.truncate(n * self.channels);
        self.values.truncate(n * self.channels);
    }
}

/// Scaled-dot-product attention with a numerically stable softmax.
fn attention(q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
    let scale = 1.0 / (k.cols() as f64).sqrt();
    let mut scores = q.matmul(&k.transpose());
    scores.scale(scale);
    for r in 0..scores.rows() {
        let row = scores.row_mut(r);
        let max = row.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        for s in row.iter_mut() {
            *s = (*s - max).exp();
            sum += *s;
        }
        for s in row.iter_mut() {
            *s /= sum;
        }
    }
    scores.matmul(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_linalg::SeededRng;

    #[test]
    fn storage_bytes_accounts_exact_and_quantized_tokens() {
        let ch = 32;
        let mut exact = LayerKvCache::exact(ch);
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 8,
        };
        let mut quant = LayerKvCache::quantized(ch, cfg).unwrap();
        let row = vec![0.5; ch];
        for _ in 0..24 {
            exact.append(&row, &row);
            quant.append(&row, &row);
        }
        // Exact: 24 tokens × 2 rows × 32 channels × 8 bytes.
        assert_eq!(exact.storage_bytes(), 24 * 2 * ch * 8);
        // Quantized: two full groups (16 tokens) have aged out of the
        // 8-token residual window; 8 tokens remain exact. Payload
        // 2·16·32·4/8 bytes; exponents: one per (channel, token-group)
        // key block = 2 × 32, plus one per token per 8-wide value
        // chunk = 16 × 4.
        assert_eq!(quant.quantized_len(), 16);
        let payload = 2 * 16 * ch * 4 / 8;
        let exponents = 2 * ch + 16 * ch.div_ceil(8);
        assert_eq!(quant.storage_bytes(), 8 * 2 * ch * 8 + payload + exponents);
        assert!(quant.storage_bytes() < exact.storage_bytes());
    }

    #[test]
    fn exact_truncate_and_reappend_is_bitwise_identical() {
        let ch = 16;
        let mut rng = SeededRng::new(5);
        let rows: Vec<(Vec<f64>, Vec<f64>)> = (0..20)
            .map(|_| {
                let k: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
                let v: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
                (k, v)
            })
            .collect();
        let mut full = LayerKvCache::exact(ch);
        let mut cut = LayerKvCache::exact(ch);
        for (k, v) in &rows {
            full.append(k, v);
            cut.append(k, v);
        }
        cut.truncate(12);
        assert_eq!(cut.len(), 12);
        for (k, v) in &rows[12..] {
            cut.append(k, v);
        }
        assert_eq!(cut.len(), full.len());
        for t in 0..full.len() {
            assert_eq!(cut.key_row(t), full.key_row(t), "key row {t}");
            assert_eq!(cut.value_row(t), full.value_row(t), "value row {t}");
        }
        // Truncating past the end is a no-op.
        cut.truncate(100);
        assert_eq!(cut.len(), 20);
    }

    #[test]
    fn quantized_truncate_within_exact_tail_keeps_prefix() {
        let ch = 16;
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 8,
        };
        let mut cache = LayerKvCache::quantized(ch, cfg).unwrap();
        let mut rng = SeededRng::new(6);
        for _ in 0..20 {
            let k: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
            let v: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
            cache.append(&k, &v);
        }
        // 8 tokens quantized, 12 exact; cut inside the exact tail at any
        // alignment.
        assert_eq!(cache.quantized_len(), 8);
        let before: Vec<f64> = (0..11).flat_map(|t| cache.key_row(t).to_vec()).collect();
        cache.truncate(11);
        assert_eq!(cache.len(), 11);
        assert_eq!(cache.quantized_len(), 8, "quantized prefix untouched");
        let after: Vec<f64> = (0..11).flat_map(|t| cache.key_row(t).to_vec()).collect();
        assert_eq!(after, before);
    }

    #[test]
    fn quantized_truncate_on_group_boundary_shrinks_prefix() {
        let ch = 16;
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 0,
        };
        let mut cache = LayerKvCache::quantized(ch, cfg).unwrap();
        let row = vec![0.25; ch];
        for _ in 0..24 {
            cache.append(&row, &row);
        }
        assert_eq!(cache.quantized_len(), 24);
        cache.truncate(8);
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.quantized_len(), 8);
        // The cache keeps working: appends re-quantize from the new end.
        for _ in 0..8 {
            cache.append(&row, &row);
        }
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.quantized_len(), 16);
    }

    #[test]
    #[should_panic(expected = "group-aligned")]
    fn quantized_truncate_off_group_boundary_panics() {
        let ch = 16;
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 0,
        };
        let mut cache = LayerKvCache::quantized(ch, cfg).unwrap();
        let row = vec![0.25; ch];
        for _ in 0..16 {
            cache.append(&row, &row);
        }
        cache.truncate(5);
    }

    fn kv(seed: u64, tokens: usize, channels: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let k = Matrix::from_fn(tokens, channels, |_, c| {
            // Channel-structured key magnitudes (KIVI's motivation).
            rng.normal(0.0, if c % 7 == 0 { 2.0 } else { 0.5 })
        });
        let v = Matrix::from_fn(tokens, channels, |_, _| rng.normal(0.0, 0.8));
        let q = Matrix::from_fn(4, channels, |_, _| rng.normal(0.0, 0.5));
        (q, k, v)
    }

    #[test]
    fn residual_tokens_stay_exact() {
        let (_, k, v) = kv(1, 64, 16);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 16,
            residual: 16,
        };
        let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
        for t in 48..64 {
            for c in 0..16 {
                assert_eq!(qkv.keys[(t, c)], k[(t, c)]);
                assert_eq!(qkv.values[(t, c)], v[(t, c)]);
            }
        }
    }

    #[test]
    fn older_tokens_are_quantized() {
        let (_, k, v) = kv(2, 64, 16);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 16,
            residual: 16,
        };
        let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
        let changed = (0..48)
            .flat_map(|t| (0..16).map(move |c| (t, c)))
            .filter(|&(t, c)| qkv.keys[(t, c)] != k[(t, c)])
            .count();
        assert!(changed > 100, "only {changed} key entries changed");
    }

    #[test]
    fn attention_error_nonzero_and_bounded() {
        // 2-bit KV on unstructured Gaussian caches is the hard case (the
        // paper's Table 7 shows a visible +0.50 PPL cost); 4-bit should be
        // comfortably accurate.
        let (q, k, v) = kv(3, 128, 32);
        let err_at = |bits| {
            let cfg = KvCacheConfig {
                bits,
                group: 32,
                residual: 32,
            };
            let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
            attention_output_error(&q, &k, &v, &qkv)
        };
        let e2 = err_at(2);
        assert!(e2 > 0.0 && e2 < 1.5, "2-bit attention error {e2}");
        assert!(err_at(4) < 0.4, "4-bit attention error {}", err_at(4));
    }

    #[test]
    fn more_bits_reduce_attention_error() {
        let (q, k, v) = kv(4, 128, 32);
        let err_at = |bits| {
            let cfg = KvCacheConfig {
                bits,
                group: 32,
                residual: 32,
            };
            let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
            attention_output_error(&q, &k, &v, &qkv)
        };
        assert!(err_at(4) < err_at(2));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let k = Matrix::zeros(8, 4);
        let v = Matrix::zeros(8, 6);
        assert!(quantize_kv_cache(&k, &v, KvCacheConfig::default()).is_err());
    }

    #[test]
    fn exact_cache_round_trips_appends() {
        let mut rng = SeededRng::new(7);
        let mut cache = LayerKvCache::exact(8);
        let rows: Vec<(Vec<f64>, Vec<f64>)> = (0..20)
            .map(|_| {
                let k: Vec<f64> = (0..8).map(|_| rng.normal(0.0, 1.0)).collect();
                let v: Vec<f64> = (0..8).map(|_| rng.normal(0.0, 1.0)).collect();
                (k, v)
            })
            .collect();
        for (k, v) in &rows {
            cache.append(k, v);
        }
        assert_eq!(cache.len(), 20);
        assert_eq!(cache.quantized_len(), 0);
        let view = cache.view();
        for (t, (k, v)) in rows.iter().enumerate() {
            assert_eq!(view.key_row(t), k.as_slice());
            assert_eq!(view.value_row(t), v.as_slice());
        }
    }

    #[test]
    fn incremental_matches_one_shot_when_group_aligned() {
        // 48 tokens, residual 16, group 16: the one-shot path quantizes
        // tokens [0, 32) in two full groups — exactly what the appendable
        // cache does as those groups age out of the residual window.
        let (_, k, v) = kv(8, 48, 16);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 16,
            residual: 16,
        };
        let one_shot = quantize_kv_cache(&k, &v, cfg).unwrap();
        let mut cache = LayerKvCache::quantized(16, cfg).unwrap();
        for t in 0..48 {
            cache.append(k.row(t), v.row(t));
        }
        assert_eq!(cache.quantized_len(), 32);
        let (ck, cv) = cache.view().to_matrices();
        assert_eq!(ck, one_shot.keys, "incremental keys diverged");
        assert_eq!(cv, one_shot.values, "incremental values diverged");
    }

    #[test]
    fn residual_window_tokens_served_exactly() {
        let (_, k, v) = kv(9, 40, 8);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 8,
            residual: 8,
        };
        let mut cache = LayerKvCache::quantized(8, cfg).unwrap();
        for t in 0..40 {
            cache.append(k.row(t), v.row(t));
        }
        // Everything not yet quantized — the residual window and any
        // partial trailing group — is served bit-exactly.
        for t in cache.quantized_len()..40 {
            assert_eq!(cache.key_row(t), k.row(t));
            assert_eq!(cache.value_row(t), v.row(t));
        }
        // And the quantized prefix really was quantized.
        let changed = (0..cache.quantized_len())
            .flat_map(|t| (0..8).map(move |c| (t, c)))
            .filter(|&(t, c)| cache.key_row(t)[c] != k[(t, c)])
            .count();
        assert!(changed > 20, "only {changed} quantized key entries changed");
    }

    #[test]
    fn quantized_tokens_never_requantize() {
        let (_, k, v) = kv(10, 64, 8);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 8,
            residual: 8,
        };
        let mut cache = LayerKvCache::quantized(8, cfg).unwrap();
        for t in 0..32 {
            cache.append(k.row(t), v.row(t));
        }
        let frozen: Vec<f64> = (0..cache.quantized_len())
            .flat_map(|t| cache.key_row(t).to_vec())
            .collect();
        let frozen_len = cache.quantized_len();
        for t in 32..64 {
            cache.append(k.row(t), v.row(t));
        }
        let now: Vec<f64> = (0..frozen_len)
            .flat_map(|t| cache.key_row(t).to_vec())
            .collect();
        assert_eq!(frozen, now, "previously quantized tokens changed");
    }

    #[test]
    fn appendable_cache_attention_error_bounded() {
        // The serving view of a quantized appendable cache must stay
        // within the documented attention-error bound (same regime as the
        // one-shot 2-bit test above: < 1.5 relative Frobenius error, with
        // 4-bit comfortably tighter than 2-bit).
        let (q, k, v) = kv(11, 128, 32);
        let err_at = |bits| {
            let cfg = KvCacheConfig {
                bits,
                group: 32,
                residual: 32,
            };
            let mut cache = LayerKvCache::quantized(32, cfg).unwrap();
            for t in 0..128 {
                cache.append(k.row(t), v.row(t));
            }
            let (ck, cv) = cache.view().to_matrices();
            attention_output_error(
                &q,
                &k,
                &v,
                &QuantizedKvCache {
                    keys: ck,
                    values: cv,
                },
            )
        };
        let e2 = err_at(2);
        assert!(e2 > 0.0 && e2 < 1.5, "2-bit appendable cache error {e2}");
        assert!(err_at(4) < err_at(2), "more bits must reduce error");
    }

    #[test]
    fn zero_group_quantized_cache_rejected() {
        let cfg = KvCacheConfig {
            bits: 2,
            group: 0,
            residual: 4,
        };
        assert!(LayerKvCache::quantized(8, cfg).is_err());
        assert!(LayerKvCache::with_mode(8, KvMode::Quantized(cfg)).is_err());
        assert!(LayerKvCache::with_mode(8, KvMode::Exact).is_ok());
    }

    #[test]
    fn all_residual_cache_is_identity() {
        let (_, k, v) = kv(5, 32, 8);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 8,
            residual: 64, // more than the cache holds
        };
        let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
        assert_eq!(qkv.keys, k);
        assert_eq!(qkv.values, v);
    }
}
