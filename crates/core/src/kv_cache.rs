//! KV-cache quantization (Table 7's final row), following the KIVI-style
//! scheme the paper adopts: keys quantized per channel, values per token,
//! 2-bit with group size 128, and a full-precision residual window of the
//! most recent tokens.
//!
//! Two entry points:
//!
//! * [`quantize_kv_cache`] — one-shot quantization of a finished cache,
//!   used for error analysis ([`attention_output_error`]);
//! * [`LayerKvCache`] — an *appendable* per-layer cache for incremental
//!   decode: tokens are appended one at a time, served exactly while they
//!   sit inside the residual window, and quantized in group-aligned chunks
//!   as they age out of it. This is what `microscopiq-fm`'s decode states
//!   hold per transformer block.

use crate::error::QuantError;
use microscopiq_linalg::Matrix;
use microscopiq_mx::mxint::MxIntBlock;
use std::sync::Arc;

/// Configuration for KV-cache quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvCacheConfig {
    /// Element bits (paper: 2).
    pub bits: u32,
    /// Group size for shared scales (paper: 128).
    pub group: usize,
    /// Number of most-recent tokens kept at full precision (paper: 128).
    pub residual: usize,
}

impl Default for KvCacheConfig {
    fn default() -> Self {
        Self {
            bits: 2,
            group: 128,
            residual: 128,
        }
    }
}

/// A quantized KV cache: keys and values in `tokens × channels` layout.
#[derive(Debug, Clone)]
pub struct QuantizedKvCache {
    /// Dequantized keys.
    pub keys: Matrix,
    /// Dequantized values.
    pub values: Matrix,
}

/// Quantizes a KV cache. `keys`/`values` are `tokens × channels`; the most
/// recent `residual` tokens (highest row indices) stay full precision.
///
/// Keys are grouped **per channel** (scales shared along the token axis)
/// and values **per token** (scales shared along the channel axis),
/// following KIVI: key outliers are channel-structured, value outliers are
/// token-structured.
///
/// # Errors
///
/// Returns [`QuantError::ShapeMismatch`] if keys and values disagree in
/// shape, or [`QuantError::InvalidConfig`] for a zero group size.
pub fn quantize_kv_cache(
    keys: &Matrix,
    values: &Matrix,
    cfg: KvCacheConfig,
) -> Result<QuantizedKvCache, QuantError> {
    if keys.rows() != values.rows() || keys.cols() != values.cols() {
        return Err(QuantError::ShapeMismatch {
            weight_cols: keys.cols(),
            calib_rows: values.cols(),
        });
    }
    if cfg.group == 0 {
        return Err(QuantError::InvalidConfig {
            reason: "kv group size must be positive".to_string(),
        });
    }
    let tokens = keys.rows();
    let quant_tokens = tokens.saturating_sub(cfg.residual);

    let mut qk = keys.clone();
    let mut qv = values.clone();

    // Keys per channel: walk each column over the quantized token span.
    for c in 0..keys.cols() {
        let col: Vec<f64> = (0..quant_tokens).map(|t| keys[(t, c)]).collect();
        for (g, chunk) in col.chunks(cfg.group).enumerate() {
            let block = MxIntBlock::quantize(chunk, cfg.bits);
            for (i, v) in block.dequantize().into_iter().enumerate() {
                qk[(g * cfg.group + i, c)] = v;
            }
        }
    }
    // Values per token: walk each quantized row.
    for t in 0..quant_tokens {
        let row = values.row(t).to_vec();
        for (g, chunk) in row.chunks(cfg.group).enumerate() {
            let block = MxIntBlock::quantize(chunk, cfg.bits);
            for (i, v) in block.dequantize().into_iter().enumerate() {
                qv[(t, g * cfg.group + i)] = v;
            }
        }
    }
    Ok(QuantizedKvCache {
        keys: qk,
        values: qv,
    })
}

/// Relative attention-output error introduced by KV quantization for a
/// query matrix `q` (`queries × channels`): compares
/// `softmax(qKᵀ)·V` with full-precision vs quantized caches.
pub fn attention_output_error(
    q: &Matrix,
    keys: &Matrix,
    values: &Matrix,
    quantized: &QuantizedKvCache,
) -> f64 {
    let reference = attention(q, keys, values);
    let got = attention(q, &quantized.keys, &quantized.values);
    let denom = reference.frobenius_norm();
    if denom == 0.0 {
        0.0
    } else {
        reference.frobenius_distance(&got) / denom
    }
}

/// Storage mode for an appendable [`LayerKvCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KvMode {
    /// Every token stays at full fp64 precision. Incremental decode over
    /// an exact cache is bit-identical to full-prefix recompute.
    Exact,
    /// KIVI-style quantized storage: tokens inside the residual window
    /// stay exact; older tokens are quantized in group-aligned chunks
    /// (keys per channel, values per token) as they age out.
    Quantized(KvCacheConfig),
}

/// One contiguous run of serving rows inside a [`KvView`].
#[derive(Debug, Clone, Copy)]
struct KvSpan<'a> {
    /// Global token index of the span's first row.
    start: usize,
    keys: &'a [f64],
    values: &'a [f64],
}

/// A read-only view of a cache's serving values (`tokens × channels`).
///
/// The view may stitch together several storage runs — shared prefix
/// segments attached copy-on-write plus the cache's private tail — so
/// row lookups resolve the owning span first. A cache with no shared
/// segments produces a single-span view, which is the common decode
/// fast path.
#[derive(Debug, Clone)]
pub struct KvView<'a> {
    spans: Vec<KvSpan<'a>>,
    tokens: usize,
    channels: usize,
}

impl<'a> KvView<'a> {
    /// Tokens in the view.
    pub fn len(&self) -> usize {
        self.tokens
    }

    /// Whether the view holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0
    }

    /// Channels per token.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Key row for token `t` (serving values: exact inside the residual
    /// window, dequantized outside it).
    pub fn key_row(&self, t: usize) -> &'a [f64] {
        let span = self.span_for(t);
        let o = (t - span.start) * self.channels;
        &span.keys[o..o + self.channels]
    }

    /// Value row for token `t`.
    pub fn value_row(&self, t: usize) -> &'a [f64] {
        let span = self.span_for(t);
        let o = (t - span.start) * self.channels;
        &span.values[o..o + self.channels]
    }

    fn span_for(&self, t: usize) -> &KvSpan<'a> {
        // Spans are ordered by start; scan from the back so decode-time
        // lookups into the private tail resolve on the first probe.
        self.spans
            .iter()
            .rev()
            .find(|s| t >= s.start)
            .unwrap_or_else(|| panic!("token {t} outside view of {} tokens", self.tokens))
    }

    /// Materializes the view as `(keys, values)` matrices
    /// (`tokens × channels`), the shape [`attention_output_error`] takes.
    pub fn to_matrices(&self) -> (Matrix, Matrix) {
        let mut keys = Vec::with_capacity(self.tokens * self.channels);
        let mut values = Vec::with_capacity(self.tokens * self.channels);
        for span in &self.spans {
            keys.extend_from_slice(span.keys);
            values.extend_from_slice(span.values);
        }
        let k = Matrix::from_vec(self.tokens, self.channels, keys);
        let v = Matrix::from_vec(self.tokens, self.channels, values);
        (k, v)
    }
}

/// An immutable run of KV rows shared between caches by refcount.
///
/// Segments are produced by [`LayerKvCache::share_prefix`] (freezing a
/// cache's own rows) or [`KvSegment::from_cache`] (copying a row range
/// out of a live cache), and consumed by [`LayerKvCache::attach`]. Once
/// built, a segment's rows never change: attachees append into their own
/// private tails and the segment is dropped when its last holder goes
/// away. In quantized mode every row of a segment is already quantized
/// (its serving values are frozen by the quantize-at-most-once
/// invariant) and its length is a whole number of groups, so attaching
/// it preserves the group-aligned boundary invariant of the aging
/// machinery.
#[derive(Debug, Clone)]
pub struct KvSegment {
    channels: usize,
    mode: KvMode,
    /// Serving keys, `tokens × channels` row-major by token.
    keys: Vec<f64>,
    /// Serving values, same layout.
    values: Vec<f64>,
}

impl KvSegment {
    /// Copies serving rows `[lo, hi)` out of `cache` into a new
    /// immutable segment. Rows are copied bitwise — for an exact cache
    /// the segment reproduces a cold prefill exactly; for a quantized
    /// cache the rows carry their frozen post-quantization serving
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `hi > cache.len()`; in quantized mode,
    /// panics unless `lo` and `hi` are group-aligned and the range lies
    /// entirely inside the cache's quantized prefix (unquantized rows
    /// are still mutable and cannot be shared).
    pub fn from_cache(cache: &LayerKvCache, lo: usize, hi: usize) -> Self {
        assert!(
            lo < hi && hi <= cache.len(),
            "bad segment range [{lo}, {hi})"
        );
        if let KvMode::Quantized(cfg) = cache.mode {
            assert!(
                lo.is_multiple_of(cfg.group) && hi.is_multiple_of(cfg.group),
                "quantized KV segment boundaries must be group-aligned: \
                 [{lo}, {hi}), group = {}",
                cfg.group
            );
            assert!(
                hi <= cache.quantized_len(),
                "quantized KV segment must lie inside the quantized prefix: \
                 hi = {hi}, quantized = {}",
                cache.quantized_len()
            );
        }
        let ch = cache.channels;
        let mut keys = Vec::with_capacity((hi - lo) * ch);
        let mut values = Vec::with_capacity((hi - lo) * ch);
        for t in lo..hi {
            keys.extend_from_slice(cache.key_row(t));
            values.extend_from_slice(cache.value_row(t));
        }
        Self {
            channels: ch,
            mode: cache.mode,
            keys,
            values,
        }
    }

    /// Copies rows `[lo, hi)` of this segment into a new segment —
    /// the split primitive for prefix-trie nodes.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds; in quantized mode,
    /// panics on a misaligned split (`lo` or `hi` off a group boundary).
    pub fn slice(&self, lo: usize, hi: usize) -> Self {
        assert!(
            lo < hi && hi <= self.len(),
            "bad segment range [{lo}, {hi})"
        );
        if let KvMode::Quantized(cfg) = self.mode {
            assert!(
                lo.is_multiple_of(cfg.group) && hi.is_multiple_of(cfg.group),
                "quantized KV segment split must be group-aligned: \
                 [{lo}, {hi}), group = {}",
                cfg.group
            );
        }
        let ch = self.channels;
        Self {
            channels: ch,
            mode: self.mode,
            keys: self.keys[lo * ch..hi * ch].to_vec(),
            values: self.values[lo * ch..hi * ch].to_vec(),
        }
    }

    /// Tokens in the segment.
    pub fn len(&self) -> usize {
        self.keys.len() / self.channels.max(1)
    }

    /// Whether the segment holds no tokens (never true for segments
    /// built through the public constructors).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Channels per token.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The storage mode the segment's rows were produced under.
    pub fn mode(&self) -> KvMode {
        self.mode
    }

    /// Serving key row for token `t` (segment-relative).
    pub fn key_row(&self, t: usize) -> &[f64] {
        &self.keys[t * self.channels..(t + 1) * self.channels]
    }

    /// Serving value row for token `t` (segment-relative).
    pub fn value_row(&self, t: usize) -> &[f64] {
        &self.values[t * self.channels..(t + 1) * self.channels]
    }

    /// Storage-format bytes for the segment's rows, with the same
    /// accounting as [`LayerKvCache::storage_bytes`]. In quantized mode
    /// every row is quantized, so this is the quantized payload plus
    /// exponent bytes; in exact mode it is plain fp64 rows.
    pub fn storage_bytes(&self) -> usize {
        let n = self.len();
        match self.mode {
            KvMode::Exact => 2 * n * self.channels * 8,
            KvMode::Quantized(cfg) if cfg.group > 0 => {
                let payload = 2 * n * self.channels * cfg.bits as usize / 8;
                let key_blocks = n.div_ceil(cfg.group) * self.channels;
                let value_blocks = n * self.channels.div_ceil(cfg.group);
                payload + key_blocks + value_blocks
            }
            KvMode::Quantized(_) => 0,
        }
    }
}

/// An appendable per-layer KV cache for incremental decode.
///
/// Rows are `channels`-wide key/value vectors in token order. In
/// [`KvMode::Exact`] the cache is a plain growable fp64 store. In
/// [`KvMode::Quantized`] the most recent `residual` tokens are served
/// exactly; once a full `group` of tokens has aged past the residual
/// window it is quantized **in place** (keys per channel over the token
/// chunk, values per token over channel chunks — the same chunking
/// [`quantize_kv_cache`] uses, so an incremental cache whose quantized
/// span is group-aligned matches the one-shot path exactly) and served
/// dequantized from then on. A token is quantized at most once; its
/// serving value never changes again afterwards.
///
/// # Copy-on-write prefix sharing
///
/// A cache is a run of refcounted immutable *shared segments*
/// ([`KvSegment`], attached via [`LayerKvCache::attach`] while the cache
/// is still empty of private rows) followed by a *private tail* that
/// appends normally. Shared segments are never mutated — every holder
/// serves the same frozen rows — and [`LayerKvCache::share_prefix`]
/// moves a cache's own completed rows into a new shared segment so
/// clones of the cache (generation forks) reference them instead of
/// copying. Token indices are always global: accessors and `len()` span
/// shared and private rows alike, so attention code is oblivious to
/// where a row is stored.
#[derive(Debug, Clone)]
pub struct LayerKvCache {
    channels: usize,
    mode: KvMode,
    /// Immutable shared prefix segments, in token order.
    shared: Vec<Arc<KvSegment>>,
    /// Total tokens covered by `shared`.
    base: usize,
    /// Private-tail serving keys, `tokens × channels` row-major; row 0
    /// is global token `base`.
    keys: Vec<f64>,
    /// Private-tail serving values, same layout.
    values: Vec<f64>,
    /// Tokens `[0, quantized_tokens)` (global) have quantized storage.
    /// Always `>= base` in quantized mode (shared segments are fully
    /// quantized); always 0 in exact mode.
    quantized_tokens: usize,
}

impl LayerKvCache {
    /// Creates an empty exact (fp64) cache.
    pub fn exact(channels: usize) -> Self {
        Self {
            channels,
            mode: KvMode::Exact,
            shared: Vec::new(),
            base: 0,
            keys: Vec::new(),
            values: Vec::new(),
            quantized_tokens: 0,
        }
    }

    /// Creates an empty quantized cache.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for a zero group size.
    pub fn quantized(channels: usize, cfg: KvCacheConfig) -> Result<Self, QuantError> {
        if cfg.group == 0 {
            return Err(QuantError::InvalidConfig {
                reason: "kv group size must be positive".to_string(),
            });
        }
        Ok(Self {
            channels,
            mode: KvMode::Quantized(cfg),
            shared: Vec::new(),
            base: 0,
            keys: Vec::new(),
            values: Vec::new(),
            quantized_tokens: 0,
        })
    }

    /// Creates an empty cache in the given mode.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for a zero group size in
    /// quantized mode.
    pub fn with_mode(channels: usize, mode: KvMode) -> Result<Self, QuantError> {
        match mode {
            KvMode::Exact => Ok(Self::exact(channels)),
            KvMode::Quantized(cfg) => Self::quantized(channels, cfg),
        }
    }

    /// Channels per token.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Total tokens the cache serves: attached shared rows plus the
    /// private tail.
    pub fn len(&self) -> usize {
        self.base + self.keys.len() / self.channels.max(1)
    }

    /// Whether the cache holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tokens the cache owns privately (excludes attached shared
    /// segments). This is what per-request occupancy gauges charge: a
    /// shared prefix is accounted once by whoever retains its segments
    /// (e.g. a prefix cache), not per attachee.
    pub fn owned_len(&self) -> usize {
        self.keys.len() / self.channels.max(1)
    }

    /// Tokens covered by attached shared segments.
    pub fn shared_len(&self) -> usize {
        self.base
    }

    /// The attached shared segments, in token order.
    pub fn shared_segments(&self) -> &[Arc<KvSegment>] {
        &self.shared
    }

    /// The storage mode.
    pub fn mode(&self) -> KvMode {
        self.mode
    }

    /// Tokens whose storage has been quantized (always 0 in exact mode).
    pub fn quantized_len(&self) -> usize {
        self.quantized_tokens
    }

    /// Bytes this cache's tokens would occupy in their *storage* format:
    /// exact tokens at `2 × channels × 8` bytes (fp64 K + V rows),
    /// quantized tokens at `2 × channels × bits / 8` plus one shared
    /// exponent byte per quantization block — keys carry one block per
    /// (channel, token group), values one block per token per
    /// `group`-wide channel chunk, mirroring [`Self::append`]'s
    /// chunking. Serving buffers hold dequantized fp64 regardless; this
    /// is the accounting figure eviction policies and occupancy gauges
    /// budget against.
    pub fn storage_bytes(&self) -> usize {
        self.shared.iter().map(|s| s.storage_bytes()).sum::<usize>() + self.owned_storage_bytes()
    }

    /// Storage-format bytes of the private tail only — the per-request
    /// share of [`Self::storage_bytes`] once attached segments are
    /// accounted by their retaining owner instead.
    pub fn owned_storage_bytes(&self) -> usize {
        let owned_quantized = self.quantized_tokens.saturating_sub(self.base);
        let exact_tokens = self.owned_len() - owned_quantized;
        let exact = 2 * exact_tokens * self.channels * 8;
        let quantized = match self.mode {
            KvMode::Quantized(cfg) if cfg.group > 0 => {
                let payload = 2 * owned_quantized * self.channels * cfg.bits as usize / 8;
                let key_blocks = owned_quantized.div_ceil(cfg.group) * self.channels;
                let value_blocks = owned_quantized * self.channels.div_ceil(cfg.group);
                payload + key_blocks + value_blocks
            }
            _ => 0,
        };
        exact + quantized
    }

    /// Attaches an immutable shared segment to the end of the shared
    /// prefix, copy-on-write: the segment's rows are served in place and
    /// never mutated; subsequent [`Self::append`]s go to the private
    /// tail. In quantized mode the cache's quantized prefix extends over
    /// the attached rows (they are fully quantized by construction), so
    /// aging resumes group-aligned from the new base.
    ///
    /// # Panics
    ///
    /// Panics if the cache already has private rows (attach is an
    /// admission-time operation, before any suffix prefill), if the
    /// segment's channels or mode disagree with the cache's, or — in
    /// quantized mode — if the segment's length is not group-aligned.
    pub fn attach(&mut self, seg: Arc<KvSegment>) {
        assert!(
            self.keys.is_empty(),
            "attach requires an empty private tail (cache has {} private rows)",
            self.owned_len()
        );
        assert_eq!(seg.channels(), self.channels, "segment channel width");
        assert_eq!(seg.mode(), self.mode, "segment storage mode");
        if let KvMode::Quantized(cfg) = self.mode {
            assert!(
                seg.len().is_multiple_of(cfg.group),
                "quantized KV segment must be group-aligned: len = {}, group = {}",
                seg.len(),
                cfg.group
            );
        }
        self.base += seg.len();
        if matches!(self.mode, KvMode::Quantized(_)) {
            self.quantized_tokens = self.base;
        }
        self.shared.push(seg);
    }

    /// Freezes the cache's own rows `[base, upto)` into a new refcounted
    /// shared segment, leaving the cache serving them through the
    /// segment instead. Returns the segment so callers can hand it to
    /// other caches ([`Self::attach`]) or retain it in a prefix cache;
    /// returns `None` when `upto` is already covered by shared segments
    /// (nothing new to share). After sharing, cloning the cache is cheap
    /// for the shared prefix — only the remaining private tail is
    /// copied.
    ///
    /// # Panics
    ///
    /// Panics if `upto > len()`; in quantized mode, panics unless `upto`
    /// is group-aligned and within the quantized prefix (mutable rows
    /// cannot be frozen).
    pub fn share_prefix(&mut self, upto: usize) -> Option<Arc<KvSegment>> {
        if upto <= self.base {
            return None;
        }
        assert!(
            upto <= self.len(),
            "share_prefix past end: {upto} > {}",
            self.len()
        );
        if let KvMode::Quantized(cfg) = self.mode {
            assert!(
                upto.is_multiple_of(cfg.group),
                "quantized KV share boundary must be group-aligned: \
                 upto = {upto}, group = {}",
                cfg.group
            );
            assert!(
                upto <= self.quantized_tokens,
                "cannot share unquantized rows: upto = {upto}, quantized = {}",
                self.quantized_tokens
            );
        }
        let ch = self.channels;
        let cut = (upto - self.base) * ch;
        let seg = Arc::new(KvSegment {
            channels: ch,
            mode: self.mode,
            keys: self.keys[..cut].to_vec(),
            values: self.values[..cut].to_vec(),
        });
        self.keys.drain(..cut);
        self.values.drain(..cut);
        self.base = upto;
        self.shared.push(Arc::clone(&seg));
        Some(seg)
    }

    /// Appends one token's key/value rows, then (in quantized mode)
    /// quantizes any full group of tokens that has aged out of the
    /// residual window.
    ///
    /// # Panics
    ///
    /// Panics if either row's length differs from `channels`.
    pub fn append(&mut self, key_row: &[f64], value_row: &[f64]) {
        assert_eq!(key_row.len(), self.channels, "key row width");
        assert_eq!(value_row.len(), self.channels, "value row width");
        self.keys.extend_from_slice(key_row);
        self.values.extend_from_slice(value_row);
        if let KvMode::Quantized(cfg) = self.mode {
            // Quantize whole groups once every token in the group is
            // older than the residual window. Group boundaries align to
            // multiples of `cfg.group` from token 0, matching the
            // one-shot chunking.
            while self.len() - self.quantized_tokens >= cfg.group + cfg.residual {
                self.quantize_group(cfg);
            }
        }
    }

    /// Quantizes tokens `[quantized_tokens, quantized_tokens + group)` in
    /// place: keys per channel along the token chunk, values per token in
    /// channel chunks.
    fn quantize_group(&mut self, cfg: KvCacheConfig) {
        // Global token range; rows live in the private tail (attached
        // shared segments are already quantized, so
        // `quantized_tokens >= base` always holds here).
        let lo = self.quantized_tokens;
        let hi = lo + cfg.group;
        debug_assert!(lo >= self.base, "quantizing into shared rows");
        let ch = self.channels;
        let base = self.base;
        for c in 0..ch {
            let col: Vec<f64> = (lo..hi).map(|t| self.keys[(t - base) * ch + c]).collect();
            let block = MxIntBlock::quantize(&col, cfg.bits);
            for (i, v) in block.dequantize().into_iter().enumerate() {
                self.keys[(lo + i - base) * ch + c] = v;
            }
        }
        for t in lo..hi {
            let p = t - base;
            let row = self.values[p * ch..(p + 1) * ch].to_vec();
            for (g, chunk) in row.chunks(cfg.group).enumerate() {
                let block = MxIntBlock::quantize(chunk, cfg.bits);
                for (i, v) in block.dequantize().into_iter().enumerate() {
                    self.values[p * ch + g * cfg.group + i] = v;
                }
            }
        }
        self.quantized_tokens = hi;
    }

    /// Serving key row for (global) token `t`, resolved to the shared
    /// segment or private tail that stores it.
    pub fn key_row(&self, t: usize) -> &[f64] {
        if t >= self.base {
            let o = (t - self.base) * self.channels;
            return &self.keys[o..o + self.channels];
        }
        let (seg, rel) = self.resolve_shared(t);
        seg.key_row(rel)
    }

    /// Serving value row for (global) token `t`.
    pub fn value_row(&self, t: usize) -> &[f64] {
        if t >= self.base {
            let o = (t - self.base) * self.channels;
            return &self.values[o..o + self.channels];
        }
        let (seg, rel) = self.resolve_shared(t);
        seg.value_row(rel)
    }

    fn resolve_shared(&self, t: usize) -> (&KvSegment, usize) {
        let mut rem = t;
        for seg in &self.shared {
            if rem < seg.len() {
                return (seg, rem);
            }
            rem -= seg.len();
        }
        panic!("token {t} outside cache of {} tokens", self.len())
    }

    /// A read-only view over every token's serving values — shared
    /// segments and private tail stitched into one token-indexed view.
    pub fn view(&self) -> KvView<'_> {
        let mut spans = Vec::with_capacity(self.shared.len() + 1);
        let mut start = 0;
        for seg in &self.shared {
            spans.push(KvSpan {
                start,
                keys: &seg.keys,
                values: &seg.values,
            });
            start += seg.len();
        }
        if !self.keys.is_empty() {
            spans.push(KvSpan {
                start,
                keys: &self.keys,
                values: &self.values,
            });
        }
        KvView {
            spans,
            tokens: self.len(),
            channels: self.channels,
        }
    }

    /// Drops every token at position `n` and beyond — speculative-decode
    /// rollback and prefix rewind. A no-op when `n >= len()`.
    ///
    /// Truncating within the exact residual tail is always legal and the
    /// surviving prefix is bitwise untouched, so re-appending the same
    /// rows reproduces the original cache exactly. Cutting into the
    /// quantized prefix is only legal on a group boundary: quantization
    /// blocks span `group` tokens, so a mid-group cut would strand a
    /// partial block whose exponent was fit to tokens that no longer
    /// exist.
    ///
    /// With attached shared segments, truncation below the shared base
    /// is legal only on whole-segment boundaries: trailing segments are
    /// detached (their refcount drops; the rows themselves are immutable
    /// and other holders are unaffected), but a cut strictly inside a
    /// shared segment panics — shared rows cannot be partially disowned.
    ///
    /// # Panics
    ///
    /// Panics in quantized mode when `n` lands strictly inside the
    /// quantized prefix off a group boundary, or in any mode when `n`
    /// lands strictly inside an attached shared segment.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        if n < self.base {
            self.keys.clear();
            self.values.clear();
            while self.base > n {
                let start = self.base - self.shared.last().expect("base covered").len();
                assert!(
                    start >= n,
                    "truncation inside a shared KV segment: n = {n}, \
                     segment covers [{start}, {})",
                    self.base
                );
                self.shared.pop();
                self.base = start;
            }
            self.quantized_tokens = self.quantized_tokens.min(n);
            return;
        }
        if let KvMode::Quantized(cfg) = self.mode {
            if n < self.quantized_tokens {
                assert!(
                    n.is_multiple_of(cfg.group),
                    "quantized KV truncation must be group-aligned: \
                     n = {n}, group = {}, quantized prefix = {}",
                    cfg.group,
                    self.quantized_tokens
                );
                self.quantized_tokens = n;
            }
        }
        self.keys.truncate((n - self.base) * self.channels);
        self.values.truncate((n - self.base) * self.channels);
    }
}

/// Scaled-dot-product attention with a numerically stable softmax.
fn attention(q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
    let scale = 1.0 / (k.cols() as f64).sqrt();
    let mut scores = q.matmul(&k.transpose());
    scores.scale(scale);
    for r in 0..scores.rows() {
        let row = scores.row_mut(r);
        let max = row.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        for s in row.iter_mut() {
            *s = (*s - max).exp();
            sum += *s;
        }
        for s in row.iter_mut() {
            *s /= sum;
        }
    }
    scores.matmul(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_linalg::SeededRng;

    #[test]
    fn storage_bytes_accounts_exact_and_quantized_tokens() {
        let ch = 32;
        let mut exact = LayerKvCache::exact(ch);
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 8,
        };
        let mut quant = LayerKvCache::quantized(ch, cfg).unwrap();
        let row = vec![0.5; ch];
        for _ in 0..24 {
            exact.append(&row, &row);
            quant.append(&row, &row);
        }
        // Exact: 24 tokens × 2 rows × 32 channels × 8 bytes.
        assert_eq!(exact.storage_bytes(), 24 * 2 * ch * 8);
        // Quantized: two full groups (16 tokens) have aged out of the
        // 8-token residual window; 8 tokens remain exact. Payload
        // 2·16·32·4/8 bytes; exponents: one per (channel, token-group)
        // key block = 2 × 32, plus one per token per 8-wide value
        // chunk = 16 × 4.
        assert_eq!(quant.quantized_len(), 16);
        let payload = 2 * 16 * ch * 4 / 8;
        let exponents = 2 * ch + 16 * ch.div_ceil(8);
        assert_eq!(quant.storage_bytes(), 8 * 2 * ch * 8 + payload + exponents);
        assert!(quant.storage_bytes() < exact.storage_bytes());
    }

    #[test]
    fn exact_truncate_and_reappend_is_bitwise_identical() {
        let ch = 16;
        let mut rng = SeededRng::new(5);
        let rows: Vec<(Vec<f64>, Vec<f64>)> = (0..20)
            .map(|_| {
                let k: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
                let v: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
                (k, v)
            })
            .collect();
        let mut full = LayerKvCache::exact(ch);
        let mut cut = LayerKvCache::exact(ch);
        for (k, v) in &rows {
            full.append(k, v);
            cut.append(k, v);
        }
        cut.truncate(12);
        assert_eq!(cut.len(), 12);
        for (k, v) in &rows[12..] {
            cut.append(k, v);
        }
        assert_eq!(cut.len(), full.len());
        for t in 0..full.len() {
            assert_eq!(cut.key_row(t), full.key_row(t), "key row {t}");
            assert_eq!(cut.value_row(t), full.value_row(t), "value row {t}");
        }
        // Truncating past the end is a no-op.
        cut.truncate(100);
        assert_eq!(cut.len(), 20);
    }

    #[test]
    fn quantized_truncate_within_exact_tail_keeps_prefix() {
        let ch = 16;
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 8,
        };
        let mut cache = LayerKvCache::quantized(ch, cfg).unwrap();
        let mut rng = SeededRng::new(6);
        for _ in 0..20 {
            let k: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
            let v: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
            cache.append(&k, &v);
        }
        // 8 tokens quantized, 12 exact; cut inside the exact tail at any
        // alignment.
        assert_eq!(cache.quantized_len(), 8);
        let before: Vec<f64> = (0..11).flat_map(|t| cache.key_row(t).to_vec()).collect();
        cache.truncate(11);
        assert_eq!(cache.len(), 11);
        assert_eq!(cache.quantized_len(), 8, "quantized prefix untouched");
        let after: Vec<f64> = (0..11).flat_map(|t| cache.key_row(t).to_vec()).collect();
        assert_eq!(after, before);
    }

    #[test]
    fn quantized_truncate_on_group_boundary_shrinks_prefix() {
        let ch = 16;
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 0,
        };
        let mut cache = LayerKvCache::quantized(ch, cfg).unwrap();
        let row = vec![0.25; ch];
        for _ in 0..24 {
            cache.append(&row, &row);
        }
        assert_eq!(cache.quantized_len(), 24);
        cache.truncate(8);
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.quantized_len(), 8);
        // The cache keeps working: appends re-quantize from the new end.
        for _ in 0..8 {
            cache.append(&row, &row);
        }
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.quantized_len(), 16);
    }

    #[test]
    #[should_panic(expected = "group-aligned")]
    fn quantized_truncate_off_group_boundary_panics() {
        let ch = 16;
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 0,
        };
        let mut cache = LayerKvCache::quantized(ch, cfg).unwrap();
        let row = vec![0.25; ch];
        for _ in 0..16 {
            cache.append(&row, &row);
        }
        cache.truncate(5);
    }

    fn kv(seed: u64, tokens: usize, channels: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let k = Matrix::from_fn(tokens, channels, |_, c| {
            // Channel-structured key magnitudes (KIVI's motivation).
            rng.normal(0.0, if c % 7 == 0 { 2.0 } else { 0.5 })
        });
        let v = Matrix::from_fn(tokens, channels, |_, _| rng.normal(0.0, 0.8));
        let q = Matrix::from_fn(4, channels, |_, _| rng.normal(0.0, 0.5));
        (q, k, v)
    }

    #[test]
    fn residual_tokens_stay_exact() {
        let (_, k, v) = kv(1, 64, 16);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 16,
            residual: 16,
        };
        let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
        for t in 48..64 {
            for c in 0..16 {
                assert_eq!(qkv.keys[(t, c)], k[(t, c)]);
                assert_eq!(qkv.values[(t, c)], v[(t, c)]);
            }
        }
    }

    #[test]
    fn older_tokens_are_quantized() {
        let (_, k, v) = kv(2, 64, 16);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 16,
            residual: 16,
        };
        let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
        let changed = (0..48)
            .flat_map(|t| (0..16).map(move |c| (t, c)))
            .filter(|&(t, c)| qkv.keys[(t, c)] != k[(t, c)])
            .count();
        assert!(changed > 100, "only {changed} key entries changed");
    }

    #[test]
    fn attention_error_nonzero_and_bounded() {
        // 2-bit KV on unstructured Gaussian caches is the hard case (the
        // paper's Table 7 shows a visible +0.50 PPL cost); 4-bit should be
        // comfortably accurate.
        let (q, k, v) = kv(3, 128, 32);
        let err_at = |bits| {
            let cfg = KvCacheConfig {
                bits,
                group: 32,
                residual: 32,
            };
            let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
            attention_output_error(&q, &k, &v, &qkv)
        };
        let e2 = err_at(2);
        assert!(e2 > 0.0 && e2 < 1.5, "2-bit attention error {e2}");
        assert!(err_at(4) < 0.4, "4-bit attention error {}", err_at(4));
    }

    #[test]
    fn more_bits_reduce_attention_error() {
        let (q, k, v) = kv(4, 128, 32);
        let err_at = |bits| {
            let cfg = KvCacheConfig {
                bits,
                group: 32,
                residual: 32,
            };
            let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
            attention_output_error(&q, &k, &v, &qkv)
        };
        assert!(err_at(4) < err_at(2));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let k = Matrix::zeros(8, 4);
        let v = Matrix::zeros(8, 6);
        assert!(quantize_kv_cache(&k, &v, KvCacheConfig::default()).is_err());
    }

    #[test]
    fn exact_cache_round_trips_appends() {
        let mut rng = SeededRng::new(7);
        let mut cache = LayerKvCache::exact(8);
        let rows: Vec<(Vec<f64>, Vec<f64>)> = (0..20)
            .map(|_| {
                let k: Vec<f64> = (0..8).map(|_| rng.normal(0.0, 1.0)).collect();
                let v: Vec<f64> = (0..8).map(|_| rng.normal(0.0, 1.0)).collect();
                (k, v)
            })
            .collect();
        for (k, v) in &rows {
            cache.append(k, v);
        }
        assert_eq!(cache.len(), 20);
        assert_eq!(cache.quantized_len(), 0);
        let view = cache.view();
        for (t, (k, v)) in rows.iter().enumerate() {
            assert_eq!(view.key_row(t), k.as_slice());
            assert_eq!(view.value_row(t), v.as_slice());
        }
    }

    #[test]
    fn incremental_matches_one_shot_when_group_aligned() {
        // 48 tokens, residual 16, group 16: the one-shot path quantizes
        // tokens [0, 32) in two full groups — exactly what the appendable
        // cache does as those groups age out of the residual window.
        let (_, k, v) = kv(8, 48, 16);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 16,
            residual: 16,
        };
        let one_shot = quantize_kv_cache(&k, &v, cfg).unwrap();
        let mut cache = LayerKvCache::quantized(16, cfg).unwrap();
        for t in 0..48 {
            cache.append(k.row(t), v.row(t));
        }
        assert_eq!(cache.quantized_len(), 32);
        let (ck, cv) = cache.view().to_matrices();
        assert_eq!(ck, one_shot.keys, "incremental keys diverged");
        assert_eq!(cv, one_shot.values, "incremental values diverged");
    }

    #[test]
    fn residual_window_tokens_served_exactly() {
        let (_, k, v) = kv(9, 40, 8);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 8,
            residual: 8,
        };
        let mut cache = LayerKvCache::quantized(8, cfg).unwrap();
        for t in 0..40 {
            cache.append(k.row(t), v.row(t));
        }
        // Everything not yet quantized — the residual window and any
        // partial trailing group — is served bit-exactly.
        for t in cache.quantized_len()..40 {
            assert_eq!(cache.key_row(t), k.row(t));
            assert_eq!(cache.value_row(t), v.row(t));
        }
        // And the quantized prefix really was quantized.
        let changed = (0..cache.quantized_len())
            .flat_map(|t| (0..8).map(move |c| (t, c)))
            .filter(|&(t, c)| cache.key_row(t)[c] != k[(t, c)])
            .count();
        assert!(changed > 20, "only {changed} quantized key entries changed");
    }

    #[test]
    fn quantized_tokens_never_requantize() {
        let (_, k, v) = kv(10, 64, 8);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 8,
            residual: 8,
        };
        let mut cache = LayerKvCache::quantized(8, cfg).unwrap();
        for t in 0..32 {
            cache.append(k.row(t), v.row(t));
        }
        let frozen: Vec<f64> = (0..cache.quantized_len())
            .flat_map(|t| cache.key_row(t).to_vec())
            .collect();
        let frozen_len = cache.quantized_len();
        for t in 32..64 {
            cache.append(k.row(t), v.row(t));
        }
        let now: Vec<f64> = (0..frozen_len)
            .flat_map(|t| cache.key_row(t).to_vec())
            .collect();
        assert_eq!(frozen, now, "previously quantized tokens changed");
    }

    #[test]
    fn appendable_cache_attention_error_bounded() {
        // The serving view of a quantized appendable cache must stay
        // within the documented attention-error bound (same regime as the
        // one-shot 2-bit test above: < 1.5 relative Frobenius error, with
        // 4-bit comfortably tighter than 2-bit).
        let (q, k, v) = kv(11, 128, 32);
        let err_at = |bits| {
            let cfg = KvCacheConfig {
                bits,
                group: 32,
                residual: 32,
            };
            let mut cache = LayerKvCache::quantized(32, cfg).unwrap();
            for t in 0..128 {
                cache.append(k.row(t), v.row(t));
            }
            let (ck, cv) = cache.view().to_matrices();
            attention_output_error(
                &q,
                &k,
                &v,
                &QuantizedKvCache {
                    keys: ck,
                    values: cv,
                },
            )
        };
        let e2 = err_at(2);
        assert!(e2 > 0.0 && e2 < 1.5, "2-bit appendable cache error {e2}");
        assert!(err_at(4) < err_at(2), "more bits must reduce error");
    }

    #[test]
    fn zero_group_quantized_cache_rejected() {
        let cfg = KvCacheConfig {
            bits: 2,
            group: 0,
            residual: 4,
        };
        assert!(LayerKvCache::quantized(8, cfg).is_err());
        assert!(LayerKvCache::with_mode(8, KvMode::Quantized(cfg)).is_err());
        assert!(LayerKvCache::with_mode(8, KvMode::Exact).is_ok());
    }

    fn random_rows(seed: u64, n: usize, ch: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|_| {
                let k: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
                let v: Vec<f64> = (0..ch).map(|_| rng.normal(0.0, 1.0)).collect();
                (k, v)
            })
            .collect()
    }

    #[test]
    fn shared_prefix_attach_serves_bitwise_identical_rows() {
        let ch = 8;
        let rows = random_rows(20, 24, ch);
        // Donor appends 16 rows and freezes them into a shared segment.
        let mut donor = LayerKvCache::exact(ch);
        for (k, v) in &rows[..16] {
            donor.append(k, v);
        }
        let seg = donor.share_prefix(16).expect("fresh rows to share");
        assert_eq!(donor.len(), 16);
        assert_eq!(donor.owned_len(), 0);
        assert_eq!(donor.shared_len(), 16);

        // Attachee reuses the segment and appends its own suffix.
        let mut attachee = LayerKvCache::exact(ch);
        attachee.attach(Arc::clone(&seg));
        for (k, v) in &rows[16..] {
            attachee.append(k, v);
        }
        // A cold cache over the same rows must match bitwise.
        let mut cold = LayerKvCache::exact(ch);
        for (k, v) in &rows {
            cold.append(k, v);
        }
        assert_eq!(attachee.len(), cold.len());
        assert_eq!(attachee.owned_len(), 8);
        let view = attachee.view();
        for t in 0..cold.len() {
            assert_eq!(attachee.key_row(t), cold.key_row(t), "key row {t}");
            assert_eq!(attachee.value_row(t), cold.value_row(t), "value row {t}");
            assert_eq!(view.key_row(t), cold.key_row(t), "view key row {t}");
            assert_eq!(view.value_row(t), cold.value_row(t), "view value row {t}");
        }
        // Three holders: donor, attachee, and the returned handle.
        assert_eq!(Arc::strong_count(&seg), 3);
        drop(donor);
        drop(attachee);
        assert_eq!(Arc::strong_count(&seg), 1, "holders release on drop");
    }

    #[test]
    fn forked_clones_share_prefix_and_diverge_independently() {
        let ch = 4;
        let rows = random_rows(21, 12, ch);
        let mut leader = LayerKvCache::exact(ch);
        for (k, v) in &rows[..10] {
            leader.append(k, v);
        }
        let seg = leader.share_prefix(10).unwrap();
        let mut fork = leader.clone();
        // Divergent tails: each appends different rows past the fork.
        leader.append(&rows[10].0, &rows[10].1);
        fork.append(&rows[11].0, &rows[11].1);
        assert_eq!(leader.key_row(10), rows[10].0.as_slice());
        assert_eq!(fork.key_row(10), rows[11].0.as_slice());
        for t in 0..10 {
            assert_eq!(leader.key_row(t), fork.key_row(t), "shared row {t}");
        }
        // Both clones plus the returned handle hold the segment.
        assert_eq!(Arc::strong_count(&seg), 3);
        // truncate back into the shared prefix detaches on the segment
        // boundary without disturbing the other fork.
        fork.truncate(0);
        assert_eq!(fork.len(), 0);
        assert_eq!(Arc::strong_count(&seg), 2);
        assert_eq!(leader.len(), 11);
        assert_eq!(leader.key_row(3), rows[3].0.as_slice());
    }

    #[test]
    #[should_panic(expected = "empty private tail")]
    fn attach_after_private_rows_panics() {
        let ch = 4;
        let mut donor = LayerKvCache::exact(ch);
        let row = vec![1.0; ch];
        donor.append(&row, &row);
        let seg = donor.share_prefix(1).unwrap();
        let mut cache = LayerKvCache::exact(ch);
        cache.append(&row, &row);
        cache.attach(seg);
    }

    #[test]
    #[should_panic(expected = "inside a shared KV segment")]
    fn truncate_inside_shared_segment_panics() {
        let ch = 4;
        let rows = random_rows(22, 8, ch);
        let mut cache = LayerKvCache::exact(ch);
        for (k, v) in &rows {
            cache.append(k, v);
        }
        cache.share_prefix(8).unwrap();
        cache.truncate(3);
    }

    #[test]
    fn quantized_share_and_attach_keep_group_invariants() {
        let ch = 8;
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 8,
        };
        let rows = random_rows(23, 40, ch);
        let mut donor = LayerKvCache::quantized(ch, cfg).unwrap();
        for (k, v) in &rows[..32] {
            donor.append(k, v);
        }
        // 32 appended, residual 8 → tokens [0, 24) quantized; the share
        // boundary must sit inside that prefix on a group boundary.
        assert_eq!(donor.quantized_len(), 24);
        let donor_rows: Vec<Vec<f64>> = (0..24).map(|t| donor.key_row(t).to_vec()).collect();
        let seg = donor.share_prefix(16).unwrap();
        assert_eq!(seg.len(), 16);

        let mut attachee = LayerKvCache::quantized(ch, cfg).unwrap();
        attachee.attach(seg);
        assert_eq!(attachee.len(), 16);
        assert_eq!(attachee.quantized_len(), 16, "attached rows are quantized");
        for (k, v) in &rows[16..40] {
            attachee.append(k, v);
        }
        // Aging resumed group-aligned past the attached base; the shared
        // rows serve the donor's frozen post-quantization values.
        assert_eq!(attachee.len(), 40);
        assert_eq!(attachee.quantized_len(), 32);
        for (t, row) in donor_rows.iter().take(16).enumerate() {
            assert_eq!(attachee.key_row(t), row.as_slice(), "frozen row {t}");
        }
    }

    #[test]
    #[should_panic(expected = "group-aligned")]
    fn quantized_share_off_group_boundary_panics() {
        let ch = 8;
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 0,
        };
        let rows = random_rows(24, 16, ch);
        let mut cache = LayerKvCache::quantized(ch, cfg).unwrap();
        for (k, v) in &rows {
            cache.append(k, v);
        }
        cache.share_prefix(5);
    }

    #[test]
    #[should_panic(expected = "group-aligned")]
    fn quantized_segment_misaligned_split_panics() {
        let ch = 8;
        let cfg = KvCacheConfig {
            bits: 4,
            group: 8,
            residual: 0,
        };
        let rows = random_rows(25, 16, ch);
        let mut cache = LayerKvCache::quantized(ch, cfg).unwrap();
        for (k, v) in &rows {
            cache.append(k, v);
        }
        let seg = cache.share_prefix(16).unwrap();
        let _ = seg.slice(0, 3);
    }

    #[test]
    fn segment_slice_splits_exact_rows_bitwise() {
        let ch = 4;
        let rows = random_rows(26, 10, ch);
        let mut cache = LayerKvCache::exact(ch);
        for (k, v) in &rows {
            cache.append(k, v);
        }
        let seg = cache.share_prefix(10).unwrap();
        let left = seg.slice(0, 6);
        let right = seg.slice(6, 10);
        assert_eq!(left.len(), 6);
        assert_eq!(right.len(), 4);
        for t in 0..6 {
            assert_eq!(left.key_row(t), seg.key_row(t));
            assert_eq!(left.value_row(t), seg.value_row(t));
        }
        for t in 0..4 {
            assert_eq!(right.key_row(t), seg.key_row(6 + t));
        }
        assert_eq!(
            left.storage_bytes() + right.storage_bytes(),
            seg.storage_bytes()
        );
    }

    #[test]
    fn owned_accounting_excludes_shared_segments() {
        let ch = 16;
        let rows = random_rows(27, 24, ch);
        let mut cache = LayerKvCache::exact(ch);
        for (k, v) in &rows {
            cache.append(k, v);
        }
        let total = cache.storage_bytes();
        assert_eq!(cache.owned_storage_bytes(), total);
        let seg = cache.share_prefix(16).unwrap();
        // Total footprint unchanged; the owned share shrank to the tail.
        assert_eq!(cache.storage_bytes(), total);
        assert_eq!(cache.owned_storage_bytes(), 8 * 2 * ch * 8);
        assert_eq!(seg.storage_bytes(), 16 * 2 * ch * 8);
    }

    #[test]
    fn all_residual_cache_is_identity() {
        let (_, k, v) = kv(5, 32, 8);
        let cfg = KvCacheConfig {
            bits: 2,
            group: 8,
            residual: 64, // more than the cache holds
        };
        let qkv = quantize_kv_cache(&k, &v, cfg).unwrap();
        assert_eq!(qkv.keys, k);
        assert_eq!(qkv.values, v);
    }
}
