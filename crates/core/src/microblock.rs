//! Per-micro-block planning: outlier selection, Hessian-guided pruning of
//! least-important inliers, and the permutation list that records where the
//! outlier halves live (§4.3, Algorithm 1 Steps 2–3).

use crate::error::QuantError;

/// One permutation-list entry: the micro-block-relative locations of an
/// outlier's Upper and Lower halves (`{Upper_loc, Lower_loc}`, 6 bits at
/// `B_μ = 8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PermEntry {
    /// Slot holding the Upper half — the outlier's own position.
    pub upper_loc: u8,
    /// Slot holding the Lower half — a pruned inlier's position.
    pub lower_loc: u8,
}

/// The per-micro-block permutation list (at most `B_μ/2` entries).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PermutationList {
    entries: Vec<PermEntry>,
}

impl PermutationList {
    /// Creates a list from entries.
    ///
    /// # Panics
    ///
    /// Panics if there are more than `micro_block / 2` entries or any
    /// location is out of range.
    pub fn new(entries: Vec<PermEntry>, micro_block: usize) -> Self {
        assert!(
            entries.len() <= micro_block / 2,
            "at most Bμ/2 outliers per micro-block"
        );
        for e in &entries {
            assert!(
                (e.upper_loc as usize) < micro_block && (e.lower_loc as usize) < micro_block,
                "permutation location out of range"
            );
        }
        Self { entries }
    }

    /// The entries.
    pub fn entries(&self) -> &[PermEntry] {
        &self.entries
    }

    /// Number of outliers recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no outliers are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Packs to the on-chip bit format: `B_μ/2` entries of
    /// `2·log2(B_μ)` bits, zero-padded (paper: 24 bits at `B_μ = 8`).
    pub fn to_bits(&self, micro_block: usize) -> u64 {
        let loc_bits = (micro_block as u32).ilog2();
        let mut word = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            let entry = ((e.upper_loc as u64) << loc_bits) | e.lower_loc as u64;
            word |= entry << (i as u32 * 2 * loc_bits);
        }
        // Occupancy count rides in the top byte so decode knows how many
        // entries are real (slot 0/0 would otherwise be ambiguous).
        word | ((self.entries.len() as u64) << 56)
    }

    /// Unpacks from the bit format.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::CorruptMetadata`] if the count or locations
    /// are out of range.
    pub fn from_bits(word: u64, micro_block: usize) -> Result<Self, QuantError> {
        let loc_bits = (micro_block as u32).ilog2();
        let count = (word >> 56) as usize;
        if count > micro_block / 2 {
            return Err(QuantError::CorruptMetadata {
                offset: 0,
                reason: format!("permutation count {count} exceeds Bμ/2"),
            });
        }
        let mask = (1u64 << loc_bits) - 1;
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let raw = word >> (i as u32 * 2 * loc_bits);
            let lower = (raw & mask) as u8;
            let upper = ((raw >> loc_bits) & mask) as u8;
            entries.push(PermEntry {
                upper_loc: upper,
                lower_loc: lower,
            });
        }
        Ok(Self { entries })
    }
}

/// The quantization role assigned to each micro-block slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRole {
    /// Regular inlier, quantized to MX-INT.
    Inlier,
    /// Outlier: the slot keeps the Upper half; index into the μB's outlier
    /// list.
    OutlierUpper(usize),
    /// Pruned inlier hosting the Lower half of outlier `index`.
    PrunedLower(usize),
}

/// The plan for one micro-block: which slots are outliers, which inliers
/// are pruned to host the Lower halves, and the resulting permutation list.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroBlockPlan {
    /// Role of every slot.
    pub roles: Vec<SlotRole>,
    /// Positions (ascending) of the outliers kept at high precision.
    pub outlier_positions: Vec<usize>,
    /// Positions (one per outlier) pruned to host Lower halves.
    pub pruned_positions: Vec<usize>,
    /// The permutation list pairing each outlier with its Lower slot.
    pub perm: PermutationList,
    /// Flagged outliers demoted to inliers because the block exceeded
    /// `B_μ/2` outliers.
    pub demoted: usize,
}

impl MicroBlockPlan {
    /// A plan with no outliers: every slot is an inlier.
    pub fn all_inliers(len: usize) -> Self {
        Self {
            roles: vec![SlotRole::Inlier; len],
            outlier_positions: Vec::new(),
            pruned_positions: Vec::new(),
            perm: PermutationList::default(),
            demoted: 0,
        }
    }

    /// Builds the plan for a micro-block (Algorithm 1 Steps 2.0–2.4, 3.0).
    ///
    /// * `flagged` — 3σ outlier mask for the block's slots;
    /// * `weights` — current weight values (for demotion ordering);
    /// * `saliency` — pruning saliency per slot (`w²/[H⁻¹]ₚₚ`); lower is
    ///   pruned first;
    /// * `redistribute` — when false, no pruning happens (outliers are
    ///   stored side-band) and the perm list stays empty.
    ///
    /// At most `len/2` outliers are kept (Algorithm 1 L12); excess flagged
    /// values are demoted to inliers, smallest magnitude first.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree.
    pub fn build(flagged: &[bool], weights: &[f64], saliency: &[f64], redistribute: bool) -> Self {
        let len = flagged.len();
        assert_eq!(weights.len(), len, "weights length mismatch");
        assert_eq!(saliency.len(), len, "saliency length mismatch");
        let max_outliers = len / 2;

        let mut flagged_pos: Vec<usize> = (0..len).filter(|&i| flagged[i]).collect();
        let demoted = flagged_pos.len().saturating_sub(max_outliers);
        if demoted > 0 {
            // Keep the largest-magnitude outliers (Step 2.0's min() with
            // the preservation bias of §3.2).
            flagged_pos.sort_by(|&a, &b| {
                weights[b]
                    .abs()
                    .partial_cmp(&weights[a].abs())
                    .expect("finite weights")
            });
            flagged_pos.truncate(max_outliers);
            flagged_pos.sort_unstable();
        }
        let outlier_positions = flagged_pos;
        let n = outlier_positions.len();

        let mut roles = vec![SlotRole::Inlier; len];
        for (k, &p) in outlier_positions.iter().enumerate() {
            roles[p] = SlotRole::OutlierUpper(k);
        }

        if !redistribute || n == 0 {
            return Self {
                roles,
                outlier_positions,
                pruned_positions: Vec::new(),
                perm: PermutationList::default(),
                demoted,
            };
        }

        // Step 2.2: n least-salient inlier positions, pruned ascending by
        // saliency (ties broken by position for determinism).
        let mut inlier_pos: Vec<usize> = (0..len)
            .filter(|&i| !matches!(roles[i], SlotRole::OutlierUpper(_)))
            .collect();
        inlier_pos.sort_by(|&a, &b| {
            saliency[a]
                .partial_cmp(&saliency[b])
                .expect("finite saliency")
                .then(a.cmp(&b))
        });
        let mut pruned_positions: Vec<usize> = inlier_pos.into_iter().take(n).collect();
        pruned_positions.sort_unstable();

        let mut entries = Vec::with_capacity(n);
        for (k, (&o, &p)) in outlier_positions
            .iter()
            .zip(pruned_positions.iter())
            .enumerate()
        {
            roles[p] = SlotRole::PrunedLower(k);
            entries.push(PermEntry {
                upper_loc: o as u8,
                lower_loc: p as u8,
            });
        }
        let perm = PermutationList::new(entries, len.next_power_of_two());

        Self {
            roles,
            outlier_positions,
            pruned_positions,
            perm,
            demoted,
        }
    }

    /// Number of kept outliers.
    pub fn n_outliers(&self) -> usize {
        self.outlier_positions.len()
    }

    /// Verifies the (B_μ−n):B_μ structured-sparsity invariant: pruned and
    /// outlier slots are disjoint and counts match.
    pub fn check_invariants(&self) -> bool {
        let n = self.n_outliers();
        if !self.perm.is_empty() && self.pruned_positions.len() != n {
            return false;
        }
        self.outlier_positions
            .iter()
            .all(|p| !self.pruned_positions.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_saliency(len: usize) -> Vec<f64> {
        vec![1.0; len]
    }

    #[test]
    fn no_outliers_yields_trivial_plan() {
        let plan = MicroBlockPlan::build(&[false; 8], &[0.1; 8], &uniform_saliency(8), true);
        assert_eq!(plan.n_outliers(), 0);
        assert!(plan.perm.is_empty());
        assert!(plan.roles.iter().all(|r| matches!(r, SlotRole::Inlier)));
    }

    #[test]
    fn one_outlier_prunes_least_salient_inlier() {
        let flagged = [false, false, true, false, false, false, false, false];
        let weights = [0.1, 0.2, 5.0, 0.1, 0.1, 0.1, 0.1, 0.1];
        let mut sal = vec![1.0; 8];
        sal[6] = 0.01; // least important inlier
        let plan = MicroBlockPlan::build(&flagged, &weights, &sal, true);
        assert_eq!(plan.outlier_positions, vec![2]);
        assert_eq!(plan.pruned_positions, vec![6]);
        assert_eq!(
            plan.perm.entries()[0],
            PermEntry {
                upper_loc: 2,
                lower_loc: 6
            }
        );
        assert!(matches!(plan.roles[2], SlotRole::OutlierUpper(0)));
        assert!(matches!(plan.roles[6], SlotRole::PrunedLower(0)));
        assert!(plan.check_invariants());
    }

    #[test]
    fn outlier_slots_are_never_pruned() {
        // All outlier slots have tiny saliency; pruning must still pick
        // inlier slots only.
        let flagged = [true, true, false, false, true, false, false, false];
        let weights = [3.0, -4.0, 0.1, 0.1, 5.0, 0.1, 0.1, 0.1];
        let mut sal = vec![1.0; 8];
        sal[0] = 0.0;
        sal[1] = 0.0;
        sal[4] = 0.0;
        let plan = MicroBlockPlan::build(&flagged, &weights, &sal, true);
        assert_eq!(plan.n_outliers(), 3);
        assert!(plan.check_invariants());
        for p in &plan.pruned_positions {
            assert!(!plan.outlier_positions.contains(p));
        }
    }

    #[test]
    fn demotion_keeps_largest_magnitude() {
        // 6 flagged in a block of 8 → keep the 4 largest.
        let flagged = [true, true, true, true, true, true, false, false];
        let weights = [1.0, -9.0, 2.0, -8.0, 3.0, 7.0, 0.1, 0.1];
        let plan = MicroBlockPlan::build(&flagged, &weights, &uniform_saliency(8), true);
        assert_eq!(plan.demoted, 2);
        assert_eq!(plan.outlier_positions, vec![1, 3, 4, 5]); // magnitudes 9,8,3,7 → positions 1,3,5,4 sorted
        assert!(plan.check_invariants());
    }

    #[test]
    fn half_outliers_prunes_every_inlier() {
        let flagged = [true, false, true, false, true, false, true, false];
        let weights = [5.0, 0.1, 5.0, 0.2, 5.0, 0.3, 5.0, 0.4];
        let plan = MicroBlockPlan::build(&flagged, &weights, &uniform_saliency(8), true);
        assert_eq!(plan.n_outliers(), 4);
        assert_eq!(plan.pruned_positions, vec![1, 3, 5, 7]);
        // N:M pattern: (Bμ − n) = 4 non-zero slots out of 8... all of which
        // are outliers here.
        assert!(plan.check_invariants());
    }

    #[test]
    fn redistribute_off_keeps_all_inliers() {
        let flagged = [true, false, false, false, false, false, false, false];
        let weights = [5.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
        let plan = MicroBlockPlan::build(&flagged, &weights, &uniform_saliency(8), false);
        assert_eq!(plan.n_outliers(), 1);
        assert!(plan.pruned_positions.is_empty());
        assert!(plan.perm.is_empty());
    }

    #[test]
    fn perm_list_bit_roundtrip() {
        let entries = vec![
            PermEntry {
                upper_loc: 0,
                lower_loc: 2,
            },
            PermEntry {
                upper_loc: 3,
                lower_loc: 6,
            },
            PermEntry {
                upper_loc: 5,
                lower_loc: 7,
            },
        ];
        let list = PermutationList::new(entries.clone(), 8);
        let bits = list.to_bits(8);
        let back = PermutationList::from_bits(bits, 8).unwrap();
        assert_eq!(back.entries(), entries.as_slice());
    }

    #[test]
    fn perm_list_roundtrip_all_zero_entry() {
        // Entry {0,0} must survive thanks to the occupancy count.
        let list = PermutationList::new(
            vec![PermEntry {
                upper_loc: 0,
                lower_loc: 0,
            }],
            8,
        );
        let back = PermutationList::from_bits(list.to_bits(8), 8).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn corrupt_count_is_detected() {
        let word = 7u64 << 56; // count 7 > Bμ/2 = 4
        let err = PermutationList::from_bits(word, 8).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn paper_fig3_step3_pattern() {
        // Fig. 3(a) Step 3 row 2: permutation (0,3)(1,5)(4,7) for Bμ=8.
        let entries = vec![
            PermEntry {
                upper_loc: 0,
                lower_loc: 3,
            },
            PermEntry {
                upper_loc: 1,
                lower_loc: 5,
            },
            PermEntry {
                upper_loc: 4,
                lower_loc: 7,
            },
        ];
        let list = PermutationList::new(entries, 8);
        // 3 entries × 6 bits = 18 payload bits — fits the 24-bit budget.
        assert!(list.to_bits(8) & 0x00FF_FFFF_FFFF_FFFF < (1 << 18));
    }
}
