//! Property-based tests over the MX format invariants.

use microscopiq_mx::fp::TinyFloat;
use microscopiq_mx::halves::{
    merge_halves_fixed_point, reassemble_halves, split_into_halves, unpack_sign_mag,
};
use microscopiq_mx::mxfp::{MxFpBlock, MxScale};
use microscopiq_mx::mxint::{int_format_max, MxIntBlock};
use microscopiq_mx::scale::Pow2Scale;
use proptest::prelude::*;

fn small_weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-0.25f64..0.25, 1..64)
}

fn outlier_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(prop_oneof![0.05f64..2.0, -2.0f64..-0.05], 1..8)
}

proptest! {
    #[test]
    fn mxint_roundtrip_error_within_half_step(values in small_weights(), bits in 2u32..=8) {
        let block = MxIntBlock::quantize(&values, bits);
        let deq = block.dequantize();
        for (v, d) in values.iter().zip(deq.iter()) {
            prop_assert!((v - d).abs() <= block.half_step() + 1e-12,
                "bits={} v={} d={}", bits, v, d);
        }
    }

    #[test]
    fn mxint_codes_in_range(values in small_weights(), bits in 2u32..=8) {
        let block = MxIntBlock::quantize(&values, bits);
        let fmax = int_format_max(bits);
        for &c in block.codes() {
            prop_assert!(c.abs() <= fmax);
        }
    }

    #[test]
    fn pow2_scale_never_clips(max in 1e-6f64..1e6, fmax in prop_oneof![Just(1.0f64), Just(3.5), Just(7.0), Just(248.0)]) {
        let s = Pow2Scale::from_max(max, fmax);
        prop_assert!(s.apply(max) <= fmax * (1.0 + 1e-12));
    }

    #[test]
    fn mxfp_relative_error_bounded_for_uniform_blocks(
        base in 0.05f64..100.0,
        spread in prop::collection::vec(0.9f64..1.1, 1..8),
        negate in prop::collection::vec(any::<bool>(), 8),
    ) {
        // Outliers within ±10% of each other (the Bμ=8 regime). The shared
        // exponent confines representable magnitudes to [2^E, 1.9375·2^E];
        // with min/max as low as 0.9/1.1 ≈ 0.82 the floor clamp bounds the
        // worst relative error near (1−0.82)/0.82 ≈ 22%.
        let values: Vec<f64> = spread
            .iter()
            .enumerate()
            .map(|(i, s)| if negate[i % negate.len()] { -base * s } else { base * s })
            .collect();
        let block = MxFpBlock::quantize(&values, TinyFloat::E3M4);
        for (v, d) in values.iter().zip(block.dequantize().iter()) {
            prop_assert!(((v - d) / v).abs() < 0.25, "v={} d={}", v, d);
        }
    }

    #[test]
    fn mxfp_signs_always_preserved(values in outlier_values()) {
        let block = MxFpBlock::quantize(&values, TinyFloat::E1M2);
        for (v, d) in values.iter().zip(block.dequantize().iter()) {
            prop_assert!(v.signum() == d.signum(), "v={} d={}", v, d);
        }
    }

    #[test]
    fn mxscale_byte_roundtrip(level1 in -64i32..=63, micro in 0u32..=1) {
        let s = MxScale::new(level1, micro, TinyFloat::E1M2);
        prop_assert_eq!(MxScale::from_byte(s.to_byte(), TinyFloat::E1M2), s);
    }

    #[test]
    fn halves_roundtrip(sign in any::<bool>(), mantissa in 0u32..16) {
        let h = split_into_halves(sign, mantissa, 4);
        prop_assert_eq!(reassemble_halves(h), (sign, mantissa));
    }

    #[test]
    fn halves_bit_packing_roundtrip(sign in any::<bool>(), mantissa in 0u32..4) {
        let h = split_into_halves(sign, mantissa, 2);
        prop_assert_eq!(unpack_sign_mag(h.upper_bits(2), 2), h.upper_value());
        prop_assert_eq!(unpack_sign_mag(h.lower_bits(2), 2), h.lower_value());
    }

    #[test]
    fn fixed_point_merge_is_exact(
        sign in any::<bool>(),
        mantissa in 0u32..16,
        iact in -255i64..=255,
        iacc in -10_000i64..=10_000,
    ) {
        let h = split_into_halves(sign, mantissa, 4);
        let u = h.upper_value() as i64 * iact;
        let l = h.lower_value() as i64 * iact;
        let s = h.hidden_value() as i64 * iact;
        let got = merge_halves_fixed_point(u, l, s, iacc << 4, 4);
        let sign_f = if sign { -1.0 } else { 1.0 };
        let value = sign_f * (1.0 + mantissa as f64 / 16.0);
        let expect = (value * iact as f64 * 16.0).round() as i64 + (iacc << 4);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn tiny_float_quantize_is_nearest(v in 0.5f64..5.0) {
        let f = TinyFloat::E1M2;
        let q = f.decode(f.quantize(v)).abs();
        let clamped = v.clamp(1.0, f.max_value());
        for cand in f.positive_values() {
            prop_assert!((q - clamped).abs() <= (cand - clamped).abs() + 1e-12,
                "v={} chose {} but {} is closer", v, q, cand);
        }
    }
}
