//! MX-INT-b_k — the inlier format: symmetric two's-complement integers
//! sharing one 8-bit power-of-two scale per block (§2.2, §4.2).
//!
//! "MX-INT-b_k inlier quantization can be viewed as analogous to INT group
//! quantization utilizing an E8M0 scale factor" — the block scale is
//! computed per Eq. 1 and elements follow the symmetric mapping of Eq. 2.

use crate::scale::Pow2Scale;

/// Largest magnitude representable by a symmetric `bits`-bit two's-complement
/// integer (`2^(b−1) − 1`).
///
/// # Panics
///
/// Panics if `bits` is not in `1..=16`.
pub fn int_format_max(bits: u32) -> i32 {
    assert!((1..=16).contains(&bits), "unsupported integer width {bits}");
    (1 << (bits - 1)) - 1
}

/// A block of MX-INT-quantized values: integer codes plus the shared scale.
///
/// # Examples
///
/// ```
/// use microscopiq_mx::mxint::MxIntBlock;
///
/// let block = MxIntBlock::quantize(&[0.05, -0.02, 0.01, 0.0], 4);
/// assert_eq!(block.codes().len(), 4);
/// let err: f64 = block
///     .dequantize()
///     .iter()
///     .zip([0.05, -0.02, 0.01, 0.0])
///     .map(|(a, b)| (a - b).abs())
///     .sum();
/// assert!(err < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxIntBlock {
    codes: Vec<i32>,
    scale: Pow2Scale,
    bits: u32,
}

impl MxIntBlock {
    /// Quantizes a block of values to `bits`-bit MX-INT with a shared
    /// power-of-two scale derived from the block maximum.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=8`.
    pub fn quantize(values: &[f64], bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "inlier bits must be in 2..=8");
        let max_abs = values.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let scale = Pow2Scale::from_max(max_abs, int_format_max(bits) as f64);
        Self::quantize_with_scale(values, bits, scale)
    }

    /// Quantizes with an externally supplied scale (used when the scale is
    /// snapshotted before GPTQ error compensation mutates the block).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=8`.
    pub fn quantize_with_scale(values: &[f64], bits: u32, scale: Pow2Scale) -> Self {
        assert!((2..=8).contains(&bits), "inlier bits must be in 2..=8");
        let fmax = int_format_max(bits);
        let codes = values
            .iter()
            .map(|&v| {
                let q = scale.apply(v).round();
                (q as i64).clamp(-(fmax as i64), fmax as i64) as i32
            })
            .collect();
        Self { codes, scale, bits }
    }

    /// Quantizes one scalar with a given scale, returning the integer code.
    pub fn quantize_scalar(value: f64, bits: u32, scale: Pow2Scale) -> i32 {
        let fmax = int_format_max(bits);
        let q = scale.apply(value).round();
        (q as i64).clamp(-(fmax as i64), fmax as i64) as i32
    }

    /// Dequantizes one code with a given scale.
    pub fn dequantize_scalar(code: i32, scale: Pow2Scale) -> f64 {
        scale.unapply(code as f64)
    }

    /// The integer codes.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// The shared block scale.
    pub fn scale(&self) -> Pow2Scale {
        self.scale
    }

    /// The element bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Reconstructs real values.
    pub fn dequantize(&self) -> Vec<f64> {
        self.codes
            .iter()
            .map(|&c| self.scale.unapply(c as f64))
            .collect()
    }

    /// The worst-case absolute quantization error for in-range inputs:
    /// half a quantization step.
    pub fn half_step(&self) -> f64 {
        self.scale.value() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_max_values() {
        assert_eq!(int_format_max(2), 1);
        assert_eq!(int_format_max(4), 7);
        assert_eq!(int_format_max(8), 127);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let values: Vec<f64> = (0..64)
            .map(|i| ((i * 37 % 41) as f64 - 20.0) / 400.0)
            .collect();
        for bits in [2, 4, 8] {
            let block = MxIntBlock::quantize(&values, bits);
            let deq = block.dequantize();
            for (v, d) in values.iter().zip(deq.iter()) {
                assert!(
                    (v - d).abs() <= block.half_step() + 1e-12,
                    "bits={bits} v={v} d={d} step/2={}",
                    block.half_step()
                );
            }
        }
    }

    #[test]
    fn codes_stay_in_symmetric_range() {
        let values: Vec<f64> = (0..32).map(|i| (i as f64 - 16.0) * 0.013).collect();
        for bits in [2, 4, 8] {
            let block = MxIntBlock::quantize(&values, bits);
            let fmax = int_format_max(bits);
            for &c in block.codes() {
                assert!((-fmax..=fmax).contains(&c), "bits={bits} code={c}");
            }
        }
    }

    #[test]
    fn two_bit_codes_are_ternary_or_less() {
        let block = MxIntBlock::quantize(&[0.9, -0.9, 0.1, 0.0], 2);
        for &c in block.codes() {
            assert!((-1..=1).contains(&c));
        }
    }

    #[test]
    fn zero_block_quantizes_to_zero() {
        let block = MxIntBlock::quantize(&[0.0; 8], 4);
        assert!(block.codes().iter().all(|&c| c == 0));
        assert!(block.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_element_reaches_format_max() {
        // With a tight power-of-two scale the block max lands in the top
        // half of the integer range.
        let block = MxIntBlock::quantize(&[0.07, 0.01, -0.03, 0.0], 4);
        let top = block.codes().iter().map(|c| c.abs()).max().unwrap();
        assert!(top >= int_format_max(4) / 2, "top code {top}");
    }

    #[test]
    fn external_scale_is_respected() {
        let scale = Pow2Scale::new(-3);
        let block = MxIntBlock::quantize_with_scale(&[0.5, -0.25], 4, scale);
        assert_eq!(block.scale(), scale);
        assert_eq!(block.codes(), &[4, -2]); // 0.5/0.125 = 4, −0.25/0.125 = −2
    }

    #[test]
    fn scalar_helpers_match_block_path() {
        let scale = Pow2Scale::new(-4);
        let v = 0.3;
        let code = MxIntBlock::quantize_scalar(v, 4, scale);
        let block = MxIntBlock::quantize_with_scale(&[v], 4, scale);
        assert_eq!(code, block.codes()[0]);
        assert_eq!(
            MxIntBlock::dequantize_scalar(code, scale),
            block.dequantize()[0]
        );
    }

    #[test]
    fn clipping_applies_to_out_of_range_values() {
        let scale = Pow2Scale::new(0); // step 1, 4-bit max 7
        let block = MxIntBlock::quantize_with_scale(&[100.0, -100.0], 4, scale);
        assert_eq!(block.codes(), &[7, -7]);
    }
}
