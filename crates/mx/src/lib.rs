//! Microscaling (MX) data formats for the MicroScopiQ reproduction.
//!
//! Implements the block data representations of §2.2 of the paper:
//!
//! * [`mxint`] — MX-INT-b_k: two's-complement integers sharing an 8-bit
//!   power-of-two scale per block (inlier format).
//! * [`fp`] — tiny floating-point element formats e1m2 (4-bit) and e3m4
//!   (8-bit) used for outliers before exponent sharing.
//! * [`mxfp`] — MX-FP-b_{k1,k2}: level-1 power-of-two scale plus a level-2
//!   shared microexponent (μX) extracted from the element exponents; after
//!   sharing, every element is `±1.m × 2^μX` (sign + mantissa only).
//! * [`halves`] — the Upper/Lower mantissa-half split with duplicated sign
//!   that lets outlier bits ride in pruned inlier slots (§4.3), including
//!   the ≫-shift merge semantics ReCoN applies.
//! * [`scale`] — shared power-of-two scale arithmetic (E8M0-style
//!   exponents).
//!
//! # Examples
//!
//! ```
//! use microscopiq_mx::mxint::MxIntBlock;
//!
//! let weights = [0.02_f64, -0.01, 0.005, -0.03];
//! let block = MxIntBlock::quantize(&weights, 2);
//! let restored = block.dequantize();
//! assert_eq!(restored.len(), weights.len());
//! ```

pub mod fp;
pub mod halves;
pub mod mxfp;
pub mod mxint;
pub mod scale;

pub use fp::TinyFloat;
pub use halves::{merge_halves_fixed_point, split_into_halves, OutlierHalves};
pub use mxfp::{MxFpBlock, MxScale};
pub use mxint::MxIntBlock;
pub use scale::Pow2Scale;
