//! Tiny floating-point element formats for outliers: e1m2 (4-bit) and
//! e3m4 (8-bit).
//!
//! These are the per-element formats of §4.2 before microexponent sharing.
//! A value is `±1.m × 2^e` — always normal, because the MicroScopiQ
//! datapath adds the hidden bit unconditionally (ReCoN injects `iAct` for
//! the implicit `1.0`, §5.4), so no subnormal encodings exist. The exponent
//! is unbiased and non-negative (`0..2^eb`); block-level dynamic range is
//! provided by the level-1 power-of-two scale, not by negative element
//! exponents.

/// A tiny FP format with `eb` exponent bits and `mb` mantissa bits
/// (plus one sign bit).
///
/// # Examples
///
/// ```
/// use microscopiq_mx::fp::TinyFloat;
///
/// let e1m2 = TinyFloat::E1M2;
/// assert_eq!(e1m2.total_bits(), 4);
/// assert_eq!(e1m2.max_value(), 3.5);
/// let enc = e1m2.quantize(2.9);
/// assert_eq!(e1m2.decode(enc), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TinyFloat {
    exponent_bits: u32,
    mantissa_bits: u32,
}

/// One encoded tiny-float element: sign, exponent field, mantissa field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TinyFloatCode {
    /// Sign bit (true = negative).
    pub sign: bool,
    /// Unbiased exponent field value in `0..2^eb`.
    pub exponent: u32,
    /// Mantissa field value in `0..2^mb`.
    pub mantissa: u32,
}

impl TinyFloat {
    /// The 4-bit outlier element format (1 exponent, 2 mantissa bits).
    pub const E1M2: TinyFloat = TinyFloat {
        exponent_bits: 1,
        mantissa_bits: 2,
    };

    /// The 8-bit outlier element format (3 exponent, 4 mantissa bits).
    pub const E3M4: TinyFloat = TinyFloat {
        exponent_bits: 3,
        mantissa_bits: 4,
    };

    /// Creates a format with the given field widths.
    ///
    /// # Panics
    ///
    /// Panics if `exponent_bits` is not in `1..=5` or `mantissa_bits` is not
    /// an even value in `2..=6` (halving requires an even mantissa).
    pub fn new(exponent_bits: u32, mantissa_bits: u32) -> Self {
        assert!(
            (1..=5).contains(&exponent_bits),
            "unsupported exponent width"
        );
        assert!(
            (2..=6).contains(&mantissa_bits) && mantissa_bits.is_multiple_of(2),
            "mantissa width must be even and in 2..=6"
        );
        Self {
            exponent_bits,
            mantissa_bits,
        }
    }

    /// Selects the format whose total width is `bits` (4 → e1m2, 8 → e3m4),
    /// following §4.2.
    ///
    /// # Panics
    ///
    /// Panics for widths other than 4 or 8.
    pub fn for_outlier_bits(bits: u32) -> Self {
        match bits {
            4 => Self::E1M2,
            8 => Self::E3M4,
            other => panic!("no outlier format defined for {other}-bit elements"),
        }
    }

    /// Exponent field width.
    pub fn exponent_bits(&self) -> u32 {
        self.exponent_bits
    }

    /// Mantissa field width.
    pub fn mantissa_bits(&self) -> u32 {
        self.mantissa_bits
    }

    /// Total element width including sign.
    pub fn total_bits(&self) -> u32 {
        1 + self.exponent_bits + self.mantissa_bits
    }

    /// Largest exponent field value.
    pub fn max_exponent(&self) -> u32 {
        (1 << self.exponent_bits) - 1
    }

    /// Number of distinct mantissa values.
    pub fn mantissa_levels(&self) -> u32 {
        1 << self.mantissa_bits
    }

    /// Largest representable magnitude: `(2 − 2^−mb) × 2^emax`.
    pub fn max_value(&self) -> f64 {
        let frac_max = 2.0 - (-(self.mantissa_bits as f64)).exp2();
        frac_max * (self.max_exponent() as f64).exp2()
    }

    /// Smallest representable magnitude (`1.0 × 2^0`).
    pub fn min_value(&self) -> f64 {
        1.0
    }

    /// Decodes a code to its real magnitude-signed value.
    pub fn decode(&self, code: TinyFloatCode) -> f64 {
        let frac = 1.0 + code.mantissa as f64 / self.mantissa_levels() as f64;
        let mag = frac * (code.exponent as f64).exp2();
        if code.sign {
            -mag
        } else {
            mag
        }
    }

    /// Quantizes a value to the nearest representable code, clamping to the
    /// representable magnitude range `[1.0, max_value]`.
    ///
    /// Values with magnitude below 1.0 round up to the smallest normal —
    /// this format has no zero or subnormals (the hidden bit is added
    /// unconditionally by the hardware).
    pub fn quantize(&self, value: f64) -> TinyFloatCode {
        let sign = value < 0.0;
        let mag = value.abs().clamp(self.min_value(), self.max_value());
        // Candidate exponent: mag/2^e ∈ [1, 2).
        let e = (mag.log2().floor() as i64).clamp(0, self.max_exponent() as i64) as u32;
        let best = [e.saturating_sub(1), e, (e + 1).min(self.max_exponent())]
            .into_iter()
            .map(|exp| {
                let frac = mag / (exp as f64).exp2();
                let m = ((frac - 1.0) * self.mantissa_levels() as f64).round();
                let m = (m as i64).clamp(0, self.mantissa_levels() as i64 - 1) as u32;
                let code = TinyFloatCode {
                    sign,
                    exponent: exp,
                    mantissa: m,
                };
                let err = (self.decode(code).abs() - mag).abs();
                (code, err)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite errors"))
            .expect("non-empty candidates");
        best.0
    }

    /// Quantizes with a fixed exponent (used after μX sharing): the value is
    /// represented as `±1.m × 2^exponent`, with the mantissa rounded to
    /// nearest and clamped.
    ///
    /// # Panics
    ///
    /// Panics if `exponent > max_exponent()`.
    pub fn quantize_with_exponent(&self, value: f64, exponent: u32) -> TinyFloatCode {
        assert!(exponent <= self.max_exponent(), "exponent out of range");
        let sign = value < 0.0;
        let frac = value.abs() / (exponent as f64).exp2();
        let m = ((frac - 1.0) * self.mantissa_levels() as f64).round();
        let m = (m as i64).clamp(0, self.mantissa_levels() as i64 - 1) as u32;
        TinyFloatCode {
            sign,
            exponent,
            mantissa: m,
        }
    }

    /// Enumerates all representable positive magnitudes in ascending order.
    pub fn positive_values(&self) -> Vec<f64> {
        let mut v = Vec::new();
        for e in 0..=self.max_exponent() {
            for m in 0..self.mantissa_levels() {
                v.push(self.decode(TinyFloatCode {
                    sign: false,
                    exponent: e,
                    mantissa: m,
                }));
            }
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1m2_value_table_matches_paper_convention() {
        let vals = TinyFloat::E1M2.positive_values();
        assert_eq!(vals, vec![1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5]);
    }

    #[test]
    fn e3m4_range() {
        let f = TinyFloat::E3M4;
        assert_eq!(f.total_bits(), 8);
        assert_eq!(f.max_exponent(), 7);
        assert!((f.max_value() - 1.9375 * 128.0).abs() < 1e-12);
    }

    #[test]
    fn quantize_is_nearest_among_representables() {
        let f = TinyFloat::E1M2;
        let table = f.positive_values();
        for i in 0..100 {
            let v = 0.8 + i as f64 * 0.03; // spans below-min through above-max
            let q = f.decode(f.quantize(v)).abs();
            let clamped = v.clamp(1.0, f.max_value());
            let best = table
                .iter()
                .cloned()
                .min_by(|a, b| {
                    (a - clamped)
                        .abs()
                        .partial_cmp(&(b - clamped).abs())
                        .unwrap()
                })
                .unwrap();
            // Ties (e.g. 2.75 between 2.5 and 3.0) may break either way.
            assert!(
                (q - clamped).abs() <= (best - clamped).abs() + 1e-12,
                "v={v} chose {q}, nearest is {best}"
            );
        }
    }

    #[test]
    fn quantize_preserves_sign() {
        let f = TinyFloat::E1M2;
        assert!(f.decode(f.quantize(-2.6)) < 0.0);
        assert!(f.decode(f.quantize(2.6)) > 0.0);
    }

    #[test]
    fn walkthrough_value_from_figure_8() {
        // The paper's walkthrough outlier decodes to 1.5 = 1.10₂ with
        // mantissa m1m0 = 10 and exponent 0.
        let f = TinyFloat::E1M2;
        let code = f.quantize(1.5);
        assert_eq!(code.exponent, 0);
        assert_eq!(code.mantissa, 2);
        assert_eq!(f.decode(code), 1.5);
    }

    #[test]
    fn figure_3_step2_examples() {
        // Figure 3(a) Step 2: 2.99 → s0 e1 m10 (=3.0); −3.50 → s1 e1 m11.
        let f = TinyFloat::E1M2;
        let a = f.quantize(2.99);
        assert_eq!((a.sign, a.exponent, a.mantissa), (false, 1, 2));
        assert_eq!(f.decode(a), 3.0);
        let b = f.quantize(-3.50);
        assert_eq!((b.sign, b.exponent, b.mantissa), (true, 1, 3));
        assert_eq!(f.decode(b), -3.5);
    }

    #[test]
    fn sub_minimum_values_round_up_to_one() {
        let f = TinyFloat::E1M2;
        assert_eq!(f.decode(f.quantize(0.2)).abs(), 1.0);
    }

    #[test]
    fn above_max_clamps() {
        let f = TinyFloat::E1M2;
        assert_eq!(f.decode(f.quantize(100.0)), 3.5);
    }

    #[test]
    fn fixed_exponent_quantization_clamps_mantissa() {
        let f = TinyFloat::E1M2;
        // 3.9 at exponent 0 would need mantissa ≈ 11.6 → clamps to 3 (1.75).
        let code = f.quantize_with_exponent(3.9, 0);
        assert_eq!(code.mantissa, 3);
        assert_eq!(f.decode(code), 1.75);
        // 0.5 at exponent 0 clamps mantissa low to 0 (1.0).
        let lo = f.quantize_with_exponent(0.5, 0);
        assert_eq!(f.decode(lo), 1.0);
    }

    #[test]
    fn for_outlier_bits_selects_documented_formats() {
        assert_eq!(TinyFloat::for_outlier_bits(4), TinyFloat::E1M2);
        assert_eq!(TinyFloat::for_outlier_bits(8), TinyFloat::E3M4);
    }

    #[test]
    #[should_panic(expected = "no outlier format")]
    fn unsupported_width_panics() {
        let _ = TinyFloat::for_outlier_bits(6);
    }
}
