//! Power-of-two shared scale factors (E8M0-style exponents).
//!
//! Every shared scale in the MX family is a pure power of two `2^e` with the
//! exponent `e` stored in 8 bits. Following Eq. 1 of the paper, the exponent
//! is derived from the block maximum so that the largest element maps inside
//! the target format's representable range.

/// The most negative exponent an 8-bit scale can carry.
pub const MIN_EXPONENT: i32 = -127;
/// The most positive exponent an 8-bit scale can carry.
pub const MAX_EXPONENT: i32 = 127;

/// A power-of-two scale factor `2^exponent` with an E8M0-representable
/// exponent.
///
/// # Examples
///
/// ```
/// use microscopiq_mx::scale::Pow2Scale;
///
/// let s = Pow2Scale::from_max(0.06, 1.0); // 2-bit inliers: max_int = 1
/// assert!(s.exponent() < 0, "inlier scales are negative powers of two");
/// let q = s.apply(0.06);
/// assert!(q.abs() <= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pow2Scale(i32);

impl Pow2Scale {
    /// Creates a scale `2^exponent`, clamping into the representable range.
    pub fn new(exponent: i32) -> Self {
        Self(exponent.clamp(MIN_EXPONENT, MAX_EXPONENT))
    }

    /// Identity scale `2^0`.
    pub fn one() -> Self {
        Self(0)
    }

    /// Derives the smallest power-of-two scale such that
    /// `max_abs / 2^e <= format_max` (Eq. 1 rounded up to a power of two).
    ///
    /// A zero or non-finite `max_abs` yields the minimum exponent so that
    /// every element quantizes to zero.
    ///
    /// # Panics
    ///
    /// Panics if `format_max` is not strictly positive.
    pub fn from_max(max_abs: f64, format_max: f64) -> Self {
        assert!(format_max > 0.0, "format_max must be positive");
        if !(max_abs.is_finite()) || max_abs <= 0.0 {
            return Self(MIN_EXPONENT);
        }
        let e = (max_abs / format_max).log2().ceil() as i32;
        Self::new(e)
    }

    /// The exponent `e` of `2^e`.
    pub fn exponent(&self) -> i32 {
        self.0
    }

    /// The scale as a float, `2^e`.
    pub fn value(&self) -> f64 {
        (self.0 as f64).exp2()
    }

    /// Divides a value by the scale (the forward direction of Eq. 2).
    pub fn apply(&self, x: f64) -> f64 {
        x / self.value()
    }

    /// Multiplies a value by the scale (dequantization direction).
    pub fn unapply(&self, q: f64) -> f64 {
        q * self.value()
    }

    /// Composes two scales: `2^a · 2^b = 2^(a+b)` (saturating).
    pub fn compose(&self, other: Pow2Scale) -> Pow2Scale {
        Pow2Scale::new(self.0.saturating_add(other.0))
    }

    /// Inverse scale `2^(−e)`.
    pub fn inverse(&self) -> Pow2Scale {
        Pow2Scale::new(-self.0)
    }

    /// The raw biased byte as it would be stored in an E8M0 field
    /// (bias 127; exponent −127 encodes as 0).
    pub fn to_e8m0_byte(&self) -> u8 {
        (self.0 + 127) as u8
    }

    /// Reconstructs a scale from a stored E8M0 byte.
    pub fn from_e8m0_byte(byte: u8) -> Self {
        Self::new(byte as i32 - 127)
    }
}

impl Default for Pow2Scale {
    fn default() -> Self {
        Self::one()
    }
}

impl std::fmt::Display for Pow2Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "2^{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_max_guarantees_no_clipping() {
        for max in [0.001, 0.06, 0.9, 1.0, 3.7, 100.0, 1e6] {
            for fmax in [1.0, 3.5, 7.0, 248.0] {
                let s = Pow2Scale::from_max(max, fmax);
                assert!(
                    s.apply(max) <= fmax + 1e-12,
                    "max={max} fmax={fmax} scaled={}",
                    s.apply(max)
                );
                // The scale is tight: halving it would clip (unless clamped).
                if s.exponent() > MIN_EXPONENT {
                    let smaller = Pow2Scale::new(s.exponent() - 1);
                    assert!(smaller.apply(max) > fmax - 1e-9);
                }
            }
        }
    }

    #[test]
    fn zero_max_yields_min_exponent() {
        let s = Pow2Scale::from_max(0.0, 1.0);
        assert_eq!(s.exponent(), MIN_EXPONENT);
    }

    #[test]
    fn nan_max_yields_min_exponent() {
        let s = Pow2Scale::from_max(f64::NAN, 1.0);
        assert_eq!(s.exponent(), MIN_EXPONENT);
    }

    #[test]
    fn apply_unapply_roundtrip() {
        let s = Pow2Scale::new(-5);
        let x = 0.123;
        assert!((s.unapply(s.apply(x)) - x).abs() < 1e-15);
    }

    #[test]
    fn inlier_scales_are_negative_powers() {
        // §4.2 observation: with weight-scale maxima < 1, Isf < 0.
        for max in [0.01, 0.05, 0.2, 0.5, 0.99] {
            let s = Pow2Scale::from_max(max, 1.0);
            assert!(
                s.exponent() <= 0,
                "max={max} gave exponent {}",
                s.exponent()
            );
        }
    }

    #[test]
    fn e8m0_byte_roundtrip() {
        for e in MIN_EXPONENT..=MAX_EXPONENT {
            let s = Pow2Scale::new(e);
            assert_eq!(Pow2Scale::from_e8m0_byte(s.to_e8m0_byte()), s);
        }
    }

    #[test]
    fn compose_adds_exponents() {
        let a = Pow2Scale::new(3);
        let b = Pow2Scale::new(-5);
        assert_eq!(a.compose(b).exponent(), -2);
        assert_eq!(a.compose(a.inverse()).exponent(), 0);
    }

    #[test]
    fn exponent_clamps_to_e8m0_range() {
        assert_eq!(Pow2Scale::new(1000).exponent(), MAX_EXPONENT);
        assert_eq!(Pow2Scale::new(-1000).exponent(), MIN_EXPONENT);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Pow2Scale::new(-4).to_string(), "2^-4");
    }
}
