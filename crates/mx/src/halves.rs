//! Upper/Lower outlier-half encoding (§4.3) and the ReCoN merge arithmetic
//! that reconstructs FP outlier partial sums from INT half products (§5.4).
//!
//! An MX-FP outlier, after μX sharing, is `±1.m × 2^E` with `mb` mantissa
//! bits. The sign is duplicated and each mantissa half is paired with it,
//! producing two sign-magnitude values that mimic the inlier MX-INT
//! structure:
//!
//! ```text
//!   mantissa m = m_hi ‖ m_lo          (mb/2 bits each)
//!   Upper = (-1)^s · m_hi             stored as {s, m_hi}
//!   Lower = (-1)^s · m_lo             stored as {s, m_lo}
//! ```
//!
//! A PE multiplies each half by the iAct as a plain integer. ReCoN then
//! merges: `psum += iAcc + (-1)^s·iAct  +  Upper·iAct ≫ mb/2  +
//! Lower·iAct ≫ mb` — the first term is the hidden bit, the shifts restore
//! each half's binary point. We carry partial sums in fixed point with `mb`
//! fractional bits so the shifts are lossless (DESIGN.md §7).

/// The two sign-magnitude halves of a split outlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutlierHalves {
    /// Duplicated sign (true = negative).
    pub sign: bool,
    /// High mantissa half magnitude (`mb/2` bits).
    pub upper_mag: u32,
    /// Low mantissa half magnitude (`mb/2` bits).
    pub lower_mag: u32,
    /// Total mantissa width `mb` (even).
    pub mantissa_bits: u32,
}

impl OutlierHalves {
    /// Signed integer value of the upper half: `(-1)^s · m_hi`.
    pub fn upper_value(&self) -> i32 {
        if self.sign {
            -(self.upper_mag as i32)
        } else {
            self.upper_mag as i32
        }
    }

    /// Signed integer value of the lower half: `(-1)^s · m_lo`.
    pub fn lower_value(&self) -> i32 {
        if self.sign {
            -(self.lower_mag as i32)
        } else {
            self.lower_mag as i32
        }
    }

    /// Signed hidden-bit value: `(-1)^s · 1`.
    pub fn hidden_value(&self) -> i32 {
        if self.sign {
            -1
        } else {
            1
        }
    }

    /// Packs the upper half as raw weight-slot bits `{s, m_hi}` in a
    /// `slot_bits`-wide field.
    ///
    /// # Panics
    ///
    /// Panics if the magnitude does not fit `slot_bits − 1` bits.
    pub fn upper_bits(&self, slot_bits: u32) -> u8 {
        pack_sign_mag(self.sign, self.upper_mag, slot_bits)
    }

    /// Packs the lower half as raw weight-slot bits `{s, m_lo}`.
    ///
    /// # Panics
    ///
    /// Panics if the magnitude does not fit `slot_bits − 1` bits.
    pub fn lower_bits(&self, slot_bits: u32) -> u8 {
        pack_sign_mag(self.sign, self.lower_mag, slot_bits)
    }
}

fn pack_sign_mag(sign: bool, mag: u32, slot_bits: u32) -> u8 {
    assert!((2..=8).contains(&slot_bits), "slot width out of range");
    assert!(
        mag < (1 << (slot_bits - 1)),
        "magnitude {mag} does not fit in {} bits",
        slot_bits - 1
    );
    ((sign as u8) << (slot_bits - 1)) | (mag as u8)
}

/// Unpacks a `{s, mag}` sign-magnitude field into its signed value.
pub fn unpack_sign_mag(bits: u8, slot_bits: u32) -> i32 {
    let sign = (bits >> (slot_bits - 1)) & 1 == 1;
    let mag = (bits & ((1 << (slot_bits - 1)) - 1)) as i32;
    if sign {
        -mag
    } else {
        mag
    }
}

/// Splits a shared-exponent outlier (sign + `mb`-bit mantissa) into its
/// Upper/Lower halves with duplicated sign.
///
/// # Panics
///
/// Panics if `mantissa_bits` is odd or the mantissa does not fit.
pub fn split_into_halves(sign: bool, mantissa: u32, mantissa_bits: u32) -> OutlierHalves {
    assert!(
        mantissa_bits.is_multiple_of(2),
        "mantissa width must be even to halve"
    );
    assert!(
        mantissa < (1 << mantissa_bits),
        "mantissa {mantissa} does not fit in {mantissa_bits} bits"
    );
    let half = mantissa_bits / 2;
    OutlierHalves {
        sign,
        upper_mag: mantissa >> half,
        lower_mag: mantissa & ((1 << half) - 1),
        mantissa_bits,
    }
}

/// Reassembles the halves into `(sign, mantissa)`.
pub fn reassemble_halves(halves: OutlierHalves) -> (bool, u32) {
    let half = halves.mantissa_bits / 2;
    (halves.sign, (halves.upper_mag << half) | halves.lower_mag)
}

/// ReCoN's Merge (‖) operation in lossless fixed point.
///
/// Inputs are the raw INT products computed by the PEs
/// (`upper_res = upper_value·iAct`, `lower_res = lower_value·iAct`) plus the
/// iAct itself for the hidden bit, and the incoming accumulation `iacc_fp`
/// already carried at `2^mantissa_bits` fixed point. Returns the merged
/// partial sum at the same fixed point:
///
/// ```text
/// out = iacc + (-1)^s·iAct·2^mb + upper_res·2^(mb/2) + lower_res
/// ```
///
/// which equals `iacc + outlier_value·iAct·2^mb` exactly.
pub fn merge_halves_fixed_point(
    upper_res: i64,
    lower_res: i64,
    signed_iact: i64,
    iacc_fp: i64,
    mantissa_bits: u32,
) -> i64 {
    let half = mantissa_bits / 2;
    iacc_fp + (signed_iact << mantissa_bits) + (upper_res << half) + lower_res
}

/// ReCoN's Merge (‖) with the paper's literal arithmetic right shifts
/// (§5.4): `iacc + (-1)^s·iAct + upper_res ≫ mb/2 + lower_res ≫ mb`.
/// Exact when `iAct` is a multiple of `2^mb`; truncating otherwise.
pub fn merge_halves_shift(
    upper_res: i64,
    lower_res: i64,
    signed_iact: i64,
    iacc: i64,
    mantissa_bits: u32,
) -> i64 {
    let half = mantissa_bits / 2;
    iacc + signed_iact + (upper_res >> half) + (lower_res >> mantissa_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_reassemble_roundtrip_all_e1m2_mantissas() {
        for m in 0..4u32 {
            for sign in [false, true] {
                let h = split_into_halves(sign, m, 2);
                assert_eq!(reassemble_halves(h), (sign, m));
            }
        }
    }

    #[test]
    fn split_reassemble_roundtrip_all_e3m4_mantissas() {
        for m in 0..16u32 {
            for sign in [false, true] {
                let h = split_into_halves(sign, m, 4);
                assert_eq!(reassemble_halves(h), (sign, m));
            }
        }
    }

    #[test]
    fn negative_zero_half_contributes_nothing() {
        // Sign-magnitude fixes the {s=1, m=0} case that breaks two's
        // complement: the half must contribute 0, not −2.
        let h = split_into_halves(true, 0b10, 2); // m1=1, m0=0, negative
        assert_eq!(h.lower_value(), 0);
        assert_eq!(h.upper_value(), -1);
    }

    #[test]
    fn paper_walkthrough_merge() {
        // Fig. 8: outlier 1.5 = 1.10₂ (m=10, s=0), iAct=32, iAcc=8 → 56.
        let h = split_into_halves(false, 0b10, 2);
        let upper_res = h.upper_value() as i64 * 32; // 32
        let lower_res = h.lower_value() as i64 * 32; // 0
        let merged = merge_halves_shift(upper_res, lower_res, 32, 8, 2);
        assert_eq!(merged, 56); // (32≫1) + (0≫2) + 32 + 8
    }

    #[test]
    fn fixed_point_merge_matches_shift_merge_on_aligned_iacts() {
        for mant in 0..4u32 {
            for sign in [false, true] {
                let h = split_into_halves(sign, mant, 2);
                let iact = 32i64; // multiple of 2^mb → both paths exact
                let iacc = 8i64;
                let u = h.upper_value() as i64 * iact;
                let l = h.lower_value() as i64 * iact;
                let s = h.hidden_value() as i64 * iact;
                let shift = merge_halves_shift(u, l, s, iacc, 2);
                let fp = merge_halves_fixed_point(u, l, s, iacc << 2, 2);
                assert_eq!(fp, shift << 2, "mant={mant} sign={sign}");
            }
        }
    }

    #[test]
    fn fixed_point_merge_is_exact_for_any_iact() {
        // value = ±1.m; product must equal value · iact · 2^mb exactly.
        for mant in 0..16u32 {
            for sign in [false, true] {
                for iact in [-117i64, -3, 1, 7, 33, 255] {
                    let h = split_into_halves(sign, mant, 4);
                    let u = h.upper_value() as i64 * iact;
                    let l = h.lower_value() as i64 * iact;
                    let s = h.hidden_value() as i64 * iact;
                    let got = merge_halves_fixed_point(u, l, s, 0, 4);
                    let sign_f = if sign { -1.0 } else { 1.0 };
                    let value = sign_f * (1.0 + mant as f64 / 16.0);
                    let expect = (value * iact as f64 * 16.0).round() as i64;
                    assert_eq!(got, expect, "mant={mant} sign={sign} iact={iact}");
                }
            }
        }
    }

    #[test]
    fn negative_outlier_merge() {
        // outlier −1.5, iAct 32, iAcc 8 → 8 − 48 = −40.
        let h = split_into_halves(true, 0b10, 2);
        let u = h.upper_value() as i64 * 32;
        let l = h.lower_value() as i64 * 32;
        let s = h.hidden_value() as i64 * 32;
        assert_eq!(merge_halves_shift(u, l, s, 8, 2), -40);
    }

    #[test]
    fn bit_packing_roundtrip() {
        for sign in [false, true] {
            for mag in 0..2u32 {
                let h = OutlierHalves {
                    sign,
                    upper_mag: mag,
                    lower_mag: 1 - mag,
                    mantissa_bits: 2,
                };
                assert_eq!(unpack_sign_mag(h.upper_bits(2), 2), h.upper_value());
                assert_eq!(unpack_sign_mag(h.lower_bits(2), 2), h.lower_value());
            }
        }
    }

    #[test]
    fn e3m4_halves_fit_four_bit_slots() {
        let h = split_into_halves(true, 0b1110, 4);
        assert_eq!(h.upper_mag, 0b11);
        assert_eq!(h.lower_mag, 0b10);
        // 4-bit slot: sign at bit 3.
        assert_eq!(h.upper_bits(4), 0b1011);
        assert_eq!(unpack_sign_mag(h.upper_bits(4), 4), -3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_mantissa_panics() {
        let _ = split_into_halves(false, 16, 4);
    }
}
