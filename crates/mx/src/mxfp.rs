//! MX-FP-b_{k1,k2} — the outlier format: tiny-FP elements whose exponents
//! are shared as a level-2 microexponent (μX) on top of a level-1
//! power-of-two scale (§2.2, §4.2).
//!
//! Quantization per micro-block:
//!
//! 1. a level-1 scale `2^Ol1sf` maps the block maximum into the element
//!    format's range (Eq. 1);
//! 2. elements are quantized to the tiny-FP format;
//! 3. the common exponent across the block is extracted as μX — we select
//!    the μX that minimizes total squared error, then re-round every
//!    element to `±1.m × 2^μX` (sign + mantissa only);
//! 4. the 8-bit `MXScale` stores the level-1 exponent in its MSBs and μX in
//!    its `eb` LSBs (7+1 for e1m2, 5+3 for e3m4).

use crate::fp::TinyFloat;
use crate::scale::Pow2Scale;

/// The shared 8-bit MXScale: level-1 power-of-two exponent concatenated
/// with the level-2 microexponent.
///
/// # Examples
///
/// ```
/// use microscopiq_mx::mxfp::MxScale;
/// use microscopiq_mx::fp::TinyFloat;
///
/// let s = MxScale::new(5, 1, TinyFloat::E1M2);
/// assert_eq!(s.total_exponent(), 6);
/// let round = MxScale::from_byte(s.to_byte(), TinyFloat::E1M2);
/// assert_eq!(round, s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MxScale {
    level1: i32,
    micro: u32,
    exponent_bits: u32,
}

impl MxScale {
    /// Creates an MXScale from a level-1 exponent and microexponent.
    ///
    /// The level-1 exponent is clamped to the range its `8 − eb`-bit biased
    /// field can hold.
    ///
    /// # Panics
    ///
    /// Panics if `micro` exceeds the format's exponent range.
    pub fn new(level1: i32, micro: u32, format: TinyFloat) -> Self {
        assert!(
            micro <= format.max_exponent(),
            "microexponent {micro} out of range for format"
        );
        let field_bits = 8 - format.exponent_bits();
        let bias = 1 << (field_bits - 1);
        let level1 = level1.clamp(-bias, bias - 1);
        Self {
            level1,
            micro,
            exponent_bits: format.exponent_bits(),
        }
    }

    /// The level-1 exponent (`Ol1sf`).
    pub fn level1(&self) -> i32 {
        self.level1
    }

    /// The level-2 microexponent (`μX`).
    pub fn micro(&self) -> u32 {
        self.micro
    }

    /// The total exponent applied to every element: `Ol1sf + μX`.
    pub fn total_exponent(&self) -> i32 {
        self.level1 + self.micro as i32
    }

    /// Packs into the 8-bit stored form: biased level-1 MSBs ‖ μX LSBs.
    pub fn to_byte(&self) -> u8 {
        let field_bits = 8 - self.exponent_bits;
        let bias = 1 << (field_bits - 1);
        let biased = (self.level1 + bias) as u8;
        (biased << self.exponent_bits) | (self.micro as u8)
    }

    /// Unpacks from the 8-bit stored form.
    pub fn from_byte(byte: u8, format: TinyFloat) -> Self {
        let eb = format.exponent_bits();
        let field_bits = 8 - eb;
        let bias = 1 << (field_bits - 1);
        let micro = (byte & ((1 << eb) - 1)) as u32;
        let level1 = (byte >> eb) as i32 - bias;
        Self {
            level1,
            micro,
            exponent_bits: eb,
        }
    }
}

/// A micro-block of MX-FP-quantized outliers: per-element sign + mantissa,
/// plus the shared [`MxScale`].
///
/// # Examples
///
/// ```
/// use microscopiq_mx::mxfp::MxFpBlock;
/// use microscopiq_mx::fp::TinyFloat;
///
/// let outliers = [0.31_f64, -0.44, 0.52];
/// let block = MxFpBlock::quantize(&outliers, TinyFloat::E1M2);
/// let restored = block.dequantize();
/// for (o, r) in outliers.iter().zip(restored.iter()) {
///     assert!((o - r).abs() / o.abs() < 0.25, "o={o} r={r}");
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MxFpBlock {
    format: TinyFloat,
    signs: Vec<bool>,
    mantissas: Vec<u32>,
    scale: MxScale,
}

impl MxFpBlock {
    /// Quantizes a non-empty block of outlier values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn quantize(values: &[f64], format: TinyFloat) -> Self {
        assert!(!values.is_empty(), "cannot quantize an empty outlier block");
        let max_abs = values.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        // Level-1 scale maps the block max into the element format's range,
        // clamped up front to what the MXScale byte field can store so the
        // μX search below sees the exponent that will actually be applied.
        let field_bits = 8 - format.exponent_bits();
        let bias = 1i32 << (field_bits - 1);
        let level1 = Pow2Scale::new(
            Pow2Scale::from_max(max_abs, format.max_value())
                .exponent()
                .clamp(-bias, bias - 1),
        );

        // Pick the shared μX minimizing total squared error.
        let mut best: Option<(u32, f64, Vec<bool>, Vec<u32>)> = None;
        for micro in 0..=format.max_exponent() {
            let mut signs = Vec::with_capacity(values.len());
            let mut mans = Vec::with_capacity(values.len());
            let mut err = 0.0;
            for &v in values {
                let scaled = level1.apply(v);
                let code = format.quantize_with_exponent(scaled, micro);
                let deq = level1.unapply(format.decode(code));
                err += (deq - v) * (deq - v);
                signs.push(code.sign);
                mans.push(code.mantissa);
            }
            if best.as_ref().is_none_or(|(_, e, _, _)| err < *e) {
                best = Some((micro, err, signs, mans));
            }
        }
        let (micro, _, signs, mantissas) = best.expect("at least one μX candidate");
        Self {
            format,
            signs,
            mantissas,
            scale: MxScale::new(level1.exponent(), micro, format),
        }
    }

    /// The element format (e1m2 / e3m4).
    pub fn format(&self) -> TinyFloat {
        self.format
    }

    /// Per-element signs.
    pub fn signs(&self) -> &[bool] {
        &self.signs
    }

    /// Per-element mantissa fields (hidden bit implicit).
    pub fn mantissas(&self) -> &[u32] {
        &self.mantissas
    }

    /// The shared scale.
    pub fn scale(&self) -> MxScale {
        self.scale
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.signs.len()
    }

    /// Whether the block is empty (never true for constructed blocks).
    pub fn is_empty(&self) -> bool {
        self.signs.is_empty()
    }

    /// Reconstructs the real value of element `i`:
    /// `±(1 + m/2^mb) × 2^(Ol1sf + μX)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn dequantize_element(&self, i: usize) -> f64 {
        let frac = 1.0 + self.mantissas[i] as f64 / self.format.mantissa_levels() as f64;
        let mag = frac * (self.scale.total_exponent() as f64).exp2();
        if self.signs[i] {
            -mag
        } else {
            mag
        }
    }

    /// Reconstructs all values.
    pub fn dequantize(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.dequantize_element(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mxscale_byte_roundtrip_e1m2() {
        for level1 in -64..=63 {
            for micro in 0..=1 {
                let s = MxScale::new(level1, micro, TinyFloat::E1M2);
                assert_eq!(MxScale::from_byte(s.to_byte(), TinyFloat::E1M2), s);
            }
        }
    }

    #[test]
    fn mxscale_byte_roundtrip_e3m4() {
        for level1 in -16..=15 {
            for micro in 0..=7 {
                let s = MxScale::new(level1, micro, TinyFloat::E3M4);
                assert_eq!(MxScale::from_byte(s.to_byte(), TinyFloat::E3M4), s);
            }
        }
    }

    #[test]
    fn mxscale_clamps_level1() {
        let s = MxScale::new(1000, 0, TinyFloat::E1M2);
        assert_eq!(s.level1(), 63);
        let s = MxScale::new(-1000, 0, TinyFloat::E1M2);
        assert_eq!(s.level1(), -64);
    }

    #[test]
    fn uniform_magnitude_block_quantizes_tightly() {
        // All outliers of similar magnitude — the common case the paper's
        // Bμ=8 choice targets (Fig. 14: low outlier diversity).
        let vals = [0.30, 0.31, -0.29, 0.33];
        let block = MxFpBlock::quantize(&vals, TinyFloat::E1M2);
        for (v, d) in vals.iter().zip(block.dequantize().iter()) {
            assert!((v - d).abs() / v.abs() < 0.15, "v={v} d={d}");
        }
    }

    #[test]
    fn signs_survive_quantization() {
        let vals = [0.4, -0.4, 0.4, -0.4];
        let block = MxFpBlock::quantize(&vals, TinyFloat::E1M2);
        assert_eq!(block.signs(), &[false, true, false, true]);
        let deq = block.dequantize();
        assert!(deq[0] > 0.0 && deq[1] < 0.0);
    }

    #[test]
    fn single_outlier_is_nearly_exact() {
        // One value: level-1 + μX + mantissa can represent it to within a
        // mantissa step of relative precision.
        for v in [0.07, -3.3, 190.0, 1e-3] {
            let block = MxFpBlock::quantize(&[v], TinyFloat::E3M4);
            let d = block.dequantize()[0];
            assert!((v - d).abs() / v.abs() < 0.04, "v={v} d={d}");
        }
    }

    #[test]
    fn diverse_block_error_exceeds_uniform_block_error() {
        // Fig. 14's argument: more diverse outliers sharing one scale →
        // larger quantization error.
        let uniform = [0.30, 0.31, 0.32, 0.33];
        let diverse = [0.05, 0.31, 0.90, 0.12];
        let rel_err = |vals: &[f64]| {
            let b = MxFpBlock::quantize(vals, TinyFloat::E1M2);
            vals.iter()
                .zip(b.dequantize().iter())
                .map(|(v, d)| ((v - d) / v).abs())
                .sum::<f64>()
        };
        assert!(rel_err(&diverse) > rel_err(&uniform) * 2.0);
    }

    #[test]
    fn e3m4_beats_e1m2_on_diverse_blocks() {
        // §3.3: more outlier bits (dynamic range) → lower error.
        let vals = [0.05, 0.31, 0.90, 0.12];
        let err = |fmt: TinyFloat| {
            let b = MxFpBlock::quantize(&vals, fmt);
            vals.iter()
                .zip(b.dequantize().iter())
                .map(|(v, d)| (v - d) * (v - d))
                .sum::<f64>()
        };
        assert!(err(TinyFloat::E3M4) < err(TinyFloat::E1M2));
    }

    #[test]
    fn dequantize_element_matches_bulk() {
        let vals = [0.2, -0.5, 0.7];
        let block = MxFpBlock::quantize(&vals, TinyFloat::E3M4);
        let bulk = block.dequantize();
        for (i, &b) in bulk.iter().enumerate() {
            assert_eq!(block.dequantize_element(i), b);
        }
    }

    #[test]
    #[should_panic(expected = "empty outlier block")]
    fn empty_block_panics() {
        let _ = MxFpBlock::quantize(&[], TinyFloat::E1M2);
    }
}
