//! Decode-pipeline parity properties: incremental KV-cached decode in
//! exact mode must produce **bit-identical** logits to full-prefix
//! recompute — across batch sizes, prefix lengths, both bit budgets, and
//! outlier-free/outlier-heavy models — and quantized-KV mode must stay
//! within the documented attention-error bound.

use microscopiq_core::kv_cache::attention_output_error;
use microscopiq_core::kv_cache::QuantizedKvCache;
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{
    DecodeJob, DecodeState, DequantGemm, KvCacheConfig, KvMode, PackedTinyFm, TinyFm, TinyFmConfig,
};
use microscopiq_linalg::{Matrix, SeededRng};
use proptest::prelude::*;

fn small_cfg() -> TinyFmConfig {
    TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 48,
    }
}

/// A quantized packed model: `outlier_heavy` controls whether the teacher
/// carries FM-style weight outliers or is purely Gaussian.
fn packed_model(seed: u64, bits: u32, outlier_heavy: bool) -> (TinyFm, PackedTinyFm) {
    let cfg = small_cfg();
    let attn_outliers = if outlier_heavy {
        (cfg.d_model * cfg.d_model) / 40 // 2× the FM-statistics default
    } else {
        0
    };
    let fm = TinyFm::teacher_with_outliers(cfg, seed, attn_outliers);
    let mut rng = SeededRng::new(seed ^ 0x5eed);
    let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::builder(bits)
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    let packed = PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap();
    (fm, packed)
}

fn random_seq(rng: &mut SeededRng, vocab: usize, len: usize) -> Vec<usize> {
    (0..len).map(|_| rng.below(vocab)).collect()
}

/// Exactly compares an incremental run (prefill over `prefix` tokens,
/// then one decode_step per remaining token) against the full-prefix
/// logits `full` (`vocab × T`). The incremental logits at position
/// `t ≥ prefix − 1` must match bit for bit.
fn assert_packed_incremental_matches(
    model: &PackedTinyFm,
    seq: &[usize],
    prefix: usize,
    full: &Matrix,
) {
    let (mut state, prefill_logits) = model
        .prefill(&seq[..prefix], KvMode::Exact, &DequantGemm)
        .unwrap();
    for t in 0..prefix {
        for v in 0..full.rows() {
            assert_eq!(
                prefill_logits[(v, t)],
                full[(v, t)],
                "prefill logit ({v},{t}) diverged"
            );
        }
    }
    for (s, &tok) in seq.iter().enumerate().skip(prefix) {
        let step_logits = model.decode_step(&mut state, tok, &DequantGemm);
        for (v, &got) in step_logits.iter().enumerate() {
            assert_eq!(got, full[(v, s)], "decode logit ({v},{s}) diverged");
        }
    }
    assert_eq!(state.tokens(), seq, "state token bookkeeping");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exact-KV incremental decode is bit-identical to the one-shot
    /// `forward_batch` across batch sizes, prefix lengths, both bit
    /// budgets, and outlier-free/outlier-heavy models.
    #[test]
    fn incremental_exact_matches_full_prefix_bitwise(
        seed in 0u64..500,
        batch in 1usize..4,
        lens in prop::collection::vec(3usize..14, 3),
        bits in prop_oneof![Just(2u32), Just(4u32)],
        outlier_heavy in any::<bool>(),
    ) {
        let (_, packed) = packed_model(seed, bits, outlier_heavy);
        let vocab = packed.config().vocab;
        let mut rng = SeededRng::new(seed ^ 0xF00D);
        let seqs: Vec<Vec<usize>> = (0..batch)
            .map(|b| random_seq(&mut rng, vocab, lens[b % lens.len()]))
            .collect();
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let full = packed.forward_batch(&refs, &DequantGemm);
        for (seq, full_logits) in seqs.iter().zip(full.iter()) {
            // Split each sequence at several prefix points, including the
            // degenerate one-token prefill.
            for prefix in [1, seq.len() / 2 + 1, seq.len()] {
                assert_packed_incremental_matches(&packed, seq, prefix, full_logits);
            }
        }
    }

    /// The dense TinyFm decode path obeys the same bitwise contract as
    /// the packed one.
    #[test]
    fn dense_incremental_matches_forward_bitwise(
        seed in 0u64..500,
        len in 4usize..16,
        prefix_frac in 0.1f64..1.0,
    ) {
        let fm = TinyFm::teacher(small_cfg(), seed);
        let mut rng = SeededRng::new(seed ^ 0xBEEF);
        let seq = random_seq(&mut rng, small_cfg().vocab, len);
        let prefix = ((len as f64 * prefix_frac) as usize).clamp(1, len);
        let full = fm.forward(&seq);
        let (mut state, prefill_logits) = fm.prefill(&seq[..prefix], KvMode::Exact).unwrap();
        for t in 0..prefix {
            for v in 0..full.rows() {
                prop_assert_eq!(prefill_logits[(v, t)], full[(v, t)]);
            }
        }
        for (s, &tok) in seq.iter().enumerate().skip(prefix) {
            let step_logits = fm.decode_step(&mut state, tok);
            for (v, &got) in step_logits.iter().enumerate() {
                prop_assert_eq!(got, full[(v, s)], "logit ({},{})", v, s);
            }
        }
    }

    /// Mixed batches — prefill segments riding with mid-decode
    /// single-token segments — leave every job bit-identical to running
    /// it alone.
    #[test]
    fn mixed_advance_batch_is_isolation_safe(
        seed in 0u64..500,
        bits in prop_oneof![Just(2u32), Just(4u32)],
    ) {
        let (_, packed) = packed_model(seed, bits, true);
        let vocab = packed.config().vocab;
        let mut rng = SeededRng::new(seed ^ 0xABBA);
        let prompt_a = random_seq(&mut rng, vocab, 7);
        let prompt_b = random_seq(&mut rng, vocab, 5);
        let tok_a = rng.below(vocab);

        // Reference: each request alone.
        let (mut solo_a, _) = packed.prefill(&prompt_a, KvMode::Exact, &DequantGemm).unwrap();
        let solo_a_logits = packed.decode_step(&mut solo_a, tok_a, &DequantGemm);
        let (_, solo_b_logits) = packed.prefill(&prompt_b, KvMode::Exact, &DequantGemm).unwrap();

        // Mixed: request A mid-decode (1 token) packed with B's prefill.
        let (mut state_a, _) = packed.prefill(&prompt_a, KvMode::Exact, &DequantGemm).unwrap();
        let mut state_b = DecodeState::exact(packed.config());
        let toks_a = [tok_a];
        let mut jobs = [
            DecodeJob { state: &mut state_a, tokens: &toks_a },
            DecodeJob { state: &mut state_b, tokens: &prompt_b },
        ];
        let out = packed.advance_batch(&mut jobs, &DequantGemm);
        prop_assert_eq!(&out[0].col(0), &solo_a_logits, "decode segment diverged");
        for t in 0..prompt_b.len() {
            for v in 0..vocab {
                prop_assert_eq!(out[1][(v, t)], solo_b_logits[(v, t)]);
            }
        }
    }
}

/// Quantized-KV decode: the per-layer caches an incremental run builds
/// must stay within the documented attention-error bound relative to the
/// exact caches (< 1.5 relative Frobenius attention error at 2-bit — the
/// hard, unstructured case, same bound as `microscopiq_core::kv_cache` —
/// and strictly tighter at 4-bit), and quantization must actually engage.
#[test]
fn quantized_kv_decode_within_documented_attention_error_bound() {
    let (_, packed) = packed_model(11, 4, true);
    let cfg = packed.config();
    let kv = KvCacheConfig {
        bits: 2,
        group: 8,
        residual: 8,
    };
    let mut rng = SeededRng::new(99);
    let seq = random_seq(&mut rng, cfg.vocab, 48);

    let run = |mode: KvMode| {
        let (mut state, _) = packed.prefill(&seq[..4], mode, &DequantGemm).unwrap();
        for &tok in &seq[4..] {
            packed.decode_step(&mut state, tok, &DequantGemm);
        }
        state
    };
    let exact = run(KvMode::Exact);
    let mut err2 = Vec::new();
    let mut err4 = Vec::new();
    for bits in [2u32, 4u32] {
        let quant = run(KvMode::Quantized(KvCacheConfig { bits, ..kv }));
        for layer in 0..cfg.n_layers {
            let cache = quant.cache(layer);
            assert!(
                cache.quantized_len() > 0,
                "quantization must engage at layer {layer}"
            );
            assert_eq!(cache.len(), exact.cache(layer).len());
            let (ek, ev) = exact.cache(layer).view().to_matrices();
            let (qk, qv) = cache.view().to_matrices();
            let q = Matrix::from_fn(4, cfg.d_model, |_, _| rng.normal(0.0, 0.5));
            let err = attention_output_error(
                &q,
                &ek,
                &ev,
                &QuantizedKvCache {
                    keys: qk,
                    values: qv,
                },
            );
            assert!(err.is_finite() && err > 0.0, "layer {layer} err {err}");
            if bits == 2 {
                err2.push(err);
            } else {
                err4.push(err);
            }
        }
    }
    for (l, &e) in err2.iter().enumerate() {
        assert!(
            e < 1.5,
            "2-bit attention error {e} at layer {l} exceeds bound"
        );
    }
    let m2: f64 = err2.iter().sum::<f64>() / err2.len() as f64;
    let m4: f64 = err4.iter().sum::<f64>() / err4.len() as f64;
    assert!(m4 < m2, "4-bit mean error {m4} must beat 2-bit {m2}");
}

/// Exact-KV decode through the runtime-facing `DequantGemm` engine is
/// also bit-identical when the prefill is the *entire* sequence (pure
/// prefill, no decode steps) — the degenerate case `forward` wraps.
#[test]
fn pure_prefill_equals_forward() {
    let (_, packed) = packed_model(21, 2, false);
    let mut rng = SeededRng::new(3);
    let seq = random_seq(&mut rng, packed.config().vocab, 9);
    let full = packed.forward(&seq, &DequantGemm);
    let (state, logits) = packed.prefill(&seq, KvMode::Exact, &DequantGemm).unwrap();
    assert_eq!(logits, full);
    assert_eq!(state.len(), seq.len());
    assert_eq!(state.cache(0).len(), seq.len());
}
