//! Model-level evaluation driver: synthesize → quantize → measure.

use crate::calib::{calibration, calibration_for_layer};
use crate::synth::synthesize_layer;
use crate::zoo::ModelSpec;
use microscopiq_core::activation::{migrate_difficulty, quantize_activations};
use microscopiq_core::error::QuantError;
use microscopiq_core::traits::{LayerTensors, WeightQuantizer};
use microscopiq_linalg::{Matrix, SeededRng};

/// Per-layer evaluation record.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerEvaluation {
    /// Layer name from the spec.
    pub name: String,
    /// Relative output error `‖WX − QX‖F/‖WX‖F`.
    pub output_error: f64,
    /// Relative weight reconstruction error.
    pub weight_error: f64,
    /// Effective bit width.
    pub ebw: f64,
    /// Outlier fraction measured during quantization.
    pub outlier_fraction: f64,
    /// Weighted element count (elements × repeats).
    pub weight: f64,
}

/// Model-level evaluation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEvaluation {
    /// Model name.
    pub model: String,
    /// Quantizer name.
    pub method: String,
    /// Per-layer records.
    pub layers: Vec<LayerEvaluation>,
}

impl ModelEvaluation {
    /// Element-weighted mean output error.
    pub fn mean_output_error(&self) -> f64 {
        weighted_mean(&self.layers, |l| l.output_error)
    }

    /// Element-weighted mean weight error.
    pub fn mean_weight_error(&self) -> f64 {
        weighted_mean(&self.layers, |l| l.weight_error)
    }

    /// Element-weighted mean effective bit width.
    pub fn mean_ebw(&self) -> f64 {
        weighted_mean(&self.layers, |l| l.ebw)
    }

    /// Element-weighted mean outlier fraction.
    pub fn mean_outlier_fraction(&self) -> f64 {
        weighted_mean(&self.layers, |l| l.outlier_fraction)
    }
}

fn weighted_mean(layers: &[LayerEvaluation], f: impl Fn(&LayerEvaluation) -> f64) -> f64 {
    let total: f64 = layers.iter().map(|l| l.weight).sum();
    if total == 0.0 {
        return 0.0;
    }
    layers.iter().map(|l| f(l) * l.weight).sum::<f64>() / total
}

/// Held-out activations for measuring output error: same channel-scale
/// statistics as the calibration set but an independent stream, so methods
/// that optimize on the calibration set (GPTQ compensation, AWQ/OmniQuant
/// grid searches) are scored out-of-sample — on-sample scoring flatters
/// them badly whenever the calibration Hessian is rank-deficient.
fn heldout_for_layer(spec: &ModelSpec, layer: &crate::zoo::LayerSpec, n: usize) -> Matrix {
    let mut rng = SeededRng::new(spec.seed ^ 0xE7A1).fork(layer.name);
    calibration(layer.d_col, n, &mut rng)
}

fn output_error_on(weights: &Matrix, dequantized: &Matrix, x: &Matrix) -> f64 {
    let reference = weights.matmul(x);
    let got = dequantized.matmul(x);
    let denom = reference.frobenius_norm();
    if denom == 0.0 {
        0.0
    } else {
        reference.frobenius_distance(&got) / denom
    }
}

/// Weight-only evaluation: quantizes every proxy layer of the model on a
/// calibration set and measures output error on held-out activations.
///
/// # Errors
///
/// Propagates quantizer failures.
pub fn evaluate_weight_only(
    spec: &ModelSpec,
    quantizer: &dyn WeightQuantizer,
    n_samples: usize,
) -> Result<ModelEvaluation, QuantError> {
    let mut layers = Vec::with_capacity(spec.layers.len());
    for layer_spec in &spec.layers {
        let w = synthesize_layer(spec, layer_spec);
        let x = calibration_for_layer(spec, layer_spec, n_samples);
        let x_eval = heldout_for_layer(spec, layer_spec, n_samples);
        let layer = LayerTensors::new(w, x)?;
        let q = quantizer.quantize_layer(&layer)?;
        layers.push(LayerEvaluation {
            name: layer_spec.name.to_string(),
            output_error: output_error_on(&layer.weights, &q.dequantized, &x_eval),
            weight_error: q.weight_error(&layer),
            ebw: q.stats.effective_bit_width,
            outlier_fraction: q.stats.outlier_fraction,
            weight: (layer_spec.elements() * layer_spec.repeats) as f64,
        });
    }
    Ok(ModelEvaluation {
        model: spec.name.to_string(),
        method: quantizer.name().to_string(),
        layers,
    })
}

/// Weight–activation evaluation: α-migrates activation difficulty into the
/// weights, quantizes weights with the given quantizer and activations with
/// MX-INT group quantization, and measures the combined output error
/// against the original full-precision layer.
///
/// # Errors
///
/// Propagates quantizer and migration failures.
pub fn evaluate_weight_activation(
    spec: &ModelSpec,
    quantizer: &dyn WeightQuantizer,
    act_bits: u32,
    act_group: usize,
    alpha: f64,
    n_samples: usize,
) -> Result<ModelEvaluation, QuantError> {
    let mut layers = Vec::with_capacity(spec.layers.len());
    for layer_spec in &spec.layers {
        let w = synthesize_layer(spec, layer_spec);
        let x = calibration_for_layer(spec, layer_spec, n_samples);
        let original = LayerTensors::new(w, x)?;
        let migrated = migrate_difficulty(&original, alpha)?;
        let q = quantizer.quantize_layer(&migrated)?;
        // Held-out evaluation: migrate the held-out activations with the
        // same (exact) transformation, then quantize them as the runtime
        // would.
        let x_eval = heldout_for_layer(spec, layer_spec, n_samples);
        let eval_pair = LayerTensors::new(original.weights.clone(), x_eval)?;
        let migrated_eval = migrate_difficulty(&eval_pair, alpha)?;
        let qx = quantize_activations(&migrated_eval.calibration, act_bits, act_group);
        let reference = eval_pair.weights.matmul(&eval_pair.calibration);
        let got = q.dequantized.matmul(&qx);
        let output_error = if reference.frobenius_norm() == 0.0 {
            0.0
        } else {
            reference.frobenius_distance(&got) / reference.frobenius_norm()
        };
        layers.push(LayerEvaluation {
            name: layer_spec.name.to_string(),
            output_error,
            weight_error: q.weight_error(&migrated),
            ebw: q.stats.effective_bit_width,
            outlier_fraction: q.stats.outlier_fraction,
            weight: (layer_spec.elements() * layer_spec.repeats) as f64,
        });
    }
    Ok(ModelEvaluation {
        model: spec.name.to_string(),
        method: quantizer.name().to_string(),
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::model;
    use microscopiq_core::{MicroScopiQ, QuantConfig};

    fn shrunk(spec: &ModelSpec) -> ModelSpec {
        // Shrink proxy dims for fast unit tests.
        let mut s = spec.clone();
        for l in &mut s.layers {
            l.d_row = (l.d_row / 4).max(16);
            l.d_col = (l.d_col / 4).max(32);
        }
        s
    }

    #[test]
    fn weight_only_evaluation_runs() {
        let spec = shrunk(&model("LLaMA-3-8B"));
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let eval = evaluate_weight_only(&spec, &q, 48).unwrap();
        assert_eq!(eval.layers.len(), 3);
        assert!(eval.mean_output_error() > 0.0);
        assert!(eval.mean_output_error() < 1.0);
        assert!(eval.mean_ebw() >= 4.0);
    }

    #[test]
    fn w2_errs_more_than_w4() {
        let spec = shrunk(&model("LLaMA-3-8B"));
        let q2 = MicroScopiQ::new(
            QuantConfig::w2()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let q4 = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let e2 = evaluate_weight_only(&spec, &q2, 48)
            .unwrap()
            .mean_output_error();
        let e4 = evaluate_weight_only(&spec, &q4, 48)
            .unwrap()
            .mean_output_error();
        assert!(e2 > e4, "W2 {e2} should exceed W4 {e4}");
    }

    #[test]
    fn weight_activation_adds_error() {
        let spec = shrunk(&model("LLaMA-3-8B"));
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let wo = evaluate_weight_only(&spec, &q, 48)
            .unwrap()
            .mean_output_error();
        let wa = evaluate_weight_activation(&spec, &q, 4, 32, 0.7, 48)
            .unwrap()
            .mean_output_error();
        assert!(wa > wo * 0.8, "W4A4 {wa} vs W4A16 {wo}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let spec = shrunk(&model("Phi-3-3.8B"));
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let a = evaluate_weight_only(&spec, &q, 32).unwrap();
        let b = evaluate_weight_only(&spec, &q, 32).unwrap();
        assert_eq!(a, b);
    }
}
