//! Synthetic calibration activations.
//!
//! The paper calibrates on 256 random PILE samples; here activations are
//! synthesized with the two properties that matter to the algorithms under
//! test: per-channel scale diversity (drives the Hessian diagonal, hence
//! GPTQ/saliency behaviour) and a small set of high-magnitude outlier
//! channels (drives SmoothQuant-style migration and AWQ channel scaling).

use crate::zoo::{LayerSpec, ModelSpec};
use microscopiq_linalg::{Matrix, SeededRng};

/// Fraction of channels that are activation-outlier channels.
pub const HOT_CHANNEL_FRACTION: f64 = 0.02;
/// Magnitude multiplier of hot channels.
pub const HOT_CHANNEL_GAIN: f64 = 20.0;

/// Generates calibration activations (`d_col × n_samples`) for a layer.
pub fn calibration_for_layer(spec: &ModelSpec, layer: &LayerSpec, n_samples: usize) -> Matrix {
    let mut rng = SeededRng::new(spec.seed ^ 0xCA11B).fork(layer.name);
    calibration(layer.d_col, n_samples, &mut rng)
}

/// Generates calibration activations with lognormal channel scales plus a
/// few hot channels.
pub fn calibration(d_col: usize, n_samples: usize, rng: &mut SeededRng) -> Matrix {
    let n_hot = ((d_col as f64 * HOT_CHANNEL_FRACTION).round() as usize).max(1);
    let hot = rng.choose_distinct(d_col, n_hot);
    let channel_scale: Vec<f64> = (0..d_col)
        .map(|c| {
            let base = rng.lognormal(0.0, 0.4);
            if hot.contains(&c) {
                base * HOT_CHANNEL_GAIN
            } else {
                base
            }
        })
        .collect();
    Matrix::from_fn(d_col, n_samples, |c, _| rng.normal(0.0, channel_scale[c]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::model;

    #[test]
    fn calibration_is_deterministic_per_layer() {
        let spec = model("LLaMA-3-8B");
        let a = calibration_for_layer(&spec, &spec.layers[0], 32);
        let b = calibration_for_layer(&spec, &spec.layers[0], 32);
        assert_eq!(a, b);
    }

    #[test]
    fn hot_channels_exist() {
        let mut rng = SeededRng::new(9);
        let x = calibration(128, 64, &mut rng);
        let channel_max: Vec<f64> = (0..128)
            .map(|c| (0..64).map(|s| x[(c, s)].abs()).fold(0.0, f64::max))
            .collect();
        let global_median = {
            let mut v = channel_max.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let hot = channel_max
            .iter()
            .filter(|&&m| m > global_median * 8.0)
            .count();
        assert!(hot >= 1, "no hot channels found");
        assert!(hot <= 12, "too many hot channels: {hot}");
    }

    #[test]
    fn shape_matches_request() {
        let spec = model("Phi-3-3.8B");
        let x = calibration_for_layer(&spec, &spec.layers[2], 40);
        assert_eq!(x.rows(), spec.layers[2].d_col);
        assert_eq!(x.cols(), 40);
    }
}
