//! The evaluated model zoo (§7.1): layer inventories and outlier profiles
//! for every model family the paper reports on.
//!
//! Real checkpoints cannot be loaded here (DESIGN.md §2); each spec instead
//! records the model's true architecture dimensions, a proxy scale divisor
//! that keeps pure-Rust GPTQ tractable, and an *outlier profile* calibrated
//! to the statistics in Fig. 2(a): modern FMs carry up to ~5% outliers
//! (over 0.5% adjacent outliers per layer), while OPT/BERT-era models have
//! two orders of magnitude fewer adjacent outliers.

/// Broad model class, driving workload selection in the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelClass {
    /// Dense decoder LLM.
    Llm,
    /// Vision-language model.
    Vlm,
    /// Mixture-of-experts LLM.
    Moe,
    /// Small language model.
    Slm,
    /// Convolutional network.
    Cnn,
    /// State-space model.
    Ssm,
}

/// Statistical profile of a model's weight outliers (Fig. 2(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierProfile {
    /// Target fraction of weights beyond 3σ (0.002 – 0.05 across the zoo).
    pub rate: f64,
    /// Fraction of outliers placed adjacent to another outlier along the
    /// dot-product dimension (FMs: 0.1–0.4 of outliers; OPT-era: ≈0.01).
    pub adjacency: f64,
    /// Fraction of outliers concentrated in hot input channels.
    pub channel_structure: f64,
    /// Outlier magnitude range in units of the body σ.
    pub magnitude_sigma: (f64, f64),
}

/// One weight layer to quantize: proxy-scaled dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpec {
    /// Layer role (e.g. `"attn.q_proj"`).
    pub name: &'static str,
    /// Output channels (proxy scale).
    pub d_row: usize,
    /// Input features (proxy scale).
    pub d_col: usize,
    /// How many times this shape repeats across the real model (weights the
    /// aggregate error and the accelerator workload).
    pub repeats: usize,
}

impl LayerSpec {
    /// Proxy-scale element count for one instance.
    pub fn elements(&self) -> usize {
        self.d_row * self.d_col
    }
}

/// A model to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// Model class.
    pub class: ModelClass,
    /// Parameter count in billions (reporting only).
    pub params_b: f64,
    /// True hidden size of the real model.
    pub hidden: usize,
    /// Number of transformer blocks (or stages) in the real model.
    pub n_blocks: usize,
    /// Proxy-scaled layers to synthesize and quantize.
    pub layers: Vec<LayerSpec>,
    /// Full-precision WikiText-2 perplexity from the paper (LLMs).
    pub fp_ppl: Option<f64>,
    /// Full-precision benchmark accuracy (%) from the paper (VLM/CNN/SSM).
    pub fp_acc: Option<f64>,
    /// Outlier statistics target.
    pub outlier_profile: OutlierProfile,
    /// Deterministic synthesis seed.
    pub seed: u64,
}

/// Proxy scale divisor applied to real hidden sizes (documented in
/// DESIGN.md; keeps the Cholesky/GPTQ cost tractable in pure Rust while
/// preserving block-structure ratios: proxy dims stay multiples of 128).
pub const PROXY_DIVISOR: usize = 16;

fn fm_profile(rate: f64, adjacency: f64) -> OutlierProfile {
    OutlierProfile {
        rate,
        adjacency,
        channel_structure: 0.5,
        magnitude_sigma: (3.5, 40.0),
    }
}

/// OPT-era profile: outliers exist but are almost never adjacent (§3.2:
/// < 0.04% adjacent outliers, two orders of magnitude below modern FMs).
fn opt_profile(rate: f64) -> OutlierProfile {
    OutlierProfile {
        rate,
        adjacency: 0.005,
        channel_structure: 0.8,
        magnitude_sigma: (3.5, 12.0),
    }
}

fn llm_layers(hidden: usize, ffn: usize) -> Vec<LayerSpec> {
    let h = hidden / PROXY_DIVISOR;
    let f = ffn / PROXY_DIVISOR;
    vec![
        LayerSpec {
            name: "attn.qkv_proj",
            d_row: h,
            d_col: h,
            repeats: 4,
        },
        LayerSpec {
            name: "mlp.up_proj",
            d_row: f,
            d_col: h,
            repeats: 2,
        },
        LayerSpec {
            name: "mlp.down_proj",
            d_row: h,
            d_col: f,
            repeats: 1,
        },
    ]
}

/// Looks up a model by its paper-table name.
///
/// # Panics
///
/// Panics if the name is unknown; use [`all_models`] to enumerate.
pub fn model(name: &str) -> ModelSpec {
    all_models()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown model '{name}'"))
}

/// The LLM zoo of Table 2.
pub fn llm_zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "OPT-6.7B",
            class: ModelClass::Llm,
            params_b: 6.7,
            hidden: 4096,
            n_blocks: 32,
            layers: llm_layers(4096, 16384),
            fp_ppl: Some(10.86),
            fp_acc: None,
            outlier_profile: opt_profile(0.008),
            seed: 0x0601,
        },
        ModelSpec {
            name: "OPT-175B",
            class: ModelClass::Llm,
            params_b: 175.0,
            hidden: 12288,
            n_blocks: 96,
            layers: llm_layers(12288, 49152),
            fp_ppl: Some(8.34),
            fp_acc: None,
            outlier_profile: opt_profile(0.010),
            seed: 0x0602,
        },
        ModelSpec {
            name: "LLaMA-2-7B",
            class: ModelClass::Llm,
            params_b: 7.0,
            hidden: 4096,
            n_blocks: 32,
            layers: llm_layers(4096, 11008),
            fp_ppl: Some(5.47),
            fp_acc: None,
            outlier_profile: fm_profile(0.010, 0.15),
            seed: 0x0701,
        },
        ModelSpec {
            name: "LLaMA-2-13B",
            class: ModelClass::Llm,
            params_b: 13.0,
            hidden: 5120,
            n_blocks: 40,
            layers: llm_layers(5120, 13824),
            fp_ppl: Some(4.83),
            fp_acc: None,
            outlier_profile: fm_profile(0.011, 0.18),
            seed: 0x0702,
        },
        ModelSpec {
            name: "LLaMA-2-70B",
            class: ModelClass::Llm,
            params_b: 70.0,
            hidden: 8192,
            n_blocks: 80,
            layers: llm_layers(8192, 28672),
            fp_ppl: Some(3.31),
            fp_acc: Some(73.58), // mean of Table 3's four benchmarks
            outlier_profile: fm_profile(0.012, 0.20),
            seed: 0x0703,
        },
        ModelSpec {
            name: "LLaMA-3-8B",
            class: ModelClass::Llm,
            params_b: 8.0,
            hidden: 4096,
            n_blocks: 32,
            layers: llm_layers(4096, 14336),
            fp_ppl: Some(6.13),
            fp_acc: None,
            outlier_profile: fm_profile(0.018, 0.30),
            seed: 0x0801,
        },
        ModelSpec {
            name: "LLaMA-3-70B",
            class: ModelClass::Llm,
            params_b: 70.0,
            hidden: 8192,
            n_blocks: 80,
            layers: llm_layers(8192, 28672),
            fp_ppl: Some(2.85),
            fp_acc: None,
            outlier_profile: fm_profile(0.016, 0.28),
            seed: 0x0802,
        },
        ModelSpec {
            name: "Mixtral-8x7B",
            class: ModelClass::Moe,
            params_b: 46.7,
            hidden: 4096,
            n_blocks: 32,
            layers: llm_layers(4096, 14336),
            fp_ppl: Some(3.84),
            fp_acc: None,
            outlier_profile: fm_profile(0.015, 0.25),
            seed: 0x0901,
        },
        ModelSpec {
            name: "Phi-3-3.8B",
            class: ModelClass::Slm,
            params_b: 3.8,
            hidden: 3072,
            n_blocks: 32,
            layers: llm_layers(3072, 8192),
            fp_ppl: Some(6.33),
            fp_acc: None,
            outlier_profile: fm_profile(0.014, 0.22),
            seed: 0x0A01,
        },
        ModelSpec {
            name: "Phi-3-14B",
            class: ModelClass::Slm,
            params_b: 14.0,
            hidden: 5120,
            n_blocks: 40,
            layers: llm_layers(5120, 17920),
            fp_ppl: Some(4.31),
            fp_acc: None,
            outlier_profile: fm_profile(0.013, 0.22),
            seed: 0x0A02,
        },
    ]
}

/// The VLM zoo of Fig. 10 / Fig. 2.
pub fn vlm_zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "OpenFlamingo-9B",
            class: ModelClass::Vlm,
            params_b: 9.0,
            hidden: 4096,
            n_blocks: 32,
            layers: llm_layers(4096, 16384),
            fp_ppl: None,
            fp_acc: Some(89.5), // 8-shot COCO CIDEr-ish anchor
            outlier_profile: fm_profile(0.030, 0.35),
            seed: 0x0B01,
        },
        ModelSpec {
            name: "VILA-7B",
            class: ModelClass::Vlm,
            params_b: 7.0,
            hidden: 4096,
            n_blocks: 32,
            layers: llm_layers(4096, 11008),
            fp_ppl: None,
            fp_acc: Some(62.3), // GQA anchor from Fig. 2(b)
            outlier_profile: fm_profile(0.035, 0.40),
            seed: 0x0B02,
        },
        ModelSpec {
            name: "LLaVA-1.5-7B",
            class: ModelClass::Vlm,
            params_b: 7.0,
            hidden: 4096,
            n_blocks: 32,
            layers: llm_layers(4096, 11008),
            fp_ppl: None,
            fp_acc: Some(78.5), // VQAv2 anchor from Fig. 2(b)
            outlier_profile: fm_profile(0.032, 0.38),
            seed: 0x0B03,
        },
    ]
}

/// The CNN/SSM zoo of Table 4.
pub fn cnn_ssm_zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "ResNet-50",
            class: ModelClass::Cnn,
            params_b: 0.025,
            hidden: 2048,
            n_blocks: 16,
            layers: vec![
                // Conv layers as im2col GEMMs (Cout × Cin·k²), proxy scale.
                LayerSpec {
                    name: "conv3x3.s2",
                    d_row: 128,
                    d_col: 144,
                    repeats: 8,
                },
                LayerSpec {
                    name: "conv1x1.s4",
                    d_row: 128,
                    d_col: 64,
                    repeats: 8,
                },
                LayerSpec {
                    name: "fc",
                    d_row: 64,
                    d_col: 128,
                    repeats: 1,
                },
            ],
            fp_ppl: None,
            fp_acc: Some(76.15),
            outlier_profile: OutlierProfile {
                rate: 0.004,
                adjacency: 0.02,
                channel_structure: 0.2,
                magnitude_sigma: (3.5, 8.0),
            },
            seed: 0x0C01,
        },
        ModelSpec {
            name: "VGG-16",
            class: ModelClass::Cnn,
            params_b: 0.138,
            hidden: 4096,
            n_blocks: 13,
            layers: vec![
                LayerSpec {
                    name: "conv3x3",
                    d_row: 128,
                    d_col: 288,
                    repeats: 10,
                },
                LayerSpec {
                    name: "fc",
                    d_row: 256,
                    d_col: 256,
                    repeats: 2,
                },
            ],
            fp_ppl: None,
            fp_acc: Some(71.59),
            outlier_profile: OutlierProfile {
                rate: 0.003,
                adjacency: 0.02,
                channel_structure: 0.2,
                magnitude_sigma: (3.5, 7.0),
            },
            seed: 0x0C02,
        },
        ModelSpec {
            name: "VMamba-S",
            class: ModelClass::Ssm,
            params_b: 0.050,
            hidden: 768,
            n_blocks: 15,
            layers: vec![
                LayerSpec {
                    name: "ssm.in_proj",
                    d_row: 96,
                    d_col: 48,
                    repeats: 8,
                },
                LayerSpec {
                    name: "ssm.x_proj",
                    d_row: 48,
                    d_col: 96,
                    repeats: 8,
                },
                LayerSpec {
                    name: "ssm.out_proj",
                    d_row: 48,
                    d_col: 96,
                    repeats: 8,
                },
            ],
            fp_ppl: None,
            fp_acc: Some(83.60),
            outlier_profile: fm_profile(0.040, 0.45), // SSMs are outlier-heavy
            seed: 0x0D01,
        },
        ModelSpec {
            name: "Vim-S",
            class: ModelClass::Ssm,
            params_b: 0.026,
            hidden: 384,
            n_blocks: 24,
            layers: vec![
                LayerSpec {
                    name: "ssm.in_proj",
                    d_row: 48,
                    d_col: 24,
                    repeats: 12,
                },
                LayerSpec {
                    name: "ssm.out_proj",
                    d_row: 24,
                    d_col: 48,
                    repeats: 12,
                },
            ],
            fp_ppl: None,
            fp_acc: Some(80.50),
            outlier_profile: fm_profile(0.038, 0.42),
            seed: 0x0D02,
        },
    ]
}

/// Every model in the zoo.
pub fn all_models() -> Vec<ModelSpec> {
    let mut v = llm_zoo();
    v.extend(vlm_zoo());
    v.extend(cnn_ssm_zoo());
    v
}

impl ModelSpec {
    /// Real-model GEMM shapes (unscaled), for the accelerator workload:
    /// `(name, d_row, d_col, repeats_per_block)` multiplied out over blocks.
    pub fn real_gemm_shapes(&self) -> Vec<(String, usize, usize, usize)> {
        self.layers
            .iter()
            .map(|l| {
                (
                    l.name.to_string(),
                    l.d_row * PROXY_DIVISOR,
                    l.d_col * PROXY_DIVISOR,
                    l.repeats * self.n_blocks,
                )
            })
            .collect()
    }

    /// Total proxy-scale element count across one block's layers.
    pub fn proxy_elements(&self) -> usize {
        self.layers.iter().map(|l| l.elements() * l.repeats).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_models_are_present() {
        let names: Vec<&str> = llm_zoo().iter().map(|m| m.name).collect();
        for expect in [
            "OPT-6.7B",
            "OPT-175B",
            "LLaMA-2-7B",
            "LLaMA-2-13B",
            "LLaMA-2-70B",
            "LLaMA-3-8B",
            "LLaMA-3-70B",
            "Mixtral-8x7B",
            "Phi-3-3.8B",
            "Phi-3-14B",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn baseline_ppls_match_paper_table2() {
        assert_eq!(model("LLaMA-3-8B").fp_ppl, Some(6.13));
        assert_eq!(model("LLaMA-2-13B").fp_ppl, Some(4.83));
        assert_eq!(model("OPT-6.7B").fp_ppl, Some(10.86));
    }

    #[test]
    fn proxy_dims_are_block_aligned() {
        for m in all_models() {
            for l in &m.layers {
                assert!(l.d_col >= 16, "{}: {} too small", m.name, l.name);
                assert!(l.d_row >= 16, "{}: {} too small", m.name, l.name);
            }
        }
    }

    #[test]
    fn fm_adjacency_dwarfs_opt_adjacency() {
        // The §3.2 contrast that breaks OliVe.
        let llama3 = model("LLaMA-3-8B").outlier_profile;
        let opt = model("OPT-6.7B").outlier_profile;
        assert!(llama3.adjacency > opt.adjacency * 20.0);
    }

    #[test]
    fn real_shapes_restore_proxy_divisor() {
        let m = model("LLaMA-3-8B");
        let shapes = m.real_gemm_shapes();
        assert!(shapes.iter().any(|(_, r, c, _)| *r == 4096 && *c == 4096));
        assert!(shapes.iter().any(|(_, r, c, _)| *r == 14336 && *c == 4096));
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        let _ = model("GPT-5");
    }

    #[test]
    fn zoo_seeds_are_unique() {
        let mut seeds: Vec<u64> = all_models().iter().map(|m| m.seed).collect();
        let before = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), before);
    }
}
