//! Packed-weight TinyFM: a quantized model whose linear layers are stored
//! as [`PackedLayer`]s and executed through a pluggable [`PackedGemm`]
//! engine, never materializing dense weights inside the forward pass.
//!
//! This is the model half of the packed execution story: the engine half
//! (fused dequant-GEMM, block caching, parallel tiling) lives in
//! `microscopiq-runtime`, which implements [`PackedGemm`]. The
//! [`DequantGemm`] reference engine here dequantizes and calls the dense
//! matmul — it exists to define correctness: any engine must match it to
//! well under 1e-9 per logit.
//!
//! Batched execution packs sequences along the token axis (segment
//! packing): every linear layer runs one GEMM over the concatenated
//! activations while attention stays causal *within* each segment. Because
//! each output column of a GEMM depends only on its own input column, the
//! packed-batch forward is bit-identical to running each sequence alone.

use crate::decode::{self, DecodeJob, DecodeState, PackedOps};
use crate::tinyfm::{LinearId, TinyFm, TinyFmConfig};
use microscopiq_core::error::QuantError;
use microscopiq_core::kv_cache::KvMode;
use microscopiq_core::packed::PackedLayer;
use microscopiq_core::traits::{LayerTensors, WeightQuantizer};
use microscopiq_linalg::{Matrix, SeededRng};
use std::sync::Arc;

/// A GEMM engine over packed weights: computes `W · acts` where `W` is the
/// packed `d_row × d_col` layer and `acts` is `d_col × n`.
pub trait PackedGemm {
    /// Engine name for reports.
    fn name(&self) -> &str {
        "packed-gemm"
    }

    /// Computes `W · acts`.
    fn matmul(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix;

    /// Computes `W · x` for a single activation column — the shape every
    /// per-step decode pass collapses to. The default routes through
    /// [`PackedGemm::matmul`] on a one-column matrix (bit-identical by
    /// GEMM column independence); engines with a kernel dispatcher
    /// override it so GEMV-specialized kernels see the call.
    fn gemv(&self, layer: &PackedLayer, x: &[f64]) -> Vec<f64> {
        let acts = Matrix::from_vec(x.len(), 1, x.to_vec());
        self.matmul(layer, &acts).as_slice().to_vec()
    }

    /// Hints that `layer` will be executed soon — the forward pass calls
    /// this with the *next* linear layer before running the current one,
    /// so an engine with a decode cache can warm it from a background
    /// worker. The default is a no-op; the hint must never change
    /// results, only timing.
    fn prefetch(&self, layer: &Arc<PackedLayer>) {
        let _ = layer;
    }
}

/// Reference engine: materialize the dense weights, then dense matmul.
/// Defines the correctness target for fused engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct DequantGemm;

impl PackedGemm for DequantGemm {
    fn name(&self) -> &str {
        "dequantize-then-matmul"
    }

    fn matmul(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix {
        layer.dequantize().matmul(acts)
    }
}

/// One transformer block with packed linear weights.
#[derive(Debug, Clone)]
pub(crate) struct PackedBlock {
    pub(crate) ln1: Vec<f64>,
    // Arc'd so prefetch hints can hand a layer to a background decode
    // worker without copying the packed bytes.
    wq: Arc<PackedLayer>,
    wk: Arc<PackedLayer>,
    wv: Arc<PackedLayer>,
    wo: Arc<PackedLayer>,
    pub(crate) ln2: Vec<f64>,
    w_up: Arc<PackedLayer>,
    w_down: Arc<PackedLayer>,
}

/// A TinyFM whose linear layers live in the packed MicroScopiQ format.
#[derive(Debug, Clone)]
pub struct PackedTinyFm {
    pub(crate) cfg: TinyFmConfig,
    pub(crate) embed: Matrix,
    pub(crate) blocks: Vec<PackedBlock>,
    pub(crate) ln_f: Vec<f64>,
}

impl PackedTinyFm {
    /// Quantizes a TinyFM into packed form: every linear layer is
    /// quantized against calibration activations collected from
    /// `calib_sequences`; the (tied) embedding stays full precision.
    ///
    /// # Errors
    ///
    /// Propagates quantizer errors, and returns
    /// [`QuantError::InvalidConfig`] if the quantizer does not produce a
    /// packed representation (only packable methods can feed the runtime).
    pub fn quantize_from(
        fm: &TinyFm,
        quantizer: &dyn WeightQuantizer,
        calib_sequences: &[Vec<usize>],
    ) -> Result<Self, QuantError> {
        let calib = fm.collect_calibration(calib_sequences);
        let mut packed: Vec<PackedLayer> = Vec::with_capacity(calib.len());
        for (id, x) in fm.linear_ids().into_iter().zip(calib) {
            let layer = LayerTensors::new(fm.weights(id).clone(), x)?;
            let q = quantizer.quantize_layer(&layer)?;
            let p = q.packed.ok_or_else(|| QuantError::InvalidConfig {
                reason: format!(
                    "quantizer {} produced no packed layer for {id:?}",
                    quantizer.name()
                ),
            })?;
            packed.push(p);
        }
        let mut packed = packed.into_iter();
        let blocks = fm
            .blocks
            .iter()
            .map(|b| PackedBlock {
                ln1: b.ln1.clone(),
                wq: Arc::new(packed.next().expect("layer count")),
                wk: Arc::new(packed.next().expect("layer count")),
                wv: Arc::new(packed.next().expect("layer count")),
                wo: Arc::new(packed.next().expect("layer count")),
                ln2: b.ln2.clone(),
                w_up: Arc::new(packed.next().expect("layer count")),
                w_down: Arc::new(packed.next().expect("layer count")),
            })
            .collect();
        Ok(Self {
            cfg: fm.config(),
            embed: fm.embed.clone(),
            blocks,
            ln_f: fm.ln_f.clone(),
        })
    }

    /// The architecture.
    pub fn config(&self) -> TinyFmConfig {
        self.cfg
    }

    /// Borrows a packed linear layer.
    pub fn layer(&self, id: LinearId) -> &PackedLayer {
        self.layer_arc(id)
    }

    /// Borrows the shared handle of a packed linear layer — what
    /// [`PackedGemm::prefetch`] hints hand to a background worker.
    pub fn layer_arc(&self, id: LinearId) -> &Arc<PackedLayer> {
        match id {
            LinearId::Wq(n) => &self.blocks[n].wq,
            LinearId::Wk(n) => &self.blocks[n].wk,
            LinearId::Wv(n) => &self.blocks[n].wv,
            LinearId::Wo(n) => &self.blocks[n].wo,
            LinearId::WUp(n) => &self.blocks[n].w_up,
            LinearId::WDown(n) => &self.blocks[n].w_down,
        }
    }

    /// Every packed linear layer in forward order.
    pub fn linear_ids(&self) -> Vec<LinearId> {
        (0..self.cfg.n_layers)
            .flat_map(|n| {
                [
                    LinearId::Wq(n),
                    LinearId::Wk(n),
                    LinearId::Wv(n),
                    LinearId::Wo(n),
                    LinearId::WUp(n),
                    LinearId::WDown(n),
                ]
            })
            .collect()
    }

    /// Total serialized size of all packed linear layers, in bytes (the
    /// traffic a runtime actually reads per full forward pass).
    pub fn packed_bytes(&self) -> usize {
        self.linear_ids()
            .into_iter()
            .map(|id| self.layer(id).to_bytes().len())
            .sum()
    }

    /// Logits (`vocab × T`) for one token sequence, executed through the
    /// given engine.
    ///
    /// # Panics
    ///
    /// Panics if any token is outside the vocabulary.
    pub fn forward(&self, tokens: &[usize], engine: &dyn PackedGemm) -> Matrix {
        self.forward_batch(&[tokens], engine)
            .pop()
            .expect("one output")
    }

    /// Batched logits: packs the sequences along the token axis, runs every
    /// linear layer as one GEMM over the concatenated activations (causal
    /// attention stays within each segment), and splits the results back
    /// into one `vocab × T_i` matrix per sequence.
    ///
    /// Per-sequence outputs are bit-identical to [`PackedTinyFm::forward`]
    /// on the same engine: GEMM output columns depend only on their own
    /// input column, and every other op is column-local or segment-local.
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is empty, any sequence is empty, or any token is
    /// outside the vocabulary.
    pub fn forward_batch(&self, seqs: &[&[usize]], engine: &dyn PackedGemm) -> Vec<Matrix> {
        assert!(
            !seqs.is_empty(),
            "forward_batch needs at least one sequence"
        );
        let mut states: Vec<DecodeState> =
            seqs.iter().map(|_| DecodeState::exact(self.cfg)).collect();
        let mut jobs: Vec<DecodeJob<'_>> = states
            .iter_mut()
            .zip(seqs.iter())
            .map(|(state, &tokens)| DecodeJob { state, tokens })
            .collect();
        decode::advance_batch(
            &PackedOps {
                model: self,
                engine,
            },
            &mut jobs,
            None,
        )
    }

    /// Processes a whole prompt in one pass through the engine, returning
    /// the decode state (per-block KV caches) and the prompt logits
    /// (`vocab × T`). Follow with [`PackedTinyFm::decode_step`] for
    /// O(prefix) per-token decode; in [`KvMode::Exact`] the results are
    /// bit-identical to re-running [`PackedTinyFm::forward`] over the
    /// growing sequence on the same engine.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or any token is out of vocabulary.
    pub fn prefill(
        &self,
        tokens: &[usize],
        mode: KvMode,
        engine: &dyn PackedGemm,
    ) -> Result<(DecodeState, Matrix), QuantError> {
        let mut state = DecodeState::new(self.cfg, mode)?;
        let logits = decode::advance_batch(
            &PackedOps {
                model: self,
                engine,
            },
            &mut [DecodeJob {
                state: &mut state,
                tokens,
            }],
            None,
        )
        .pop()
        .expect("one job in, one logit matrix out");
        Ok((state, logits))
    }

    /// Chunked prefill: processes the prompt in segments of at most
    /// `chunk` tokens through the engine, resuming the KV caches between
    /// segments, and reassembles the per-chunk logits into the same
    /// `vocab × T` matrix [`PackedTinyFm::prefill`] returns. In
    /// [`KvMode::Exact`], on a bit-exact engine (one whose GEMV entry
    /// matches a one-column GEMM bit for bit — [`DequantGemm`] and the
    /// runtime's default/scalar tiers), the decode state and every logit
    /// column are **bit-identical** to single-pass prefill for any
    /// `chunk` — KV rows are appended token by token either way and
    /// attention is causal within each segment — which is what lets a
    /// serving scheduler split long prompts across decode steps without
    /// changing outputs. On the f32 fast tier results are
    /// tolerance-stable rather than bit-stable (a chunk of 1 routes
    /// through the differently-rounded lane GEMV). In
    /// [`KvMode::Quantized`] chunking changes when rows age past the
    /// residual window, so results are chunk-size-dependent.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty, any token is out of vocabulary, or
    /// `chunk` is zero.
    pub fn prefill_chunked(
        &self,
        tokens: &[usize],
        mode: KvMode,
        engine: &dyn PackedGemm,
        chunk: usize,
    ) -> Result<(DecodeState, Matrix), QuantError> {
        decode::prefill_chunked(
            &PackedOps {
                model: self,
                engine,
            },
            tokens,
            mode,
            chunk,
        )
    }

    /// Advances an incremental decode state by one token, returning the
    /// logits (`vocab` values) at the new position.
    ///
    /// # Panics
    ///
    /// Panics if the token is out of vocabulary or the state was built
    /// for a different architecture.
    pub fn decode_step(
        &self,
        state: &mut DecodeState,
        token: usize,
        engine: &dyn PackedGemm,
    ) -> Vec<f64> {
        decode::advance_batch(
            &PackedOps {
                model: self,
                engine,
            },
            &mut [DecodeJob {
                state,
                tokens: &[token],
            }],
            None,
        )
        .pop()
        .expect("one job in, one logit matrix out")
        .col(0)
    }

    /// Advances a batch of decode jobs in one segment-packed pass: every
    /// linear layer runs a single GEMM over the concatenated new columns
    /// (prefill segments and single-token decode segments can ride
    /// together), and each job's attention reads its own KV cache.
    /// Returns per-job logits (`vocab × new_len`). Per-job results are
    /// independent of what the job was batched with.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty, any job has no new tokens, any token is
    /// out of vocabulary, or a state was built for a different
    /// architecture.
    pub fn advance_batch(
        &self,
        jobs: &mut [DecodeJob<'_>],
        engine: &dyn PackedGemm,
    ) -> Vec<Matrix> {
        decode::advance_batch(
            &PackedOps {
                model: self,
                engine,
            },
            jobs,
            None,
        )
    }
}

/// Samples the next token from column `t` of a `vocab × T` logit matrix,
/// reproducing [`TinyFm::generate`]'s draw semantics exactly (softmax at
/// `temperature`, one uniform draw). Shared by the dense and packed
/// generation paths so equal logits yield equal tokens.
pub fn sample_token(logits: &Matrix, t: usize, temperature: f64, rng: &mut SeededRng) -> usize {
    let col: Vec<f64> = (0..logits.rows()).map(|v| logits[(v, t)]).collect();
    sample_logits(&col, temperature, rng)
}

/// Samples a token from one position's logit vector (the shape
/// `decode_step` returns) with the same draw semantics as
/// [`sample_token`]: softmax at `temperature`, one uniform draw.
pub fn sample_logits(logits: &[f64], temperature: f64, rng: &mut SeededRng) -> usize {
    let vocab = logits.len();
    let col: Vec<f64> = logits.iter().map(|&v| v / temperature).collect();
    let max = col.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    let weights: Vec<f64> = col.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = weights.iter().sum();
    let mut draw = rng.uniform() * sum;
    let mut choice = vocab - 1;
    for (v, &w) in weights.iter().enumerate() {
        if draw < w {
            choice = v;
            break;
        }
        draw -= w;
    }
    choice
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::{MicroScopiQ, QuantConfig};

    fn small() -> TinyFmConfig {
        TinyFmConfig {
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_layers: 2,
            vocab: 64,
        }
    }

    fn quantized_pair() -> (TinyFm, PackedTinyFm) {
        let fm = TinyFm::teacher(small(), 17);
        let mut rng = SeededRng::new(3);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.8, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let packed = PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap();
        (fm, packed)
    }

    #[test]
    fn packed_forward_matches_dense_student() {
        // The packed model with the reference engine must equal the dense
        // quantized student exactly: both are "dequantized weights times
        // activations" with identical weight values.
        let (fm, packed) = quantized_pair();
        let mut rng = SeededRng::new(5);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.8, &mut rng)).collect();
        // Rebuild the dense student from the same quantizer output.
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let mut rng2 = SeededRng::new(3);
        let calib_same: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.8, &mut rng2)).collect();
        let student = fm.quantize_with(&q, &calib_same).unwrap();
        let tokens = &calib[0];
        let dense = student.forward(tokens);
        let packed_logits = packed.forward(tokens, &DequantGemm);
        let mut max_diff = 0.0_f64;
        for v in 0..dense.rows() {
            for t in 0..dense.cols() {
                max_diff = max_diff.max((dense[(v, t)] - packed_logits[(v, t)]).abs());
            }
        }
        assert!(max_diff < 1e-9, "packed vs dense diverged by {max_diff}");
    }

    #[test]
    fn forward_batch_is_bit_identical_to_single() {
        let (fm, packed) = quantized_pair();
        let mut rng = SeededRng::new(9);
        let seqs: Vec<Vec<usize>> = (0..3)
            .map(|i| fm.generate(6 + 3 * i, 0.8, &mut rng))
            .collect();
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let batched = packed.forward_batch(&refs, &DequantGemm);
        for (seq, out) in seqs.iter().zip(batched.iter()) {
            let single = packed.forward(seq, &DequantGemm);
            assert_eq!(&single, out, "segment packing changed results");
        }
    }

    #[test]
    fn sample_token_matches_generate() {
        // Generating through (forward → sample_token) must reproduce
        // TinyFm::generate exactly.
        let fm = TinyFm::teacher(small(), 23);
        let mut r1 = SeededRng::new(77);
        let expect = fm.generate(10, 0.8, &mut r1);
        let mut r2 = SeededRng::new(77);
        let mut tokens = vec![r2.below(fm.config().vocab)];
        while tokens.len() < 10 {
            let logits = fm.forward(&tokens);
            let t = tokens.len() - 1;
            tokens.push(sample_token(&logits, t, 0.8, &mut r2));
        }
        assert_eq!(tokens, expect);
    }

    #[test]
    fn prefill_chunked_is_bitwise_identical_to_prefill() {
        let (fm, packed) = quantized_pair();
        let mut rng = SeededRng::new(41);
        let prompt = fm.generate(13, 0.8, &mut rng);
        let (whole_state, whole_logits) = packed
            .prefill(&prompt, KvMode::Exact, &DequantGemm)
            .unwrap();
        for chunk in [1usize, 3, 5, 13, 64] {
            let (state, logits) = packed
                .prefill_chunked(&prompt, KvMode::Exact, &DequantGemm, chunk)
                .unwrap();
            assert_eq!(logits, whole_logits, "chunk={chunk} changed prefill logits");
            assert_eq!(state.tokens(), whole_state.tokens());
            assert_eq!(state.kv_rows(), whole_state.kv_rows());
            // The resumed caches must decode identically: one step each.
            let mut a = state;
            let mut b = whole_state.clone();
            assert_eq!(
                packed.decode_step(&mut a, prompt[0], &DequantGemm),
                packed.decode_step(&mut b, prompt[0], &DequantGemm),
                "chunk={chunk} diverged on the first decode step"
            );
        }
    }

    #[test]
    fn remaining_prompt_is_a_resumable_cursor() {
        let (fm, packed) = quantized_pair();
        let mut rng = SeededRng::new(43);
        let prompt = fm.generate(9, 0.8, &mut rng);
        let mut state = DecodeState::exact(packed.config());
        assert_eq!(state.remaining_prompt(&prompt), &prompt[..]);
        // Advance 4 tokens, then check the cursor points at the rest.
        let _ = packed.advance_batch(
            &mut [DecodeJob {
                state: &mut state,
                tokens: &prompt[..4],
            }],
            &DequantGemm,
        );
        assert_eq!(state.remaining_prompt(&prompt), &prompt[4..]);
    }

    #[test]
    #[should_panic(expected = "not a partial prefill")]
    fn remaining_prompt_rejects_a_mismatched_sequence() {
        let (_, packed) = quantized_pair();
        let mut state = DecodeState::exact(packed.config());
        let _ = packed.advance_batch(
            &mut [DecodeJob {
                state: &mut state,
                tokens: &[1, 2, 3],
            }],
            &DequantGemm,
        );
        let _ = state.remaining_prompt(&[1, 9, 3, 4]);
    }

    #[test]
    fn packed_bytes_is_positive_and_compressed() {
        let (fm, packed) = quantized_pair();
        let dense_bytes: usize = fm
            .linear_ids()
            .iter()
            .map(|&id| fm.weights(id).rows() * fm.weights(id).cols() * 8)
            .sum();
        let pb = packed.packed_bytes();
        assert!(pb > 0);
        assert!(
            pb < dense_bytes / 8,
            "4-bit packing should be ≥8× smaller than f64: {pb} vs {dense_bytes}"
        );
    }

    #[test]
    fn unpackable_quantizer_is_rejected() {
        use microscopiq_core::traits::{QuantStats, QuantizedLayer};

        struct NoPack;
        impl WeightQuantizer for NoPack {
            fn name(&self) -> &str {
                "nopack"
            }
            fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
                Ok(QuantizedLayer {
                    dequantized: layer.weights.clone(),
                    packed: None,
                    stats: QuantStats::default(),
                })
            }
        }

        let fm = TinyFm::teacher(small(), 2);
        let mut rng = SeededRng::new(1);
        let calib: Vec<Vec<usize>> = vec![fm.generate(8, 0.8, &mut rng)];
        let err = PackedTinyFm::quantize_from(&fm, &NoPack, &calib).unwrap_err();
        assert!(err.to_string().contains("no packed layer"));
    }
}
