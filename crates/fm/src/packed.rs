//! Packed-weight TinyFM: a quantized model whose linear layers are stored
//! as [`PackedLayer`]s and executed through a pluggable [`PackedGemm`]
//! engine, never materializing dense weights inside the forward pass.
//!
//! This is the model half of the packed execution story: the engine half
//! (fused dequant-GEMM, block caching, parallel tiling) lives in
//! `microscopiq-runtime`, which implements [`PackedGemm`]. The
//! [`DequantGemm`] reference engine here dequantizes and calls the dense
//! matmul — it exists to define correctness: any engine must match it to
//! well under 1e-9 per logit.
//!
//! Batched execution packs sequences along the token axis (segment
//! packing): every linear layer runs one GEMM over the concatenated
//! activations while attention stays causal *within* each segment. Because
//! each output column of a GEMM depends only on its own input column, the
//! packed-batch forward is bit-identical to running each sequence alone.

use crate::tinyfm::{rmsnorm_col, silu, LinearId, TinyFm, TinyFmConfig};
use microscopiq_core::error::QuantError;
use microscopiq_core::packed::PackedLayer;
use microscopiq_core::traits::{LayerTensors, WeightQuantizer};
use microscopiq_linalg::{Matrix, SeededRng};

/// A GEMM engine over packed weights: computes `W · acts` where `W` is the
/// packed `d_row × d_col` layer and `acts` is `d_col × n`.
pub trait PackedGemm {
    /// Engine name for reports.
    fn name(&self) -> &str {
        "packed-gemm"
    }

    /// Computes `W · acts`.
    fn matmul(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix;
}

/// Reference engine: materialize the dense weights, then dense matmul.
/// Defines the correctness target for fused engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct DequantGemm;

impl PackedGemm for DequantGemm {
    fn name(&self) -> &str {
        "dequantize-then-matmul"
    }

    fn matmul(&self, layer: &PackedLayer, acts: &Matrix) -> Matrix {
        layer.dequantize().matmul(acts)
    }
}

/// One transformer block with packed linear weights.
#[derive(Debug, Clone)]
struct PackedBlock {
    ln1: Vec<f64>,
    wq: PackedLayer,
    wk: PackedLayer,
    wv: PackedLayer,
    wo: PackedLayer,
    ln2: Vec<f64>,
    w_up: PackedLayer,
    w_down: PackedLayer,
}

/// A TinyFM whose linear layers live in the packed MicroScopiQ format.
#[derive(Debug, Clone)]
pub struct PackedTinyFm {
    cfg: TinyFmConfig,
    embed: Matrix,
    blocks: Vec<PackedBlock>,
    ln_f: Vec<f64>,
}

impl PackedTinyFm {
    /// Quantizes a TinyFM into packed form: every linear layer is
    /// quantized against calibration activations collected from
    /// `calib_sequences`; the (tied) embedding stays full precision.
    ///
    /// # Errors
    ///
    /// Propagates quantizer errors, and returns
    /// [`QuantError::InvalidConfig`] if the quantizer does not produce a
    /// packed representation (only packable methods can feed the runtime).
    pub fn quantize_from(
        fm: &TinyFm,
        quantizer: &dyn WeightQuantizer,
        calib_sequences: &[Vec<usize>],
    ) -> Result<Self, QuantError> {
        let calib = fm.collect_calibration(calib_sequences);
        let mut packed: Vec<PackedLayer> = Vec::with_capacity(calib.len());
        for (id, x) in fm.linear_ids().into_iter().zip(calib) {
            let layer = LayerTensors::new(fm.weights(id).clone(), x)?;
            let q = quantizer.quantize_layer(&layer)?;
            let p = q.packed.ok_or_else(|| QuantError::InvalidConfig {
                reason: format!(
                    "quantizer {} produced no packed layer for {id:?}",
                    quantizer.name()
                ),
            })?;
            packed.push(p);
        }
        let mut packed = packed.into_iter();
        let blocks = fm
            .blocks
            .iter()
            .map(|b| PackedBlock {
                ln1: b.ln1.clone(),
                wq: packed.next().expect("layer count"),
                wk: packed.next().expect("layer count"),
                wv: packed.next().expect("layer count"),
                wo: packed.next().expect("layer count"),
                ln2: b.ln2.clone(),
                w_up: packed.next().expect("layer count"),
                w_down: packed.next().expect("layer count"),
            })
            .collect();
        Ok(Self {
            cfg: fm.config(),
            embed: fm.embed.clone(),
            blocks,
            ln_f: fm.ln_f.clone(),
        })
    }

    /// The architecture.
    pub fn config(&self) -> TinyFmConfig {
        self.cfg
    }

    /// Borrows a packed linear layer.
    pub fn layer(&self, id: LinearId) -> &PackedLayer {
        match id {
            LinearId::Wq(n) => &self.blocks[n].wq,
            LinearId::Wk(n) => &self.blocks[n].wk,
            LinearId::Wv(n) => &self.blocks[n].wv,
            LinearId::Wo(n) => &self.blocks[n].wo,
            LinearId::WUp(n) => &self.blocks[n].w_up,
            LinearId::WDown(n) => &self.blocks[n].w_down,
        }
    }

    /// Every packed linear layer in forward order.
    pub fn linear_ids(&self) -> Vec<LinearId> {
        (0..self.cfg.n_layers)
            .flat_map(|n| {
                [
                    LinearId::Wq(n),
                    LinearId::Wk(n),
                    LinearId::Wv(n),
                    LinearId::Wo(n),
                    LinearId::WUp(n),
                    LinearId::WDown(n),
                ]
            })
            .collect()
    }

    /// Total serialized size of all packed linear layers, in bytes (the
    /// traffic a runtime actually reads per full forward pass).
    pub fn packed_bytes(&self) -> usize {
        self.linear_ids()
            .into_iter()
            .map(|id| self.layer(id).to_bytes().len())
            .sum()
    }

    /// Logits (`vocab × T`) for one token sequence, executed through the
    /// given engine.
    ///
    /// # Panics
    ///
    /// Panics if any token is outside the vocabulary.
    pub fn forward(&self, tokens: &[usize], engine: &dyn PackedGemm) -> Matrix {
        self.forward_batch(&[tokens], engine)
            .pop()
            .expect("one output")
    }

    /// Batched logits: packs the sequences along the token axis, runs every
    /// linear layer as one GEMM over the concatenated activations (causal
    /// attention stays within each segment), and splits the results back
    /// into one `vocab × T_i` matrix per sequence.
    ///
    /// Per-sequence outputs are bit-identical to [`PackedTinyFm::forward`]
    /// on the same engine: GEMM output columns depend only on their own
    /// input column, and every other op is column-local or segment-local.
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is empty, any sequence is empty, or any token is
    /// outside the vocabulary.
    pub fn forward_batch(&self, seqs: &[&[usize]], engine: &dyn PackedGemm) -> Vec<Matrix> {
        assert!(
            !seqs.is_empty(),
            "forward_batch needs at least one sequence"
        );
        let d = self.cfg.d_model;
        let nh = self.cfg.n_heads;
        let dh = d / nh;
        let total: usize = seqs.iter().map(|s| s.len()).sum();
        let mut segments = Vec::with_capacity(seqs.len());
        let mut start = 0;
        for s in seqs {
            assert!(!s.is_empty(), "cannot run an empty sequence");
            segments.push((start, s.len()));
            start += s.len();
        }

        let mut h = Matrix::zeros(d, total);
        for (seg, tokens) in segments.iter().zip(seqs.iter()) {
            for (t, &tok) in tokens.iter().enumerate() {
                assert!(tok < self.cfg.vocab, "token out of vocabulary");
                for i in 0..d {
                    h[(i, seg.0 + t)] = self.embed[(tok, i)];
                }
            }
        }

        for block in &self.blocks {
            // Attention sub-block.
            let mut a = h.clone();
            for t in 0..total {
                let mut col: Vec<f64> = (0..d).map(|i| a[(i, t)]).collect();
                rmsnorm_col(&mut col, &block.ln1);
                for i in 0..d {
                    a[(i, t)] = col[i];
                }
            }
            let q = engine.matmul(&block.wq, &a);
            let k = engine.matmul(&block.wk, &a);
            let v = engine.matmul(&block.wv, &a);
            let mut attn = Matrix::zeros(d, total);
            let scale = 1.0 / (dh as f64).sqrt();
            for &(seg_start, seg_len) in &segments {
                for head in 0..nh {
                    let off = head * dh;
                    for t in 0..seg_len {
                        let tc = seg_start + t;
                        // Causal scores within the segment only.
                        let mut scores = Vec::with_capacity(t + 1);
                        for s in 0..=t {
                            let sc = seg_start + s;
                            let dot: f64 =
                                (0..dh).map(|i| q[(off + i, tc)] * k[(off + i, sc)]).sum();
                            scores.push(dot * scale);
                        }
                        let max = scores.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
                        let mut sum = 0.0;
                        for s in scores.iter_mut() {
                            *s = (*s - max).exp();
                            sum += *s;
                        }
                        for (s, &score) in scores.iter().enumerate() {
                            let alpha = score / sum;
                            let sc = seg_start + s;
                            for i in 0..dh {
                                attn[(off + i, tc)] += alpha * v[(off + i, sc)];
                            }
                        }
                    }
                }
            }
            let o = engine.matmul(&block.wo, &attn);
            for t in 0..total {
                for i in 0..d {
                    h[(i, t)] += o[(i, t)];
                }
            }
            // FFN sub-block.
            let mut b = h.clone();
            for t in 0..total {
                let mut col: Vec<f64> = (0..d).map(|i| b[(i, t)]).collect();
                rmsnorm_col(&mut col, &block.ln2);
                for i in 0..d {
                    b[(i, t)] = col[i];
                }
            }
            let mut u = engine.matmul(&block.w_up, &b);
            for val in u.as_mut_slice() {
                *val = silu(*val);
            }
            let dn = engine.matmul(&block.w_down, &u);
            for t in 0..total {
                for i in 0..d {
                    h[(i, t)] += dn[(i, t)];
                }
            }
        }

        for t in 0..total {
            let mut col: Vec<f64> = (0..d).map(|i| h[(i, t)]).collect();
            rmsnorm_col(&mut col, &self.ln_f);
            for i in 0..d {
                h[(i, t)] = col[i];
            }
        }
        let logits = self.embed.matmul(&h);
        segments
            .iter()
            .map(|&(seg_start, seg_len)| {
                Matrix::from_fn(self.cfg.vocab, seg_len, |v, t| logits[(v, seg_start + t)])
            })
            .collect()
    }
}

/// Samples the next token from column `t` of a `vocab × T` logit matrix,
/// reproducing [`TinyFm::generate`]'s draw semantics exactly (softmax at
/// `temperature`, one uniform draw). Shared by the dense and packed
/// generation paths so equal logits yield equal tokens.
pub fn sample_token(logits: &Matrix, t: usize, temperature: f64, rng: &mut SeededRng) -> usize {
    let vocab = logits.rows();
    let col: Vec<f64> = (0..vocab).map(|v| logits[(v, t)] / temperature).collect();
    let max = col.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    let weights: Vec<f64> = col.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = weights.iter().sum();
    let mut draw = rng.uniform() * sum;
    let mut choice = vocab - 1;
    for (v, &w) in weights.iter().enumerate() {
        if draw < w {
            choice = v;
            break;
        }
        draw -= w;
    }
    choice
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::{MicroScopiQ, QuantConfig};

    fn small() -> TinyFmConfig {
        TinyFmConfig {
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_layers: 2,
            vocab: 64,
        }
    }

    fn quantized_pair() -> (TinyFm, PackedTinyFm) {
        let fm = TinyFm::teacher(small(), 17);
        let mut rng = SeededRng::new(3);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.8, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let packed = PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap();
        (fm, packed)
    }

    #[test]
    fn packed_forward_matches_dense_student() {
        // The packed model with the reference engine must equal the dense
        // quantized student exactly: both are "dequantized weights times
        // activations" with identical weight values.
        let (fm, packed) = quantized_pair();
        let mut rng = SeededRng::new(5);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.8, &mut rng)).collect();
        // Rebuild the dense student from the same quantizer output.
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let mut rng2 = SeededRng::new(3);
        let calib_same: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.8, &mut rng2)).collect();
        let student = fm.quantize_with(&q, &calib_same).unwrap();
        let tokens = &calib[0];
        let dense = student.forward(tokens);
        let packed_logits = packed.forward(tokens, &DequantGemm);
        let mut max_diff = 0.0_f64;
        for v in 0..dense.rows() {
            for t in 0..dense.cols() {
                max_diff = max_diff.max((dense[(v, t)] - packed_logits[(v, t)]).abs());
            }
        }
        assert!(max_diff < 1e-9, "packed vs dense diverged by {max_diff}");
    }

    #[test]
    fn forward_batch_is_bit_identical_to_single() {
        let (fm, packed) = quantized_pair();
        let mut rng = SeededRng::new(9);
        let seqs: Vec<Vec<usize>> = (0..3)
            .map(|i| fm.generate(6 + 3 * i, 0.8, &mut rng))
            .collect();
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let batched = packed.forward_batch(&refs, &DequantGemm);
        for (seq, out) in seqs.iter().zip(batched.iter()) {
            let single = packed.forward(seq, &DequantGemm);
            assert_eq!(&single, out, "segment packing changed results");
        }
    }

    #[test]
    fn sample_token_matches_generate() {
        // Generating through (forward → sample_token) must reproduce
        // TinyFm::generate exactly.
        let fm = TinyFm::teacher(small(), 23);
        let mut r1 = SeededRng::new(77);
        let expect = fm.generate(10, 0.8, &mut r1);
        let mut r2 = SeededRng::new(77);
        let mut tokens = vec![r2.below(fm.config().vocab)];
        while tokens.len() < 10 {
            let logits = fm.forward(&tokens);
            let t = tokens.len() - 1;
            tokens.push(sample_token(&logits, t, 0.8, &mut r2));
        }
        assert_eq!(tokens, expect);
    }

    #[test]
    fn packed_bytes_is_positive_and_compressed() {
        let (fm, packed) = quantized_pair();
        let dense_bytes: usize = fm
            .linear_ids()
            .iter()
            .map(|&id| fm.weights(id).rows() * fm.weights(id).cols() * 8)
            .sum();
        let pb = packed.packed_bytes();
        assert!(pb > 0);
        assert!(
            pb < dense_bytes / 8,
            "4-bit packing should be ≥8× smaller than f64: {pb} vs {dense_bytes}"
        );
    }

    #[test]
    fn unpackable_quantizer_is_rejected() {
        use microscopiq_core::traits::{QuantStats, QuantizedLayer};

        struct NoPack;
        impl WeightQuantizer for NoPack {
            fn name(&self) -> &str {
                "nopack"
            }
            fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
                Ok(QuantizedLayer {
                    dequantized: layer.weights.clone(),
                    packed: None,
                    stats: QuantStats::default(),
                })
            }
        }

        let fm = TinyFm::teacher(small(), 2);
        let mut rng = SeededRng::new(1);
        let calib: Vec<Vec<usize>> = vec![fm.generate(8, 0.8, &mut rng)];
        let err = PackedTinyFm::quantize_from(&fm, &NoPack, &calib).unwrap_err();
        assert!(err.to_string().contains("no packed layer"));
    }
}
