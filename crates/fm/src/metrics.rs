//! Accuracy proxies (DESIGN.md §2): mapping measured layer output error to
//! paper-style perplexity and benchmark-accuracy numbers.
//!
//! Absolute paper numbers are not reproducible without real checkpoints;
//! the maps below are monotone in the measured error, so *orderings and
//! ratios between methods* — the properties the paper's tables argue from —
//! are preserved. Each bench calibrates the slope once on a neutral anchor
//! (GPTQ-W4 for perplexity) and then applies it uniformly to every method.

/// Calibrated proxy-perplexity map: `PPL = fp_ppl · exp(κ · err)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerplexityMap {
    /// Error-to-log-perplexity slope.
    pub kappa: f64,
}

/// The paper's GPTQ-W4A16 anchor on LLaMA-3-8B: 8.12 vs the 6.13 baseline.
pub const ANCHOR_LOG_PPL_RATIO: f64 = 0.281; // ln(8.12 / 6.13)

/// Fallback slope when no calibration run is available (examples, tests).
pub const DEFAULT_KAPPA: f64 = 4.0;

impl PerplexityMap {
    /// Calibrates κ from a measured anchor error so that the anchor method
    /// reproduces the paper's log-perplexity ratio.
    ///
    /// # Panics
    ///
    /// Panics if `anchor_error` is not strictly positive.
    pub fn calibrate(anchor_error: f64) -> Self {
        assert!(anchor_error > 0.0, "anchor error must be positive");
        Self {
            kappa: ANCHOR_LOG_PPL_RATIO / anchor_error,
        }
    }

    /// The uncalibrated default map.
    pub fn default_map() -> Self {
        Self {
            kappa: DEFAULT_KAPPA,
        }
    }

    /// Maps a measured mean output error to proxy perplexity.
    pub fn ppl(&self, fp_ppl: f64, error: f64) -> f64 {
        fp_ppl * (self.kappa * error).exp()
    }
}

/// Calibrated proxy-accuracy map:
/// `acc = chance + (fp_acc − chance) · exp(−κ · err)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyMap {
    /// Error-to-accuracy-decay slope.
    pub kappa: f64,
    /// Chance-level accuracy of the benchmark (%).
    pub chance: f64,
}

impl AccuracyMap {
    /// Calibrates from an anchor: a method with measured `anchor_error`
    /// scoring `anchor_acc` on a benchmark with the given chance level and
    /// full-precision accuracy.
    ///
    /// # Panics
    ///
    /// Panics unless `chance < anchor_acc <= fp_acc` and the error is
    /// positive.
    pub fn calibrate(anchor_error: f64, fp_acc: f64, anchor_acc: f64, chance: f64) -> Self {
        assert!(anchor_error > 0.0, "anchor error must be positive");
        assert!(
            chance < anchor_acc && anchor_acc <= fp_acc,
            "anchor accuracy must lie between chance and full precision"
        );
        let kappa = -((anchor_acc - chance) / (fp_acc - chance)).ln() / anchor_error;
        Self { kappa, chance }
    }

    /// The uncalibrated default (chance 25%, moderate decay).
    pub fn default_map() -> Self {
        Self {
            kappa: 3.0,
            chance: 25.0,
        }
    }

    /// Maps a measured error to proxy accuracy (%).
    pub fn accuracy(&self, fp_acc: f64, error: f64) -> f64 {
        self.chance + (fp_acc - self.chance) * (-self.kappa * error).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_is_lossless() {
        let m = PerplexityMap::default_map();
        assert_eq!(m.ppl(6.13, 0.0), 6.13);
        let a = AccuracyMap::default_map();
        assert_eq!(a.accuracy(80.0, 0.0), 80.0);
    }

    #[test]
    fn ppl_is_monotone_in_error() {
        let m = PerplexityMap::default_map();
        assert!(m.ppl(6.13, 0.2) > m.ppl(6.13, 0.1));
    }

    #[test]
    fn calibration_reproduces_anchor() {
        let m = PerplexityMap::calibrate(0.07);
        let got = m.ppl(6.13, 0.07);
        assert!((got - 8.12).abs() < 0.01, "anchor maps to {got}");
    }

    #[test]
    fn accuracy_decays_to_chance() {
        let a = AccuracyMap::default_map();
        let far = a.accuracy(80.0, 10.0);
        assert!((far - 25.0).abs() < 0.1);
    }

    #[test]
    fn accuracy_calibration_reproduces_anchor() {
        let a = AccuracyMap::calibrate(0.15, 62.3, 48.26, 0.0);
        let got = a.accuracy(62.3, 0.15);
        assert!((got - 48.26).abs() < 0.01);
    }

    #[test]
    fn ordering_is_preserved_under_any_calibration() {
        for kappa in [0.5, 2.0, 8.0] {
            let m = PerplexityMap { kappa };
            assert!(m.ppl(6.13, 0.05) < m.ppl(6.13, 0.30));
        }
    }
}
