//! TinyFM: a small, fully functional pure-Rust transformer LM used for
//! honest end-to-end perplexity measurements (DESIGN.md §2).
//!
//! A randomly initialized *teacher* (with FM-style weight outliers
//! injected) generates token sequences; a quantized *student* is evaluated
//! by cross-entropy on that data. Since the teacher is the data's true
//! distribution, `CE(student) = H(teacher) + KL(teacher‖student)` in
//! expectation, so the perplexity ratio `exp(CE_s − CE_t)` isolates pure
//! quantization damage — no proxy mapping involved.

use crate::decode::{self, DecodeJob, DecodeState};
use microscopiq_core::error::QuantError;
use microscopiq_core::kv_cache::KvMode;
use microscopiq_core::traits::{LayerTensors, WeightQuantizer};
use microscopiq_linalg::{Matrix, SeededRng};

/// Architecture of a TinyFM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TinyFmConfig {
    /// Residual width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// FFN width.
    pub d_ff: usize,
    /// Transformer blocks.
    pub n_layers: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl Default for TinyFmConfig {
    fn default() -> Self {
        Self {
            d_model: 64,
            n_heads: 4,
            d_ff: 128,
            n_layers: 2,
            vocab: 128,
        }
    }
}

/// One transformer block's weights.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    pub(crate) ln1: Vec<f64>,
    pub(crate) wq: Matrix,
    pub(crate) wk: Matrix,
    pub(crate) wv: Matrix,
    pub(crate) wo: Matrix,
    pub(crate) ln2: Vec<f64>,
    pub(crate) w_up: Matrix,
    pub(crate) w_down: Matrix,
}

/// The linear layers of a TinyFM, addressable for quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinearId {
    /// Query projection of block `n`.
    Wq(usize),
    /// Key projection of block `n`.
    Wk(usize),
    /// Value projection of block `n`.
    Wv(usize),
    /// Output projection of block `n`.
    Wo(usize),
    /// FFN up projection of block `n`.
    WUp(usize),
    /// FFN down projection of block `n`.
    WDown(usize),
}

impl LinearId {
    /// The linear that executes after this one in the forward pass —
    /// the prefetch target. `None` after the last block's down
    /// projection (the pass ends at the LM head, which is dense).
    pub fn next(self, n_layers: usize) -> Option<LinearId> {
        match self {
            LinearId::Wq(n) => Some(LinearId::Wk(n)),
            LinearId::Wk(n) => Some(LinearId::Wv(n)),
            LinearId::Wv(n) => Some(LinearId::Wo(n)),
            LinearId::Wo(n) => Some(LinearId::WUp(n)),
            LinearId::WUp(n) => Some(LinearId::WDown(n)),
            LinearId::WDown(n) if n + 1 < n_layers => Some(LinearId::Wq(n + 1)),
            LinearId::WDown(_) => None,
        }
    }
}

/// A functional tiny transformer LM.
#[derive(Debug, Clone)]
pub struct TinyFm {
    pub(crate) cfg: TinyFmConfig,
    pub(crate) embed: Matrix, // vocab × d_model (tied with the LM head)
    pub(crate) blocks: Vec<Block>,
    pub(crate) ln_f: Vec<f64>,
}

pub(crate) fn rmsnorm_col(h: &mut [f64], gains: &[f64]) {
    let ms = h.iter().map(|v| v * v).sum::<f64>() / h.len() as f64;
    let inv = 1.0 / (ms + 1e-6).sqrt();
    for (v, g) in h.iter_mut().zip(gains.iter()) {
        *v *= inv * g;
    }
}

pub(crate) fn silu(x: f64) -> f64 {
    x / (1.0 + (-x).exp())
}

impl TinyFm {
    /// Creates a randomly initialized teacher with FM-style outliers
    /// (≈1.2% of weights, matching FM statistics).
    pub fn teacher(cfg: TinyFmConfig, seed: u64) -> Self {
        let d = cfg.d_model;
        Self::teacher_with_outliers(cfg, seed, (d * d) / 80)
    }

    /// Creates a randomly initialized teacher with an explicit outlier
    /// count per attention projection (FFN projections get twice as
    /// many, scaling with their size). `attn_outliers == 0` yields a
    /// purely Gaussian, outlier-free model — useful for isolating
    /// outlier effects in quantization/decode tests.
    pub fn teacher_with_outliers(cfg: TinyFmConfig, seed: u64, attn_outliers: usize) -> Self {
        assert!(
            cfg.d_model.is_multiple_of(cfg.n_heads),
            "heads must divide d_model"
        );
        let mut rng = SeededRng::new(seed);
        let sigma = 1.0 / (cfg.d_model as f64).sqrt();
        let mk = |rows: usize, cols: usize, outliers: usize, rng: &mut SeededRng| {
            let mut w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, sigma));
            for _ in 0..outliers {
                let r = rng.below(rows);
                let c = rng.below(cols);
                w[(r, c)] = rng.sign() * rng.uniform_range(5.0, 12.0) * sigma;
            }
            w
        };
        let d = cfg.d_model;
        let n_out = attn_outliers;
        let blocks = (0..cfg.n_layers)
            .map(|_| Block {
                ln1: vec![1.0; d],
                wq: mk(d, d, n_out, &mut rng),
                wk: mk(d, d, n_out, &mut rng),
                wv: mk(d, d, n_out, &mut rng),
                wo: mk(d, d, n_out, &mut rng),
                ln2: vec![1.0; d],
                w_up: mk(cfg.d_ff, d, n_out * 2, &mut rng),
                w_down: mk(d, cfg.d_ff, n_out * 2, &mut rng),
            })
            .collect();
        let embed = Matrix::from_fn(cfg.vocab, d, |_, _| rng.normal(0.0, 1.0));
        Self {
            cfg,
            embed,
            blocks,
            ln_f: vec![1.0; d],
        }
    }

    /// The architecture.
    pub fn config(&self) -> TinyFmConfig {
        self.cfg
    }

    /// Borrows a linear layer's weights.
    pub fn weights(&self, id: LinearId) -> &Matrix {
        match id {
            LinearId::Wq(n) => &self.blocks[n].wq,
            LinearId::Wk(n) => &self.blocks[n].wk,
            LinearId::Wv(n) => &self.blocks[n].wv,
            LinearId::Wo(n) => &self.blocks[n].wo,
            LinearId::WUp(n) => &self.blocks[n].w_up,
            LinearId::WDown(n) => &self.blocks[n].w_down,
        }
    }

    /// Every linear layer in forward order.
    pub fn linear_ids(&self) -> Vec<LinearId> {
        (0..self.cfg.n_layers)
            .flat_map(|n| {
                [
                    LinearId::Wq(n),
                    LinearId::Wk(n),
                    LinearId::Wv(n),
                    LinearId::Wo(n),
                    LinearId::WUp(n),
                    LinearId::WDown(n),
                ]
            })
            .collect()
    }

    /// Runs the model over a token sequence, returning logits
    /// (`vocab × T`) and, when `trace` is set, the input activations of
    /// every linear layer (`d_in × T` each, in [`TinyFm::linear_ids`]
    /// order). One pass through the shared decode path with a fresh
    /// exact-KV state.
    fn forward_inner(&self, tokens: &[usize], trace: bool) -> (Matrix, Vec<Matrix>) {
        let mut traces = Vec::new();
        let mut state = DecodeState::exact(self.cfg);
        let logits = decode::advance_batch(
            self,
            &mut [DecodeJob {
                state: &mut state,
                tokens,
            }],
            trace.then_some(&mut traces),
        )
        .pop()
        .expect("one job in, one logit matrix out");
        (logits, traces)
    }

    /// Logits (`vocab × T`) for a token sequence.
    ///
    /// # Panics
    ///
    /// Panics if any token is outside the vocabulary.
    pub fn forward(&self, tokens: &[usize]) -> Matrix {
        self.forward_inner(tokens, false).0
    }

    /// Processes a whole prompt in one pass, returning the decode state
    /// (per-block KV caches) and the prompt logits (`vocab × T`).
    /// Follow with [`TinyFm::decode_step`] for O(prefix) per-token decode;
    /// in [`KvMode::Exact`] the results are bit-identical to re-running
    /// [`TinyFm::forward`] over the growing sequence.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or any token is out of vocabulary.
    pub fn prefill(
        &self,
        tokens: &[usize],
        mode: KvMode,
    ) -> Result<(DecodeState, Matrix), QuantError> {
        let mut state = DecodeState::new(self.cfg, mode)?;
        let logits = decode::advance_batch(
            self,
            &mut [DecodeJob {
                state: &mut state,
                tokens,
            }],
            None,
        )
        .pop()
        .expect("one job in, one logit matrix out");
        Ok((state, logits))
    }

    /// Chunked prefill: processes the prompt in segments of at most
    /// `chunk` tokens, resuming the KV caches between segments. In
    /// [`KvMode::Exact`] the state and logits are bit-identical to
    /// [`TinyFm::prefill`] for any `chunk` (see
    /// [`PackedTinyFm::prefill_chunked`](crate::PackedTinyFm::prefill_chunked)
    /// for the full contract).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty, any token is out of vocabulary, or
    /// `chunk` is zero.
    pub fn prefill_chunked(
        &self,
        tokens: &[usize],
        mode: KvMode,
        chunk: usize,
    ) -> Result<(DecodeState, Matrix), QuantError> {
        decode::prefill_chunked(self, tokens, mode, chunk)
    }

    /// Advances an incremental decode state by one token, returning the
    /// logits (`vocab` values) at the new position.
    ///
    /// # Panics
    ///
    /// Panics if the token is out of vocabulary or the state was built
    /// for a different architecture.
    pub fn decode_step(&self, state: &mut DecodeState, token: usize) -> Vec<f64> {
        decode::advance_batch(
            self,
            &mut [DecodeJob {
                state,
                tokens: &[token],
            }],
            None,
        )
        .pop()
        .expect("one job in, one logit matrix out")
        .col(0)
    }

    /// Samples a sequence of the given length from the model, decoding
    /// incrementally (one prefill, then one KV-cached step per token —
    /// bit-identical to full-prefix recompute in exact mode).
    pub fn generate(&self, len: usize, temperature: f64, rng: &mut SeededRng) -> Vec<usize> {
        let mut tokens = vec![rng.below(self.cfg.vocab)];
        if tokens.len() >= len {
            return tokens;
        }
        let (mut state, logits) = self
            .prefill(&tokens, KvMode::Exact)
            .expect("exact KV mode is always valid");
        let mut last = logits.col(logits.cols() - 1);
        while tokens.len() < len {
            let tok = crate::packed::sample_logits(&last, temperature, rng);
            tokens.push(tok);
            if tokens.len() < len {
                last = self.decode_step(&mut state, tok);
            }
        }
        tokens
    }

    /// Mean next-token cross-entropy (nats) over a set of sequences.
    pub fn cross_entropy(&self, sequences: &[Vec<usize>]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for seq in sequences {
            if seq.len() < 2 {
                continue;
            }
            let logits = self.forward(seq);
            for t in 0..seq.len() - 1 {
                let target = seq[t + 1];
                let col: Vec<f64> = (0..self.cfg.vocab).map(|v| logits[(v, t)]).collect();
                let max = col.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
                let log_z = col.iter().map(|&v| (v - max).exp()).sum::<f64>().ln() + max;
                total += log_z - col[target];
                count += 1;
            }
        }
        total / count.max(1) as f64
    }

    /// Perplexity `exp(CE)` over sequences.
    pub fn perplexity(&self, sequences: &[Vec<usize>]) -> f64 {
        self.cross_entropy(sequences).exp()
    }

    /// Collects calibration activations for every linear layer by running
    /// the model over the given sequences (inputs concatenated along the
    /// token axis).
    pub fn collect_calibration(&self, sequences: &[Vec<usize>]) -> Vec<Matrix> {
        let ids = self.linear_ids();
        let mut per_linear: Vec<Vec<Matrix>> = vec![Vec::new(); ids.len()];
        for seq in sequences {
            let (_, traces) = self.forward_inner(seq, true);
            for (i, tr) in traces.into_iter().enumerate() {
                per_linear[i].push(tr);
            }
        }
        per_linear
            .into_iter()
            .map(|mats| {
                let rows = mats[0].rows();
                let cols: usize = mats.iter().map(|m| m.cols()).sum();
                let mut x = Matrix::zeros(rows, cols);
                let mut off = 0;
                for m in mats {
                    for c in 0..m.cols() {
                        for r in 0..rows {
                            x[(r, off + c)] = m[(r, c)];
                        }
                    }
                    off += m.cols();
                }
                x
            })
            .collect()
    }

    /// Produces a quantized copy of the model: every linear layer is
    /// quantized with the given quantizer against calibration activations
    /// collected from `calib_sequences`. The (tied) embedding stays full
    /// precision, as is standard PTQ practice.
    ///
    /// # Errors
    ///
    /// Propagates quantizer errors.
    pub fn quantize_with(
        &self,
        quantizer: &dyn WeightQuantizer,
        calib_sequences: &[Vec<usize>],
    ) -> Result<TinyFm, QuantError> {
        let calib = self.collect_calibration(calib_sequences);
        let mut out = self.clone();
        for (id, x) in self.linear_ids().into_iter().zip(calib) {
            let layer = LayerTensors::new(self.weights(id).clone(), x)?;
            let q = quantizer.quantize_layer(&layer)?;
            let target = match id {
                LinearId::Wq(n) => &mut out.blocks[n].wq,
                LinearId::Wk(n) => &mut out.blocks[n].wk,
                LinearId::Wv(n) => &mut out.blocks[n].wv,
                LinearId::Wo(n) => &mut out.blocks[n].wo,
                LinearId::WUp(n) => &mut out.blocks[n].w_up,
                LinearId::WDown(n) => &mut out.blocks[n].w_down,
            };
            *target = q.dequantized;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_core::{MicroScopiQ, QuantConfig};

    fn small() -> TinyFmConfig {
        TinyFmConfig {
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_layers: 2,
            vocab: 64,
        }
    }

    #[test]
    fn linear_id_next_walks_the_forward_order() {
        let fm = TinyFm::teacher(small(), 1);
        let expected = fm.linear_ids();
        let mut walked = vec![LinearId::Wq(0)];
        while let Some(id) = walked.last().unwrap().next(fm.cfg.n_layers) {
            walked.push(id);
        }
        assert_eq!(walked, expected, "next() must reproduce linear_ids()");
    }

    #[test]
    fn forward_shapes() {
        let fm = TinyFm::teacher(small(), 1);
        let logits = fm.forward(&[1, 2, 3, 4]);
        assert_eq!(logits.rows(), 64);
        assert_eq!(logits.cols(), 4);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let fm = TinyFm::teacher(small(), 2);
        let mut r1 = SeededRng::new(7);
        let mut r2 = SeededRng::new(7);
        assert_eq!(fm.generate(12, 0.8, &mut r1), fm.generate(12, 0.8, &mut r2));
    }

    #[test]
    fn teacher_beats_uniform_on_own_data() {
        let fm = TinyFm::teacher(small(), 3);
        let mut rng = SeededRng::new(11);
        let data: Vec<Vec<usize>> = (0..8).map(|_| fm.generate(16, 0.8, &mut rng)).collect();
        let ce = fm.cross_entropy(&data);
        let uniform = (64f64).ln();
        assert!(ce < uniform, "teacher CE {ce} vs uniform {uniform}");
    }

    #[test]
    fn causality_holds() {
        // Changing a future token must not affect earlier logits.
        let fm = TinyFm::teacher(small(), 4);
        let a = fm.forward(&[5, 6, 7, 8]);
        let b = fm.forward(&[5, 6, 7, 9]);
        for v in 0..64 {
            for t in 0..3 {
                assert_eq!(a[(v, t)], b[(v, t)], "logit ({v},{t}) leaked future");
            }
        }
    }

    #[test]
    fn calibration_traces_have_linear_input_shapes() {
        let fm = TinyFm::teacher(small(), 5);
        let calib = fm.collect_calibration(&[vec![1, 2, 3], vec![4, 5, 6, 7]]);
        let ids = fm.linear_ids();
        assert_eq!(calib.len(), ids.len());
        for (id, x) in ids.iter().zip(calib.iter()) {
            assert_eq!(x.rows(), fm.weights(*id).cols(), "{id:?}");
            assert_eq!(x.cols(), 7);
        }
    }

    #[test]
    fn quantized_student_tracks_teacher() {
        let fm = TinyFm::teacher(small(), 6);
        let mut rng = SeededRng::new(13);
        let calib: Vec<Vec<usize>> = (0..4).map(|_| fm.generate(12, 0.8, &mut rng)).collect();
        let eval: Vec<Vec<usize>> = (0..6).map(|_| fm.generate(16, 0.8, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        let student = fm.quantize_with(&q, &calib).unwrap();
        let ce_t = fm.cross_entropy(&eval);
        let ce_s = student.cross_entropy(&eval);
        // W4 quantization should cost little; the ratio isolates KL damage.
        assert!(
            ce_s >= ce_t - 0.05,
            "student can't beat its teacher meaningfully"
        );
        assert!(
            ce_s - ce_t < 1.0,
            "W4 damage too large: {} vs {}",
            ce_s,
            ce_t
        );
    }
}
