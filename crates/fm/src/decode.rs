//! The shared decode-state forward path: one implementation of the
//! TinyFM transformer math (RMSNorm → attention → RMSNorm → FFN) used by
//! both the dense [`TinyFm`] and the packed [`PackedTinyFm`], abstracted
//! over how linear layers execute through [`ModelOps`].
//!
//! The central object is [`DecodeState`]: per-block appendable KV caches
//! ([`LayerKvCache`]) plus the tokens processed so far. Everything —
//! full-prefix `forward`/`forward_batch`, `prefill`, and single-token
//! `decode_step` — is one function, [`advance_batch`], which advances a
//! batch of states by their new tokens in a single segment-packed pass:
//! every linear layer runs one GEMM over the concatenated new columns,
//! and attention runs per segment over that segment's cache (history +
//! the new tokens).
//!
//! # Bit-compatibility
//!
//! In [`KvMode::Exact`] the cache stores K/V columns verbatim, and every
//! per-column operation (GEMM columns, RMSNorm, softmax, weighted sums)
//! accumulates in the same order regardless of how many columns ride in
//! the pass. Incremental decode is therefore **bit-identical** to
//! full-prefix recompute: `prefill` + n × `decode_step` produces exactly
//! the logits of one `forward` over the whole sequence, token for token,
//! on any engine whose GEMM is column-independent (all engines in this
//! workspace are).
//!
//! In [`KvMode::Quantized`] tokens aging out of the residual window are
//! quantized in place (KIVI-style: keys per channel, values per token),
//! and attention reads the quantized serving values — trading bounded
//! attention error (see `microscopiq_core::kv_cache` and the
//! `attention_output_error` bound tests) for 2/4-bit cache storage.

use crate::packed::{PackedGemm, PackedTinyFm};
use crate::tinyfm::{rmsnorm_col, silu, LinearId, TinyFm, TinyFmConfig};
use microscopiq_core::error::QuantError;
use microscopiq_core::kv_cache::{KvMode, KvSegment, LayerKvCache};
use microscopiq_linalg::Matrix;
use std::sync::Arc;

/// How a model executes the shared forward math: configuration access
/// plus one `linear` hook per packed/dense weight representation.
pub(crate) trait ModelOps {
    fn cfg(&self) -> TinyFmConfig;
    fn embed(&self) -> &Matrix;
    fn ln1(&self, layer: usize) -> &[f64];
    fn ln2(&self, layer: usize) -> &[f64];
    fn ln_f(&self) -> &[f64];
    /// Computes `W[id] · acts`.
    fn linear(&self, id: LinearId, acts: &Matrix) -> Matrix;
}

impl ModelOps for TinyFm {
    fn cfg(&self) -> TinyFmConfig {
        self.cfg
    }
    fn embed(&self) -> &Matrix {
        &self.embed
    }
    fn ln1(&self, layer: usize) -> &[f64] {
        &self.blocks[layer].ln1
    }
    fn ln2(&self, layer: usize) -> &[f64] {
        &self.blocks[layer].ln2
    }
    fn ln_f(&self) -> &[f64] {
        &self.ln_f
    }
    fn linear(&self, id: LinearId, acts: &Matrix) -> Matrix {
        self.weights(id).matmul(acts)
    }
}

/// A packed model bound to a GEMM engine for the duration of one pass.
pub(crate) struct PackedOps<'a> {
    pub(crate) model: &'a PackedTinyFm,
    pub(crate) engine: &'a dyn PackedGemm,
}

impl ModelOps for PackedOps<'_> {
    fn cfg(&self) -> TinyFmConfig {
        self.model.cfg
    }
    fn embed(&self) -> &Matrix {
        &self.model.embed
    }
    fn ln1(&self, layer: usize) -> &[f64] {
        &self.model.blocks[layer].ln1
    }
    fn ln2(&self, layer: usize) -> &[f64] {
        &self.model.blocks[layer].ln2
    }
    fn ln_f(&self) -> &[f64] {
        &self.model.ln_f
    }
    fn linear(&self, id: LinearId, acts: &Matrix) -> Matrix {
        // Hint the engine at the next linear in the pass before running
        // this one, so a prefetching engine can decode it concurrently.
        if let Some(next) = id.next(self.model.cfg.n_layers) {
            self.engine.prefetch(self.model.layer_arc(next));
        }
        let layer = self.model.layer(id);
        if acts.cols() == 1 {
            // Single-token decode: route through the engine's GEMV entry
            // so a dispatching engine can pick a shape-specialized
            // kernel. A row-major one-column matrix is its own column
            // vector, and the default gemv round-trips through matmul,
            // so results are bit-identical either way.
            return Matrix::from_vec(layer.d_row(), 1, self.engine.gemv(layer, acts.as_slice()));
        }
        self.engine.matmul(layer, acts)
    }
}

/// Incremental decode state for one sequence: per-block KV caches plus
/// the tokens already processed. Create one with [`TinyFm::prefill`] /
/// [`PackedTinyFm::prefill`] (or [`DecodeState::exact`] +
/// [`PackedTinyFm::advance_batch`]) and feed it single tokens with
/// `decode_step` — each step costs O(prefix) attention work instead of
/// the O(prefix²) of re-running the whole prefix.
#[derive(Debug, Clone)]
pub struct DecodeState {
    d_model: usize,
    mode: KvMode,
    pub(crate) tokens: Vec<usize>,
    pub(crate) caches: Vec<LayerKvCache>,
}

impl DecodeState {
    /// Creates an empty state for a model of the given architecture.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration (zero group size).
    pub fn new(cfg: TinyFmConfig, mode: KvMode) -> Result<Self, QuantError> {
        let caches = (0..cfg.n_layers)
            .map(|_| LayerKvCache::with_mode(cfg.d_model, mode))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            d_model: cfg.d_model,
            mode,
            tokens: Vec::new(),
            caches,
        })
    }

    /// Creates an empty exact-KV state (infallible; decode through it is
    /// bit-identical to full-prefix recompute).
    pub fn exact(cfg: TinyFmConfig) -> Self {
        Self::new(cfg, KvMode::Exact).expect("exact mode is always valid")
    }

    /// Creates a state that starts from a cached prompt prefix: every
    /// layer cache attaches the corresponding shared segments
    /// copy-on-write and the state's token cursor is set to `prefix`, so
    /// [`Self::remaining_prompt`] resumes at the first uncached token.
    /// `bundles` is ordered outer-by-run, inner-by-layer: each entry
    /// holds one [`KvSegment`] per transformer block and the entries'
    /// token lengths must sum to `prefix.len()`.
    ///
    /// In [`KvMode::Exact`] the attached rows are bitwise the rows a
    /// cold prefill of `prefix` would have produced, so everything
    /// downstream (suffix prefill, sampling) is bit-identical to a cold
    /// request. In [`KvMode::Quantized`] the rows carry frozen
    /// post-quantization serving values and group-aligned boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if a bundle's layer count disagrees with the model or the
    /// segment lengths do not sum to `prefix.len()` (segment/mode
    /// mismatches panic inside [`LayerKvCache::attach`]).
    pub fn with_prefix(
        cfg: TinyFmConfig,
        mode: KvMode,
        prefix: &[usize],
        bundles: &[Vec<Arc<KvSegment>>],
    ) -> Result<Self, QuantError> {
        let mut state = Self::new(cfg, mode)?;
        let mut covered = 0;
        for bundle in bundles {
            assert_eq!(
                bundle.len(),
                cfg.n_layers,
                "prefix bundle must hold one segment per layer"
            );
            covered += bundle[0].len();
            for (layer, seg) in bundle.iter().enumerate() {
                assert_eq!(seg.len(), bundle[0].len(), "ragged prefix bundle");
                state.caches[layer].attach(Arc::clone(seg));
            }
        }
        assert_eq!(
            covered,
            prefix.len(),
            "attached segments must cover exactly the matched prefix"
        );
        state.tokens = prefix.to_vec();
        Ok(state)
    }

    /// The longest prefix of this state's rows that can be frozen into
    /// shared segments right now: everything in [`KvMode::Exact`], only
    /// the (group-aligned, quantize-once) quantized prefix in
    /// [`KvMode::Quantized`] — rows still inside the residual window are
    /// mutable and cannot be shared.
    pub fn shareable_len(&self) -> usize {
        match self.mode {
            KvMode::Exact => self.len(),
            KvMode::Quantized(_) => self.caches.first().map_or(0, |c| c.quantized_len()),
        }
    }

    /// Freezes rows `[0, upto)` of every layer cache into refcounted
    /// shared segments (see [`LayerKvCache::share_prefix`]); afterwards
    /// cloning the state copies only the private tails, so N-way
    /// generation forks share one prefill. Returns one segment per layer
    /// covering the newly frozen rows, or `None` when the range was
    /// already shared.
    ///
    /// # Panics
    ///
    /// Panics if `upto` exceeds [`Self::shareable_len`]'s bound (past
    /// the end, or unquantized/misaligned rows in quantized mode).
    pub fn share_prefix(&mut self, upto: usize) -> Option<Vec<Arc<KvSegment>>> {
        let segs: Vec<_> = self
            .caches
            .iter_mut()
            .filter_map(|c| c.share_prefix(upto))
            .collect();
        if segs.is_empty() {
            return None;
        }
        assert_eq!(segs.len(), self.caches.len(), "ragged share across layers");
        Some(segs)
    }

    /// Tokens processed so far (prompt plus decoded continuations).
    pub fn tokens(&self) -> &[usize] {
        &self.tokens
    }

    /// Number of tokens processed so far.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether no tokens have been processed yet.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The KV storage mode.
    pub fn mode(&self) -> KvMode {
        self.mode
    }

    /// The residual width the state was built for.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Borrows block `layer`'s KV cache (for inspection/tests).
    pub fn cache(&self, layer: usize) -> &LayerKvCache {
        &self.caches[layer]
    }

    /// K/V rows this request *owns* across all layer caches — the
    /// per-request occupancy figure a serving scheduler charges against
    /// its KV budget. Attached shared segments are excluded: a shared
    /// prefix is accounted once by whoever retains its segments (a
    /// prefix cache, or nobody for ad-hoc forks), so retiring every
    /// request drains this figure to zero even when prefixes were
    /// reused. Without sharing this equals `tokens × n_layers` once a
    /// pass has run.
    pub fn kv_rows(&self) -> usize {
        self.caches.iter().map(|c| c.owned_len()).sum()
    }

    /// Storage bytes of this request's *owned* KV footprint across all
    /// layers (see [`LayerKvCache::owned_storage_bytes`]) — what
    /// retiring the request reclaims immediately. Shared segments are
    /// freed when their last holder drops.
    pub fn kv_bytes(&self) -> usize {
        self.caches.iter().map(|c| c.owned_storage_bytes()).sum()
    }

    /// Resumable partial-prefill cursor: the suffix of `tokens` this
    /// state has not processed yet. A scheduler advancing a prompt in
    /// chunks calls this with everything it knows about the request
    /// (prompt plus any already-sampled continuations) and feeds a
    /// prefix of the returned slice to the next
    /// [`advance_batch`](crate::PackedTinyFm::advance_batch) pass —
    /// mid-prefill the slice is the unprocessed prompt remainder, after
    /// prefill it is the (at most one) sampled token awaiting its decode
    /// step. In [`KvMode::Exact`], chunk-by-chunk advancement is
    /// bit-identical to one whole-prompt pass for any chunk sizes: KV
    /// rows are appended token by token either way, and attention is
    /// causal within each segment. (As everywhere in this module, the
    /// bitwise form of the claim needs an engine whose per-column results
    /// are independent of batch composition — true of every bit-exact
    /// engine here; the f32 fast tier's GEMV entry rounds differently
    /// from its GEMM, so there chunking is tolerance-stable, not
    /// bit-stable.)
    ///
    /// # Panics
    ///
    /// Panics if the tokens already processed are not a prefix of
    /// `tokens` — the state is not a partial prefill of this sequence,
    /// and resuming would silently corrupt the KV cache.
    pub fn remaining_prompt<'a>(&self, tokens: &'a [usize]) -> &'a [usize] {
        let done = self.tokens.len();
        assert!(
            done <= tokens.len() && self.tokens == tokens[..done],
            "decode state is not a partial prefill of this sequence \
             (processed {done} tokens that are not a prefix of the {} given)",
            tokens.len()
        );
        &tokens[done..]
    }
}

/// Chunked prefill: advances a fresh state over `tokens` in segments of
/// at most `chunk` tokens, reassembling the per-chunk logits into the
/// same `vocab × T` matrix one whole-prompt pass returns. In
/// [`KvMode::Exact`], on a bit-exact engine, the state *and* every logit
/// column are bit-identical to single-pass prefill for any `chunk`; in
/// [`KvMode::Quantized`] chunking changes *when* cache rows age past the
/// residual window, so results are chunk-size-dependent (bounded by the
/// usual attention-error contract).
pub(crate) fn prefill_chunked(
    ops: &dyn ModelOps,
    tokens: &[usize],
    mode: KvMode,
    chunk: usize,
) -> Result<(DecodeState, Matrix), QuantError> {
    assert!(chunk > 0, "prefill chunk must be positive");
    assert!(!tokens.is_empty(), "cannot prefill an empty sequence");
    let cfg = ops.cfg();
    let mut state = DecodeState::new(cfg, mode)?;
    let mut logits = Matrix::zeros(cfg.vocab, tokens.len());
    while state.len() < tokens.len() {
        let start = state.len();
        let take = chunk.min(tokens.len() - start);
        let part = advance_batch(
            ops,
            &mut [DecodeJob {
                state: &mut state,
                tokens: &tokens[start..start + take],
            }],
            None,
        )
        .pop()
        .expect("one job in, one logit matrix out");
        for t in 0..take {
            for v in 0..cfg.vocab {
                logits[(v, start + t)] = part[(v, t)];
            }
        }
    }
    Ok((state, logits))
}

/// One unit of work for [`advance_batch`]: a decode state plus the new
/// tokens to push through it (a whole prompt for prefill, one token for a
/// decode step).
#[derive(Debug)]
pub struct DecodeJob<'a> {
    /// The state to advance.
    pub state: &'a mut DecodeState,
    /// New tokens to process (must be non-empty and in-vocabulary).
    pub tokens: &'a [usize],
}

/// Advances every job's state by its new tokens in one segment-packed
/// pass, returning per-job logits (`vocab × new_len`).
///
/// Each linear layer runs a single GEMM over the concatenated new
/// columns; attention stays within each job's segment, reading keys and
/// values through that job's cache view (history + the new tokens, which
/// are appended before attention so each token attends to itself).
/// Per-job results are independent of what the job was batched with.
///
/// # Panics
///
/// Panics if `jobs` is empty, any job has no new tokens, any token is
/// outside the vocabulary, or a state's width disagrees with the model.
pub(crate) fn advance_batch(
    ops: &dyn ModelOps,
    jobs: &mut [DecodeJob<'_>],
    mut trace: Option<&mut Vec<Matrix>>,
) -> Vec<Matrix> {
    assert!(!jobs.is_empty(), "advance_batch needs at least one job");
    let cfg = ops.cfg();
    let d = cfg.d_model;
    let nh = cfg.n_heads;
    let dh = d / nh;

    let mut segments = Vec::with_capacity(jobs.len());
    let mut start = 0usize;
    for job in jobs.iter() {
        assert!(!job.tokens.is_empty(), "cannot run an empty sequence");
        assert_eq!(job.state.d_model, d, "decode state width mismatch");
        segments.push((start, job.tokens.len()));
        start += job.tokens.len();
    }
    let total = start;
    // Cache lengths before this pass: token t of a segment attends to
    // `hist + t + 1` cached rows once its own K/V row is appended.
    let hist: Vec<usize> = jobs
        .iter()
        .map(|j| j.state.caches.first().map_or(0, |c| c.len()))
        .collect();

    let mut h = Matrix::zeros(d, total);
    for (seg, job) in segments.iter().zip(jobs.iter()) {
        for (t, &tok) in job.tokens.iter().enumerate() {
            assert!(tok < cfg.vocab, "token out of vocabulary");
            for i in 0..d {
                h[(i, seg.0 + t)] = ops.embed()[(tok, i)];
            }
        }
    }

    for layer in 0..cfg.n_layers {
        // Attention sub-block.
        let mut a = h.clone();
        for t in 0..total {
            let mut col: Vec<f64> = (0..d).map(|i| a[(i, t)]).collect();
            rmsnorm_col(&mut col, ops.ln1(layer));
            for i in 0..d {
                a[(i, t)] = col[i];
            }
        }
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(a.clone()); // wq input
            tr.push(a.clone()); // wk input
            tr.push(a.clone()); // wv input
        }
        let q = ops.linear(LinearId::Wq(layer), &a);
        let k = ops.linear(LinearId::Wk(layer), &a);
        let v = ops.linear(LinearId::Wv(layer), &a);

        // Append the new K/V columns to each job's cache first, so a new
        // token attends to itself through the same cache view as to its
        // history.
        let mut krow = vec![0.0_f64; d];
        let mut vrow = vec![0.0_f64; d];
        for (seg, job) in segments.iter().zip(jobs.iter_mut()) {
            for t in 0..seg.1 {
                for i in 0..d {
                    krow[i] = k[(i, seg.0 + t)];
                    vrow[i] = v[(i, seg.0 + t)];
                }
                job.state.caches[layer].append(&krow, &vrow);
            }
        }

        let mut attn = Matrix::zeros(d, total);
        let scale = 1.0 / (dh as f64).sqrt();
        for (j, &(seg_start, seg_len)) in segments.iter().enumerate() {
            let view = jobs[j].state.caches[layer].view();
            for head in 0..nh {
                let off = head * dh;
                for t in 0..seg_len {
                    let tc = seg_start + t;
                    let ctx = hist[j] + t + 1;
                    // Causal scores over the cached history plus self.
                    let mut scores = Vec::with_capacity(ctx);
                    for s in 0..ctx {
                        let key = view.key_row(s);
                        let dot: f64 = (0..dh).map(|i| q[(off + i, tc)] * key[off + i]).sum();
                        scores.push(dot * scale);
                    }
                    let max = scores.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
                    let mut sum = 0.0;
                    for s in scores.iter_mut() {
                        *s = (*s - max).exp();
                        sum += *s;
                    }
                    for (s, &score) in scores.iter().enumerate() {
                        let alpha = score / sum;
                        let val = view.value_row(s);
                        for i in 0..dh {
                            attn[(off + i, tc)] += alpha * val[off + i];
                        }
                    }
                }
            }
        }
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(attn.clone()); // wo input
        }
        let o = ops.linear(LinearId::Wo(layer), &attn);
        for t in 0..total {
            for i in 0..d {
                h[(i, t)] += o[(i, t)];
            }
        }

        // FFN sub-block.
        let mut b = h.clone();
        for t in 0..total {
            let mut col: Vec<f64> = (0..d).map(|i| b[(i, t)]).collect();
            rmsnorm_col(&mut col, ops.ln2(layer));
            for i in 0..d {
                b[(i, t)] = col[i];
            }
        }
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(b.clone()); // w_up input
        }
        let mut u = ops.linear(LinearId::WUp(layer), &b);
        for val in u.as_mut_slice() {
            *val = silu(*val);
        }
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(u.clone()); // w_down input
        }
        let dn = ops.linear(LinearId::WDown(layer), &u);
        for t in 0..total {
            for i in 0..d {
                h[(i, t)] += dn[(i, t)];
            }
        }
    }

    for t in 0..total {
        let mut col: Vec<f64> = (0..d).map(|i| h[(i, t)]).collect();
        rmsnorm_col(&mut col, ops.ln_f());
        for i in 0..d {
            h[(i, t)] = col[i];
        }
    }
    let logits = ops.embed().matmul(&h);
    for job in jobs.iter_mut() {
        job.state.tokens.extend_from_slice(job.tokens);
    }
    segments
        .iter()
        .map(|&(seg_start, seg_len)| {
            Matrix::from_fn(cfg.vocab, seg_len, |v, t| logits[(v, seg_start + t)])
        })
        .collect()
}
