//! Synthetic weight-tensor generation calibrated to the outlier statistics
//! of Fig. 2(a).
//!
//! A tensor is a Gaussian body (σ ≈ 0.02, typical of trained FM linear
//! layers) plus injected outliers whose rate, channel structure, adjacency,
//! and magnitude tail follow the model's [`OutlierProfile`]. Everything is
//! deterministic per `(model seed, layer name)`.

use crate::zoo::{LayerSpec, ModelSpec, OutlierProfile};
use microscopiq_linalg::{Matrix, SeededRng};

/// Standard deviation of the weight body.
pub const BODY_SIGMA: f64 = 0.02;

/// Synthesizes one layer's weights per the model's outlier profile.
pub fn synthesize_layer(spec: &ModelSpec, layer: &LayerSpec) -> Matrix {
    let mut rng = SeededRng::new(spec.seed).fork(layer.name);
    synthesize(layer.d_row, layer.d_col, &spec.outlier_profile, &mut rng)
}

/// Synthesizes a weight matrix with the given outlier profile.
pub fn synthesize(
    d_row: usize,
    d_col: usize,
    profile: &OutlierProfile,
    rng: &mut SeededRng,
) -> Matrix {
    let mut w = Matrix::from_fn(d_row, d_col, |_, _| rng.normal(0.0, BODY_SIGMA));
    let total = d_row * d_col;
    let n_outliers = (total as f64 * profile.rate).round() as usize;
    if n_outliers == 0 {
        return w;
    }

    // Hot input channels concentrate a share of the outliers (LLM outliers
    // are channel-structured; OWQ/AWQ exploit exactly this).
    let n_hot = (d_col / 32).clamp(1, 16);
    let hot_channels = rng.choose_distinct(d_col, n_hot);

    // Spatially correlated magnitude profile along the dot-product
    // dimension: outlier magnitudes in real FMs are channel-correlated —
    // neighbours are similar, distant positions differ. This is what makes
    // shared outlier scales lossy over large groups (Fig. 14's diversity
    // argument): small μBs see a near-constant profile, large ones span
    // its full swing. Two incommensurate sinusoids with seeded phases give
    // a smooth log-magnitude field over [lo, hi] σ.
    let (lo, hi) = profile.magnitude_sigma;
    let tau = std::f64::consts::TAU;
    let (l1, p1) = (rng.uniform_range(48.0, 96.0), rng.uniform_range(0.0, tau));
    let (l2, p2) = (rng.uniform_range(160.0, 320.0), rng.uniform_range(0.0, tau));
    let profile_u = move |c: usize| {
        let c = c as f64;
        let s = 0.5
            + 0.25 * (c * std::f64::consts::TAU / l1 + p1).sin()
            + 0.25 * (c * std::f64::consts::TAU / l2 + p2).sin();
        s.clamp(0.0, 1.0)
    };
    let magnitude = |rng: &mut SeededRng, col: usize| {
        let u = (profile_u(col) + rng.uniform_range(-0.08, 0.08)).clamp(0.0, 1.0);
        let sigmas = lo * (hi / lo).powf(u);
        rng.sign() * sigmas * BODY_SIGMA
    };

    let mut placed: Vec<(usize, usize)> = Vec::with_capacity(n_outliers);
    for i in 0..n_outliers {
        let adjacent = !placed.is_empty() && rng.chance(profile.adjacency);
        let (r, c) = if adjacent {
            // Place next to an existing outlier along the dot-product
            // (column) dimension.
            let &(pr, pc) = &placed[rng.below(placed.len())];
            let nc = if pc + 1 < d_col { pc + 1 } else { pc - 1 };
            (pr, nc)
        } else if rng.chance(profile.channel_structure) {
            (rng.below(d_row), hot_channels[i % hot_channels.len()])
        } else {
            (rng.below(d_row), rng.below(d_col))
        };
        w[(r, c)] = magnitude(rng, c);
        placed.push((r, c));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::model;
    use microscopiq_core::outlier::layer_outlier_stats;

    #[test]
    fn synthesis_is_deterministic() {
        let spec = model("LLaMA-3-8B");
        let a = synthesize_layer(&spec, &spec.layers[0]);
        let b = synthesize_layer(&spec, &spec.layers[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_layers_differ() {
        let spec = model("LLaMA-3-8B");
        let a = synthesize_layer(&spec, &spec.layers[0]);
        let b = synthesize_layer(&spec, &spec.layers[1]);
        assert_ne!(a.as_slice()[0], b.as_slice()[0]);
    }

    #[test]
    fn outlier_rate_tracks_profile() {
        let spec = model("LLaMA-3-8B");
        let w = synthesize_layer(&spec, &spec.layers[0]);
        let stats = layer_outlier_stats(&w, 3.0, 128);
        let target = spec.outlier_profile.rate * 100.0;
        // The 3σ rule measured on the synthesized tensor should land near
        // the profile (injection shifts the block σ, so allow slack).
        assert!(
            stats.outlier_pct > target * 0.3 && stats.outlier_pct < target * 2.5,
            "target {target}% measured {}%",
            stats.outlier_pct
        );
    }

    #[test]
    fn fm_has_more_adjacent_outliers_than_opt() {
        // The Fig. 2(a) contrast: LLaMA-3-class models visibly exceed
        // OPT-class models in adjacent-outlier share.
        let fm = model("LLaMA-3-8B");
        let opt = model("OPT-6.7B");
        let wf = synthesize_layer(&fm, &fm.layers[0]);
        let wo = synthesize_layer(&opt, &opt.layers[0]);
        let sf = layer_outlier_stats(&wf, 3.0, 128);
        let so = layer_outlier_stats(&wo, 3.0, 128);
        assert!(
            sf.adjacent_outlier_pct > so.adjacent_outlier_pct * 3.0,
            "FM {}% vs OPT {}%",
            sf.adjacent_outlier_pct,
            so.adjacent_outlier_pct
        );
    }

    #[test]
    fn body_sigma_is_respected() {
        let spec = model("LLaMA-2-7B");
        let w = synthesize_layer(&spec, &spec.layers[0]);
        // Median absolute value ≈ 0.6745σ for a Gaussian body.
        let mut mags: Vec<f64> = w.as_slice().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = mags[mags.len() / 2];
        assert!(
            (median - 0.6745 * BODY_SIGMA).abs() < 0.005,
            "median {median}"
        );
    }

    #[test]
    fn zero_rate_profile_injects_nothing() {
        let profile = OutlierProfile {
            rate: 0.0,
            adjacency: 0.0,
            channel_structure: 0.0,
            magnitude_sigma: (3.5, 10.0),
        };
        let mut rng = SeededRng::new(1);
        let w = synthesize(32, 64, &profile, &mut rng);
        assert!(w.max_abs() < BODY_SIGMA * 6.0);
    }
}
