//! Synthetic foundational-model substrate for the MicroScopiQ reproduction.
//!
//! Real FM checkpoints cannot be loaded in this environment; this crate
//! provides the calibrated stand-ins described in DESIGN.md §2:
//!
//! * [`zoo`] — the paper's model inventory (Table 2 LLMs, Fig. 10 VLMs,
//!   Table 4 CNN/SSMs) with true architecture dimensions, proxy-scaled
//!   layer shapes, and per-model outlier profiles matching Fig. 2(a);
//! * [`synth`] — weight synthesis (Gaussian body + structured heavy-tail
//!   outliers with controllable adjacency);
//! * [`calib`] — calibration activations with hot outlier channels;
//! * [`eval`] — the synthesize→quantize→measure driver;
//! * [`metrics`] — monotone proxy maps from measured error to paper-style
//!   perplexity/accuracy;
//! * [`packed`] — packed-weight TinyFM: [`PackedGemm`] engines and the
//!   segment-packed batched forward used by `microscopiq-runtime`;
//! * [`decode`] — the shared decode-state forward path: [`DecodeState`]
//!   (per-block appendable KV caches) with `prefill`/`decode_step` on
//!   both [`TinyFm`] and [`PackedTinyFm`], bit-identical to full-prefix
//!   recompute in exact-KV mode;
//! * [`tinyfm`] — a real, runnable tiny transformer for proxy-free
//!   end-to-end perplexity checks.
//!
//! # Examples
//!
//! ```
//! use microscopiq_fm::zoo;
//!
//! let spec = zoo::model("LLaMA-3-8B");
//! assert_eq!(spec.fp_ppl, Some(6.13)); // the paper's FP16 baseline
//! ```

pub mod calib;
pub mod decode;
pub mod eval;
pub mod metrics;
pub mod packed;
pub mod synth;
pub mod tinyfm;
pub mod zoo;

pub use decode::{DecodeJob, DecodeState};
pub use eval::{evaluate_weight_activation, evaluate_weight_only, ModelEvaluation};
pub use metrics::{AccuracyMap, PerplexityMap};
pub use microscopiq_core::kv_cache::{KvCacheConfig, KvMode};
pub use packed::{sample_logits, sample_token, DequantGemm, PackedGemm, PackedTinyFm};
pub use tinyfm::{TinyFm, TinyFmConfig};
pub use zoo::{all_models, cnn_ssm_zoo, llm_zoo, model, vlm_zoo, ModelClass, ModelSpec};
