//! Experiment harness for the MicroScopiQ reproduction: shared reporting
//! and the method line-ups used by the table/figure binaries in
//! `src/bin/` (see DESIGN.md §5 for the per-experiment index).

pub mod methods;
pub mod report;

pub use report::{f2, f3, median, pct, results_dir, Table};
