//! Shared experiment reporting: aligned stdout tables plus CSV artifacts
//! under `results/` so EXPERIMENTS.md can cite exact measured values.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A printable/exportable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed and used for the CSV filename).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        println!("\n== {} ==", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Writes the table as CSV under `results/<slug>.csv`, returning the
    /// path. Errors are reported but not fatal (experiments still print).
    pub fn write_csv(&self, slug: &str) -> Option<PathBuf> {
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_err() {
            eprintln!("warning: cannot create {}", dir.display());
            return None;
        }
        let path = dir.join(format!("{slug}.csv"));
        let mut out = match fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                return None;
            }
        };
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        println!("[csv] {}", path.display());
        Some(path)
    }

    /// Serializes the table to the canonical bench-report JSON shape:
    /// `{"title", "headers", "rows", "metrics"}`. `metrics` carries named
    /// scalar headline numbers (e.g. tokens/s) so trend tooling can read
    /// one number without parsing the table.
    pub fn to_json(&self, metrics: &[(&str, f64)]) -> String {
        let esc = |s: &str| {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        };
        let str_list = |items: &[String]| {
            items
                .iter()
                .map(|s| format!("\"{}\"", esc(s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let rows = self
            .rows
            .iter()
            .map(|r| format!("    [{}]", str_list(r)))
            .collect::<Vec<_>>()
            .join(",\n");
        let metrics_body = metrics
            .iter()
            .map(|(k, v)| format!("    \"{}\": {}", esc(k), fmt_json_number(*v)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"title\": \"{}\",\n  \"headers\": [{}],\n  \"rows\": [\n{}\n  ],\n  \"metrics\": {{\n{}\n  }}\n}}\n",
            esc(&self.title),
            str_list(&self.headers),
            rows,
            metrics_body
        )
    }

    /// Writes the table as `BENCH_<slug>.json` under the results directory
    /// (the shape read by the perf-trajectory tooling), returning the
    /// path. Errors are reported but not fatal.
    pub fn write_json(&self, slug: &str, metrics: &[(&str, f64)]) -> Option<PathBuf> {
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_err() {
            eprintln!("warning: cannot create {}", dir.display());
            return None;
        }
        let path = dir.join(format!("BENCH_{slug}.json"));
        match fs::write(&path, self.to_json(metrics)) {
            Ok(()) => {
                println!("[json] {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// JSON-safe float formatting: finite values print plainly, non-finite
/// become null.
fn fmt_json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The results directory: `$MICROSCOPIQ_RESULTS` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("MICROSCOPIQ_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Median of a non-empty sample set (upper median for even counts),
/// shared by the timing bins so the statistic can't drift between them.
///
/// # Panics
///
/// Panics if `samples` is empty or contains a NaN.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of empty samples");
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    s[s.len() / 2]
}

/// Formats a float to 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float to 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage to 2 decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.headers.len(), 2);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut t = Table::new("runtime demo", &["path", "ms"]);
        t.row(vec!["dense \"ref\"".into(), "12.5".into()]);
        let json = t.to_json(&[("tokens_per_s", 123.5), ("bad", f64::NAN)]);
        assert!(json.contains("\"title\": \"runtime demo\""));
        assert!(json.contains("\"headers\": [\"path\", \"ms\"]"));
        assert!(json.contains("\"dense \\\"ref\\\"\""));
        assert!(json.contains("\"tokens_per_s\": 123.5"));
        assert!(json.contains("\"bad\": null"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // round-half-even is fine either way
        assert_eq!(pct(0.0863), "8.63%");
    }
}
