//! Shared experiment reporting: aligned stdout tables plus CSV artifacts
//! under `results/` so EXPERIMENTS.md can cite exact measured values.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A printable/exportable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed and used for the CSV filename).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        println!("\n== {} ==", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Writes the table as CSV under `results/<slug>.csv`, returning the
    /// path. Errors are reported but not fatal (experiments still print).
    pub fn write_csv(&self, slug: &str) -> Option<PathBuf> {
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_err() {
            eprintln!("warning: cannot create {}", dir.display());
            return None;
        }
        let path = dir.join(format!("{slug}.csv"));
        let mut out = match fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                return None;
            }
        };
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        println!("[csv] {}", path.display());
        Some(path)
    }
}

/// The results directory: `$MICROSCOPIQ_RESULTS` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("MICROSCOPIQ_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats a float to 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float to 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage to 2 decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.headers.len(), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // round-half-even is fine either way
        assert_eq!(pct(0.0863), "8.63%");
    }
}
