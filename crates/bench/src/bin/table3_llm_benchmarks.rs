//! Table 3 — LLaMA-2-70B benchmark accuracy at W2A16 (proxy):
//! OliVe vs OmniQuant vs MicroScopiQ on ARC-c / HellaSwag / MMLU /
//! WinoGrande.

use microscopiq_baselines::{Olive, OmniQuantGs};
use microscopiq_bench::methods::microscopiq;
use microscopiq_bench::{f2, Table};
use microscopiq_core::traits::WeightQuantizer;
use microscopiq_fm::metrics::AccuracyMap;
use microscopiq_fm::{evaluate_weight_only, model};

fn main() {
    let spec = model("LLaMA-2-70B");
    let samples = 48;
    // Benchmarks with paper FP16 scores and chance levels.
    let benchmarks = [
        ("ARC-c", 60.50_f64, 25.0_f64),
        ("HellaSwag", 84.30, 25.0),
        ("MMLU", 68.90, 25.0),
        ("WinoGrande", 80.60, 50.0),
    ];
    // Anchor: the paper's OmniQuant-W2A16 MMLU score (58.20 of 68.90).
    let omni = OmniQuantGs::new(2, 128);
    let anchor_err = evaluate_weight_only(&spec, &omni, samples)
        .expect("anchor")
        .mean_output_error();
    let kappa = AccuracyMap::calibrate(anchor_err, 68.90, 58.20, 25.0).kappa;

    let methods: Vec<(&str, Box<dyn WeightQuantizer>)> = vec![
        ("OliVe", Box::new(Olive::new(2))),
        ("OmniQuant", Box::new(OmniQuantGs::new(2, 128))),
        ("MicroScopiQ", Box::new(microscopiq(2))),
    ];

    let mut table = Table::new(
        "Table 3: LLaMA-2-70B W2A16 benchmark accuracy (proxy)",
        &["Method", "ARC-c", "HellaSwag", "MMLU", "WinoGrande"],
    );
    table.row(
        std::iter::once("Baseline FP16".to_string())
            .chain(benchmarks.iter().map(|(_, fp, _)| f2(*fp)))
            .collect(),
    );
    for (name, q) in &methods {
        let err = evaluate_weight_only(&spec, q.as_ref(), samples)
            .expect("evaluation")
            .mean_output_error();
        let mut row = vec![name.to_string()];
        for (_, fp, chance) in &benchmarks {
            let map = AccuracyMap {
                kappa,
                chance: *chance,
            };
            row.push(f2(map.accuracy(*fp, err)));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("table3_llm_benchmarks");
}
