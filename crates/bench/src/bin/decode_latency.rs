//! Decode latency: full-prefix recompute vs incremental KV-cached decode
//! vs incremental decode with a quantized KV cache, at several prefix
//! lengths with a batch of concurrent requests.
//!
//! Each path advances the same 8 sequences token by token through the
//! packed runtime engine:
//!
//! * **full recompute** — every step re-runs `forward_batch` over the
//!   entire prefix (the pre-incremental serving path): O(prefix²) work
//!   per generated token;
//! * **incremental (exact KV)** — one prefill, then a single-token
//!   segment-packed `advance_batch` per step: O(prefix) work, logits
//!   **bit-identical** to full recompute (asserted here, per step);
//! * **incremental (2-bit KV)** — same, with aged cache tokens stored at
//!   2 bits (KIVI-style, group 32, residual 32).
//!
//! Emits `results/BENCH_decode_latency.json`. Acceptance: incremental
//! beats full recompute by ≥3× per-step at prefix ≥256, batch 8.

use microscopiq_bench::{f2, median, Table};
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{
    DecodeJob, DecodeState, KvCacheConfig, KvMode, PackedTinyFm, TinyFm, TinyFmConfig,
};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::RuntimeEngine;
use std::time::Instant;

const BATCH: usize = 8;
const STEPS: usize = 3;

/// Argmax token choice: deterministic, so every path that produces the
/// same logits walks the same token sequence.
fn argmax(logits: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best
}

struct StepRecord {
    /// Wall time of each decode step, seconds.
    times: Vec<f64>,
    /// Last-position logits after each step, per request (for parity).
    logits: Vec<Vec<Vec<f64>>>,
    /// Token appended at each step, per request.
    tokens: Vec<Vec<usize>>,
}

/// Full-prefix recompute: every step runs `forward_batch` over the whole
/// prefixes, exactly what `Session::step` did before incremental decode.
fn run_full_recompute(
    model: &PackedTinyFm,
    engine: &RuntimeEngine,
    prompts: &[Vec<usize>],
) -> StepRecord {
    let mut seqs: Vec<Vec<usize>> = prompts.to_vec();
    let mut rec = StepRecord {
        times: Vec::new(),
        logits: Vec::new(),
        tokens: Vec::new(),
    };
    for _ in 0..STEPS {
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let t0 = Instant::now();
        let outs = model.forward_batch(&refs, engine);
        rec.times.push(t0.elapsed().as_secs_f64());
        let last: Vec<Vec<f64>> = outs.iter().map(|m| m.col(m.cols() - 1)).collect();
        let toks: Vec<usize> = last.iter().map(|l| argmax(l)).collect();
        for (seq, &tok) in seqs.iter_mut().zip(toks.iter()) {
            seq.push(tok);
        }
        rec.logits.push(last);
        rec.tokens.push(toks);
    }
    rec
}

/// Incremental decode: one batched prefill (timed separately), then one
/// single-token segment-packed pass per step. Returns the prefill time
/// alongside the per-step record.
fn run_incremental(
    model: &PackedTinyFm,
    engine: &RuntimeEngine,
    prompts: &[Vec<usize>],
    mode: KvMode,
) -> (f64, StepRecord) {
    let mut states: Vec<DecodeState> = prompts
        .iter()
        .map(|_| DecodeState::new(model.config(), mode).expect("valid kv mode"))
        .collect();
    let t0 = Instant::now();
    let prefill_logits = {
        let mut jobs: Vec<DecodeJob<'_>> = states
            .iter_mut()
            .zip(prompts.iter())
            .map(|(state, tokens)| DecodeJob { state, tokens })
            .collect();
        model.advance_batch(&mut jobs, engine)
    };
    let prefill_time = t0.elapsed().as_secs_f64();
    // `last` holds the logits at the newest position; step i records them
    // (position prefix−1+i, matching the full-recompute record), picks
    // the token they imply, and feeds it through one single-token pass.
    let mut last: Vec<Vec<f64>> = prefill_logits.iter().map(|m| m.col(m.cols() - 1)).collect();
    let mut rec = StepRecord {
        times: Vec::new(),
        logits: Vec::new(),
        tokens: Vec::new(),
    };
    for _ in 0..STEPS {
        let next: Vec<usize> = last.iter().map(|l| argmax(l)).collect();
        rec.logits.push(last);
        rec.tokens.push(next.clone());
        let t0 = Instant::now();
        let outs = {
            let mut jobs: Vec<DecodeJob<'_>> = states
                .iter_mut()
                .zip(next.iter())
                .map(|(state, tok)| DecodeJob {
                    state,
                    tokens: std::slice::from_ref(tok),
                })
                .collect();
            model.advance_batch(&mut jobs, engine)
        };
        rec.times.push(t0.elapsed().as_secs_f64());
        last = outs.iter().map(|m| m.col(0)).collect();
    }
    (prefill_time, rec)
}

fn main() {
    let cfg = TinyFmConfig {
        d_model: 128,
        n_heads: 4,
        d_ff: 256,
        n_layers: 2,
        vocab: 128,
    };
    let teacher = TinyFm::teacher(cfg, 2026);
    let mut rng = SeededRng::new(17);
    let calib: Vec<Vec<usize>> = (0..2)
        .map(|_| teacher.generate(10, 1.0, &mut rng))
        .collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(64)
            .row_block(64)
            .percdamp(5.0)
            .build()
            .expect("valid"),
    );
    let model = PackedTinyFm::quantize_from(&teacher, &q, &calib).expect("quantizes");
    let engine = RuntimeEngine::parallel();
    let quant_kv = KvMode::Quantized(KvCacheConfig {
        bits: 2,
        group: 32,
        residual: 32,
    });

    let mut table = Table::new(
        &format!(
            "TinyFM decode latency (d={}, {} layers, batch {BATCH}, {STEPS} timed steps)",
            cfg.d_model, cfg.n_layers
        ),
        &["Prefix", "Path", "ms/step", "tokens/s", "speedup vs full"],
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let speedup_at = |prefix: usize| format!("decode_speedup_p{prefix}_b{BATCH}");

    let prefixes = [64usize, 256];
    let mut acceptance = Vec::new();
    for &prefix in &prefixes {
        let prompts: Vec<Vec<usize>> = (0..BATCH)
            .map(|_| (0..prefix).map(|_| rng.below(cfg.vocab)).collect())
            .collect();

        // Warm the decoded-tile cache so every path measures steady state.
        let warm: Vec<&[usize]> = prompts.iter().map(|p| &p[..4]).collect();
        model.forward_batch(&warm, &engine);

        let full = run_full_recompute(&model, &engine, &prompts);
        let (prefill_s, inc) = run_incremental(&model, &engine, &prompts, KvMode::Exact);
        let (_, incq) = run_incremental(&model, &engine, &prompts, quant_kv);

        // Parity gate: exact-KV incremental must be bit-identical to full
        // recompute — same tokens, same logits, every step, every request.
        for step in 0..STEPS {
            assert_eq!(
                full.tokens[step], inc.tokens[step],
                "token stream diverged at prefix {prefix} step {step}"
            );
            for (b, (fl, il)) in full.logits[step]
                .iter()
                .zip(inc.logits[step].iter())
                .enumerate()
            {
                assert_eq!(
                    fl, il,
                    "logits diverged at prefix {prefix} step {step} request {b}"
                );
            }
        }

        let t_full = median(&full.times);
        let t_inc = median(&inc.times);
        let t_incq = median(&incq.times);
        let speedup = t_full / t_inc;
        let mut row = |path: &str, t: f64| {
            table.row(vec![
                prefix.to_string(),
                path.to_string(),
                format!("{:.3}", t * 1e3),
                format!("{:.0}", BATCH as f64 / t),
                f2(t_full / t),
            ]);
        };
        row("full recompute", t_full);
        row("incremental exact-KV", t_inc);
        row("incremental 2-bit KV", t_incq);
        println!(
            "prefix {prefix}: prefill {:.3} ms, full {:.3} ms/step, incremental {:.3} ms/step ({speedup:.2}x)",
            prefill_s * 1e3,
            t_full * 1e3,
            t_inc * 1e3,
        );
        metrics.push((format!("decode_ms_full_p{prefix}_b{BATCH}"), t_full * 1e3));
        metrics.push((
            format!("decode_ms_incremental_p{prefix}_b{BATCH}"),
            t_inc * 1e3,
        ));
        metrics.push((
            format!("decode_ms_quantized_kv_p{prefix}_b{BATCH}"),
            t_incq * 1e3,
        ));
        metrics.push((
            format!("decode_tokens_per_s_incremental_p{prefix}_b{BATCH}"),
            BATCH as f64 / t_inc,
        ));
        metrics.push((speedup_at(prefix), speedup));
        if prefix >= 256 {
            acceptance.push((prefix, speedup));
        }
    }
    table.print();

    // Acceptance gauge: ≥3× per-step at prefix ≥256, batch 8, with the
    // bitwise parity already asserted above.
    for (prefix, speedup) in &acceptance {
        println!(
            "\nacceptance: incremental vs full recompute at prefix {prefix}, batch {BATCH} = {:.2}x ({})",
            speedup,
            if *speedup >= 3.0 {
                "PASS >= 3x"
            } else {
                "FAIL < 3x"
            }
        );
    }
    metrics.push(("exact_kv_bit_identical".to_string(), 1.0));

    let metric_refs: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    table.write_json("decode_latency", &metric_refs);
}
