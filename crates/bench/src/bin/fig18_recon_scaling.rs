//! Fig. 18 — (a) compute area and inference latency vs number of
//! time-multiplexed ReCoN units (LLaMA-3-8B); (b) integration overhead of
//! MicroScopiQ on NoC-based accelerators (MTIA-like, Eyeriss-v2-like).
//! Also covers the Fig. 15 design variants (A = 1 unit, B = 2, C = per-row).

use microscopiq_accel::area::{microscopiq_area, noc_integration};
use microscopiq_accel::perf::{workload_latency, AccelConfig};
use microscopiq_accel::workload::{model_workload, Phase};
use microscopiq_bench::{f2, f3, Table};
use microscopiq_fm::model;

fn main() {
    let spec = model("LLaMA-3-8B");
    let wl = model_workload(&spec, Phase::Prefill(512));
    let x = 1.0 - (1.0 - spec.outlier_profile.rate).powi(8);

    let base_area = microscopiq_area(64, 64, 1).total_mm2();
    let base_lat = workload_latency(&wl, &AccelConfig::paper_64x64(2, 1), 2.36, x).total_cycles;

    let mut table = Table::new(
        "Fig. 18(a): ReCoN replication — normalized compute area and latency (LLaMA-3-8B)",
        &[
            "# ReCoN units",
            "Design (Fig. 15)",
            "Norm. compute area",
            "Norm. latency",
        ],
    );
    for (units, design) in [
        (1usize, "A: shared by all rows"),
        (2, "B: shared by half"),
        (4, "—"),
        (8, "—"),
        (64, "C: per PE row"),
    ] {
        let area = microscopiq_area(64, 64, units).total_mm2();
        let lat = workload_latency(&wl, &AccelConfig::paper_64x64(2, units), 2.36, x).total_cycles;
        table.row(vec![
            units.to_string(),
            design.to_string(),
            f3(area / base_area),
            f3(lat / base_lat),
        ]);
    }
    table.print();
    table.write_csv("fig18a_recon_scaling");
    println!("paper: 8 units → 1.58x compute area, 0.79x latency (21% faster)");

    let mut noc = Table::new(
        "Fig. 18(b): MicroScopiQ integration overhead on NoC-based accelerators",
        &[
            "Design",
            "PE share",
            "NoC share",
            "Area w/ MicroScopiQ",
            "Overhead",
        ],
    );
    for design in ["MTIA-like", "Eyeriss-v2-like"] {
        let (pe, noc_share, with_ms) = noc_integration(design);
        noc.row(vec![
            design.to_string(),
            f2(pe),
            f2(noc_share),
            f3(with_ms),
            format!("{:+.1}%", (with_ms - 1.0) * 100.0),
        ]);
    }
    noc.print();
    noc.write_csv("fig18b_noc_integration");
    println!("paper: +3% (MTIA), +2.3% (Eyeriss-v2)");
}
