//! Fig. 12 — iso-accuracy latency (b) and energy (c) comparison of
//! MicroScopiQ-v1 (W4A4), MicroScopiQ-v2 (WxA4, bb=2-dominant) and the
//! baseline accelerators (OliVe, GOBO, OLAccel, AdaptivFloat, ANT) across
//! six foundational models.

use microscopiq_accel::baselines::{baseline_energy, baseline_latency, iso_accuracy_baselines};
use microscopiq_accel::energy::{microscopiq_energy, EnergyConstants};
use microscopiq_accel::perf::{workload_latency, AccelConfig};
use microscopiq_accel::workload::{model_workload, Phase};
use microscopiq_bench::{f2, Table};
use microscopiq_fm::model;

fn main() {
    let k = EnergyConstants::default();
    let models = [
        "LLaMA-2-7B",
        "LLaMA-2-13B",
        "LLaMA-3-8B",
        "Phi-3-3.8B",
        "VILA-7B",
        "LLaVA-1.5-7B",
    ];
    let mut lat_table = Table::new(
        "Fig. 12(b): iso-accuracy latency, normalized to MicroScopiQ-v2 (lower is better)",
        &[
            "Model",
            "MS-v2",
            "MS-v1",
            "OliVe",
            "GOBO",
            "OLAccel",
            "AdaptivFloat",
            "ANT",
        ],
    );
    let mut en_table = Table::new(
        "Fig. 12(c): iso-accuracy energy, normalized to MicroScopiQ-v2",
        &[
            "Model",
            "MS-v2",
            "MS-v1",
            "OliVe",
            "GOBO",
            "OLAccel",
            "AdaptivFloat",
            "ANT",
        ],
    );
    let mut v1_speedups = Vec::new();
    let mut v2_speedups = Vec::new();

    for name in models {
        let spec = model(name);
        let wl = model_workload(&spec, Phase::Prefill(512));
        // Outlier occupancy drives ReCoN traffic; VLMs are heavier.
        let x = (1.0 - (1.0 - spec.outlier_profile.rate).powi(8)).min(0.5);

        // MS-v2: 80% of layers at bb=2 (EBW 2.36), 20% at bb=4 (Fig. 12(a)).
        let cfg2 = AccelConfig::paper_64x64(2, 1);
        let cfg4 = AccelConfig::paper_64x64(4, 1);
        let l2 = workload_latency(&wl, &cfg2, 2.36, x).total_cycles;
        let l4 = workload_latency(&wl, &cfg4, 4.15, x).total_cycles;
        let ms_v2 = 0.8 * l2 + 0.2 * l4;
        let ms_v1 = l4;
        let e2 = microscopiq_energy(
            &wl,
            &cfg2,
            &workload_latency(&wl, &cfg2, 2.36, x),
            2.36,
            x,
            4,
            &k,
        )
        .total_mj();
        let e4 = microscopiq_energy(
            &wl,
            &cfg4,
            &workload_latency(&wl, &cfg4, 4.15, x),
            4.15,
            x,
            4,
            &k,
        )
        .total_mj();
        let ems_v2 = 0.8 * e2 + 0.2 * e4;
        let ems_v1 = e4;

        let mut lat_row = vec![name.to_string(), f2(1.0), f2(ms_v1 / ms_v2)];
        let mut en_row = vec![name.to_string(), f2(1.0), f2(ems_v1 / ems_v2)];
        for b in iso_accuracy_baselines(&k) {
            let bl = baseline_latency(&wl, &b, &cfg4);
            let be = baseline_energy(&wl, &b, 4, &k).total_mj();
            lat_row.push(f2(bl / ms_v2));
            en_row.push(f2(be / ems_v2));
            v2_speedups.push(bl / ms_v2);
            v1_speedups.push(bl / ms_v1);
        }
        lat_table.row(lat_row);
        en_table.row(en_row);
    }
    lat_table.print();
    lat_table.write_csv("fig12b_latency");
    en_table.print();
    en_table.write_csv("fig12c_energy");

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\naverage speedup vs baselines — MS-v1: {:.2}x (paper 1.50x), MS-v2: {:.2}x (paper 2.47x)",
        mean(&v1_speedups),
        mean(&v2_speedups)
    );
}
