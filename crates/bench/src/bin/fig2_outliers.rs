//! Fig. 2 — (a) layer-wise outlier and adjacent-outlier distribution
//! across FMs; (b) OliVe-W4A16 vs MicroScopiQ-W2A16 benchmark accuracy.

use microscopiq_baselines::Olive;
use microscopiq_bench::methods::microscopiq;
use microscopiq_bench::{f2, f3, Table};
use microscopiq_core::outlier::layer_outlier_stats;
use microscopiq_fm::metrics::AccuracyMap;
use microscopiq_fm::synth::synthesize_layer;
use microscopiq_fm::{evaluate_weight_only, llm_zoo, model, vlm_zoo};
use microscopiq_linalg::Summary;

fn main() {
    // Part (a): outlier statistics per layer across the zoo.
    let mut stats_table = Table::new(
        "Fig. 2(a): outlier / adjacent-outlier % of weights (3σ rule)",
        &[
            "Model",
            "Outlier% med",
            "Outlier% max",
            "Adjacent% med",
            "Adjacent% max",
        ],
    );
    let mut zoo = llm_zoo();
    zoo.extend(vlm_zoo());
    for spec in &zoo {
        let mut out_pcts = Vec::new();
        let mut adj_pcts = Vec::new();
        for layer in &spec.layers {
            let w = synthesize_layer(spec, layer);
            let s = layer_outlier_stats(&w, 3.0, 128);
            out_pcts.push(s.outlier_pct);
            adj_pcts.push(s.adjacent_outlier_pct);
        }
        let so = Summary::of(&out_pcts);
        let sa = Summary::of(&adj_pcts);
        stats_table.row(vec![
            spec.name.to_string(),
            f3(so.median),
            f3(so.max),
            f3(sa.median),
            f3(sa.max),
        ]);
    }
    stats_table.print();
    stats_table.write_csv("fig2a_outlier_stats");

    // Part (b): OliVe-W4A16 vs MicroScopiQ-W2A16 on 5 benchmarks (proxy).
    // Anchor: OliVe-W4 on VILA-7B GQA scores 48.26 vs FP 62.3 (paper).
    let benchmarks = [
        ("PIQA", "LLaMA-3-8B", 74.53_f64, 50.0_f64),
        ("BoolQ", "LLaMA-2-13B", 74.17, 50.0),
        ("HellaSwag", "VILA-7B", 80.75, 25.0),
        ("GQA", "VILA-7B", 62.30, 0.0),
        ("VQAv2", "LLaVA-1.5-7B", 78.50, 0.0),
    ];
    let olive = Olive::new(4);
    let ms2 = microscopiq(2);
    let anchor_err = evaluate_weight_only(&model("VILA-7B"), &olive, 48)
        .expect("anchor")
        .mean_output_error();
    // Calibrate the decay slope once on the anchor (GQA, chance 0), then
    // apply it with each benchmark's own chance level.
    let kappa = AccuracyMap::calibrate(anchor_err, 62.3, 48.26, 0.0).kappa;
    let mut acc_table = Table::new(
        "Fig. 2(b): benchmark accuracy, OliVe-W4A16 vs MicroScopiQ-W2A16 (proxy)",
        &["Benchmark", "Model", "FP16", "OliVe-W4", "MicroScopiQ-W2"],
    );
    for (bench, model_name, fp, chance) in benchmarks {
        let spec = model(model_name);
        let map = AccuracyMap { kappa, chance };
        let e_olive = evaluate_weight_only(&spec, &olive, 48)
            .expect("olive")
            .mean_output_error();
        let e_ms = evaluate_weight_only(&spec, &ms2, 48)
            .expect("ms")
            .mean_output_error();
        acc_table.row(vec![
            bench.to_string(),
            model_name.to_string(),
            f2(fp),
            f2(map.accuracy(fp, e_olive)),
            f2(map.accuracy(fp, e_ms)),
        ]);
    }
    acc_table.print();
    acc_table.write_csv("fig2b_benchmark_accuracy");
}
