//! Runtime throughput: the fused packed-weight engine against the
//! dequantize-then-matmul dense path, plus end-to-end batched TinyFM
//! serving tokens/s.
//!
//! Two sections:
//!
//! 1. **Layer GEMM** — a 512×2048 packed layer (bb = 2, Bμ = 8, BM = 64,
//!    ~3% outlier micro-blocks, synthesized directly in packed form so the
//!    bench measures the runtime, not the quantizer) multiplied by a
//!    2048×8 activation batch. Paths: dense reference (dequantize + dense
//!    matmul per pass, what every caller did before the runtime existed),
//!    fused scalar, fused parallel, and fused parallel with a warm
//!    decoded-block cache. The acceptance bar is parallel ≥ 2× dense.
//! 2. **TinyFM serving** — 8 concurrent generation requests through
//!    [`Session`] batched at 8 on a d=192 TinyFM, comparing the dense
//!    engine against the runtime engine end to end.
//!
//! Emits `results/BENCH_runtime_throughput.json` in the shared report
//! shape so the perf trajectory can track tokens/s across PRs.

use microscopiq_bench::{f2, median, Table};
use microscopiq_core::config::GroupAxis;
use microscopiq_core::packed::{MicroBlockMeta, PackedLayer, PackedMacroBlock, PackedMicroBlock};
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{DequantGemm, PackedGemm, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::{Matrix, SeededRng};
use microscopiq_mx::fp::TinyFloat;
use microscopiq_mx::mxfp::MxScale;
use microscopiq_mx::scale::Pow2Scale;
use microscopiq_runtime::{EngineConfig, GenRequest, RuntimeEngine, Session};
use std::time::Instant;

/// Synthesizes a packed layer directly in packed form: random 2-bit inlier
/// codes, shared scales spread over a realistic range, and `outlier_rate`
/// of micro-blocks carrying one Upper/Lower outlier pair.
fn synth_packed(d_row: usize, d_col: usize, outlier_rate: f64, seed: u64) -> PackedLayer {
    const MICRO: usize = 8;
    const MACRO: usize = 64;
    let mut rng = SeededRng::new(seed);
    let per_line = d_col.div_ceil(MACRO);
    let mut groups = Vec::with_capacity(d_row * per_line);
    for _ in 0..d_row {
        for mab in 0..per_line {
            let len = (d_col - mab * MACRO).min(MACRO);
            let mut micro_blocks = Vec::with_capacity(len.div_ceil(MICRO));
            let mut remaining = len;
            while remaining > 0 {
                let n = remaining.min(MICRO);
                let codes: Vec<u8> = (0..n).map(|_| rng.below(4) as u8).collect();
                let meta = (n == MICRO && rng.chance(outlier_rate)).then(|| {
                    let upper = rng.below(MICRO) as u8;
                    let lower = (upper as usize + 1 + rng.below(MICRO - 1)) % MICRO;
                    MicroBlockMeta {
                        mxscale: MxScale::new(
                            rng.below(4) as i32 - 2,
                            rng.below(2) as u32,
                            TinyFloat::E1M2,
                        ),
                        perm: microscopiq_core::microblock::PermutationList::new(
                            vec![microscopiq_core::microblock::PermEntry {
                                upper_loc: upper,
                                lower_loc: lower as u8,
                            }],
                            MICRO,
                        ),
                    }
                });
                micro_blocks.push(PackedMicroBlock { codes, meta });
                remaining -= n;
            }
            groups.push(PackedMacroBlock {
                isf: Pow2Scale::new(-(rng.below(4) as i32) - 4),
                micro_blocks,
            });
        }
    }
    PackedLayer::new(GroupAxis::DotProduct, d_row, d_col, 2, MICRO, MACRO, groups)
}

/// Median wall time of `iters` runs of `f` (after one warmup), in seconds.
fn time_median<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warmup
    let samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(&samples)
}

fn main() {
    let (d_row, d_col, batch) = (512, 2048, 8);
    let layer = synth_packed(d_row, d_col, 0.03, 7);
    let mut rng = SeededRng::new(11);
    let acts = Matrix::from_fn(d_col, batch, |_, _| rng.normal(0.0, 1.0));
    let packed_gb = layer.to_bytes().len() as f64 / 1e9;
    let dense_gb = (d_row * d_col * 8) as f64 / 1e9;

    let scalar = RuntimeEngine::scalar();
    let parallel = RuntimeEngine::new(EngineConfig {
        cache_bytes: 0,
        ..EngineConfig::default()
    });
    let cached = RuntimeEngine::parallel();

    // Correctness gate before timing anything.
    let dense_out = layer.dequantize().matmul(&acts);
    for (name, out) in [
        ("scalar", scalar.gemm(&layer, &acts)),
        ("parallel", parallel.gemm(&layer, &acts)),
        ("cached", cached.gemm(&layer, &acts)),
    ] {
        let max_diff = out
            .as_slice()
            .iter()
            .zip(dense_out.as_slice().iter())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(max_diff < 1e-9, "{name} diverged from dense by {max_diff}");
    }

    let t_dense = time_median(5, || {
        std::hint::black_box(layer.dequantize().matmul(&acts));
    });
    let t_scalar = time_median(5, || {
        std::hint::black_box(scalar.gemm(&layer, &acts));
    });
    let t_parallel = time_median(9, || {
        std::hint::black_box(parallel.gemm(&layer, &acts));
    });
    let t_cached = time_median(9, || {
        std::hint::black_box(cached.gemm(&layer, &acts));
    });

    let mut table = Table::new(
        &format!("Packed GEMM {d_row}x{d_col} @ batch {batch} (bb=2, ~3% outlier blocks)"),
        &[
            "Path",
            "ms/pass",
            "tokens/s",
            "weight GB/s",
            "speedup vs dense",
        ],
    );
    let mut row = |name: &str, t: f64, gb: f64| {
        table.row(vec![
            name.to_string(),
            format!("{:.3}", t * 1e3),
            format!("{:.0}", batch as f64 / t),
            f2(gb / t),
            f2(t_dense / t),
        ]);
    };
    row("dense dequantize+matmul", t_dense, dense_gb);
    row(
        &format!("fused scalar bit-exact ({})", scalar.name()),
        t_scalar,
        packed_gb,
    );
    row(
        &format!("fused parallel uncached x{}", parallel.threads()),
        t_parallel,
        packed_gb,
    );
    row(
        &format!(
            "fused parallel + tile cache x{} (default)",
            cached.threads()
        ),
        t_cached,
        packed_gb,
    );
    table.print();

    // Acceptance gauge: the runtime's default parallel engine (work-stealing
    // tiles + bucketed decoded-block cache) against the pre-runtime world.
    let speedup_uncached = t_dense / t_parallel;
    let speedup = t_dense / t_cached;
    println!(
        "\nacceptance: parallel fused (default engine) vs dense = {:.2}x ({})",
        speedup,
        if speedup >= 2.0 {
            "PASS >= 2x"
        } else {
            "FAIL < 2x"
        }
    );

    // Section 2: end-to-end batched TinyFM serving. A wider-than-default
    // TinyFM so linear layers (not softmax bookkeeping) carry the cost,
    // as they do at real model sizes.
    let teacher = TinyFm::teacher(
        TinyFmConfig {
            d_model: 192,
            n_heads: 4,
            d_ff: 384,
            n_layers: 2,
            vocab: 128,
        },
        2026,
    );
    let mut rng = SeededRng::new(5);
    let calib: Vec<Vec<usize>> = (0..2)
        .map(|_| teacher.generate(10, 1.0, &mut rng))
        .collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(64)
            .row_block(64)
            .percdamp(5.0)
            .build()
            .expect("valid"),
    );
    let packed_fm = PackedTinyFm::quantize_from(&teacher, &q, &calib).expect("quantizes");

    fn serve<E: PackedGemm>(model: &PackedTinyFm, engine: E) -> (f64, usize) {
        let mut session = Session::new(model.clone(), engine, 8);
        let submit_wave = |session: &mut Session<E>, seed0: u64| {
            for i in 0..8 {
                session.submit(GenRequest {
                    prompt: vec![1 + i, 2, 3],
                    max_new_tokens: 12,
                    temperature: 0.9,
                    seed: seed0 + i as u64,
                    ..Default::default()
                });
            }
        };
        // Warmup wave: populates decoded-tile caches so the measurement is
        // steady-state serving, not first-touch decode.
        submit_wave(&mut session, 400);
        session.run_to_completion();
        let warm_tokens = session.stats().tokens_generated;
        submit_wave(&mut session, 40);
        let t0 = Instant::now();
        let results = session.run_to_completion();
        let dt = t0.elapsed().as_secs_f64();
        let tokens = session.stats().tokens_generated - warm_tokens;
        assert_eq!(results.len(), 8);
        (dt, tokens)
    }

    let (dt_dense, tok_dense) = serve(&packed_fm, DequantGemm);
    let (dt_rt, tok_rt) = serve(&packed_fm, RuntimeEngine::parallel());
    assert_eq!(tok_dense, tok_rt);
    let serve_dense = tok_dense as f64 / dt_dense;
    let serve_rt = tok_rt as f64 / dt_rt;
    let mut serving = Table::new(
        "TinyFM batched serving (8 requests, batch 8, 12 new tokens each)",
        &["Engine", "tokens/s", "speedup"],
    );
    serving.row(vec![
        "dense dequantize+matmul".into(),
        format!("{serve_dense:.1}"),
        f2(1.0),
    ]);
    serving.row(vec![
        "microscopiq-runtime".into(),
        format!("{serve_rt:.1}"),
        f2(serve_rt / serve_dense),
    ]);
    serving.print();

    // Section 3: incremental decode. Per-step latency and tokens/s for
    // single-token KV-cached decode steps (prefix 32) at batch 1, 4, 8 —
    // batch 1 exercises the runtime's GEMV fast path, larger batches the
    // segment-packed single-token forward the Session runs per step.
    use microscopiq_fm::{DecodeJob, KvMode};
    let mut decode = Table::new(
        "TinyFM incremental decode (prefix 32, single-token steps, runtime engine)",
        &["Batch", "ms/step", "tokens/s"],
    );
    let decode_engine = RuntimeEngine::parallel();
    let mut decode_metrics: Vec<(String, f64)> = Vec::new();
    for db in [1usize, 4, 8] {
        let mut states: Vec<_> = (0..db)
            .map(|i| {
                let prompt: Vec<usize> = (0..32).map(|t| (7 * i + t) % 128).collect();
                let (state, _) = packed_fm
                    .prefill(&prompt, KvMode::Exact, &decode_engine)
                    .expect("exact mode");
                state
            })
            .collect();
        let step = |tok: usize, states: &mut Vec<microscopiq_fm::DecodeState>| {
            let toks = vec![tok; db];
            let mut jobs: Vec<DecodeJob<'_>> = states
                .iter_mut()
                .zip(toks.iter())
                .map(|(state, tok)| DecodeJob {
                    state,
                    tokens: std::slice::from_ref(tok),
                })
                .collect();
            std::hint::black_box(packed_fm.advance_batch(&mut jobs, &decode_engine));
        };
        step(1, &mut states); // warmup: populate decoded-tile caches
        let samples: Vec<f64> = (0..9)
            .map(|i| {
                let t0 = Instant::now();
                step(2 + i % 8, &mut states);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        let t_step = median(&samples);
        decode.row(vec![
            db.to_string(),
            format!("{:.3}", t_step * 1e3),
            format!("{:.0}", db as f64 / t_step),
        ]);
        decode_metrics.push((format!("decode_ms_per_step_b{db}"), t_step * 1e3));
        decode_metrics.push((format!("decode_tokens_per_s_b{db}"), db as f64 / t_step));
    }
    decode.print();

    table.write_csv("runtime_throughput");
    let mut metrics: Vec<(&str, f64)> = vec![
        ("gemm_tokens_per_s_parallel", batch as f64 / t_cached),
        ("gemm_tokens_per_s_uncached", batch as f64 / t_parallel),
        ("gemm_weight_gb_per_s", packed_gb / t_cached),
        ("speedup_parallel_vs_dense", speedup),
        ("speedup_uncached_vs_dense", speedup_uncached),
        ("serving_tokens_per_s_dense", serve_dense),
        ("serving_tokens_per_s_runtime", serve_rt),
        ("serving_speedup", serve_rt / serve_dense),
    ];
    metrics.extend(decode_metrics.iter().map(|(k, v)| (k.as_str(), *v)));
    table.write_json("runtime_throughput", &metrics);
}
