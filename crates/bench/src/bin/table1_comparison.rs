//! Table 1 — the qualitative comparison matrix, regenerated from measured
//! quantities: EBW from actual packed tensors, accuracy rank from measured
//! errors, and the structural properties of each method.

use microscopiq_baselines::{Gobo, Olive};
use microscopiq_bench::methods::microscopiq;
use microscopiq_bench::{f2, f3, Table};
use microscopiq_fm::{evaluate_weight_only, model};

fn main() {
    let spec = model("LLaMA-3-8B");
    let samples = 48;

    let gobo = Gobo::new(4);
    let olive = Olive::new(2);
    let ms = microscopiq(2);

    let e_gobo = evaluate_weight_only(&spec, &gobo, samples).expect("gobo");
    let e_olive = evaluate_weight_only(&spec, &olive, samples).expect("olive");
    let e_ms = evaluate_weight_only(&spec, &ms, samples).expect("ms");

    let mut table = Table::new(
        "Table 1: group-A (GOBO) vs group-B (OliVe) vs MicroScopiQ — measured",
        &[
            "Property",
            "Group A (GOBO)",
            "Group B (OliVe, 2-bit)",
            "MicroScopiQ (2-bit)",
        ],
    );
    table.row(vec![
        "Output error (LLaMA-3-8B-like)".into(),
        f3(e_gobo.mean_output_error()),
        f3(e_olive.mean_output_error()),
        f3(e_ms.mean_output_error()),
    ]);
    table.row(vec![
        "Effective bit-width".into(),
        f2(e_gobo.mean_ebw()),
        f2(e_olive.mean_ebw()),
        f2(e_ms.mean_ebw()),
    ]);
    table.row(vec![
        "Outlier location flexibility".into(),
        "No (side-band)".into(),
        "No (victim adjacency)".into(),
        "Yes (Hessian-chosen prune slots)".into(),
    ]);
    table.row(vec![
        "Aligned memory".into(),
        "Unaligned".into(),
        "Aligned".into(),
        "Aligned".into(),
    ]);
    table.row(vec![
        "PE design".into(),
        "Complex (mixed-precision PEs)".into(),
        "Complex (enc/dec per PE)".into(),
        "Simple (homogeneous INT + ReCoN)".into(),
    ]);
    table.print();
    table.write_csv("table1_comparison");
}
