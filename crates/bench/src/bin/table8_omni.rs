//! Table 8 — Omni-MicroScopiQ: combining OmniQuant's learnable weight
//! clipping (grid-searched here) with MicroScopiQ, vs plain OmniQuant.
//!
//! LWC maps onto MicroScopiQ's `clip_ratio` (applied to the inlier scale
//! derivation); the best ratio is grid-searched per model on the measured
//! output error, mirroring OmniQuant's learned optimum.

use microscopiq_baselines::OmniQuantGs;
use microscopiq_bench::{f2, f3, Table};
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::metrics::PerplexityMap;
use microscopiq_fm::{evaluate_weight_activation, evaluate_weight_only, model};

fn omni_microscopiq_error(
    spec: &microscopiq_fm::ModelSpec,
    bits: u32,
    act_bits: Option<u32>,
    samples: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for clip in [0.85, 0.90, 0.95, 1.0] {
        let q = MicroScopiQ::new(QuantConfig::builder(bits).clip_ratio(clip).build().unwrap());
        let err = match act_bits {
            None => evaluate_weight_only(spec, &q, samples),
            Some(a) => evaluate_weight_activation(spec, &q, a, 128, 0.7, samples),
        }
        .expect("evaluation")
        .mean_output_error();
        best = best.min(err);
    }
    best
}

fn main() {
    let samples = 48;
    let models = ["LLaMA-2-13B", "LLaMA-3-70B", "Phi-3-3.8B"];
    let anchor_spec = model("LLaMA-3-8B");
    let anchor = evaluate_weight_only(
        &anchor_spec,
        &microscopiq_baselines::Gptq::new(4, 128),
        samples,
    )
    .expect("anchor")
    .mean_output_error();
    let map = PerplexityMap::calibrate(anchor);

    let mut table = Table::new(
        "Table 8: Omni-MicroScopiQ vs OmniQuant (proxy PPL)",
        &["Method", "W/A", "Model", "Error", "Proxy PPL", "FP16"],
    );
    for name in models {
        let spec = model(name);
        let fp = spec.fp_ppl.unwrap();
        for (setting, bits, act) in [("4/16", 4u32, None), ("2/16", 2, None), ("2/8", 2, Some(8))] {
            // Plain OmniQuant.
            let omni = OmniQuantGs::new(bits, 128);
            let err_o = match act {
                None => evaluate_weight_only(&spec, &omni, samples),
                Some(a) => evaluate_weight_activation(&spec, &omni, a, 128, 0.6, samples),
            }
            .expect("omni")
            .mean_output_error();
            table.row(vec![
                "OmniQuant".into(),
                setting.into(),
                name.into(),
                f3(err_o),
                f2(map.ppl(fp, err_o)),
                f2(fp),
            ]);
            // Omni-MicroScopiQ (LWC grid on top of MicroScopiQ).
            let err_m = omni_microscopiq_error(&spec, bits, act, samples);
            table.row(vec![
                "Omni-MicroScopiQ".into(),
                setting.into(),
                name.into(),
                f3(err_m),
                f2(map.ppl(fp, err_m)),
                f2(fp),
            ]);
        }
    }
    table.print();
    table.write_csv("table8_omni");
}
