//! Proxy-free end-to-end perplexity on TinyFM: a real (tiny) transformer
//! teacher generates data; quantized students are scored by true
//! cross-entropy on that data. Since the teacher is the data's
//! distribution, `PPL_student / PPL_teacher = exp(KL)` isolates pure
//! quantization damage — this validates the Table 2 method ordering with
//! no proxy map in the loop.

use microscopiq_baselines::{Gptq, Olive, Rtn, Sdq};
use microscopiq_bench::{f2, Table};
use microscopiq_core::traits::WeightQuantizer;
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::tinyfm::{TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;

fn main() {
    let teacher = TinyFm::teacher(TinyFmConfig::default(), 2026);
    let mut rng = SeededRng::new(99);
    let calib: Vec<Vec<usize>> = (0..8)
        .map(|_| teacher.generate(24, 2.0, &mut rng))
        .collect();
    let eval: Vec<Vec<usize>> = (0..16)
        .map(|_| teacher.generate(32, 2.0, &mut rng))
        .collect();
    let teacher_ppl = teacher.perplexity(&eval);
    println!(
        "teacher PPL on its own data: {teacher_ppl:.3} (vocab {})",
        128
    );

    // TinyFM's calibration Hessians are small and highly correlated;
    // low-bit error compensation needs much heavier damping than the LLM
    // default (0.01) to stay stable — the same percdamp-vs-conditioning
    // trade GPTQ tunes per workload.
    let cfg = |bits: u32| {
        QuantConfig::builder(bits)
            .macro_block(64)
            .row_block(64)
            .percdamp(5.0)
            .build()
            .expect("valid")
    };
    let methods: Vec<(&str, Box<dyn WeightQuantizer>)> = vec![
        ("RTN W4 (g64)", Box::new(Rtn::group(4, 64))),
        (
            "GPTQ W4",
            Box::new(Gptq::new(4, 64).block(64).percdamp(5.0)),
        ),
        ("OliVe W4", Box::new(Olive::new(4).block(64))),
        ("MicroScopiQ W4", Box::new(MicroScopiQ::new(cfg(4)))),
        ("RTN W2 (g64)", Box::new(Rtn::group(2, 64))),
        ("SDQ W2 (2:8)", Box::new(Sdq::new(2, 2, 8))),
        ("MicroScopiQ W2", Box::new(MicroScopiQ::new(cfg(2)))),
    ];

    let mut table = Table::new(
        "TinyFM: true perplexity of quantized students (no proxy)",
        &["Method", "Student PPL", "×Teacher", "ΔCE (nats)"],
    );
    table.row(vec![
        "Teacher FP64".into(),
        format!("{teacher_ppl:.3}"),
        f2(1.0),
        "0.00".into(),
    ]);
    for (name, q) in &methods {
        match teacher.quantize_with(q.as_ref(), &calib) {
            Ok(student) => {
                let ppl = student.perplexity(&eval);
                table.row(vec![
                    name.to_string(),
                    format!("{ppl:.3}"),
                    f2(ppl / teacher_ppl),
                    format!("{:+.3}", (ppl / teacher_ppl).ln()),
                ]);
            }
            Err(e) => eprintln!("{name}: {e}"),
        }
    }
    table.print();
    table.write_csv("tinyfm_ppl");
    println!("\nexpected shape: W4 methods near ×1.0; W2 visibly worse; MicroScopiQ best in its width class");
}
