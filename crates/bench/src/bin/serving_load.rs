//! Serving load: open-loop request arrival against the threaded
//! [`Server`] front-end at several QPS levels, plus a flood (all-at-once)
//! level and a churn level where streams are dropped and deadlined
//! mid-flight.
//!
//! Each level spawns a fresh server over the packed runtime engine,
//! submits `N` requests on an open-loop arrival clock (submission times
//! do not wait for responses — the queue's backpressure is part of what
//! is measured), and one collector thread per stream timestamps every
//! token. Reported per level:
//!
//! * **tok/s** — generated tokens over the span from first submission to
//!   last completion;
//! * **ttft p50/p95** — submission → first token;
//! * **tok p50/p95** — inter-token gap (per-token latency while
//!   streaming);
//! * **peak streams** — most streams live at once (admitted,
//!   unfinished).
//!
//! Emits `results/BENCH_serving_load.json`. Acceptance: the flood level
//! sustains ≥ 32 concurrent streams, and the churn level reclaims every
//! dropped/expired request (final KV occupancy 0).

use microscopiq_bench::{f2, Table};
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::{
    Deadline, GenRequest, RequestOptions, RuntimeEngine, Server, ServerConfig, StreamEvent,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const N_REQUESTS: usize = 64;
const PROMPT_LEN: usize = 8;
const BUDGET: usize = 16;

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[idx]
}

fn bench_model() -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 64,
    };
    let fm = TinyFm::teacher(cfg, 21);
    let mut rng = SeededRng::new(22);
    let calib: Vec<Vec<usize>> = (0..4).map(|_| fm.generate(12, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

fn request(i: usize, vocab: usize) -> GenRequest {
    let mut rng = SeededRng::new(900 + i as u64);
    GenRequest {
        prompt: (0..PROMPT_LEN).map(|_| rng.below(vocab)).collect(),
        max_new_tokens: BUDGET,
        temperature: 0.8,
        seed: 3_000 + i as u64,
    }
}

/// Per-stream behaviour in the churn level.
#[derive(Clone, Copy, PartialEq)]
enum Churn {
    /// Consume the stream to completion.
    Run,
    /// Drop the stream after 4 tokens (client hangs up).
    DropEarly,
    /// Submit with an 8-step deadline (expires before the 16-token
    /// budget).
    Deadline,
}

struct Sample {
    ttft_ms: f64,
    gaps_ms: Vec<f64>,
    tokens: usize,
    completed: bool,
}

struct LevelOutcome {
    samples: Vec<Sample>,
    span_s: f64,
    peak_live: usize,
    cancelled: usize,
    expired: usize,
    final_kv_rows: usize,
}

/// Runs one load level: open-loop arrival at `qps` (`None` = flood, all
/// submissions back to back), one collector thread per stream.
fn run_level(model: &PackedTinyFm, qps: Option<f64>, churn: bool) -> LevelOutcome {
    let server = Server::spawn(
        model.clone(),
        RuntimeEngine::parallel(),
        ServerConfig {
            max_batch: 32,
            queue_capacity: 128,
            max_in_flight: 64,
            ..ServerConfig::default()
        },
    )
    .expect("spawn server");
    let handle = server.handle();
    let vocab = model.config().vocab;
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for i in 0..N_REQUESTS {
            if let Some(qps) = qps {
                // Open-loop clock: arrival i happens at i/qps seconds,
                // regardless of how far along the server is.
                let due = Duration::from_secs_f64(i as f64 / qps);
                let now = t0.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            let behaviour = match (churn, i % 4) {
                (true, 1) => Churn::DropEarly,
                (true, 3) => Churn::Deadline,
                _ => Churn::Run,
            };
            let opts = RequestOptions {
                deadline: (behaviour == Churn::Deadline).then_some(Deadline::Steps(8)),
            };
            let mut stream = handle.submit_with(request(i, vocab), opts).expect("submit");
            let submitted = Instant::now();
            let samples = &samples;
            scope.spawn(move || {
                let mut last = submitted;
                let mut sample = Sample {
                    ttft_ms: f64::NAN,
                    gaps_ms: Vec::new(),
                    tokens: 0,
                    completed: false,
                };
                while let Some(ev) = stream.next_event() {
                    match ev {
                        StreamEvent::Token(_) => {
                            let now = Instant::now();
                            let gap = now.duration_since(last).as_secs_f64() * 1e3;
                            if sample.tokens == 0 {
                                sample.ttft_ms = gap;
                            } else {
                                sample.gaps_ms.push(gap);
                            }
                            last = now;
                            sample.tokens += 1;
                            if behaviour == Churn::DropEarly && sample.tokens == 4 {
                                break; // dropping `stream` cancels it
                            }
                        }
                        StreamEvent::Finished(_) => sample.completed = true,
                        StreamEvent::Error(_) => {}
                    }
                }
                samples.lock().unwrap().push(sample);
            });
        }
    });
    // The scope joined every collector, so all streams are terminal.
    let span_s = t0.elapsed().as_secs_f64();
    let peak_live = handle.peak_live_streams();
    drop(handle);
    let report = server.shutdown();
    LevelOutcome {
        samples: samples.into_inner().unwrap(),
        span_s,
        peak_live,
        cancelled: report.cancelled,
        expired: report.expired,
        final_kv_rows: report.final_kv_rows,
    }
}

fn main() {
    let model = bench_model();
    let mut table = Table::new(
        "Serving load: open-loop arrival over the threaded front-end",
        &[
            "arrival",
            "reqs",
            "done",
            "tok/s",
            "ttft p50 ms",
            "ttft p95 ms",
            "tok p50 ms",
            "tok p95 ms",
            "peak streams",
        ],
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut flood_peak = 0usize;

    let levels: [(&str, Option<f64>, bool); 5] = [
        ("64 qps", Some(64.0), false),
        ("256 qps", Some(256.0), false),
        ("1024 qps", Some(1024.0), false),
        ("flood", None, false),
        ("flood+churn", None, true),
    ];
    for (name, qps, churn) in levels {
        let out = run_level(&model, qps, churn);
        let done = out.samples.iter().filter(|s| s.completed).count();
        let tokens: usize = out.samples.iter().map(|s| s.tokens).sum();
        let mut ttft: Vec<f64> = out
            .samples
            .iter()
            .map(|s| s.ttft_ms)
            .filter(|v| v.is_finite())
            .collect();
        let mut gaps: Vec<f64> = out
            .samples
            .iter()
            .flat_map(|s| s.gaps_ms.iter().copied())
            .collect();
        let tok_per_s = tokens as f64 / out.span_s;
        let slug = name.replace([' ', '+'], "_");
        table.row(vec![
            name.to_string(),
            N_REQUESTS.to_string(),
            done.to_string(),
            f2(tok_per_s),
            f2(percentile(&mut ttft, 50.0)),
            f2(percentile(&mut ttft, 95.0)),
            f2(percentile(&mut gaps, 50.0)),
            f2(percentile(&mut gaps, 95.0)),
            out.peak_live.to_string(),
        ]);
        metrics.push((format!("tokens_per_s_{slug}"), tok_per_s));
        metrics.push((format!("ttft_p95_ms_{slug}"), percentile(&mut ttft, 95.0)));
        metrics.push((
            format!("token_latency_p95_ms_{slug}"),
            percentile(&mut gaps, 95.0),
        ));
        metrics.push((format!("peak_streams_{slug}"), out.peak_live as f64));
        if churn {
            metrics.push(("churn_cancelled".to_string(), out.cancelled as f64));
            metrics.push(("churn_expired".to_string(), out.expired as f64));
            metrics.push(("churn_final_kv_rows".to_string(), out.final_kv_rows as f64));
            assert_eq!(
                out.final_kv_rows, 0,
                "dropped/expired streams must release their KV caches"
            );
            assert!(
                out.cancelled > 0 && out.expired > 0,
                "churn level must exercise cancellation and deadlines"
            );
        } else if qps.is_none() {
            flood_peak = out.peak_live;
        }
    }
    table.print();

    let sustained = flood_peak >= 32;
    println!(
        "\nacceptance: flood level peaked at {flood_peak} concurrent streams ({})",
        if sustained { "PASS >= 32" } else { "FAIL < 32" }
    );
    metrics.push((
        "sustained_32_streams".to_string(),
        if sustained { 1.0 } else { 0.0 },
    ));
    assert!(
        sustained,
        "flood level must sustain >= 32 concurrent streams"
    );

    let metric_refs: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    table.write_json("serving_load", &metric_refs);
}
