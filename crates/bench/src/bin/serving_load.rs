//! Serving load: open-loop request arrival against the threaded
//! [`Server`] front-end at several QPS levels, a flood (all-at-once)
//! level, a churn level where streams are dropped and deadlined
//! mid-flight, a fast-kernel-tier flood, and a **long-prompt churn**
//! section that measures what chunked prefill buys: inter-token latency
//! of established decode streams while 512-token prompts are arriving.
//!
//! Each level spawns a fresh server over the packed runtime engine,
//! submits requests on an open-loop arrival clock (submission times do
//! not wait for responses — the queue's backpressure is part of what is
//! measured), and one collector thread per stream timestamps every
//! token. Reported per level:
//!
//! * **tok/s** — generated tokens over the span from first submission to
//!   last completion;
//! * **ttft p50/p95/p99/max** — submission → first token;
//! * **tok p50/p95** — inter-token gap (per-token latency while
//!   streaming);
//! * **peak streams** — most streams live at once.
//!
//! The long-prompt rows measure the established streams only: the same
//! eight 320-token decode streams run (a) alone, (b) with ten 512-token
//! prompts arriving under whole-prompt prefill — every arrival stalls
//! all streams for one monolithic quadratic-attention forward — and (c)
//! with the same arrivals under chunked prefill (chunk 16, per-step
//! token budget 24), which spreads each prompt across ~32 steps.
//!
//! Two telemetry sections ride along:
//!
//! * **telemetry_overhead** — best-of-3 wide-model floods with server
//!   telemetry on vs off; the instrumented throughput must stay within
//!   5% of the uninstrumented baseline.
//! * **self-observation** — a traced flood whose internal
//!   TTFT/inter-token histograms are checked against the external
//!   collector (exact count equality, percentile agreement within
//!   tolerance); its trace exports to `results/TRACE_serving_load.json`.
//!
//! A **shared-prefix reuse** section serves a wave where 90% of requests
//! share one 256-token prompt prefix, cold (no cache) and warm (prefix
//! cache seeded by one warmer): warm TTFT p95 must come in at or under
//! 0.35x of cold, and after the wave — which includes streams that hang
//! up mid-generation — shrinking the cache budget to zero must drain
//! every resident byte.
//!
//! A **multi-tenant QoS fairness** section closes the run: the paced
//! interactive workload is measured alone and then again under a
//! combined batch and best-effort flood against a shedding server.
//! Interactive p99 TTFT — read from the server's *own* per-class
//! histograms, the same series `/metrics` exposes — must hold within
//! bound of the uncontended baseline, best-effort rejections must
//! actually be observed (the overload was real), and interactive must
//! never be shed.
//!
//! Emits `results/BENCH_serving_load.json`. Acceptance: the flood level
//! sustains ≥ 32 concurrent streams, the churn level reclaims every
//! dropped/expired request (final KV occupancy 0), established-stream
//! inter-token p95 under chunked long-prompt churn stays within ~2× of
//! the no-churn baseline (whole-prompt prefill shows the unbounded stall
//! this replaces), and telemetry costs ≤ 5% of flood throughput.

use microscopiq_bench::{f2, results_dir, Table};
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::{
    AdmissionPolicy, Deadline, Fleet, FleetConfig, GenRequest, PrefixCacheConfig, PrefixCacheStats,
    QosClass, RequestOptions, RuntimeEngine, Server, ServerConfig, ServerHandle, ShedPolicy,
    StreamEvent, SubmitError, SupervisionConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const N_REQUESTS: usize = 64;
const PROMPT_LEN: usize = 8;
const BUDGET: usize = 16;

// Long-prompt churn section. A deeper model than the QPS levels so a
// 512-token whole-prompt prefill is an unmistakable multi-ms stall
// (quadratic attention over 4 layers), the failure mode chunking fixes.
const EST_STREAMS: usize = 8;
const EST_BUDGET: usize = 192;
const LONG_PROMPTS: usize = 10;
const LONG_PROMPT_LEN: usize = 512;
const LONG_BUDGET: usize = 2;
const CHURN_CHUNK: usize = 4;
const CHURN_TOKEN_BUDGET: usize = 12;

// Shared-prefix phase: a wave where 90% of requests share one 256-token
// prompt prefix (short unique suffixes), served cold (no cache) vs warm
// (prefix cache seeded by one warmer request).
const PREFIX_SHARED_LEN: usize = 256;
const PREFIX_WAVE: usize = 32;
const PREFIX_SUFFIX_LEN: usize = 6;

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[idx]
}

fn max_of(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::NAN, f64::max)
}

fn bench_model() -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 64,
    };
    let fm = TinyFm::teacher(cfg, 21);
    let mut rng = SeededRng::new(22);
    let calib: Vec<Vec<usize>> = (0..4).map(|_| fm.generate(12, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

/// The model for the long-prompt churn section: 4 layers at d_model 64,
/// so one whole-prompt 512-token prefill costs tens of milliseconds of
/// quadratic attention while a decode step stays ~1 ms.
fn longprompt_model() -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 64,
        n_heads: 4,
        d_ff: 128,
        n_layers: 4,
        vocab: 64,
    };
    let fm = TinyFm::teacher(cfg, 23);
    let mut rng = SeededRng::new(24);
    let calib: Vec<Vec<usize>> = (0..4).map(|_| fm.generate(12, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(64)
            .row_block(64)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

/// The model for the fast-tier comparison: wide enough (d_model 256,
/// d_ff 512) that per-step time is GEMV-dominated, the shape the lane
/// `f32` kernel accelerates — the tiny QPS-level model is scheduler- and
/// attention-overhead-bound, which would hide the kernel win.
fn wide_model() -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 256,
        n_heads: 4,
        d_ff: 512,
        n_layers: 2,
        vocab: 96,
    };
    let fm = TinyFm::teacher(cfg, 33);
    let mut rng = SeededRng::new(34);
    let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(64)
            .row_block(64)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

fn request(i: usize, vocab: usize) -> GenRequest {
    let mut rng = SeededRng::new(900 + i as u64);
    GenRequest {
        prompt: (0..PROMPT_LEN).map(|_| rng.below(vocab)).collect(),
        max_new_tokens: BUDGET,
        temperature: 0.8,
        seed: 3_000 + i as u64,
        ..Default::default()
    }
}

/// Which engine tier serves the level.
#[derive(Clone, Copy, PartialEq)]
enum Tier {
    /// `RuntimeEngine::parallel()` — the bit-exact default.
    Default,
    /// `RuntimeEngine::fast()` — lane-blocked f32 kernels under
    /// `KernelPolicy::Fast` (the f32-tolerant serving tier).
    Fast,
}

fn spawn(model: &PackedTinyFm, cfg: ServerConfig, tier: Tier) -> Server {
    match tier {
        Tier::Default => Server::spawn(model.clone(), RuntimeEngine::parallel(), cfg),
        Tier::Fast => Server::spawn(model.clone(), RuntimeEngine::fast(), cfg),
    }
    .expect("spawn server")
}

/// Per-stream behaviour in the churn level.
#[derive(Clone, Copy, PartialEq)]
enum Churn {
    /// Consume the stream to completion.
    Run,
    /// Drop the stream after 4 tokens (client hangs up).
    DropEarly,
    /// Submit with an 8-step deadline (expires before the 16-token
    /// budget).
    Deadline,
}

struct Sample {
    ttft_ms: f64,
    gaps_ms: Vec<f64>,
    tokens: usize,
    completed: bool,
}

fn collect_stream(
    mut stream: microscopiq_runtime::ResponseStream,
    submitted: Instant,
    drop_after: Option<usize>,
) -> Sample {
    let mut last = submitted;
    let mut sample = Sample {
        ttft_ms: f64::NAN,
        gaps_ms: Vec::new(),
        tokens: 0,
        completed: false,
    };
    while let Some(ev) = stream.next_event() {
        match ev {
            StreamEvent::Token(_) => {
                let now = Instant::now();
                let gap = now.duration_since(last).as_secs_f64() * 1e3;
                if sample.tokens == 0 {
                    sample.ttft_ms = gap;
                } else {
                    sample.gaps_ms.push(gap);
                }
                last = now;
                sample.tokens += 1;
                if drop_after == Some(sample.tokens) {
                    break; // dropping `stream` cancels it
                }
            }
            StreamEvent::Sample { .. } => {}
            StreamEvent::Finished(_) => sample.completed = true,
            StreamEvent::Error(_) => {}
        }
    }
    sample
}

struct LevelOutcome {
    samples: Vec<Sample>,
    span_s: f64,
    peak_live: usize,
    cancelled: usize,
    expired: usize,
    final_kv_rows: usize,
}

/// Runs one load level: open-loop arrival at `qps` (`None` = flood, all
/// submissions back to back), one collector thread per stream.
/// `telemetry` toggles server-side lifecycle recording — off gives the
/// uninstrumented baseline for the overhead gate.
fn run_level(
    model: &PackedTinyFm,
    qps: Option<f64>,
    churn: bool,
    tier: Tier,
    telemetry: bool,
) -> LevelOutcome {
    let server = spawn(
        model,
        ServerConfig {
            max_batch: 32,
            queue_capacity: 128,
            max_in_flight: 64,
            telemetry,
            ..ServerConfig::default()
        },
        tier,
    );
    let handle = server.handle();
    let vocab = model.config().vocab;
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for i in 0..N_REQUESTS {
            if let Some(qps) = qps {
                // Open-loop clock: arrival i happens at i/qps seconds,
                // regardless of how far along the server is.
                let due = Duration::from_secs_f64(i as f64 / qps);
                let now = t0.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            let behaviour = match (churn, i % 4) {
                (true, 1) => Churn::DropEarly,
                (true, 3) => Churn::Deadline,
                _ => Churn::Run,
            };
            let opts = RequestOptions {
                deadline: (behaviour == Churn::Deadline).then_some(Deadline::Steps(8)),
                ..RequestOptions::default()
            };
            let stream = handle.submit_with(request(i, vocab), opts).expect("submit");
            let submitted = Instant::now();
            let samples = &samples;
            scope.spawn(move || {
                let drop_after = (behaviour == Churn::DropEarly).then_some(4);
                let sample = collect_stream(stream, submitted, drop_after);
                samples.lock().unwrap().push(sample);
            });
        }
    });
    // The scope joined every collector, so all streams are terminal.
    let span_s = t0.elapsed().as_secs_f64();
    let peak_live = handle.peak_live_streams();
    drop(handle);
    let report = server.shutdown();
    LevelOutcome {
        samples: samples.into_inner().unwrap(),
        span_s,
        peak_live,
        cancelled: report.cancelled,
        expired: report.expired,
        final_kv_rows: report.final_kv_rows,
    }
}

struct LongPromptOutcome {
    est_samples: Vec<Sample>,
    tokens: usize,
    done: usize,
    span_s: f64,
    peak_live: usize,
    prefill_chunks: usize,
    final_kv_rows: usize,
}

/// The long-prompt churn phase: `EST_STREAMS` established decode streams
/// (short prompts, long budgets), optionally disturbed by
/// `LONG_PROMPTS` arrivals with 512-token prompts. Only the established
/// streams' latencies are sampled; the long-prompt streams are drained
/// on their own collectors.
fn run_longprompt_phase(
    model: &PackedTinyFm,
    inject: bool,
    prefill_chunk: usize,
    token_budget: usize,
) -> LongPromptOutcome {
    let server = spawn(
        model,
        ServerConfig {
            max_batch: 32,
            prefill_chunk,
            token_budget,
            queue_capacity: 64,
            max_in_flight: 64,
            ..ServerConfig::default()
        },
        Tier::Default,
    );
    let handle = server.handle();
    let vocab = model.config().vocab;
    let est_samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let long_tokens = Mutex::new(0usize);
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for i in 0..EST_STREAMS {
            let mut rng = SeededRng::new(5_000 + i as u64);
            let req = GenRequest {
                prompt: (0..PROMPT_LEN).map(|_| rng.below(vocab)).collect(),
                max_new_tokens: EST_BUDGET,
                temperature: 0.8,
                seed: 6_000 + i as u64,
                ..Default::default()
            };
            let stream = handle.submit(req).expect("submit established");
            let submitted = Instant::now();
            let est_samples = &est_samples;
            scope.spawn(move || {
                let sample = collect_stream(stream, submitted, None);
                est_samples.lock().unwrap().push(sample);
            });
        }
        if inject {
            // Long prompts arrive on their own clock while the
            // established streams are mid-generation.
            std::thread::sleep(Duration::from_millis(15));
            for j in 0..LONG_PROMPTS {
                let mut rng = SeededRng::new(7_000 + j as u64);
                let req = GenRequest {
                    prompt: (0..LONG_PROMPT_LEN).map(|_| rng.below(vocab)).collect(),
                    max_new_tokens: LONG_BUDGET,
                    temperature: 0.8,
                    seed: 8_000 + j as u64,
                    ..Default::default()
                };
                let stream = handle.submit(req).expect("submit long prompt");
                let submitted = Instant::now();
                let long_tokens = &long_tokens;
                scope.spawn(move || {
                    let sample = collect_stream(stream, submitted, None);
                    *long_tokens.lock().unwrap() += sample.tokens;
                });
                std::thread::sleep(Duration::from_millis(6));
            }
        }
    });
    let span_s = t0.elapsed().as_secs_f64();
    let peak_live = handle.peak_live_streams();
    drop(handle);
    let report = server.shutdown();
    let est_samples = est_samples.into_inner().unwrap();
    let tokens = est_samples.iter().map(|s| s.tokens).sum::<usize>() + *long_tokens.lock().unwrap();
    let done = est_samples.iter().filter(|s| s.completed).count();
    LongPromptOutcome {
        est_samples,
        tokens,
        done,
        span_s,
        peak_live,
        prefill_chunks: report.session.prefill_chunks,
        final_kv_rows: report.final_kv_rows,
    }
}

struct PrefixOutcome {
    samples: Vec<Sample>,
    /// Cache counters at the end of the wave; `None` for the cold run.
    stats: Option<PrefixCacheStats>,
    span_s: f64,
    peak_live: usize,
    final_kv_rows: usize,
}

/// The shared-prefix wave: `PREFIX_WAVE` requests flood in, 90% sharing
/// one `PREFIX_SHARED_LEN`-token prompt prefix with short unique
/// suffixes, 10% unrelated. With `cache` on, one warmer request seeds
/// the trie first (the cold run serves the same warmer so both waves
/// start from an identical idle server); every fifth stream hangs up
/// after its first token so the drain check below also covers churned
/// copy-on-write references. After the wave the cache is shrunk to a
/// zero budget and must drain to nothing resident.
fn run_prefix_phase(model: &PackedTinyFm, cache: bool) -> PrefixOutcome {
    let server = spawn(
        model,
        ServerConfig {
            max_batch: 8,
            prefill_chunk: 32,
            token_budget: 64,
            queue_capacity: 64,
            max_in_flight: 64,
            prefix_cache: cache.then(PrefixCacheConfig::default),
            ..ServerConfig::default()
        },
        Tier::Default,
    );
    let handle = server.handle();
    let vocab = model.config().vocab;
    let mut rng = SeededRng::new(9_900);
    let shared: Vec<usize> = (0..PREFIX_SHARED_LEN).map(|_| rng.below(vocab)).collect();
    let warmer = GenRequest {
        prompt: shared.clone(),
        max_new_tokens: 2,
        temperature: 0.8,
        seed: 9_990,
        ..Default::default()
    };
    handle
        .submit(warmer)
        .expect("submit warmer")
        .collect()
        .expect("warmer finished");

    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..PREFIX_WAVE {
            let mut rng = SeededRng::new(10_000 + i as u64);
            let prompt: Vec<usize> = if i % 10 != 9 {
                let mut p = shared.clone();
                p.extend((0..PREFIX_SUFFIX_LEN).map(|_| rng.below(vocab)));
                p
            } else {
                (0..PREFIX_SUFFIX_LEN + 8)
                    .map(|_| rng.below(vocab))
                    .collect()
            };
            let req = GenRequest {
                prompt,
                max_new_tokens: 4,
                temperature: 0.8,
                seed: 11_000 + i as u64,
                ..Default::default()
            };
            let stream = handle.submit(req).expect("submit prefix wave");
            let submitted = Instant::now();
            let samples = &samples;
            scope.spawn(move || {
                let drop_after = (i % 5 == 4).then_some(1);
                let sample = collect_stream(stream, submitted, drop_after);
                samples.lock().unwrap().push(sample);
            });
        }
    });
    let span_s = t0.elapsed().as_secs_f64();
    let peak_live = handle.peak_live_streams();
    let stats = cache.then(|| {
        let stats = handle.prefix_cache_stats().expect("cache enabled");
        // Drain: once the wave (including its hung-up streams) retires,
        // nothing references the trie, so a zero budget must evict every
        // resident byte. The request is re-sent while polling because a
        // cancelled stream is only swept between worker steps — a drain
        // applied before that sweep leaves its still-referenced nodes
        // resident.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            handle.set_prefix_cache_capacity(0);
            std::thread::sleep(Duration::from_millis(5));
            let s = handle.prefix_cache_stats().expect("cache enabled");
            if s.resident_bytes == 0 && s.resident_nodes == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "prefix cache failed to drain after churn: {s:?}"
            );
        }
        stats
    });
    drop(handle);
    let report = server.shutdown();
    PrefixOutcome {
        samples: samples.into_inner().unwrap(),
        stats,
        span_s,
        peak_live,
        final_kv_rows: report.final_kv_rows,
    }
}

fn main() {
    let model = bench_model();
    let mut table = Table::new(
        "Serving load: open-loop arrival over the threaded front-end",
        &[
            "arrival",
            "reqs",
            "done",
            "tok/s",
            "ttft p50 ms",
            "ttft p95 ms",
            "ttft p99 ms",
            "ttft max ms",
            "tok p50 ms",
            "tok p95 ms",
            "peak streams",
        ],
    );
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut flood_peak = 0usize;
    let mut flood_tok_s = f64::NAN;
    let mut fast_tok_s = f64::NAN;

    let wide = wide_model();
    let levels: [(&str, Option<f64>, bool, Tier, &PackedTinyFm); 7] = [
        ("64 qps", Some(64.0), false, Tier::Default, &model),
        ("256 qps", Some(256.0), false, Tier::Default, &model),
        ("1024 qps", Some(1024.0), false, Tier::Default, &model),
        ("flood", None, false, Tier::Default, &model),
        ("flood+churn", None, true, Tier::Default, &model),
        ("wide flood default", None, false, Tier::Default, &wide),
        ("wide flood fast-tier", None, false, Tier::Fast, &wide),
    ];
    for (name, qps, churn, tier, level_model) in levels {
        let out = run_level(level_model, qps, churn, tier, true);
        let done = out.samples.iter().filter(|s| s.completed).count();
        let tokens: usize = out.samples.iter().map(|s| s.tokens).sum();
        let mut ttft: Vec<f64> = out
            .samples
            .iter()
            .map(|s| s.ttft_ms)
            .filter(|v| v.is_finite())
            .collect();
        let mut gaps: Vec<f64> = out
            .samples
            .iter()
            .flat_map(|s| s.gaps_ms.iter().copied())
            .collect();
        let tok_per_s = tokens as f64 / out.span_s;
        let slug = name.replace([' ', '+', '-'], "_");
        table.row(vec![
            name.to_string(),
            N_REQUESTS.to_string(),
            done.to_string(),
            f2(tok_per_s),
            f2(percentile(&mut ttft, 50.0)),
            f2(percentile(&mut ttft, 95.0)),
            f2(percentile(&mut ttft, 99.0)),
            f2(max_of(&ttft)),
            f2(percentile(&mut gaps, 50.0)),
            f2(percentile(&mut gaps, 95.0)),
            out.peak_live.to_string(),
        ]);
        metrics.push((format!("tokens_per_s_{slug}"), tok_per_s));
        metrics.push((format!("ttft_p95_ms_{slug}"), percentile(&mut ttft, 95.0)));
        metrics.push((format!("ttft_p99_ms_{slug}"), percentile(&mut ttft, 99.0)));
        metrics.push((format!("ttft_max_ms_{slug}"), max_of(&ttft)));
        metrics.push((
            format!("token_latency_p95_ms_{slug}"),
            percentile(&mut gaps, 95.0),
        ));
        metrics.push((format!("peak_streams_{slug}"), out.peak_live as f64));
        if churn {
            metrics.push(("churn_cancelled".to_string(), out.cancelled as f64));
            metrics.push(("churn_expired".to_string(), out.expired as f64));
            metrics.push(("churn_final_kv_rows".to_string(), out.final_kv_rows as f64));
            assert_eq!(
                out.final_kv_rows, 0,
                "dropped/expired streams must release their KV caches"
            );
            assert!(
                out.cancelled > 0 && out.expired > 0,
                "churn level must exercise cancellation and deadlines"
            );
        } else if qps.is_none() {
            match name {
                "flood" => flood_peak = out.peak_live,
                "wide flood default" => flood_tok_s = tok_per_s,
                "wide flood fast-tier" => fast_tok_s = tok_per_s,
                _ => {}
            }
        }
    }

    // Long-prompt churn: the same established streams (a) alone, (b)
    // disturbed under whole-prompt prefill, (c) disturbed under chunked
    // prefill. All three run the chunked phases' scheduler knobs except
    // (b), which runs the historical whole-prompt scheduler.
    let mut est_p95 = [f64::NAN; 3];
    let mut est_p99 = [f64::NAN; 3];
    let phases: [(&str, bool, usize, usize); 3] = [
        ("longprompt base", false, CHURN_CHUNK, CHURN_TOKEN_BUDGET),
        ("longprompt+whole", true, usize::MAX, usize::MAX),
        ("longprompt+chunked", true, CHURN_CHUNK, CHURN_TOKEN_BUDGET),
    ];
    let long_model = longprompt_model();
    for (p, (name, inject, chunk, budget)) in phases.into_iter().enumerate() {
        let out = run_longprompt_phase(&long_model, inject, chunk, budget);
        let mut ttft: Vec<f64> = out
            .est_samples
            .iter()
            .map(|s| s.ttft_ms)
            .filter(|v| v.is_finite())
            .collect();
        let mut gaps: Vec<f64> = out
            .est_samples
            .iter()
            .flat_map(|s| s.gaps_ms.iter().copied())
            .collect();
        let reqs = EST_STREAMS + if inject { LONG_PROMPTS } else { 0 };
        let tok_per_s = out.tokens as f64 / out.span_s;
        let slug = name.replace([' ', '+', '-'], "_");
        est_p95[p] = percentile(&mut gaps, 95.0);
        est_p99[p] = percentile(&mut gaps, 99.0);
        table.row(vec![
            name.to_string(),
            reqs.to_string(),
            out.done.to_string(),
            f2(tok_per_s),
            f2(percentile(&mut ttft, 50.0)),
            f2(percentile(&mut ttft, 95.0)),
            f2(percentile(&mut ttft, 99.0)),
            f2(max_of(&ttft)),
            f2(percentile(&mut gaps, 50.0)),
            f2(est_p95[p]),
            out.peak_live.to_string(),
        ]);
        metrics.push((format!("est_token_p95_ms_{slug}"), est_p95[p]));
        metrics.push((format!("est_token_p99_ms_{slug}"), est_p99[p]));
        metrics.push((format!("est_token_max_ms_{slug}"), max_of(&gaps)));
        metrics.push((format!("prefill_chunks_{slug}"), out.prefill_chunks as f64));
        assert_eq!(
            out.done, EST_STREAMS,
            "{name}: every established stream must run to completion"
        );
        assert_eq!(out.final_kv_rows, 0, "{name}: all KV reclaimed");
    }
    // Shared-prefix reuse: the same 90%-shared wave served cold (every
    // prompt prefilled in full) vs warm (the cached 256-token prefix
    // attached copy-on-write, only the suffix prefilled). The attach
    // skips ~256 of ~262 prompt tokens per shared request, so warm TTFT
    // p95 must come in at or under 0.35x of cold; afterwards the cache
    // must drain to zero resident bytes — no leaked segments, even with
    // every fifth stream hanging up after its first token.
    let mut prefix_p95 = [f64::NAN; 2];
    let mut prefix_stats: Option<PrefixCacheStats> = None;
    for (p, (name, cache)) in [("prefix cold", false), ("prefix warm", true)]
        .into_iter()
        .enumerate()
    {
        let out = run_prefix_phase(&long_model, cache);
        let done = out.samples.iter().filter(|s| s.completed).count();
        let tokens: usize = out.samples.iter().map(|s| s.tokens).sum();
        let mut ttft: Vec<f64> = out
            .samples
            .iter()
            .map(|s| s.ttft_ms)
            .filter(|v| v.is_finite())
            .collect();
        let mut gaps: Vec<f64> = out
            .samples
            .iter()
            .flat_map(|s| s.gaps_ms.iter().copied())
            .collect();
        prefix_p95[p] = percentile(&mut ttft, 95.0);
        let slug = name.replace(' ', "_");
        table.row(vec![
            name.to_string(),
            PREFIX_WAVE.to_string(),
            done.to_string(),
            f2(tokens as f64 / out.span_s),
            f2(percentile(&mut ttft, 50.0)),
            f2(prefix_p95[p]),
            f2(percentile(&mut ttft, 99.0)),
            f2(max_of(&ttft)),
            f2(percentile(&mut gaps, 50.0)),
            f2(percentile(&mut gaps, 95.0)),
            out.peak_live.to_string(),
        ]);
        metrics.push((format!("ttft_p50_ms_{slug}"), percentile(&mut ttft, 50.0)));
        metrics.push((format!("ttft_p95_ms_{slug}"), prefix_p95[p]));
        assert_eq!(out.final_kv_rows, 0, "{name}: all live KV reclaimed");
        // Streams that hang up after their first token never complete;
        // everyone else must.
        let dropped = (0..PREFIX_WAVE).filter(|i| i % 5 == 4).count();
        assert_eq!(done, PREFIX_WAVE - dropped, "{name}: completions");
        prefix_stats = prefix_stats.or(out.stats);
    }
    table.print();

    let sustained = flood_peak >= 32;
    println!(
        "\nacceptance: flood level peaked at {flood_peak} concurrent streams ({})",
        if sustained { "PASS >= 32" } else { "FAIL < 32" }
    );
    metrics.push((
        "sustained_32_streams".to_string(),
        if sustained { 1.0 } else { 0.0 },
    ));
    assert!(
        sustained,
        "flood level must sustain >= 32 concurrent streams"
    );

    // Fast serving tier: same wide-model flood, lane-f32 kernels vs the
    // bit-exact default. The floor is deliberately well under the ~1.9x
    // measured — it exists to catch the tier silently regressing to the
    // default path, not to pin the exact speedup.
    let fast_speedup = fast_tok_s / flood_tok_s;
    println!(
        "fast tier (wide model): {fast_tok_s:.0} tok/s vs default {flood_tok_s:.0} tok/s \
         ({fast_speedup:.2}x, {})",
        if fast_speedup >= 1.1 {
            "PASS >= 1.1x"
        } else {
            "FAIL < 1.1x"
        }
    );
    metrics.push((
        "fast_vs_default_tokens_per_s_ratio".to_string(),
        fast_speedup,
    ));
    assert!(
        fast_speedup >= 1.1,
        "the fast serving tier must outserve the default tier on the wide model \
         (got {fast_speedup:.2}x)"
    );

    // Chunked-prefill acceptance: established-stream inter-token p95
    // under long-prompt churn stays within ~2x of the no-churn baseline
    // (plus a 1 ms cushion for 1-core scheduling noise at sub-ms gaps).
    // The whole-prompt stall this replaces lives in the *tail*: ten
    // 512-token arrivals stall each 320-token established stream ~10
    // times (~3% of gaps), so the monolithic forwards surface at p99 and
    // max rather than p95 — chunking flattens exactly that tail, while
    // keeping the p95 bound.
    let [base, whole, chunked] = est_p95;
    let bound = 2.0 * base + 1.0;
    println!(
        "chunked prefill: established-stream tok p95 base={base:.2} ms, \
         whole-prompt churn={whole:.2} ms, chunked churn={chunked:.2} ms ({})",
        if chunked <= bound {
            "PASS <= 2x base"
        } else {
            "FAIL > 2x base"
        }
    );
    println!(
        "chunked prefill tail: tok p99 whole-prompt churn={:.2} ms vs chunked churn={:.2} ms",
        est_p99[1], est_p99[2]
    );
    metrics.push((
        "chunked_churn_vs_base_p95_ratio".to_string(),
        chunked / base,
    ));
    metrics.push(("whole_churn_vs_base_p95_ratio".to_string(), whole / base));
    metrics.push((
        "whole_vs_chunked_churn_p99_ratio".to_string(),
        est_p99[1] / est_p99[2],
    ));
    assert!(
        chunked <= bound,
        "chunked long-prompt churn must keep established-stream p95 within \
         ~2x of the no-churn baseline (base {base:.2} ms, got {chunked:.2} ms)"
    );
    assert!(
        est_p99[1] > est_p99[2],
        "whole-prompt prefill must show the head-of-line tail stall chunking \
         removes (p99 whole {:.2} ms vs chunked {:.2} ms)",
        est_p99[1],
        est_p99[2]
    );

    // Shared-prefix reuse gates (the phase itself ran above, before the
    // table printed).
    let stats = prefix_stats.expect("warm run reports cache stats");
    let [prefix_cold_p95, prefix_warm_p95] = prefix_p95;
    let warm_ratio = prefix_warm_p95 / prefix_cold_p95;
    println!(
        "prefix cache: shared-prefix wave ttft p95 cold={prefix_cold_p95:.2} ms vs \
         warm={prefix_warm_p95:.2} ms (ratio {warm_ratio:.3}, {})",
        if warm_ratio <= 0.35 {
            "PASS <= 0.35"
        } else {
            "FAIL > 0.35"
        }
    );
    println!(
        "prefix cache: hits={} misses={} tokens_reused={} evictions={} (drained to 0 bytes)",
        stats.hits, stats.misses, stats.tokens_reused, stats.evictions
    );
    metrics.push(("prefix_warm_vs_cold_ttft_p95_ratio".to_string(), warm_ratio));
    metrics.push(("prefix_cache_hits".to_string(), stats.hits as f64));
    metrics.push((
        "prefix_cache_tokens_reused".to_string(),
        stats.tokens_reused as f64,
    ));
    metrics.push(("prefix_cache_evictions".to_string(), stats.evictions as f64));
    assert!(
        warm_ratio <= 0.35,
        "warm shared-prefix TTFT p95 must be <= 0.35x cold \
         (cold {prefix_cold_p95:.2} ms, warm {prefix_warm_p95:.2} ms)"
    );
    // 90% of the wave shares the warmed prefix; every one of those
    // admissions must hit and reuse the whole 256-token prefix.
    let shared_reqs = (0..PREFIX_WAVE).filter(|i| i % 10 != 9).count() as u64;
    assert!(
        stats.hits >= shared_reqs,
        "every shared-prefix admission must hit (got {} of {shared_reqs})",
        stats.hits
    );
    assert!(
        stats.tokens_reused >= shared_reqs * PREFIX_SHARED_LEN as u64,
        "each hit must reuse the full shared prefix (reused {})",
        stats.tokens_reused
    );

    // Telemetry overhead gate: best-of-3 wide-model floods with server
    // telemetry on vs off, interleaved so drift hits both configurations
    // equally. The wide model makes tokens compute-bound — the shape the
    // 5% budget is specified against (on the tiny scheduler-bound model
    // a histogram record would be a larger *relative* cost, but so would
    // any bookkeeping).
    let mut tok_s_on = f64::NAN;
    let mut tok_s_off = f64::NAN;
    for _ in 0..3 {
        for (telemetry, best) in [(true, &mut tok_s_on), (false, &mut tok_s_off)] {
            let out = run_level(&wide, None, false, Tier::Default, telemetry);
            let tokens: usize = out.samples.iter().map(|s| s.tokens).sum();
            *best = best.max(tokens as f64 / out.span_s);
        }
    }
    let overhead_ratio = tok_s_on / tok_s_off;
    println!(
        "telemetry overhead: instrumented {tok_s_on:.0} tok/s vs baseline {tok_s_off:.0} \
         tok/s (ratio {overhead_ratio:.3}, {})",
        if overhead_ratio >= 0.95 {
            "PASS >= 0.95"
        } else {
            "FAIL < 0.95"
        }
    );
    metrics.push(("telemetry_flood_tokens_per_s".to_string(), tok_s_on));
    metrics.push(("baseline_flood_tokens_per_s".to_string(), tok_s_off));
    metrics.push(("telemetry_overhead_ratio".to_string(), overhead_ratio));
    assert!(
        overhead_ratio >= 0.95,
        "telemetry must cost <= 5% of flood throughput (got ratio {overhead_ratio:.3})"
    );

    // Self-observation: a traced, paced run whose internal
    // TTFT/inter-token histograms must agree with the external
    // collector. Counts are exact (every token recorded once);
    // percentiles agree within a tolerance covering the
    // measurement-point difference (the server stamps at step emission,
    // the collector at receive) plus the histogram's 1/16 bucket error.
    // Paced, not flooded: under a flood the 64 collector threads starve
    // behind the worker and receive-lag — not server latency — would
    // dominate the external numbers.
    let server = spawn(
        &model,
        ServerConfig {
            max_batch: 32,
            queue_capacity: 128,
            max_in_flight: 64,
            trace_events: 1 << 15,
            ..ServerConfig::default()
        },
        Tier::Default,
    );
    let handle = server.handle();
    let vocab = model.config().vocab;
    let obs: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let self_qps = 256.0;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..N_REQUESTS {
            let due = Duration::from_secs_f64(i as f64 / self_qps);
            let now = t0.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
            let stream = handle.submit(request(i, vocab)).expect("submit");
            let submitted = Instant::now();
            let obs = &obs;
            scope.spawn(move || {
                let sample = collect_stream(stream, submitted, None);
                obs.lock().unwrap().push(sample);
            });
        }
    });
    let snap = handle.metrics_snapshot();
    let trace = handle.export_trace().expect("tracing was enabled");
    drop(handle);
    server.shutdown();
    let obs = obs.into_inner().unwrap();

    let total_tokens: usize = obs.iter().map(|s| s.tokens).sum();
    let streams_with_tokens = obs.iter().filter(|s| s.tokens > 0).count();
    let int_ttft = snap
        .histogram("microscopiq_ttft_us")
        .expect("server ttft histogram");
    let int_inter = snap
        .histogram("microscopiq_inter_token_us")
        .expect("server inter-token histogram");
    assert_eq!(
        snap.counter("microscopiq_tokens_streamed_total"),
        total_tokens as u64,
        "server token counter must equal the externally observed stream total"
    );
    assert_eq!(
        int_ttft.count, streams_with_tokens as u64,
        "one TTFT sample per stream that produced a token"
    );
    assert_eq!(
        int_inter.count,
        (total_tokens - streams_with_tokens) as u64,
        "first-token + inter-token samples partition the token stream"
    );

    let mut ext_ttft: Vec<f64> = obs
        .iter()
        .map(|s| s.ttft_ms)
        .filter(|v| v.is_finite())
        .collect();
    let mut ext_gaps: Vec<f64> = obs.iter().flat_map(|s| s.gaps_ms.iter().copied()).collect();
    // Agreement: within an absolute cushion (collector-thread scheduling
    // noise at sub-ms gaps — wide for tail percentiles, where a handful
    // of delayed receives land) or within 3x relatively.
    let agrees = |internal_ms: f64, external_ms: f64, abs_tol_ms: f64| {
        (internal_ms - external_ms).abs() <= abs_tol_ms
            || (internal_ms / external_ms >= 1.0 / 3.0 && internal_ms / external_ms <= 3.0)
    };
    for (what, internal_ms, external_ms, abs_tol_ms) in [
        (
            "ttft p50",
            int_ttft.percentile(50.0) / 1e3,
            percentile(&mut ext_ttft, 50.0),
            2.0,
        ),
        (
            "ttft p95",
            int_ttft.percentile(95.0) / 1e3,
            percentile(&mut ext_ttft, 95.0),
            10.0,
        ),
        (
            "inter-token p50",
            int_inter.percentile(50.0) / 1e3,
            percentile(&mut ext_gaps, 50.0),
            2.0,
        ),
    ] {
        println!(
            "telemetry self-observation: {what} internal {internal_ms:.3} ms vs \
             external {external_ms:.3} ms"
        );
        assert!(
            agrees(internal_ms, external_ms, abs_tol_ms),
            "server-side {what} must agree with the external collector \
             (internal {internal_ms:.3} ms, external {external_ms:.3} ms)"
        );
    }
    metrics.push((
        "self_ttft_p95_ms_internal".to_string(),
        int_ttft.percentile(95.0) / 1e3,
    ));
    metrics.push((
        "self_ttft_p95_ms_external".to_string(),
        percentile(&mut ext_ttft, 95.0),
    ));
    metrics.push((
        "self_inter_token_p50_ms_internal".to_string(),
        int_inter.percentile(50.0) / 1e3,
    ));

    // Perfetto-loadable per-request/per-step timeline for this flood.
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let trace_path = dir.join("TRACE_serving_load.json");
    match std::fs::write(&trace_path, &trace) {
        Ok(()) => println!("[json] {}", trace_path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", trace_path.display()),
    }

    // Multi-tenant QoS fairness: the same paced interactive workload is
    // run twice against a shedding server — once alone (baseline), once
    // while batch and best-effort flooder threads hammer the admission
    // queue as fast as they are allowed in. The gates are read from the
    // server's *own* per-class histograms and shed counters (the same
    // series `/metrics` exposes): interactive p99 TTFT must hold within
    // bound of its uncontended baseline, best-effort traffic must
    // actually have been shed (the overload was real and the policy
    // answered it), and interactive traffic must never have been shed.
    let qos_cfg = ServerConfig {
        max_batch: 8,
        token_budget: 16,
        queue_capacity: 128,
        max_in_flight: 32,
        admission: AdmissionPolicy::Reject,
        shed: Some(ShedPolicy {
            interactive_ttft_p99: Duration::from_millis(50),
            min_samples: 32,
            queue_high: 16,
        }),
        ..ServerConfig::default()
    };
    let fair_qps = 192.0;
    // Paced interactive arrivals with one collector thread per stream.
    // Interactive is never shed, but under `AdmissionPolicy::Reject` a
    // flood burst can transiently fill the queue, so `QueueFull` retries
    // with a short backoff — the server's own TTFT clock only starts at
    // successful admission, which is exactly the latency the shed
    // policy governs.
    let run_interactive = |handle: &ServerHandle| -> Vec<Sample> {
        let obs: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for i in 0..N_REQUESTS {
                let due = Duration::from_secs_f64(i as f64 / fair_qps);
                let now = t0.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let mut retries = 0u32;
                let stream = loop {
                    match handle.submit(request(i, vocab)) {
                        Ok(s) => break s,
                        Err(SubmitError::QueueFull) => {
                            retries += 1;
                            assert!(
                                retries < 50_000,
                                "interactive submission starved out of the queue"
                            );
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        Err(e) => panic!("interactive submit must never be refused: {e:?}"),
                    }
                };
                let submitted = Instant::now();
                let obs = &obs;
                scope.spawn(move || {
                    let sample = collect_stream(stream, submitted, None);
                    obs.lock().unwrap().push(sample);
                });
            }
        });
        obs.into_inner().unwrap()
    };
    let interactive_p99_ms = |handle: &ServerHandle| {
        handle
            .metrics_snapshot()
            .histogram_with("microscopiq_ttft_us", &[("class", "interactive")])
            .expect("per-class interactive ttft histogram")
            .percentile(99.0)
            / 1e3
    };

    // Baseline: interactive alone on the shedding config.
    let server = spawn(&model, qos_cfg, Tier::Default);
    let handle = server.handle();
    let base_obs = run_interactive(&handle);
    let base_p99 = interactive_p99_ms(&handle);
    drop(handle);
    server.shutdown();
    assert!(
        base_obs.iter().all(|s| s.completed),
        "every baseline interactive request must complete"
    );

    // Multi-tenant: the same interactive pacing while one batch and one
    // best-effort flooder submit back to back, backing off only when
    // refused. Flooders hold their streams open (a flood tenant does
    // not cancel) and drain them after the interactive phase ends.
    let server = spawn(&model, qos_cfg, Tier::Default);
    let handle = server.handle();
    let stop = AtomicBool::new(false);
    let flood: Mutex<Vec<(&str, usize, usize)>> = Mutex::new(Vec::new());
    let multi_obs = std::thread::scope(|scope| {
        for (label, class, seed_base) in [
            ("batch", QosClass::Batch, 50_000u64),
            ("best_effort", QosClass::BestEffort, 60_000u64),
        ] {
            let flooder = handle.clone();
            let stop = &stop;
            let flood = &flood;
            scope.spawn(move || {
                let mut streams = Vec::new();
                let mut accepted = 0usize;
                let mut refused = 0usize;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let req = GenRequest {
                        prompt: vec![1, 2, 3],
                        max_new_tokens: 4,
                        temperature: 0.8,
                        seed: seed_base + i,
                        class,
                        ..Default::default()
                    };
                    i += 1;
                    match flooder.submit(req) {
                        Ok(s) => {
                            accepted += 1;
                            streams.push(s);
                        }
                        Err(SubmitError::Shed) | Err(SubmitError::QueueFull) => {
                            refused += 1;
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        Err(SubmitError::ServerClosed) => break,
                    }
                }
                for mut s in streams {
                    while s.next_event().is_some() {}
                }
                flood.lock().unwrap().push((label, accepted, refused));
            });
        }
        let obs = run_interactive(&handle);
        stop.store(true, Ordering::Relaxed);
        obs
    });
    let snap = handle.metrics_snapshot();
    let multi_p99 = interactive_p99_ms(&handle);
    drop(handle);
    server.shutdown();
    assert!(
        multi_obs.iter().all(|s| s.completed),
        "every flooded interactive request must complete"
    );

    let shed_of = |class: &str| {
        snap.counter_with("microscopiq_requests_shed_total", &[("class", class)])
            .unwrap_or(0)
    };
    let be_shed = shed_of("best_effort");
    let batch_shed = shed_of("batch");
    let int_shed = shed_of("interactive");
    let flood = flood.into_inner().unwrap();
    let flood_accepted: usize = flood.iter().map(|(_, a, _)| a).sum();
    let flood_refused: usize = flood.iter().map(|(_, _, r)| r).sum();
    for (label, accepted, refused) in &flood {
        println!("qos fairness: {label} flooder accepted={accepted} refused={refused}");
    }
    println!("qos fairness: sheds interactive={int_shed} batch={batch_shed} best_effort={be_shed}");
    // Bound: generous against CI scheduling noise, but far below what an
    // unprotected queue shows (without shedding the flood pins the
    // 128-deep queue and interactive TTFT grows by orders of magnitude).
    let p99_bound = (base_p99 * 10.0).max(base_p99 + 50.0);
    println!(
        "qos fairness: interactive ttft p99 alone {base_p99:.3} ms vs flooded \
         {multi_p99:.3} ms (bound {p99_bound:.3} ms, {})",
        if multi_p99 <= p99_bound {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(
        multi_p99 <= p99_bound,
        "interactive p99 TTFT must hold under a batch/best-effort flood \
         (alone {base_p99:.3} ms, flooded {multi_p99:.3} ms, bound {p99_bound:.3} ms)"
    );
    assert!(
        be_shed > 0,
        "the flood must overload the server enough that best-effort \
         traffic is shed (shed counter is 0 — the fairness run proved nothing)"
    );
    assert_eq!(int_shed, 0, "interactive traffic must never be shed");
    metrics.push(("qos_interactive_p99_ms_alone".to_string(), base_p99));
    metrics.push(("qos_interactive_p99_ms_flooded".to_string(), multi_p99));
    metrics.push((
        "qos_interactive_p99_ratio".to_string(),
        multi_p99 / base_p99.max(1e-9),
    ));
    metrics.push(("qos_best_effort_shed_total".to_string(), be_shed as f64));
    metrics.push(("qos_batch_shed_total".to_string(), batch_shed as f64));
    metrics.push(("qos_flood_accepted".to_string(), flood_accepted as f64));
    metrics.push(("qos_flood_refused".to_string(), flood_refused as f64));

    // ---- Self-healing: kill-and-recover ------------------------------
    // A supervised two-worker fleet serves three closed-loop waves of
    // failover streams: a pre-kill baseline, a wave with worker 0
    // panicking mid-flight (failover must still complete every stream),
    // and a post-respawn wave once the supervisor heals the fleet.
    // Gate: the healed fleet sustains at least 0.8x the pre-kill
    // throughput — a respawned worker is a full replacement, not a
    // degraded survivor.
    {
        let vocab = model.config().vocab;
        let fleet = Fleet::spawn(
            model.clone(),
            |_| RuntimeEngine::parallel(),
            FleetConfig {
                workers: 2,
                server: ServerConfig {
                    max_batch: 8,
                    queue_capacity: 128,
                    max_in_flight: 64,
                    ..ServerConfig::default()
                },
                supervision: Some(SupervisionConfig {
                    max_restarts: 4,
                    backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(50),
                    interval: Duration::from_millis(5),
                }),
            },
        )
        .expect("spawn supervised fleet");
        let handle = fleet.handle();
        // One closed-loop wave of failover streams; returns generated
        // tokens/s. `kill` panics worker 0 shortly after launch.
        let wave = |kill: bool| -> f64 {
            let t0 = Instant::now();
            let tokens: usize = std::thread::scope(|scope| {
                let collectors: Vec<_> = (0..N_REQUESTS)
                    .map(|i| {
                        let handle = handle.clone();
                        scope.spawn(move || {
                            let (_, stream) = handle
                                .submit_with(
                                    request(i, vocab),
                                    RequestOptions {
                                        failover: true,
                                        ..RequestOptions::default()
                                    },
                                )
                                .expect("fleet submit");
                            collect_stream(stream, Instant::now(), None)
                        })
                    })
                    .collect();
                if kill {
                    std::thread::sleep(Duration::from_millis(2));
                    handle.worker(0).inject_worker_panic();
                }
                collectors
                    .into_iter()
                    .map(|c| {
                        let s = c.join().expect("collector thread");
                        assert!(s.completed, "every failover stream must complete");
                        s.tokens
                    })
                    .sum()
            });
            tokens as f64 / t0.elapsed().as_secs_f64()
        };

        // Best-of-two on the measured waves blunts scheduler noise on
        // shared CI runners without moving the gate.
        let pre = wave(false).max(wave(false));
        wave(true); // the kill wave is not timed — it measures survival
        let failovers = handle.failovers();
        let deadline = Instant::now() + Duration::from_secs(10);
        while handle.respawns() < 1 || handle.alive_workers() < 2 {
            assert!(
                Instant::now() < deadline,
                "fleet failed to heal within 10 s of the kill"
            );
            handle.supervise();
            std::thread::sleep(Duration::from_millis(1));
        }
        let post = wave(false).max(wave(false));
        let ratio = post / pre.max(1e-9);
        let respawns = handle.respawns();
        drop(handle);
        let report = fleet.shutdown();
        assert_eq!(
            report.lost(),
            1,
            "exactly the killed incarnation is lost: {report:?}"
        );
        println!(
            "kill-and-recover: pre {pre:.0} tok/s, post-respawn {post:.0} tok/s \
             (ratio {ratio:.2}, respawns {respawns}, failovers {failovers}, {})",
            if ratio >= 0.8 { "PASS" } else { "FAIL" }
        );
        assert!(
            respawns >= 1,
            "the supervisor must have respawned the killed worker"
        );
        assert!(
            ratio >= 0.8,
            "post-respawn throughput must hold at >= 0.8x pre-kill \
             (pre {pre:.0} tok/s, post {post:.0} tok/s, ratio {ratio:.2})"
        );
        metrics.push(("recover_pre_kill_tokens_per_s".to_string(), pre));
        metrics.push(("recover_post_respawn_tokens_per_s".to_string(), post));
        metrics.push(("recover_throughput_ratio".to_string(), ratio));
        metrics.push(("recover_respawns".to_string(), respawns as f64));
        metrics.push(("recover_failovers".to_string(), failovers as f64));
    }

    let metric_refs: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    table.write_json("serving_load", &metric_refs);
}
