//! Table 7 — progressive ablation on LLaMA-3-8B(-like): each row adds one
//! MicroScopiQ technique; proxy PPL from the measured layer error, plus
//! the measured error itself so the ordering is verifiable without the
//! proxy map. The KV-cache row uses the attention-output error of the
//! 2-bit KIVI-style scheme.

use microscopiq_baselines::Rtn;
use microscopiq_bench::{f2, f3, Table};
use microscopiq_core::kv_cache::{attention_output_error, quantize_kv_cache, KvCacheConfig};
use microscopiq_core::{MicroScopiQ, OutlierMode, QuantConfig};
use microscopiq_fm::metrics::PerplexityMap;
use microscopiq_fm::{evaluate_weight_activation, evaluate_weight_only, model};
use microscopiq_linalg::{Matrix, SeededRng};

fn main() {
    let spec = model("LLaMA-3-8B");
    let fp = spec.fp_ppl.expect("llm");
    let samples = 48;

    // Calibrate κ on GPTQ-W4 as everywhere else.
    let anchor = evaluate_weight_only(&spec, &microscopiq_baselines::Gptq::new(4, 128), samples)
        .expect("anchor")
        .mean_output_error();
    let map = PerplexityMap::calibrate(anchor);

    let mut table = Table::new(
        "Table 7: progressive ablation, LLaMA-3-8B-like (proxy PPL)",
        &["Configuration", "Mean error", "Proxy PPL", "Δ"],
    );
    let mut prev = fp;
    let push = |table: &mut Table, name: &str, err: f64, prev: &mut f64| {
        let ppl = map.ppl(fp, err);
        let delta = ppl - *prev;
        table.row(vec![
            name.to_string(),
            f3(err),
            f2(ppl),
            format!("{delta:+.2}"),
        ]);
        *prev = ppl;
    };

    table.row(vec![
        "Baseline W16A16".into(),
        "0.000".into(),
        f2(fp),
        "—".into(),
    ]);

    // Row 2: plain per-tensor INT-4.
    let rtn = Rtn::per_tensor(4);
    let err = evaluate_weight_only(&spec, &rtn, samples)
        .unwrap()
        .mean_output_error();
    push(&mut table, "+ INT-4 scalar quantization", err, &mut prev);

    // Row 3: MX-INT-4_128 (group pow2 scales), outliers clipped.
    let cfg = |bits: u32| QuantConfig::builder(bits);
    let q = MicroScopiQ::new(
        cfg(4)
            .outlier_mode(OutlierMode::Ignore)
            .prune_redistribute(false)
            .error_compensation(false)
            .build()
            .unwrap(),
    );
    let err = evaluate_weight_only(&spec, &q, samples)
        .unwrap()
        .mean_output_error();
    push(&mut table, "+ MX-INT-4_128", err, &mut prev);

    // Row 4: MX-INT-2_128 (the PPL spike).
    let q = MicroScopiQ::new(
        cfg(2)
            .outlier_mode(OutlierMode::Ignore)
            .prune_redistribute(false)
            .error_compensation(false)
            .build()
            .unwrap(),
    );
    let err = evaluate_weight_only(&spec, &q, samples)
        .unwrap()
        .mean_output_error();
    push(&mut table, "+ MX-INT-2_128", err, &mut prev);

    // Row 5: outliers to MX-FP-4_{128,128} (macro-block scale sharing).
    let q = MicroScopiQ::new(
        cfg(2)
            .outlier_mode(OutlierMode::MxFpMacroBlock)
            .prune_redistribute(false)
            .error_compensation(false)
            .build()
            .unwrap(),
    );
    let err = evaluate_weight_only(&spec, &q, samples)
        .unwrap()
        .mean_output_error();
    push(&mut table, "+ Outliers → MX-FP-4_{128,128}", err, &mut prev);

    // Row 6: outliers to MX-FP-4_{8,8} (micro-block scales).
    let q = MicroScopiQ::new(
        cfg(2)
            .outlier_mode(OutlierMode::MxFpMicroBlock)
            .prune_redistribute(false)
            .error_compensation(false)
            .prescale_outliers(false)
            .build()
            .unwrap(),
    );
    let err = evaluate_weight_only(&spec, &q, samples)
        .unwrap()
        .mean_output_error();
    push(&mut table, "+ Outliers → MX-FP-4_{8,8}", err, &mut prev);

    // Row 7: ×2^Isf outlier magnitude pre-reduction.
    let q = MicroScopiQ::new(
        cfg(2)
            .outlier_mode(OutlierMode::MxFpMicroBlock)
            .prune_redistribute(false)
            .error_compensation(false)
            .prescale_outliers(true)
            .build()
            .unwrap(),
    );
    let err = evaluate_weight_only(&spec, &q, samples)
        .unwrap()
        .mean_output_error();
    push(&mut table, "+ Reduce outlier mag. ×2^Isf", err, &mut prev);

    // Row 8: prune least-important inliers per μB (aligned memory; the
    // paper sees a small PPL increase here).
    let q = MicroScopiQ::new(
        cfg(2)
            .outlier_mode(OutlierMode::MxFpMicroBlock)
            .prune_redistribute(true)
            .error_compensation(false)
            .build()
            .unwrap(),
    );
    let err = evaluate_weight_only(&spec, &q, samples)
        .unwrap()
        .mean_output_error();
    push(&mut table, "+ Prune least-imp. inliers/μB", err, &mut prev);

    // Row 9: Hessian error compensation per row block.
    let q = MicroScopiQ::new(cfg(2).build().unwrap());
    let err = evaluate_weight_only(&spec, &q, samples)
        .unwrap()
        .mean_output_error();
    push(&mut table, "+ Compensate quant. errors/rB", err, &mut prev);

    // Row 10: activations to MX-INT-8_128 with α = 0.7.
    let err = evaluate_weight_activation(&spec, &q, 8, 128, 0.7, samples)
        .unwrap()
        .mean_output_error();
    push(
        &mut table,
        "+ Activations MX-INT-8_128, α=0.7",
        err,
        &mut prev,
    );

    // Row 11: 2-bit KV-cache quantization — measured attention error folded
    // into the layer error budget.
    let weight_err = err;
    let kv_err = {
        let mut rng = SeededRng::new(0xCAFE);
        let kcache = Matrix::from_fn(256, 64, |_, c| {
            rng.normal(0.0, if c % 11 == 0 { 2.0 } else { 0.5 })
        });
        let vcache = Matrix::from_fn(256, 64, |_, _| rng.normal(0.0, 0.8));
        let queries = Matrix::from_fn(8, 64, |_, _| rng.normal(0.0, 0.5));
        let q = quantize_kv_cache(&kcache, &vcache, KvCacheConfig::default()).unwrap();
        attention_output_error(&queries, &kcache, &vcache, &q)
    };
    // Attention blocks are roughly a third of the layer budget.
    let combined = weight_err + kv_err / 3.0 * 0.25;
    push(
        &mut table,
        "+ 2-bit KV-cache quantization",
        combined,
        &mut prev,
    );

    table.print();
    table.write_csv("table7_ablation");
    println!("\npaper reference column (Table 7): 6.13, 10.27, 9.53, 39.48, 10.96, 8.93, 8.89, 9.02, 8.97, 9.08, 9.58");
}
