//! Table 5 — compute area breakdown, outlier-handling overhead, and
//! compute density (TOPS/mm²) for GOBO, OliVe, and MicroScopiQ at 64×64.

use microscopiq_accel::area::{gobo_area, microscopiq_area, olive_area};
use microscopiq_accel::baselines::{baseline_latency, iso_accuracy_baselines};
use microscopiq_accel::energy::EnergyConstants;
use microscopiq_accel::perf::{effective_tops, workload_latency, AccelConfig};
use microscopiq_accel::workload::{model_workload, Phase};
use microscopiq_bench::{f2, pct, Table};
use microscopiq_fm::model;

fn main() {
    let workload = model_workload(&model("LLaMA-3-8B"), Phase::Prefill(512));
    let k = EnergyConstants::default();

    let mut table = Table::new(
        "Table 5: compute area, overhead, and density (64×64, 7 nm)",
        &[
            "Architecture",
            "Compute area (mm²)",
            "Outlier overhead",
            "Compute density (TOPS/mm²)",
        ],
    );

    // MicroScopiQ at bb=2 (peak density configuration, §7.5).
    let ms_area = microscopiq_area(64, 64, 1);
    let cfg2 = AccelConfig::paper_64x64(2, 1);
    let lat = workload_latency(&workload, &cfg2, 2.36, 0.10);
    let ms_tops = effective_tops(&workload, &cfg2, &lat);
    table.row(vec![
        "MicroScopiQ (bb=2)".into(),
        format!("{:.4}", ms_area.total_mm2()),
        pct(ms_area.outlier_overhead_fraction()),
        f2(ms_tops / ms_area.total_mm2()),
    ]);

    // OliVe at 4-bit.
    let olive = olive_area(64, 64);
    let baselines = iso_accuracy_baselines(&k);
    let cfg4 = AccelConfig::paper_64x64(4, 1);
    let olive_model = baselines.iter().find(|b| b.name == "OliVe").expect("olive");
    let olive_cycles = baseline_latency(&workload, olive_model, &cfg4);
    let macs: f64 = workload.iter().map(|g| g.macs() as f64).sum();
    let olive_tops = 2.0 * macs / (olive_cycles / (cfg4.freq_ghz * 1e9)) / 1e12;
    table.row(vec![
        "OliVe".into(),
        format!("{:.4}", olive.total_mm2()),
        pct(olive.outlier_overhead_fraction()),
        f2(olive_tops / olive.total_mm2()),
    ]);

    // GOBO.
    let gobo = gobo_area(64, 64);
    let gobo_model = baselines.iter().find(|b| b.name == "GOBO").expect("gobo");
    let gobo_cycles = baseline_latency(&workload, gobo_model, &cfg4);
    let gobo_tops = 2.0 * macs / (gobo_cycles / (cfg4.freq_ghz * 1e9)) / 1e12;
    table.row(vec![
        "GOBO".into(),
        format!("{:.4}", gobo.total_mm2()),
        pct(gobo.outlier_overhead_fraction()),
        f2(gobo_tops / gobo.total_mm2()),
    ]);
    table.print();
    table.write_csv("table5_area");

    // Component detail.
    let mut detail = Table::new(
        "Table 5 detail: per-component areas",
        &[
            "Architecture",
            "Component",
            "Unit area (μm²)",
            "Count",
            "Total (μm²)",
        ],
    );
    for breakdown in [&ms_area, &olive, &gobo] {
        for c in &breakdown.components {
            detail.row(vec![
                breakdown.name.to_string(),
                c.name.to_string(),
                f2(c.unit_um2),
                c.count.to_string(),
                f2(c.total_um2()),
            ]);
        }
    }
    detail.print();
    detail.write_csv("table5_components");
}
