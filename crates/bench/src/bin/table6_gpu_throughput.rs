//! Table 6 — normalized token-generation throughput of the GPU execution
//! paths on LLaMA-2-13B and LLaMA-3-8B (A100-class model).

use microscopiq_accel::workload::{model_workload, Phase};
use microscopiq_bench::{f2, Table};
use microscopiq_fm::model;
use microscopiq_gpu::{normalized_throughput, GpuPath, GpuSpec, MsGpuParams};

fn main() {
    let spec = GpuSpec::a100();
    let ms = MsGpuParams::default();
    let paths = [
        GpuPath::Fp16Baseline,
        GpuPath::AtomW4A4,
        GpuPath::MsNoOptim,
        GpuPath::MsOptim,
        GpuPath::MsModifiedTc,
    ];
    let paper = [
        ("LLaMA-2-13B", [1.00, 2.25, 0.98, 2.06, 4.31]),
        ("LLaMA-3-8B", [1.00, 1.05, 0.92, 1.01, 1.78]),
    ];

    let mut table = Table::new(
        "Table 6: normalized token-generation throughput (decode, A100 model)",
        &["Method", "LLaMA-2-13B", "(paper)", "LLaMA-3-8B", "(paper)"],
    );
    for (i, path) in paths.iter().enumerate() {
        let mut row = vec![path.name().to_string()];
        for (model_name, paper_vals) in &paper {
            let wl = model_workload(&model(model_name), Phase::Decode);
            row.push(f2(normalized_throughput(&wl, *path, &spec, &ms)));
            row.push(format!("({:.2})", paper_vals[i]));
        }
        // Reorder: method, 13B, paper13B, 8B, paper8B — already in order.
        table.row(row);
    }
    table.print();
    table.write_csv("table6_gpu_throughput");
    println!(
        "\nnote: the simulated modified-TC row removes all dequantization;\n\
         absolute ratios differ from the paper's GPGPU-Sim setup (see EXPERIMENTS.md)."
    );
}
