//! Kernel-level microbench: every kernel registered in the runtime's
//! default [`KernelRegistry`], timed head-to-head on the same packed
//! layer, plus the dense dequantize+matmul reference for context.
//!
//! Two sections:
//!
//! 1. **GEMM 512×2048 @ batch 8** (bb = 2, Bμ = 8, BM = 64, ~3% outlier
//!    micro-blocks, synthesized directly in packed form) — the shape the
//!    runtime acceptance gauge has always used. The acceptance bar here
//!    is the ISSUE's: the lane-blocked `f32` kernel ≥ 1.5× over the
//!    scalar `f64` oracle.
//! 2. **GEMV 512×2048** (m = 1) — the per-step decode shape, comparing
//!    the shape-specialized GEMV entries.
//!
//! Every timed kernel is conformance-gated against the scalar oracle at
//! its pinned tolerance — on the GEMM shape *and* the GEMV entry —
//! before any clock starts, and the parallel GEMV splitter is checked
//! for run-to-run bitwise determinism. Emits
//! `results/BENCH_kernels.json` in the shared report shape, including
//! detected CPU features and per-kernel availability so CI legs with
//! SIMD force-disabled stay distinguishable from hosts without SIMD.

use microscopiq_bench::{f2, median, Table};
use microscopiq_core::config::GroupAxis;
use microscopiq_linalg::{Matrix, SeededRng};
use microscopiq_runtime::kernels::synth::{synth_packed, SynthSpec};
use microscopiq_runtime::kernels::{
    detected_cpu_features, fused_gemv_serial, KernelCtx, KernelRegistry, BUCKETED_LANE_KERNEL,
    LANE_KERNEL, SCALAR_KERNEL, SIMD_KERNEL,
};
use microscopiq_runtime::{DecodedCache, EngineConfig, KernelPolicy, RuntimeEngine};
use std::time::Instant;

/// Median wall time of `iters` runs of `f` (after one warmup), in seconds.
fn time_median<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warmup
    let samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(&samples)
}

fn main() {
    let (d_row, d_col, batch) = (512usize, 2048usize, 8usize);
    let layer = synth_packed(&SynthSpec {
        axis: GroupAxis::DotProduct,
        d_row,
        d_col,
        bits: 2,
        micro: 8,
        macro_block: 64,
        outlier_rate: 0.03,
        seed: 7,
    });
    let mut rng = SeededRng::new(11);
    let acts = Matrix::from_fn(d_col, batch, |_, _| rng.normal(0.0, 1.0));
    let x: Vec<f64> = (0..d_col).map(|_| rng.normal(0.0, 1.0)).collect();

    let registry = KernelRegistry::with_defaults();
    let cache = DecodedCache::new(256 << 20);
    let ctx = KernelCtx::cached(&cache, layer.content_fingerprint());

    // Conformance gate before timing anything: every kernel at its pin.
    let oracle = {
        let mut out = Matrix::zeros(d_row, batch);
        registry
            .get("scalar-f64")
            .expect("oracle registered")
            .gemm_rows(&ctx, &layer, &acts, 0, d_row, out.as_mut_slice());
        out
    };
    assert_eq!(
        oracle,
        layer.dequantize().matmul(&acts),
        "oracle must be bit-identical to dense"
    );
    let gemv_oracle = fused_gemv_serial(&layer, &x);
    for kernel in registry.kernels() {
        let mut out = vec![0.0_f64; d_row * batch];
        kernel.gemm_rows(&ctx, &layer, &acts, 0, d_row, &mut out);
        let tol = kernel.tolerance();
        for (&a, &b) in out.iter().zip(oracle.as_slice().iter()) {
            assert!(
                tol.accepts(a, b),
                "{} violates its pinned tolerance: {a} vs {b}",
                kernel.name()
            );
        }
        // The GEMV entry is a separate code path per kernel — gate it too.
        let mut gv = vec![0.0_f64; d_row];
        kernel.gemv(&ctx, &layer, &x, &mut gv);
        for (&a, &b) in gv.iter().zip(gemv_oracle.iter()) {
            assert!(
                tol.accepts(a, b),
                "{} GEMV violates its pinned tolerance: {a} vs {b}",
                kernel.name()
            );
        }
    }

    // Parallel-GEMV determinism gate: the threaded splitter must equal
    // the serial path bitwise, twice in a row, under both dispatch
    // policies — the contract the runtime's reproducibility rests on.
    for policy in [KernelPolicy::Default, KernelPolicy::Fast] {
        let serial = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 0,
            parallel_threshold: usize::MAX,
            policy,
            ..EngineConfig::default()
        });
        let parallel = RuntimeEngine::new(EngineConfig {
            threads: 4,
            cache_bytes: 0,
            parallel_threshold: 0,
            policy,
            ..EngineConfig::default()
        });
        let want = serial.gemv(&layer, &x);
        let got1 = parallel.gemv(&layer, &x);
        let got2 = parallel.gemv(&layer, &x);
        assert_eq!(
            got1, want,
            "parallel GEMV diverged from serial ({policy:?})"
        );
        assert_eq!(
            got1, got2,
            "parallel GEMV not run-to-run stable ({policy:?})"
        );
    }
    println!("parallel GEMV determinism: PASS (Default and Fast, bitwise vs serial)\n");

    // Host capability report — the SIMD gate below only arms when the
    // kernel actually registered (CI runs a leg with MICROSCOPIQ_SIMD=off
    // where it must not).
    let features = detected_cpu_features();
    let simd_available = registry.names().contains(&SIMD_KERNEL);
    println!(
        "cpu features: {}",
        features
            .iter()
            .map(|(n, on)| format!("{n}={}", u8::from(*on)))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "kernels registered: {} (simd-f32 {})\n",
        registry.names().join(", "),
        if simd_available {
            "available"
        } else {
            "unavailable: no SIMD support detected or force-disabled"
        }
    );

    // Section 1: GEMM. Dense reference first for the context column.
    let t_dense = time_median(5, || {
        std::hint::black_box(layer.dequantize().matmul(&acts));
    });
    let mut gemm_table = Table::new(
        &format!("Kernel GEMM {d_row}x{d_col} @ batch {batch} (bb=2, ~3% outlier blocks)"),
        &["Kernel", "tolerance", "ms/pass", "speedup vs scalar"],
    );
    let mut gemm_times: Vec<(&'static str, f64)> = Vec::new();
    for kernel in registry.kernels() {
        let t = time_median(9, || {
            let mut out = vec![0.0_f64; d_row * batch];
            kernel.gemm_rows(&ctx, &layer, &acts, 0, d_row, &mut out);
            std::hint::black_box(out);
        });
        gemm_times.push((kernel.name(), t));
    }
    let t_scalar = gemm_times
        .iter()
        .find(|(n, _)| *n == "scalar-f64")
        .expect("oracle timed")
        .1;
    gemm_table.row(vec![
        "dense dequantize+matmul".into(),
        "-".into(),
        format!("{:.3}", t_dense * 1e3),
        f2(t_scalar / t_dense),
    ]);
    for &(name, t) in &gemm_times {
        let tol = registry.get(name).expect("registered").tolerance();
        gemm_table.row(vec![
            name.to_string(),
            format!("{tol:?}"),
            format!("{:.3}", t * 1e3),
            f2(t_scalar / t),
        ]);
    }
    gemm_table.print();

    // Section 2: GEMV (m = 1), the per-step decode shape.
    let mut gemv_table = Table::new(
        &format!("Kernel GEMV {d_row}x{d_col} (m=1 decode shape)"),
        &["Kernel", "µs/pass", "speedup vs scalar"],
    );
    let mut gemv_times: Vec<(&'static str, f64)> = Vec::new();
    for kernel in registry.kernels() {
        let t = time_median(15, || {
            let mut out = vec![0.0_f64; d_row];
            kernel.gemv(&ctx, &layer, &x, &mut out);
            std::hint::black_box(out);
        });
        gemv_times.push((kernel.name(), t));
    }
    let t_scalar_gemv = gemv_times
        .iter()
        .find(|(n, _)| *n == "scalar-f64")
        .expect("oracle timed")
        .1;
    for &(name, t) in &gemv_times {
        gemv_table.row(vec![
            name.to_string(),
            format!("{:.1}", t * 1e6),
            f2(t_scalar_gemv / t),
        ]);
    }
    gemv_table.print();

    // Acceptance gauge: the lane-blocked f32 kernel against the scalar
    // oracle on the 512×2048 GEMM.
    let t_lane = gemm_times
        .iter()
        .find(|(n, _)| *n == "lane-f32")
        .expect("lane timed")
        .1;
    let lane_speedup = t_scalar / t_lane;
    println!(
        "\nacceptance: lane-f32 vs scalar-f64 on {d_row}x{d_col}@b{batch} = {lane_speedup:.2}x ({})",
        if lane_speedup >= 1.5 {
            "PASS >= 1.5x"
        } else {
            "FAIL < 1.5x"
        }
    );
    assert!(
        lane_speedup >= 1.5,
        "lane-f32 must be >= 1.5x over scalar-f64 (got {lane_speedup:.2}x)"
    );

    // Acceptance gauge 2: the same bar on the m=1 GEMV path — the shape
    // every per-step decode collapses to, and the one the Fast serving
    // tier leans on (~6× measured), so it must not silently regress.
    let lane_gemv_speedup = t_scalar_gemv
        / gemv_times
            .iter()
            .find(|(n, _)| *n == "lane-f32")
            .expect("lane gemv timed")
            .1;
    println!(
        "acceptance: lane-f32 vs scalar-f64 on {d_row}x{d_col} GEMV (m=1) = {lane_gemv_speedup:.2}x ({})",
        if lane_gemv_speedup >= 1.5 {
            "PASS >= 1.5x"
        } else {
            "FAIL < 1.5x"
        }
    );
    assert!(
        lane_gemv_speedup >= 1.5,
        "lane-f32 GEMV must be >= 1.5x over scalar-f64 (got {lane_gemv_speedup:.2}x)"
    );
    let bucketed_speedup = t_scalar
        / gemm_times
            .iter()
            .find(|(n, _)| *n == "bucketed-cache")
            .expect("bucketed timed")
            .1;

    let gemv_time = |name: &str| gemv_times.iter().find(|(n, _)| *n == name).map(|&(_, t)| t);
    let t_lane_gemv = gemv_time(LANE_KERNEL).expect("lane gemv timed");

    // Acceptance gauge 3: the bucketed-lane kernel (multiply-free code
    // bucketing, no cache) must beat scalar by ≥ 1.2× on the decode GEMV.
    let bucketed_lane_gemv_speedup =
        t_scalar_gemv / gemv_time(BUCKETED_LANE_KERNEL).expect("bucketed-lane gemv timed");
    println!(
        "acceptance: bucketed-lane vs scalar-f64 on {d_row}x{d_col} GEMV (m=1) = \
         {bucketed_lane_gemv_speedup:.2}x ({})",
        if bucketed_lane_gemv_speedup >= 1.2 {
            "PASS >= 1.2x"
        } else {
            "FAIL < 1.2x"
        }
    );
    assert!(
        bucketed_lane_gemv_speedup >= 1.2,
        "bucketed-lane GEMV must be >= 1.2x over scalar-f64 \
         (got {bucketed_lane_gemv_speedup:.2}x)"
    );

    // Acceptance gauge 4 (conditional): when the SIMD kernel registered,
    // it must beat the lane kernel by ≥ 2× on the decode GEMV — the
    // ISSUE's close-the-gap bar. On SIMD-less hosts (or the CI leg with
    // MICROSCOPIQ_SIMD=off) the gate reports n/a and does not fail.
    let simd_gemv_speedup = gemv_time(SIMD_KERNEL).map(|t| t_lane_gemv / t);
    match simd_gemv_speedup {
        Some(s) => {
            println!(
                "acceptance: simd-f32 vs lane-f32 on {d_row}x{d_col} GEMV (m=1) = {s:.2}x ({})",
                if s >= 2.0 {
                    "PASS >= 2.0x"
                } else {
                    "FAIL < 2.0x"
                }
            );
            assert!(
                s >= 2.0,
                "simd-f32 GEMV must be >= 2.0x over lane-f32 (got {s:.2}x)"
            );
        }
        None => println!("acceptance: simd-f32 vs lane-f32 — n/a (kernel not registered)"),
    }

    let mut metrics: Vec<(&str, f64)> = vec![
        ("gemm_ms_dense", t_dense * 1e3),
        ("gemm_ms_scalar", t_scalar * 1e3),
        ("gemm_ms_lane", t_lane * 1e3),
        ("gemm_speedup_lane_vs_scalar", lane_speedup),
        ("gemm_speedup_bucketed_vs_scalar", bucketed_speedup),
        ("gemv_us_scalar", t_scalar_gemv * 1e6),
        ("gemv_us_lane", t_lane_gemv * 1e6),
        ("gemv_speedup_lane_vs_scalar", lane_gemv_speedup),
        (
            "gemv_speedup_bucketed_lane_vs_scalar",
            bucketed_lane_gemv_speedup,
        ),
    ];
    if let Some(t) = gemv_time(SIMD_KERNEL) {
        metrics.push(("gemv_us_simd", t * 1e6));
    }
    if let Some(s) = simd_gemv_speedup {
        metrics.push(("gemv_speedup_simd_vs_lane", s));
        metrics.push((
            "gemv_speedup_simd_vs_scalar",
            t_scalar_gemv * s / t_lane_gemv,
        ));
    }
    // Host capability + availability block: which features the host has
    // and which kernels actually registered, so a JSON artifact from the
    // SIMD-off CI leg is self-describing.
    for (name, on) in &features {
        metrics.push(match *name {
            "avx2" => ("feature_avx2", f64::from(u8::from(*on))),
            "fma" => ("feature_fma", f64::from(u8::from(*on))),
            _ => ("feature_neon", f64::from(u8::from(*on))),
        });
    }
    for (key, kernel) in [
        ("kernel_available_scalar", SCALAR_KERNEL),
        ("kernel_available_lane", LANE_KERNEL),
        ("kernel_available_bucketed_lane", BUCKETED_LANE_KERNEL),
        ("kernel_available_simd", SIMD_KERNEL),
    ] {
        metrics.push((key, f64::from(u8::from(registry.names().contains(&kernel)))));
    }
    gemm_table.write_json("kernels", &metrics);
}
