//! Kernel-level microbench: every kernel registered in the runtime's
//! default [`KernelRegistry`], timed head-to-head on the same packed
//! layer, plus the dense dequantize+matmul reference for context.
//!
//! Two sections:
//!
//! 1. **GEMM 512×2048 @ batch 8** (bb = 2, Bμ = 8, BM = 64, ~3% outlier
//!    micro-blocks, synthesized directly in packed form) — the shape the
//!    runtime acceptance gauge has always used. The acceptance bar here
//!    is the ISSUE's: the lane-blocked `f32` kernel ≥ 1.5× over the
//!    scalar `f64` oracle.
//! 2. **GEMV 512×2048** (m = 1) — the per-step decode shape, comparing
//!    the shape-specialized GEMV entries.
//!
//! Every timed kernel is conformance-gated against the scalar oracle at
//! its pinned tolerance before any clock starts. Emits
//! `results/BENCH_kernels.json` in the shared report shape.

use microscopiq_bench::{f2, median, Table};
use microscopiq_core::config::GroupAxis;
use microscopiq_linalg::{Matrix, SeededRng};
use microscopiq_runtime::kernels::synth::{synth_packed, SynthSpec};
use microscopiq_runtime::kernels::{KernelCtx, KernelRegistry};
use microscopiq_runtime::DecodedCache;
use std::time::Instant;

/// Median wall time of `iters` runs of `f` (after one warmup), in seconds.
fn time_median<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warmup
    let samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(&samples)
}

fn main() {
    let (d_row, d_col, batch) = (512usize, 2048usize, 8usize);
    let layer = synth_packed(&SynthSpec {
        axis: GroupAxis::DotProduct,
        d_row,
        d_col,
        bits: 2,
        micro: 8,
        macro_block: 64,
        outlier_rate: 0.03,
        seed: 7,
    });
    let mut rng = SeededRng::new(11);
    let acts = Matrix::from_fn(d_col, batch, |_, _| rng.normal(0.0, 1.0));
    let x: Vec<f64> = (0..d_col).map(|_| rng.normal(0.0, 1.0)).collect();

    let registry = KernelRegistry::with_defaults();
    let cache = DecodedCache::new(256 << 20);
    let ctx = KernelCtx::cached(&cache, layer.content_fingerprint());

    // Conformance gate before timing anything: every kernel at its pin.
    let oracle = {
        let mut out = Matrix::zeros(d_row, batch);
        registry
            .get("scalar-f64")
            .expect("oracle registered")
            .gemm_rows(&ctx, &layer, &acts, 0, d_row, out.as_mut_slice());
        out
    };
    assert_eq!(
        oracle,
        layer.dequantize().matmul(&acts),
        "oracle must be bit-identical to dense"
    );
    for kernel in registry.kernels() {
        let mut out = vec![0.0_f64; d_row * batch];
        kernel.gemm_rows(&ctx, &layer, &acts, 0, d_row, &mut out);
        let tol = kernel.tolerance();
        for (&a, &b) in out.iter().zip(oracle.as_slice().iter()) {
            assert!(
                tol.accepts(a, b),
                "{} violates its pinned tolerance: {a} vs {b}",
                kernel.name()
            );
        }
    }

    // Section 1: GEMM. Dense reference first for the context column.
    let t_dense = time_median(5, || {
        std::hint::black_box(layer.dequantize().matmul(&acts));
    });
    let mut gemm_table = Table::new(
        &format!("Kernel GEMM {d_row}x{d_col} @ batch {batch} (bb=2, ~3% outlier blocks)"),
        &["Kernel", "tolerance", "ms/pass", "speedup vs scalar"],
    );
    let mut gemm_times: Vec<(&'static str, f64)> = Vec::new();
    for kernel in registry.kernels() {
        let t = time_median(9, || {
            let mut out = vec![0.0_f64; d_row * batch];
            kernel.gemm_rows(&ctx, &layer, &acts, 0, d_row, &mut out);
            std::hint::black_box(out);
        });
        gemm_times.push((kernel.name(), t));
    }
    let t_scalar = gemm_times
        .iter()
        .find(|(n, _)| *n == "scalar-f64")
        .expect("oracle timed")
        .1;
    gemm_table.row(vec![
        "dense dequantize+matmul".into(),
        "-".into(),
        format!("{:.3}", t_dense * 1e3),
        f2(t_scalar / t_dense),
    ]);
    for &(name, t) in &gemm_times {
        let tol = registry.get(name).expect("registered").tolerance();
        gemm_table.row(vec![
            name.to_string(),
            format!("{tol:?}"),
            format!("{:.3}", t * 1e3),
            f2(t_scalar / t),
        ]);
    }
    gemm_table.print();

    // Section 2: GEMV (m = 1), the per-step decode shape.
    let mut gemv_table = Table::new(
        &format!("Kernel GEMV {d_row}x{d_col} (m=1 decode shape)"),
        &["Kernel", "µs/pass", "speedup vs scalar"],
    );
    let mut gemv_times: Vec<(&'static str, f64)> = Vec::new();
    for kernel in registry.kernels() {
        let t = time_median(15, || {
            let mut out = vec![0.0_f64; d_row];
            kernel.gemv(&ctx, &layer, &x, &mut out);
            std::hint::black_box(out);
        });
        gemv_times.push((kernel.name(), t));
    }
    let t_scalar_gemv = gemv_times
        .iter()
        .find(|(n, _)| *n == "scalar-f64")
        .expect("oracle timed")
        .1;
    for &(name, t) in &gemv_times {
        gemv_table.row(vec![
            name.to_string(),
            format!("{:.1}", t * 1e6),
            f2(t_scalar_gemv / t),
        ]);
    }
    gemv_table.print();

    // Acceptance gauge: the lane-blocked f32 kernel against the scalar
    // oracle on the 512×2048 GEMM.
    let t_lane = gemm_times
        .iter()
        .find(|(n, _)| *n == "lane-f32")
        .expect("lane timed")
        .1;
    let lane_speedup = t_scalar / t_lane;
    println!(
        "\nacceptance: lane-f32 vs scalar-f64 on {d_row}x{d_col}@b{batch} = {lane_speedup:.2}x ({})",
        if lane_speedup >= 1.5 {
            "PASS >= 1.5x"
        } else {
            "FAIL < 1.5x"
        }
    );
    assert!(
        lane_speedup >= 1.5,
        "lane-f32 must be >= 1.5x over scalar-f64 (got {lane_speedup:.2}x)"
    );

    // Acceptance gauge 2: the same bar on the m=1 GEMV path — the shape
    // every per-step decode collapses to, and the one the Fast serving
    // tier leans on (~6× measured), so it must not silently regress.
    let lane_gemv_speedup = t_scalar_gemv
        / gemv_times
            .iter()
            .find(|(n, _)| *n == "lane-f32")
            .expect("lane gemv timed")
            .1;
    println!(
        "acceptance: lane-f32 vs scalar-f64 on {d_row}x{d_col} GEMV (m=1) = {lane_gemv_speedup:.2}x ({})",
        if lane_gemv_speedup >= 1.5 {
            "PASS >= 1.5x"
        } else {
            "FAIL < 1.5x"
        }
    );
    assert!(
        lane_gemv_speedup >= 1.5,
        "lane-f32 GEMV must be >= 1.5x over scalar-f64 (got {lane_gemv_speedup:.2}x)"
    );
    let bucketed_speedup = t_scalar
        / gemm_times
            .iter()
            .find(|(n, _)| *n == "bucketed-cache")
            .expect("bucketed timed")
            .1;
    let metrics: Vec<(&str, f64)> = vec![
        ("gemm_ms_dense", t_dense * 1e3),
        ("gemm_ms_scalar", t_scalar * 1e3),
        ("gemm_ms_lane", t_lane * 1e3),
        ("gemm_speedup_lane_vs_scalar", lane_speedup),
        ("gemm_speedup_bucketed_vs_scalar", bucketed_speedup),
        ("gemv_us_scalar", t_scalar_gemv * 1e6),
        ("gemv_speedup_lane_vs_scalar", lane_gemv_speedup),
    ];
    gemm_table.write_json("kernels", &metrics);
}
