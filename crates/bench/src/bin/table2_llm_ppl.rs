//! Table 2 — WikiText-2 perplexity (proxy) for the LLM zoo across
//! W4A16, W4A4, W2A16, and W2A8 settings.
//!
//! Measured quantity: element-weighted relative layer output error;
//! reported as proxy perplexity via a κ calibrated once on the GPTQ-W4A16
//! anchor for LLaMA-3-8B (see `microscopiq_fm::metrics`). Orderings and
//! ratios between methods are measurement-driven; absolute values are not
//! expected to match the paper (DESIGN.md §2).

use microscopiq_bench::methods::{weight_activation_methods, weight_only_methods};
use microscopiq_bench::{f2, f3, Table};
use microscopiq_fm::metrics::PerplexityMap;
use microscopiq_fm::{evaluate_weight_activation, evaluate_weight_only, llm_zoo};

fn main() {
    let samples = 48;
    // MICROSCOPIQ_FAST=1 drops the three largest models (OPT-175B and the
    // two 70Bs), whose proxy Hessians dominate the ~30-minute full run.
    let fast = std::env::var_os("MICROSCOPIQ_FAST").is_some();
    let zoo: Vec<_> = llm_zoo()
        .into_iter()
        .filter(|m| !fast || !matches!(m.name, "OPT-175B" | "LLaMA-2-70B" | "LLaMA-3-70B"))
        .collect();

    // κ calibration on the GPTQ-W4A16 / LLaMA-3-8B anchor.
    let anchor_spec = zoo.iter().find(|m| m.name == "LLaMA-3-8B").expect("zoo");
    let gptq = microscopiq_baselines::Gptq::new(4, 128);
    let anchor_err = evaluate_weight_only(anchor_spec, &gptq, samples)
        .expect("anchor evaluation")
        .mean_output_error();
    let map = PerplexityMap::calibrate(anchor_err);
    println!(
        "calibration: GPTQ-W4A16 error on LLaMA-3-8B = {:.4} → κ = {:.3}",
        anchor_err, map.kappa
    );

    let mut table = Table::new(
        "Table 2: proxy WikiText-2 perplexity (lower is better)",
        &[
            "Setting",
            "Method",
            "Model",
            "Error",
            "EBW",
            "Proxy PPL",
            "FP16 PPL",
        ],
    );

    for (setting, weight_bits, wa) in [
        ("W4A16", 4u32, false),
        ("W4A4", 4, true),
        ("W2A16", 2, false),
        ("W2A8", 2, true),
    ] {
        let methods = if wa {
            weight_activation_methods(weight_bits).0
        } else {
            weight_only_methods(weight_bits)
        };
        let act_bits = if wa {
            weight_activation_methods(weight_bits).1
        } else {
            16
        };
        for m in &methods {
            for spec in &zoo {
                let eval = if wa {
                    evaluate_weight_activation(
                        spec,
                        m.quantizer.as_ref(),
                        act_bits,
                        128,
                        m.alpha,
                        samples,
                    )
                } else {
                    evaluate_weight_only(spec, m.quantizer.as_ref(), samples)
                };
                let eval = match eval {
                    Ok(e) => e,
                    Err(e) => {
                        eprintln!("{} on {}: {e}", m.name, spec.name);
                        continue;
                    }
                };
                let err = eval.mean_output_error();
                let fp = spec.fp_ppl.unwrap_or(f64::NAN);
                println!(
                    "{setting} {} {}: err {:.4} ebw {:.2} ppl {:.2}",
                    m.name,
                    spec.name,
                    err,
                    eval.mean_ebw(),
                    map.ppl(fp, err)
                );
                table.row(vec![
                    setting.to_string(),
                    m.name.clone(),
                    spec.name.to_string(),
                    f3(err),
                    f2(eval.mean_ebw()),
                    f2(map.ppl(fp, err)),
                    f2(fp),
                ]);
            }
        }
    }
    table.print();
    table.write_csv("table2_llm_ppl");

    // EBW footer (§7.2 claim: ≈2.36 b at bb=2, ≈4.15 b at bb=4).
    let mut ebw_table = Table::new(
        "EBW summary (paper: 2.36 @ bb=2, 4.15 @ bb=4)",
        &["bb", "Mean EBW across LLM zoo"],
    );
    for bits in [2u32, 4] {
        let q = microscopiq_bench::methods::microscopiq(bits);
        let mut acc = 0.0;
        let mut n = 0.0;
        for spec in &zoo {
            if let Ok(e) = evaluate_weight_only(spec, &q, 24) {
                acc += e.mean_ebw();
                n += 1.0;
            }
        }
        ebw_table.row(vec![bits.to_string(), f2(acc / n)]);
    }
    ebw_table.print();
    ebw_table.write_csv("table2_ebw_summary");
}
