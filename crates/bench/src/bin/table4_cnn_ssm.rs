//! Table 4 — CNN and SSM quantization (ImageNet Top-1 proxy):
//! HAWQ / QMamba baselines vs MicroScopiQ at W4A4, W2A8, W2A4.

use microscopiq_baselines::{HawqLike, Rtn};
use microscopiq_bench::methods::microscopiq;
use microscopiq_bench::{f2, Table};
use microscopiq_fm::metrics::AccuracyMap;
use microscopiq_fm::{cnn_ssm_zoo, evaluate_weight_activation, evaluate_weight_only};

fn main() {
    let samples = 48;
    let zoo = cnn_ssm_zoo();
    // Anchor: HAWQ W2A4 on ResNet-50 scores 73.17 of 76.15 (paper).
    let hawq = HawqLike::new(2, 4, 0.5);
    let resnet = zoo.iter().find(|m| m.name == "ResNet-50").expect("zoo");
    let anchor_err = evaluate_weight_activation(resnet, &hawq, 4, 128, 0.0, samples)
        .expect("anchor")
        .mean_output_error();
    let map = AccuracyMap::calibrate(anchor_err, 76.15, 73.17, 0.1);

    let mut table = Table::new(
        "Table 4: CNN/SSM ImageNet Top-1 (proxy, higher is better)",
        &["Method", "W/A", "Model", "FP16", "Accuracy"],
    );
    for spec in &zoo {
        let fp = spec.fp_acc.expect("vision models carry fp accuracy");
        table.row(vec![
            "Baseline".into(),
            "16/16".into(),
            spec.name.into(),
            f2(fp),
            f2(fp),
        ]);
        // Reference baselines per the paper's rows.
        if matches!(spec.name, "ResNet-50" | "VGG-16") {
            let err = evaluate_weight_activation(spec, &hawq, 4, 128, 0.0, samples)
                .expect("hawq")
                .mean_output_error();
            table.row(vec![
                "HAWQ".into(),
                "2/4".into(),
                spec.name.into(),
                f2(fp),
                f2(map.accuracy(fp, err)),
            ]);
        } else {
            let qmamba = Rtn::per_tensor(4).named("QMamba-like");
            let err = evaluate_weight_activation(spec, &qmamba, 4, 128, 0.0, samples)
                .expect("qmamba")
                .mean_output_error();
            table.row(vec![
                "QMamba".into(),
                "4/4".into(),
                spec.name.into(),
                f2(fp),
                f2(map.accuracy(fp, err)),
            ]);
        }
        // MicroScopiQ rows.
        for (wa, bits, act_bits) in [("4/4", 4u32, 4u32), ("2/8", 2, 8), ("2/4", 2, 4)] {
            if wa == "2/4" && !matches!(spec.name, "ResNet-50" | "VGG-16") {
                continue; // paper omits SSM W2A4
            }
            let ms = microscopiq(bits);
            let err = evaluate_weight_activation(spec, &ms, act_bits, 128, 0.5, samples)
                .expect("microscopiq")
                .mean_output_error();
            table.row(vec![
                "MicroScopiQ".into(),
                wa.into(),
                spec.name.into(),
                f2(fp),
                f2(map.accuracy(fp, err)),
            ]);
        }
        // Weight-only sanity row for context.
        let ms = microscopiq(4);
        let err = evaluate_weight_only(spec, &ms, samples)
            .expect("w-only")
            .mean_output_error();
        table.row(vec![
            "MicroScopiQ".into(),
            "4/16".into(),
            spec.name.into(),
            f2(fp),
            f2(map.accuracy(fp, err)),
        ]);
    }
    table.print();
    table.write_csv("table4_cnn_ssm");
}
