//! Fig. 17 — area of MicroScopiQ (1/2/8 ReCoN units) vs OliVe at 8×8,
//! 16×16, 64×64, and 128×128 array scales: compute-side area (the paper's
//! stacked components) plus a supplementary total including buffers + L2.

use microscopiq_accel::area::{microscopiq_area, olive_area, total_area_mm2};
use microscopiq_bench::{f3, Table};

fn main() {
    let mut table = Table::new(
        "Fig. 17: compute area (mm²) across array scales",
        &["Array", "MS 1-ReCoN", "MS 2-ReCoN", "MS 8-ReCoN", "OliVe"],
    );
    for n in [8usize, 16, 64, 128] {
        let mut row = vec![format!("{n}x{n}")];
        for units in [1usize, 2, 8] {
            row.push(format!("{:.6}", microscopiq_area(n, n, units).total_mm2()));
        }
        row.push(format!("{:.6}", olive_area(n, n).total_mm2()));
        table.row(row);
    }
    table.print();
    table.write_csv("fig17_area_scaling");

    // Normalized view (the paper's bars are normalized per scale).
    let mut norm = Table::new(
        "Fig. 17 (compute area normalized to MS 1-ReCoN per scale)",
        &["Array", "MS 1-ReCoN", "MS 2-ReCoN", "MS 8-ReCoN", "OliVe"],
    );
    for n in [8usize, 16, 64, 128] {
        let base = microscopiq_area(n, n, 1).total_mm2();
        let mut row = vec![format!("{n}x{n}")];
        for units in [1usize, 2, 8] {
            row.push(f3(microscopiq_area(n, n, units).total_mm2() / base));
        }
        row.push(f3(olive_area(n, n).total_mm2() / base));
        norm.row(row);
    }
    norm.print();
    norm.write_csv("fig17_area_scaling_normalized");

    // Supplementary: totals including scaled buffers and the 2 MB L2.
    let mut total = Table::new(
        "Fig. 17 supplement: total on-chip area incl. buffers + L2 (mm²)",
        &["Array", "MS 1-ReCoN", "MS 8-ReCoN", "OliVe"],
    );
    for n in [8usize, 16, 64, 128] {
        total.row(vec![
            format!("{n}x{n}"),
            f3(total_area_mm2(&microscopiq_area(n, n, 1), n)),
            f3(total_area_mm2(&microscopiq_area(n, n, 8), n)),
            f3(total_area_mm2(&olive_area(n, n), n)),
        ]);
    }
    total.print();
    total.write_csv("fig17_total_area");
    println!("\npaper shape: ReCoN overhead shrinks with scale (≈3% of compute at 128×128,\n1 unit); 8 units ≈ +11% at 128×128; OliVe sits near the 8-unit variant");
}
