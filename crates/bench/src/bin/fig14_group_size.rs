//! Fig. 14 — effect of the outlier group size B_μ on proxy PPL, EBW, and
//! outlier diversity (std-dev within μBs) for LLaMA-3-8B-like weights.

use microscopiq_bench::{f2, f3, Table};
use microscopiq_core::outlier::classify_outliers;
use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::metrics::PerplexityMap;
use microscopiq_fm::synth::synthesize_layer;
use microscopiq_fm::{evaluate_weight_only, model};
use microscopiq_linalg::std_dev;

/// Mean within-μB standard deviation of |outlier| magnitudes (the red line
/// of Fig. 14).
fn outlier_deviation(spec: &microscopiq_fm::ModelSpec, bmu: usize) -> f64 {
    let mut devs = Vec::new();
    for layer in &spec.layers {
        let w = synthesize_layer(spec, layer);
        for r in 0..w.rows() {
            let row = w.row(r);
            for mab in row.chunks(128) {
                let flagged = classify_outliers(mab, 3.0);
                for (bi, chunk) in mab.chunks(bmu).enumerate() {
                    let mags: Vec<f64> = chunk
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| flagged[bi * bmu + i])
                        .map(|(_, v)| v.abs())
                        .collect();
                    if mags.len() >= 2 {
                        devs.push(std_dev(&mags));
                    }
                }
            }
        }
    }
    if devs.is_empty() {
        0.0
    } else {
        devs.iter().sum::<f64>() / devs.len() as f64
    }
}

fn main() {
    let spec = model("LLaMA-3-8B");
    let fp = spec.fp_ppl.unwrap();
    let samples = 48;
    let anchor = evaluate_weight_only(&spec, &microscopiq_baselines::Gptq::new(4, 128), samples)
        .expect("anchor")
        .mean_output_error();
    let map = PerplexityMap::calibrate(anchor);

    let mut table = Table::new(
        "Fig. 14: outlier group size sweep (MicroScopiQ W2, LLaMA-3-8B-like)",
        &["B_μ", "Error", "Proxy PPL", "EBW", "Outlier σ (within μB)"],
    );
    for bmu in [2usize, 4, 8, 16, 32, 64, 128] {
        let q = MicroScopiQ::new(QuantConfig::w2().micro_block(bmu).build().expect("valid"));
        let eval = evaluate_weight_only(&spec, &q, samples).expect("evaluation");
        table.row(vec![
            bmu.to_string(),
            f3(eval.mean_output_error()),
            f2(map.ppl(fp, eval.mean_output_error())),
            f2(eval.mean_ebw()),
            f3(outlier_deviation(&spec, bmu)),
        ]);
    }
    table.print();
    table.write_csv("fig14_group_size");
    println!("\npaper shape: PPL minimum at B_μ = 8; EBW grows with B_μ; σ grows with B_μ");
}
