//! Fig. 13 — A100 (W4A4 MicroScopiQ kernels) vs the MicroScopiQ
//! accelerator v1/v2 under iso-bandwidth (2 TB/s) and iso-compute
//! conditions: (a) normalized latency, (b) normalized energy.
//!
//! Token-generation (decode) regime: both sides are bandwidth-bound, so
//! the accelerator's wins come from avoiding the GPU's dequantization and
//! register-reordering overheads — the paper's §7.6 argument.

use microscopiq_accel::energy::{microscopiq_energy, EnergyConstants};
use microscopiq_accel::perf::{workload_latency, AccelConfig};
use microscopiq_accel::workload::{model_workload, Phase};
use microscopiq_bench::{f2, Table};
use microscopiq_fm::model;
use microscopiq_gpu::{workload_energy_mj, workload_time, GpuPath, GpuSpec, MsGpuParams};

fn main() {
    let k = EnergyConstants::default();
    let models = ["LLaMA-2-7B", "LLaMA-2-13B", "LLaMA-3-8B", "Phi-3-3.8B"];
    // Iso-bandwidth: both sides at 2 TB/s off-chip; iso-compute: the
    // accelerator is scaled to the A100's 55,296 multipliers (235×235-ish
    // array ≈ 8× the 64×64 reference; we scale rows/cols by √8 each... the
    // paper's comparison point). We model it as a 256×216 array.
    let gpu = GpuSpec::a100();
    let ms_params = MsGpuParams::default();
    let mk_cfg = |bb: u32| AccelConfig {
        rows: 256,
        cols: 216,
        recon_units: 8,
        bb,
        micro_block: 8,
        freq_ghz: 1.0,
        hbm_gbps: 2000.0,
        sram_gbps: 500.0,
    };

    let mut lat = Table::new(
        "Fig. 13(a): normalized latency vs A100-W4A4 (lower is better)",
        &[
            "Model",
            "A100 W4A4",
            "MS accel v1 (W4A4)",
            "MS accel v2 (WxA4)",
        ],
    );
    let mut en = Table::new(
        "Fig. 13(b): normalized energy vs A100-W4A4",
        &["Model", "A100 W4A4", "MS accel v1", "MS accel v2"],
    );
    let mut v1_speed = Vec::new();
    let mut v2_speed = Vec::new();
    for name in models {
        let spec = model(name);
        let wl = model_workload(&spec, Phase::Decode);
        let x = (1.0 - (1.0 - spec.outlier_profile.rate).powi(8)).min(0.5);

        let gpu_us = workload_time(&wl, GpuPath::MsOptim, &gpu, &ms_params);
        let gpu_mj = workload_energy_mj(&wl, GpuPath::MsOptim, &gpu, &ms_params);

        let cfg4 = mk_cfg(4);
        let cfg2 = mk_cfg(2);
        let l4 = workload_latency(&wl, &cfg4, 4.15, x);
        let l2 = workload_latency(&wl, &cfg2, 2.36, x);
        let v1_us = l4.total_cycles / (cfg4.freq_ghz * 1e9) * 1e6;
        let v2_us = (0.8 * l2.total_cycles + 0.2 * l4.total_cycles) / 1e9 * 1e6;
        let e4 = microscopiq_energy(&wl, &cfg4, &l4, 4.15, x, 4, &k).total_mj();
        let e2 = microscopiq_energy(&wl, &cfg2, &l2, 2.36, x, 4, &k).total_mj();
        let v2_mj = 0.8 * e2 + 0.2 * e4;

        lat.row(vec![
            name.to_string(),
            f2(1.0),
            f2(v1_us / gpu_us),
            f2(v2_us / gpu_us),
        ]);
        en.row(vec![
            name.to_string(),
            f2(1.0),
            f2(e4 / gpu_mj),
            f2(v2_mj / gpu_mj),
        ]);
        v1_speed.push(gpu_us / v1_us);
        v2_speed.push(gpu_us / v2_us);
    }
    lat.print();
    lat.write_csv("fig13a_latency");
    en.print();
    en.write_csv("fig13b_energy");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean speedup over A100 — v1: {:.2}x (paper 1.2x), v2: {:.2}x (paper 1.7x)",
        mean(&v1_speed),
        mean(&v2_speed)
    );
}
