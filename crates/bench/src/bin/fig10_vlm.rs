//! Fig. 10 — VLM weight-only quantization across in-context shot counts
//! (proxy): OpenFlamingo-9B on COCO/VQAv2, VILA-7B on VizWiz/TextVQA.
//!
//! Shots scale the attainable full-precision score (more in-context
//! examples → higher ceiling); quantization damage is the measured layer
//! error mapped through the calibrated accuracy decay.

use microscopiq_baselines::{Awq, Gptq, Olive};
use microscopiq_bench::methods::microscopiq;
use microscopiq_bench::{f2, Table};
use microscopiq_core::traits::WeightQuantizer;
use microscopiq_fm::metrics::AccuracyMap;
use microscopiq_fm::{evaluate_weight_only, model};

fn main() {
    let samples = 48;
    let tasks = [
        ("COCO CIDEr", "OpenFlamingo-9B", 79.0_f64),
        ("VQAv2", "OpenFlamingo-9B", 52.0),
        ("VizWiz", "VILA-7B", 58.0),
        ("TextVQA", "VILA-7B", 64.0),
    ];
    let shots = [0usize, 4, 8, 16, 32];
    // Anchor on OliVe-W4 (paper's Fig. 2(b) VILA degradation).
    let olive = Olive::new(4);
    let anchor_err = evaluate_weight_only(&model("VILA-7B"), &olive, samples)
        .expect("anchor")
        .mean_output_error();
    let map = AccuracyMap::calibrate(anchor_err, 62.3, 48.26, 0.1);

    let methods: Vec<(&str, Box<dyn WeightQuantizer>)> = vec![
        ("OliVe-W4", Box::new(Olive::new(4))),
        ("GPTQ-W4", Box::new(Gptq::new(4, 128))),
        ("AWQ-W4", Box::new(Awq::new(4, 128))),
        ("MicroScopiQ-W4", Box::new(microscopiq(4))),
        ("MicroScopiQ-W2", Box::new(microscopiq(2))),
    ];

    let mut table = Table::new(
        "Fig. 10: VLM multi-shot accuracy under weight-only quantization (proxy)",
        &[
            "Task", "Method", "0-shot", "4-shot", "8-shot", "16-shot", "32-shot",
        ],
    );
    for (task, model_name, base_fp) in tasks {
        let spec = model(model_name);
        // FP ceiling grows with shots, saturating (in-context scaling).
        let fp_at = |s: usize| base_fp * (0.80 + 0.20 * (1.0 - (-(s as f64) / 8.0).exp()));
        table.row(
            std::iter::once(format!("{task} FP16"))
                .chain(std::iter::once("—".to_string()))
                .chain(shots.iter().map(|&s| f2(fp_at(s))))
                .collect(),
        );
        for (name, q) in &methods {
            let err = evaluate_weight_only(&spec, q.as_ref(), samples)
                .expect("evaluation")
                .mean_output_error();
            table.row(
                std::iter::once(task.to_string())
                    .chain(std::iter::once(name.to_string()))
                    .chain(shots.iter().map(|&s| f2(map.accuracy(fp_at(s), err))))
                    .collect(),
            );
        }
    }
    table.print();
    table.write_csv("fig10_vlm");
}
