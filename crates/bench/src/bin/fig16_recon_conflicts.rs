//! Fig. 16(b) — ReCoN access-conflict percentage vs number of ReCoN units
//! on a 64×64 array, across outlier occupancies.

use microscopiq_accel::perf::recon_contention;
use microscopiq_bench::{pct, Table};

fn main() {
    let mut table = Table::new(
        "Fig. 16(b): % of ReCoN accesses that conflict (64×64 array)",
        &[
            "μB outlier occupancy",
            "1 unit",
            "2 units",
            "4 units",
            "8 units",
        ],
    );
    // Per-row request probability = occupancy / (cols/Bμ) = x/8 (perf.rs).
    for x in [0.02_f64, 0.05, 0.09, 0.135, 0.20] {
        let request_p = x / 8.0;
        let mut row = vec![format!("{:.1}%", x * 100.0)];
        for units in [1usize, 2, 4, 8] {
            let (c, _) = recon_contention(64, request_p, units);
            row.push(pct(c));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("fig16b_recon_conflicts");
    println!("\npaper shape: <3% at 1 unit for its workload occupancy, → 0% by 8 units");
}
