//! Method factories: the quantizer line-ups for each table's settings.

use microscopiq_baselines::{Atom, Awq, Gobo, Gptq, Olive, OmniQuantGs, Rtn, Sdq};
use microscopiq_core::traits::WeightQuantizer;
use microscopiq_core::{MicroScopiQ, QuantConfig};

/// A named quantizer with the α-migration strength its W/A evaluation uses.
pub struct Method {
    /// Display name (matches the paper's tables).
    pub name: String,
    /// The quantizer.
    pub quantizer: Box<dyn WeightQuantizer>,
    /// Migration strength for weight–activation settings (§7.2: 0.7 for
    /// MicroScopiQ, 0.5 for SmoothQuant, method defaults otherwise).
    pub alpha: f64,
}

impl Method {
    fn new(name: &str, q: Box<dyn WeightQuantizer>, alpha: f64) -> Self {
        Self {
            name: name.to_string(),
            quantizer: q,
            alpha,
        }
    }
}

/// MicroScopiQ at the given budget with paper-default blocks.
pub fn microscopiq(bb: u32) -> MicroScopiQ {
    MicroScopiQ::new(QuantConfig::builder(bb).build().expect("valid"))
}

/// Table 2 weight-only line-up at the given width (W4A16 / W2A16 rows).
pub fn weight_only_methods(bits: u32) -> Vec<Method> {
    let mut v = Vec::new();
    if bits == 4 {
        v.push(Method::new("OliVe", Box::new(Olive::new(4)), 0.0));
        v.push(Method::new("GOBO", Box::new(Gobo::new(4)), 0.0));
        v.push(Method::new("GPTQ", Box::new(Gptq::new(4, 128)), 0.0));
        v.push(Method::new("AWQ", Box::new(Awq::new(4, 128)), 0.0));
        v.push(Method::new(
            "OmniQuant",
            Box::new(OmniQuantGs::new(4, 128)),
            0.0,
        ));
        v.push(Method::new("MicroScopiQ", Box::new(microscopiq(4)), 0.0));
    } else {
        v.push(Method::new(
            "OmniQuant",
            Box::new(OmniQuantGs::new(2, 128)),
            0.0,
        ));
        v.push(Method::new("SDQ", Box::new(Sdq::new(2, 2, 8)), 0.0));
        v.push(Method::new("MicroScopiQ", Box::new(microscopiq(2)), 0.0));
    }
    v
}

/// Table 2 weight–activation line-up: returns `(methods, act_bits)`.
pub fn weight_activation_methods(weight_bits: u32) -> (Vec<Method>, u32) {
    if weight_bits == 4 {
        let v = vec![
            Method::new("OliVe", Box::new(Olive::new(4)), 0.0),
            Method::new("OmniQuant", Box::new(OmniQuantGs::new(4, 128)), 0.6),
            Method::new(
                "SmoothQuant",
                Box::new(Rtn::per_channel(4).named("SmoothQuant")),
                0.5,
            ),
            Method::new("Atom", Box::new(Atom::new(4, 8, 128)), 0.0),
            Method::new("MicroScopiQ", Box::new(microscopiq(4)), 0.7),
        ];
        (v, 4)
    } else {
        let v = vec![
            Method::new("OmniQuant", Box::new(OmniQuantGs::new(2, 128)), 0.6),
            Method::new("Atom", Box::new(Atom::new(2, 4, 128)), 0.0),
            Method::new("MicroScopiQ", Box::new(microscopiq(2)), 0.7),
        ];
        (v, 8)
    }
}
