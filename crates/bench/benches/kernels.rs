//! Criterion micro-benchmarks for the performance-critical kernels:
//! quantization solve, ReCoN routing, multi-precision PE, functional GEMM,
//! and packed (de)serialization.

use criterion::{criterion_group, criterion_main, Criterion};
use microscopiq_accel::array::{execute_gemm, QuantizedActs};
use microscopiq_accel::pe::{multiply, PeMode, WeightKind};
use microscopiq_accel::recon::{ColumnInput, ReCoN};
use microscopiq_core::config::{GroupAxis, QuantConfig};
use microscopiq_core::microblock::PermEntry;
use microscopiq_core::packed::PackedLayer;
use microscopiq_core::solver::solve;
use microscopiq_core::traits::LayerTensors;
use microscopiq_linalg::{Matrix, SeededRng};
use std::hint::black_box;

fn test_layer(d_row: usize, d_col: usize, seed: u64) -> LayerTensors {
    let mut rng = SeededRng::new(seed);
    let mut w = Matrix::from_fn(d_row, d_col, |_, _| rng.normal(0.0, 0.02));
    for _ in 0..(d_row * d_col / 50) {
        let r = rng.below(d_row);
        let c = rng.below(d_col);
        w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.4);
    }
    let x = Matrix::from_fn(d_col, d_col / 2, |_, _| rng.normal(0.0, 1.0));
    LayerTensors::new(w, x).unwrap()
}

fn bench_quantize(c: &mut Criterion) {
    let layer = test_layer(128, 256, 1);
    let cfg = QuantConfig::w2().build().unwrap();
    c.bench_function("microscopiq_solve_128x256_w2", |b| {
        b.iter(|| solve(black_box(&layer), black_box(&cfg)).unwrap())
    });
    let cfg4 = QuantConfig::w4().build().unwrap();
    c.bench_function("microscopiq_solve_128x256_w4", |b| {
        b.iter(|| solve(black_box(&layer), black_box(&cfg4)).unwrap())
    });
}

fn bench_recon(c: &mut Criterion) {
    let recon = ReCoN::new(64);
    let mut inputs = vec![ColumnInput::Psum(100); 64];
    inputs[3] = ColumnInput::Offload { res: 31, iacc: 12 };
    inputs[17] = ColumnInput::Offload { res: 0, iacc: 0 };
    inputs[40] = ColumnInput::Offload { res: -9, iacc: 4 };
    inputs[41] = ColumnInput::Offload { res: -3, iacc: 0 };
    let perm = [
        PermEntry {
            upper_loc: 3,
            lower_loc: 17,
        },
        PermEntry {
            upper_loc: 40,
            lower_loc: 41,
        },
    ];
    c.bench_function("recon_route_64wide_2merges", |b| {
        b.iter(|| recon.route(black_box(&inputs), black_box(&perm), &[7, -7], 2))
    });
}

fn bench_pe(c: &mut Criterion) {
    c.bench_function("pe_multiply_4b", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for w in 0..16u8 {
                for a in -64..64i32 {
                    if let microscopiq_accel::pe::MulResult::Single(v) = multiply(
                        black_box(w),
                        black_box(a),
                        PeMode::FourBit,
                        WeightKind::TwosComplement,
                    ) {
                        acc += v as i64;
                    }
                }
            }
            acc
        })
    });
}

fn bench_functional_gemm(c: &mut Criterion) {
    let layer = test_layer(64, 64, 3);
    let cfg = QuantConfig::w2()
        .macro_block(64)
        .row_block(64)
        .group_axis(GroupAxis::OutputChannel)
        .build()
        .unwrap();
    let packed = solve(&layer, &cfg).unwrap().packed.unwrap();
    let mut rng = SeededRng::new(4);
    let acts = QuantizedActs::from_f64(&Matrix::from_fn(64, 16, |_, _| rng.normal(0.0, 1.0)));
    c.bench_function("functional_gemm_64x64x16", |b| {
        b.iter(|| execute_gemm(black_box(&packed), black_box(&acts)))
    });
}

fn bench_serialization(c: &mut Criterion) {
    let layer = test_layer(64, 128, 5);
    let cfg = QuantConfig::w2().build().unwrap();
    let packed = solve(&layer, &cfg).unwrap().packed.unwrap();
    let bytes = packed.to_bytes();
    c.bench_function("packed_serialize_64x128", |b| {
        b.iter(|| black_box(&packed).to_bytes())
    });
    c.bench_function("packed_deserialize_64x128", |b| {
        b.iter(|| PackedLayer::from_bytes(black_box(&bytes)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantize, bench_recon, bench_pe, bench_functional_gemm, bench_serialization
}
criterion_main!(benches);
