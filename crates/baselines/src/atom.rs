//! Atom (Zhao et al., MLSys'24) — mixed-precision channel reordering: the
//! activation-hottest input channels keep a higher width (INT8 in the
//! paper), the rest are quantized at the base width with group scales.

use crate::util::{channel_activation_magnitude, rtn_group};
use microscopiq_core::error::QuantError;
use microscopiq_core::traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};
use microscopiq_linalg::Matrix;

/// Atom quantizer.
#[derive(Debug, Clone)]
pub struct Atom {
    bits: u32,
    keep_bits: u32,
    group: usize,
    /// Fraction of input channels kept at `keep_bits` (the paper keeps 128
    /// of 4096 ≈ 1/32).
    keep_fraction: f64,
}

impl Atom {
    /// Atom with base width `bits`, hot channels at `keep_bits`.
    pub fn new(bits: u32, keep_bits: u32, group: usize) -> Self {
        Self {
            bits,
            keep_bits,
            group,
            keep_fraction: 1.0 / 32.0,
        }
    }
}

impl WeightQuantizer for Atom {
    fn name(&self) -> &str {
        "Atom"
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let d_col = layer.d_col();
        let n_keep = ((d_col as f64 * self.keep_fraction).round() as usize).clamp(1, d_col);
        let mags = channel_activation_magnitude(&layer.calibration);
        let mut order: Vec<usize> = (0..d_col).collect();
        order.sort_by(|&a, &b| mags[b].partial_cmp(&mags[a]).expect("finite"));
        let keep: Vec<bool> = {
            let mut k = vec![false; d_col];
            for &c in order.iter().take(n_keep) {
                k[c] = true;
            }
            k
        };

        // Quantize the full tensor at both widths, then select per channel
        // (equivalent to Atom's reorder-then-quantize with fused kernels).
        let low = rtn_group(&layer.weights, self.bits, self.group, 1.0);
        let high = rtn_group(&layer.weights, self.keep_bits, self.group, 1.0);
        let mut deq = Matrix::zeros(layer.d_row(), d_col);
        for r in 0..layer.d_row() {
            for c in 0..d_col {
                deq[(r, c)] = if keep[c] { high[(r, c)] } else { low[(r, c)] };
            }
        }
        let ebw = (n_keep as f64 * self.keep_bits as f64
            + (d_col - n_keep) as f64 * self.bits as f64)
            / d_col as f64;
        Ok(QuantizedLayer {
            dequantized: deq,
            packed: None,
            stats: QuantStats {
                effective_bit_width: ebw,
                outlier_fraction: n_keep as f64 / d_col as f64,
                ..QuantStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::Rtn;
    use microscopiq_linalg::SeededRng;

    fn layer_with_hot_channels(seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let w = Matrix::from_fn(8, 64, |_, _| rng.normal(0.0, 0.02));
        let mut x = Matrix::from_fn(64, 32, |_, _| rng.normal(0.0, 0.3));
        for s in 0..32 {
            x[(9, s)] = rng.normal(0.0, 10.0);
            x[(33, s)] = rng.normal(0.0, 8.0);
        }
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn atom_beats_uniform_low_bits_on_output_error() {
        let l = layer_with_hot_channels(1);
        let a = Atom::new(4, 8, 16)
            .quantize_layer(&l)
            .unwrap()
            .output_error(&l);
        let r = Rtn::group(4, 16)
            .quantize_layer(&l)
            .unwrap()
            .output_error(&l);
        assert!(a < r, "Atom {a} vs RTN {r}");
    }

    #[test]
    fn ebw_between_base_and_keep() {
        let l = layer_with_hot_channels(2);
        let out = Atom::new(4, 8, 16).quantize_layer(&l).unwrap();
        let ebw = out.stats.effective_bit_width;
        assert!(ebw > 4.0 && ebw < 8.0, "ebw {ebw}");
    }

    #[test]
    fn hot_channels_are_kept_high_precision() {
        let l = layer_with_hot_channels(3);
        let a = Atom::new(2, 8, 16).quantize_layer(&l).unwrap();
        // Channel 9 is hottest: its weights must be finer-grained than a
        // 2-bit lattice (which has ≤ 3 magnitude levels per group).
        let distinct: std::collections::BTreeSet<u64> = (0..8)
            .map(|r| a.dequantized[(r, 9)].abs().to_bits())
            .collect();
        assert!(distinct.len() > 3, "channel 9 looks 2-bit: {distinct:?}");
    }
}
