//! OliVe (Guo et al., ISCA'23) — outlier-victim pair quantization, the
//! paper's principal group-B comparison.
//!
//! Behavioural reproduction of the published scheme: inliers and outliers
//! share one 4-bit budget; inliers use the "flint" (adaptive float-int)
//! format, outliers the "abfloat" (adaptive biased float) format whose
//! exponent bias anchors at the outlier threshold; and the value *adjacent*
//! to every outlier is sacrificed ("victim") as the format identifier.
//! The victim rule is the failure mode §3.2 dissects: when two outliers are
//! adjacent — common in modern FMs — one of them is destroyed.
//!
//! Simplifications vs the RTL paper (documented per DESIGN.md): encoding
//! tables are value-level rather than bit-level, and scales are per
//! macro-block rather than per tensor-core tile.

use microscopiq_core::error::QuantError;
use microscopiq_core::outlier::classify_outliers;
use microscopiq_core::traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};
use microscopiq_linalg::Matrix;

/// flint-4 magnitude levels: dense integers near zero, float-style spacing
/// further out (ANT's adaptive int/float hybrid).
const FLINT4_LEVELS: [f64; 8] = [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0];

/// abfloat-4 magnitude multipliers over the outlier threshold:
/// `(1 + m/2) · 2^e` for e ∈ 0..4, m ∈ 0..2.
const ABFLOAT4_LEVELS: [f64; 8] = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0];

fn nearest(levels: &[f64], target: f64) -> f64 {
    levels
        .iter()
        .cloned()
        .min_by(|a, b| {
            (a - target)
                .abs()
                .partial_cmp(&(b - target).abs())
                .expect("finite")
        })
        .expect("non-empty table")
}

/// OliVe quantizer.
#[derive(Debug, Clone)]
pub struct Olive {
    /// Shared element width (the published design is 4-bit; 2-bit collapses
    /// the tables to their first four levels).
    bits: u32,
    /// Scale-sharing block along the input dimension.
    block: usize,
    /// Outlier threshold in σ.
    sigma: f64,
}

impl Olive {
    /// OliVe at the given width with block-128 scales.
    pub fn new(bits: u32) -> Self {
        Self {
            bits,
            block: 128,
            sigma: 3.0,
        }
    }

    /// Overrides the scale block size.
    pub fn block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }

    fn levels(&self) -> (Vec<f64>, Vec<f64>) {
        let n = 1usize << (self.bits - 1);
        (
            FLINT4_LEVELS[..n.min(8)].to_vec(),
            ABFLOAT4_LEVELS[..n.min(8)].to_vec(),
        )
    }
}

impl WeightQuantizer for Olive {
    fn name(&self) -> &str {
        "OliVe"
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let (flint, abfloat) = self.levels();
        let mut deq = Matrix::zeros(layer.d_row(), layer.d_col());
        let mut outliers = 0usize;
        let mut victims = 0usize;
        let mut destroyed_outliers = 0usize;

        for r in 0..layer.d_row() {
            let row = layer.weights.row(r).to_vec();
            for (b, chunk) in row.chunks(self.block).enumerate() {
                let base = b * self.block;
                let flagged = classify_outliers(chunk, self.sigma);
                // Victim selection: the slot after each outlier (before it
                // at the block edge) is sacrificed as the identifier.
                let mut victim = vec![false; chunk.len()];
                for (i, &is_outlier) in flagged.iter().enumerate() {
                    if is_outlier {
                        let v = if i + 1 < chunk.len() { i + 1 } else { i - 1 };
                        if !victim[v] {
                            victim[v] = true;
                        }
                    }
                }
                let threshold = {
                    // Outlier scale anchors at the largest inlier magnitude.
                    let inlier_max = chunk
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !flagged[*i])
                        .fold(0.0_f64, |m, (_, v)| m.max(v.abs()));
                    if inlier_max > 0.0 {
                        inlier_max
                    } else {
                        1.0
                    }
                };
                let inlier_scale = threshold / flint.last().copied().unwrap_or(1.0);
                for (i, &w) in chunk.iter().enumerate() {
                    let c = base + i;
                    if victim[i] {
                        // Victim slot: value destroyed. A flagged victim is
                        // a destroyed outlier — the §3.2 failure.
                        deq[(r, c)] = 0.0;
                        victims += 1;
                        if flagged[i] {
                            destroyed_outliers += 1;
                        }
                    } else if flagged[i] {
                        outliers += 1;
                        let mult = nearest(&abfloat, w.abs() / threshold);
                        deq[(r, c)] = w.signum() * mult * threshold;
                    } else {
                        let mag = nearest(&flint, w.abs() / inlier_scale);
                        deq[(r, c)] = w.signum() * mag * inlier_scale;
                    }
                }
            }
        }

        let total = (layer.d_row() * layer.d_col()) as f64;
        Ok(QuantizedLayer {
            dequantized: deq,
            packed: None,
            stats: QuantStats {
                effective_bit_width: self.bits as f64,
                outlier_fraction: outliers as f64 / total,
                pruned_fraction: victims as f64 / total,
                demoted_outlier_fraction: destroyed_outliers as f64
                    / (outliers + destroyed_outliers).max(1) as f64,
                ..QuantStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_linalg::SeededRng;

    fn layer_with_outliers(adjacent: bool, seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(4, 64, |_, _| rng.normal(0.0, 0.02));
        if adjacent {
            w[(0, 10)] = 0.3;
            w[(0, 11)] = 0.28; // adjacent pair — OliVe's nemesis
        } else {
            w[(0, 10)] = 0.3;
            w[(0, 40)] = 0.28;
        }
        let x = Matrix::from_fn(64, 32, |_, _| rng.normal(0.0, 1.0));
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn isolated_outliers_are_preserved() {
        let l = layer_with_outliers(false, 1);
        let out = Olive::new(4).block(64).quantize_layer(&l).unwrap();
        assert!(
            (out.dequantized[(0, 10)] - 0.3).abs() / 0.3 < 0.35,
            "outlier {} vs 0.3",
            out.dequantized[(0, 10)]
        );
    }

    #[test]
    fn victims_are_destroyed() {
        let l = layer_with_outliers(false, 2);
        let out = Olive::new(4).block(64).quantize_layer(&l).unwrap();
        assert_eq!(out.dequantized[(0, 11)], 0.0, "victim next to the outlier");
        assert!(out.stats.pruned_fraction > 0.0);
    }

    #[test]
    fn adjacent_outliers_destroy_one_of_the_pair() {
        // §3.2: the second adjacent outlier becomes the victim.
        let l = layer_with_outliers(true, 3);
        let out = Olive::new(4).block(64).quantize_layer(&l).unwrap();
        let a = out.dequantized[(0, 10)];
        let b = out.dequantized[(0, 11)];
        assert!(
            a == 0.0 || b == 0.0,
            "one of the adjacent pair must be zeroed: {a}, {b}"
        );
        assert!(out.stats.demoted_outlier_fraction > 0.0);
    }

    #[test]
    fn adjacency_costs_accuracy() {
        let iso = layer_with_outliers(false, 4);
        let adj = layer_with_outliers(true, 4);
        let q = Olive::new(4).block(64);
        let e_iso = q.quantize_layer(&iso).unwrap().weight_error(&iso);
        let e_adj = q.quantize_layer(&adj).unwrap().weight_error(&adj);
        assert!(
            e_adj > e_iso * 1.3,
            "adjacent-outlier error {e_adj} should exceed isolated {e_iso}"
        );
    }

    #[test]
    fn abfloat_covers_large_dynamic_range() {
        // A 12× threshold outlier is still representable.
        let mut rng = SeededRng::new(5);
        let mut w = Matrix::from_fn(1, 64, |_, _| rng.normal(0.0, 0.02));
        w[(0, 5)] = 0.7;
        let x = Matrix::from_fn(64, 16, |_, _| rng.normal(0.0, 1.0));
        let l = LayerTensors::new(w, x).unwrap();
        let out = Olive::new(4).block(64).quantize_layer(&l).unwrap();
        assert!(
            (out.dequantized[(0, 5)] - 0.7).abs() / 0.7 < 0.4,
            "large outlier {}",
            out.dequantized[(0, 5)]
        );
    }
}
