//! GOBO (Zadeh et al., MICRO'20) — the paper's principal group-A
//! comparison: outliers kept at full precision in side-band sparse storage,
//! inliers clustered to 2^b centroids (1-D k-means). High accuracy, high
//! effective bit width, unaligned memory.

use microscopiq_core::error::QuantError;
use microscopiq_core::outlier::classify_outliers;
use microscopiq_core::traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};
use microscopiq_linalg::Matrix;

/// GOBO quantizer.
#[derive(Debug, Clone)]
pub struct Gobo {
    bits: u32,
    sigma: f64,
    lloyd_iters: usize,
}

impl Gobo {
    /// GOBO with 2^bits inlier centroids.
    pub fn new(bits: u32) -> Self {
        Self {
            bits,
            sigma: 3.0,
            lloyd_iters: 12,
        }
    }
}

/// One-dimensional k-means with quantile initialization.
fn kmeans_1d(values: &[f64], k: usize, iters: usize) -> Vec<f64> {
    assert!(k >= 1, "need at least one centroid");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if sorted.is_empty() {
        return vec![0.0; k];
    }
    // Quantile init.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let pos = (i as f64 + 0.5) / k as f64 * (sorted.len() - 1) as f64;
            sorted[pos.round() as usize]
        })
        .collect();
    for _ in 0..iters {
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for &v in &sorted {
            let c = nearest_index(&centroids, v);
            sums[c] += v;
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
    }
    centroids
}

fn nearest_index(centroids: &[f64], v: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &c) in centroids.iter().enumerate() {
        let d = (v - c).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

impl WeightQuantizer for Gobo {
    fn name(&self) -> &str {
        "GOBO"
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let w = &layer.weights;
        let all: Vec<f64> = w.as_slice().to_vec();
        let flagged = classify_outliers(&all, self.sigma);
        let inliers: Vec<f64> = all
            .iter()
            .zip(flagged.iter())
            .filter(|(_, &f)| !f)
            .map(|(&v, _)| v)
            .collect();
        // Subsample for k-means speed (GOBO fits on a sample too).
        let sample: Vec<f64> = if inliers.len() > 8192 {
            let stride = inliers.len() / 8192;
            inliers.iter().step_by(stride.max(1)).cloned().collect()
        } else {
            inliers.clone()
        };
        let centroids = kmeans_1d(&sample, 1 << self.bits, self.lloyd_iters);

        let mut deq = Matrix::zeros(w.rows(), w.cols());
        let mut n_outliers = 0usize;
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                let idx = r * w.cols() + c;
                if flagged[idx] {
                    // Outliers stored at full precision, side-band.
                    deq[(r, c)] = w[(r, c)];
                    n_outliers += 1;
                } else {
                    deq[(r, c)] = centroids[nearest_index(&centroids, w[(r, c)])];
                }
            }
        }
        let total = (w.rows() * w.cols()) as f64;
        let frac = n_outliers as f64 / total;
        // Side-band cost per outlier: 32-bit value + 16-bit position, the
        // sparse encoding of Fig. 3(b).
        let ebw = self.bits as f64 + frac * (32.0 + 16.0);
        Ok(QuantizedLayer {
            dequantized: deq,
            packed: None,
            stats: QuantStats {
                effective_bit_width: ebw,
                outlier_fraction: frac,
                ..QuantStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::Rtn;
    use microscopiq_linalg::SeededRng;

    fn layer(seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(8, 64, |_, _| rng.normal(0.0, 0.02));
        for i in 0..6 {
            w[(i, i * 9 + 1)] = rng.sign() * rng.uniform_range(0.2, 0.5);
        }
        let x = Matrix::from_fn(64, 32, |_, _| rng.normal(0.0, 1.0));
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn outliers_are_exact() {
        let l = layer(1);
        let out = Gobo::new(3).quantize_layer(&l).unwrap();
        assert_eq!(out.dequantized[(1, 10)], l.weights[(1, 10)]);
        assert!(out.stats.outlier_fraction > 0.0);
    }

    #[test]
    fn gobo_accuracy_beats_same_width_rtn() {
        let l = layer(2);
        let g = Gobo::new(3).quantize_layer(&l).unwrap().weight_error(&l);
        let r = Rtn::per_tensor(3)
            .quantize_layer(&l)
            .unwrap()
            .weight_error(&l);
        assert!(g < r, "GOBO {g} vs RTN {r}");
    }

    #[test]
    fn ebw_reflects_sideband_cost() {
        let l = layer(3);
        let out = Gobo::new(3).quantize_layer(&l).unwrap();
        assert!(
            out.stats.effective_bit_width > 3.0,
            "EBW {} must exceed the base bits",
            out.stats.effective_bit_width
        );
    }

    #[test]
    fn kmeans_centroids_are_ordered_reasonably() {
        let vals: Vec<f64> = (0..1000)
            .map(|i| ((i % 97) as f64 - 48.0) / 100.0)
            .collect();
        let cents = kmeans_1d(&vals, 8, 10);
        assert_eq!(cents.len(), 8);
        // Centroids span the sample range.
        let min = cents.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = cents.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < -0.3 && max > 0.3);
    }

    #[test]
    fn centroid_count_matches_bits() {
        let l = layer(4);
        // 2-bit GOBO has only 4 centroids → visibly coarser than 4-bit.
        let e2 = Gobo::new(2).quantize_layer(&l).unwrap().weight_error(&l);
        let e4 = Gobo::new(4).quantize_layer(&l).unwrap().weight_error(&l);
        assert!(e4 < e2);
    }
}
