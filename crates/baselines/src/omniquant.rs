//! OmniQuant-GS — a grid-search approximation of OmniQuant (Shao et al.).
//!
//! OmniQuant learns two things by gradient descent: per-group weight
//! clipping (LWC) and an equivalent transformation migrating activation
//! difficulty to weights (LET). Both are low-dimensional, so grid search
//! finds near-identical optima at PTQ scale (DESIGN.md §2): LWC becomes a
//! per-group clip-ratio search minimizing group reconstruction MSE; LET is
//! the α-migration applied by the evaluation driver.

use crate::util::rtn_slice;
use microscopiq_core::error::QuantError;
use microscopiq_core::traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};
use microscopiq_linalg::Matrix;

/// OmniQuant-GS quantizer.
#[derive(Debug, Clone)]
pub struct OmniQuantGs {
    bits: u32,
    group: usize,
    clip_grid: Vec<f64>,
}

impl OmniQuantGs {
    /// OmniQuant-GS at the given width and group size.
    pub fn new(bits: u32, group: usize) -> Self {
        Self {
            bits,
            group,
            clip_grid: vec![0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.0],
        }
    }
}

impl WeightQuantizer for OmniQuantGs {
    fn name(&self) -> &str {
        "OmniQuant"
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let mut deq = Matrix::zeros(layer.d_row(), layer.d_col());
        for r in 0..layer.d_row() {
            let row = layer.weights.row(r);
            for (g, chunk) in row.chunks(self.group).enumerate() {
                // LWC: pick the clip ratio minimizing this group's MSE.
                let mut best: Option<(f64, Vec<f64>)> = None;
                for &clip in &self.clip_grid {
                    let cand = rtn_slice(chunk, self.bits, clip);
                    let mse: f64 = chunk
                        .iter()
                        .zip(cand.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    if best.as_ref().is_none_or(|(m, _)| mse < *m) {
                        best = Some((mse, cand));
                    }
                }
                let (_, values) = best.expect("non-empty grid");
                for (i, v) in values.into_iter().enumerate() {
                    deq[(r, g * self.group + i)] = v;
                }
            }
        }
        Ok(QuantizedLayer {
            dequantized: deq,
            packed: None,
            stats: QuantStats {
                effective_bit_width: self.bits as f64,
                ..QuantStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::Rtn;
    use microscopiq_linalg::SeededRng;

    fn layer(seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(8, 64, |_, _| rng.normal(0.0, 0.02));
        for i in 0..4 {
            w[(i, i * 13 + 2)] = rng.sign() * 0.3;
        }
        let x = Matrix::from_fn(64, 32, |_, _| rng.normal(0.0, 1.0));
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn clipping_never_loses_to_plain_rtn_on_mse() {
        let l = layer(1);
        let o = OmniQuantGs::new(2, 16)
            .quantize_layer(&l)
            .unwrap()
            .weight_error(&l);
        let r = Rtn::group(2, 16)
            .quantize_layer(&l)
            .unwrap()
            .weight_error(&l);
        assert!(o <= r + 1e-12, "OmniQuant-GS {o} vs RTN {r}");
    }

    #[test]
    fn clipping_helps_at_two_bits_with_outliers() {
        // At 2 bits an unclipped outlier collapses the whole group; LWC
        // must strictly improve.
        let l = layer(2);
        let o = OmniQuantGs::new(2, 32)
            .quantize_layer(&l)
            .unwrap()
            .weight_error(&l);
        let r = Rtn::group(2, 32)
            .quantize_layer(&l)
            .unwrap()
            .weight_error(&l);
        assert!(o < r, "OmniQuant-GS {o} must strictly beat RTN {r}");
    }

    #[test]
    fn deterministic() {
        let l = layer(3);
        let q = OmniQuantGs::new(4, 16);
        assert_eq!(
            q.quantize_layer(&l).unwrap().dequantized,
            q.quantize_layer(&l).unwrap().dequantized
        );
    }
}
