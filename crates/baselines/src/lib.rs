//! Baseline quantization methods the paper compares against (Tables 2–4,
//! Fig. 2, Fig. 10): each implements
//! [`microscopiq_core::traits::WeightQuantizer`].
//!
//! | Module | Method | Paper group |
//! |---|---|---|
//! | [`rtn`] | RTN (tensor/channel/group), SmoothQuant & QMamba stand-ins | — |
//! | [`gptq`] | GPTQ — Hessian-compensated group quantization | — |
//! | [`awq`] | AWQ — activation-aware channel scaling | B |
//! | [`olive`] | OliVe — outlier-victim pair (flint/abfloat) | B |
//! | [`gobo`] | GOBO — FP outliers side-band + centroid inliers | A |
//! | [`omniquant`] | OmniQuant-GS — grid-searched LWC (learned → searched) | — |
//! | [`atom`] | Atom — hot channels at higher width | — |
//! | [`sdq`] | SDQ — rigid N:M sparse decomposition | A |
//! | [`hawq`] | HAWQ-like — Hessian-trace mixed precision (CNN rows) | — |
//!
//! Faithfulness notes and deliberate simplifications are documented in
//! each module header (per DESIGN.md §2).

pub mod atom;
pub mod awq;
pub mod gobo;
pub mod gptq;
pub mod hawq;
pub mod olive;
pub mod omniquant;
pub mod rtn;
pub mod sdq;
pub mod util;

pub use atom::Atom;
pub use awq::Awq;
pub use gobo::Gobo;
pub use gptq::Gptq;
pub use hawq::HawqLike;
pub use olive::Olive;
pub use omniquant::OmniQuantGs;
pub use rtn::{Rtn, RtnGranularity};
pub use sdq::Sdq;
