//! Shared quantization primitives for the baseline methods: plain
//! round-to-nearest with float (non-power-of-two) scales at per-tensor,
//! per-channel, and per-group granularity.

use microscopiq_linalg::Matrix;

/// Symmetric RTN of a slice with a float scale derived from the slice
/// maximum (optionally clipped). Returns dequantized values.
pub fn rtn_slice(values: &[f64], bits: u32, clip_ratio: f64) -> Vec<f64> {
    let qmax = ((1i64 << (bits - 1)) - 1) as f64;
    let max_abs = values.iter().fold(0.0_f64, |m, v| m.max(v.abs())) * clip_ratio;
    if max_abs == 0.0 {
        return vec![0.0; values.len()];
    }
    let scale = max_abs / qmax;
    values
        .iter()
        .map(|&v| (v / scale).round().clamp(-qmax, qmax) * scale)
        .collect()
}

/// Per-group RTN along the input (column) dimension of each row.
///
/// # Panics
///
/// Panics if `group` is zero.
pub fn rtn_group(weights: &Matrix, bits: u32, group: usize, clip_ratio: f64) -> Matrix {
    assert!(group > 0, "group size must be positive");
    let mut out = Matrix::zeros(weights.rows(), weights.cols());
    for r in 0..weights.rows() {
        let row = weights.row(r);
        for (g, chunk) in row.chunks(group).enumerate() {
            for (i, v) in rtn_slice(chunk, bits, clip_ratio).into_iter().enumerate() {
                out[(r, g * group + i)] = v;
            }
        }
    }
    out
}

/// Per-tensor RTN (one scale for the whole matrix).
pub fn rtn_per_tensor(weights: &Matrix, bits: u32) -> Matrix {
    let qmax = ((1i64 << (bits - 1)) - 1) as f64;
    let max_abs = weights.max_abs();
    if max_abs == 0.0 {
        return Matrix::zeros(weights.rows(), weights.cols());
    }
    let scale = max_abs / qmax;
    let mut out = weights.clone();
    for v in out.as_mut_slice() {
        *v = (*v / scale).round().clamp(-qmax, qmax) * scale;
    }
    out
}

/// Per-output-channel RTN (one scale per row).
pub fn rtn_per_channel(weights: &Matrix, bits: u32) -> Matrix {
    let mut out = Matrix::zeros(weights.rows(), weights.cols());
    for r in 0..weights.rows() {
        for (c, v) in rtn_slice(weights.row(r), bits, 1.0).into_iter().enumerate() {
            out[(r, c)] = v;
        }
    }
    out
}

/// Mean per-channel absolute activation magnitude (`d_col` entries) from a
/// `d_col × n_samples` calibration matrix.
pub fn channel_activation_magnitude(calibration: &Matrix) -> Vec<f64> {
    (0..calibration.rows())
        .map(|c| {
            (0..calibration.cols())
                .map(|s| calibration[(c, s)].abs())
                .sum::<f64>()
                / calibration.cols() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtn_slice_error_within_half_step() {
        let vals: Vec<f64> = (0..32).map(|i| (i as f64 - 16.0) * 0.01).collect();
        let deq = rtn_slice(&vals, 4, 1.0);
        let max_abs = vals.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let scale = max_abs / 7.0;
        for (v, d) in vals.iter().zip(deq.iter()) {
            assert!((v - d).abs() <= scale / 2.0 + 1e-12);
        }
    }

    #[test]
    fn per_tensor_is_coarser_than_per_group() {
        // A matrix with one large row: per-tensor scale wastes range on the
        // small rows.
        let mut w = Matrix::from_fn(4, 32, |_, c| ((c as f64) * 0.7).sin() * 0.01);
        for c in 0..32 {
            w[(3, c)] *= 50.0;
        }
        let e_tensor = w.frobenius_distance(&rtn_per_tensor(&w, 4));
        let e_group = w.frobenius_distance(&rtn_group(&w, 4, 16, 1.0));
        assert!(e_group < e_tensor);
    }

    #[test]
    fn clipping_trades_clip_error_for_resolution() {
        // With one far outlier, clipping the scale hard enough to bring the
        // lattice step below the body magnitude improves body accuracy.
        let mut vals = vec![0.01; 63];
        vals[10] = -0.015;
        vals.push(1.0);
        let deq_noclip = rtn_slice(&vals, 4, 1.0);
        let deq_clip = rtn_slice(&vals, 4, 0.02);
        let body_err = |deq: &[f64]| {
            vals[..63]
                .iter()
                .zip(deq[..63].iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        };
        assert!(body_err(&deq_clip) < body_err(&deq_noclip));
    }

    #[test]
    fn zero_input_stays_zero() {
        assert!(rtn_slice(&[0.0; 8], 4, 1.0).iter().all(|&v| v == 0.0));
        let z = Matrix::zeros(2, 8);
        assert_eq!(rtn_per_tensor(&z, 4), z);
    }

    #[test]
    fn channel_magnitude_ranks_hot_channels() {
        let mut x = Matrix::from_fn(8, 16, |_, _| 0.1);
        for s in 0..16 {
            x[(3, s)] = 5.0;
        }
        let mags = channel_activation_magnitude(&x);
        assert!(mags[3] > mags[0] * 10.0);
    }
}
