//! HAWQ-like mixed-precision baseline for the CNN rows of Table 4.
//!
//! HAWQ assigns per-layer/per-channel widths by Hessian sensitivity. This
//! reproduction scores output channels by `‖w_c‖² · E‖x‖²` (a standard
//! Hessian-trace surrogate) and gives the most sensitive half the higher
//! width — enough fidelity for its single reference row (DESIGN.md §2).

use crate::util::rtn_slice;
use microscopiq_core::error::QuantError;
use microscopiq_core::traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};
use microscopiq_linalg::Matrix;

/// HAWQ-like quantizer.
#[derive(Debug, Clone)]
pub struct HawqLike {
    low_bits: u32,
    high_bits: u32,
    high_fraction: f64,
}

impl HawqLike {
    /// Mixed precision with the top `high_fraction` sensitive channels at
    /// `high_bits`, the rest at `low_bits`.
    pub fn new(low_bits: u32, high_bits: u32, high_fraction: f64) -> Self {
        Self {
            low_bits,
            high_bits,
            high_fraction,
        }
    }
}

impl WeightQuantizer for HawqLike {
    fn name(&self) -> &str {
        "HAWQ"
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let act_energy: f64 = layer
            .calibration
            .as_slice()
            .iter()
            .map(|v| v * v)
            .sum::<f64>()
            / layer.calibration.cols() as f64;
        let sensitivity: Vec<f64> = (0..layer.d_row())
            .map(|r| layer.weights.row(r).iter().map(|w| w * w).sum::<f64>() * act_energy)
            .collect();
        let mut order: Vec<usize> = (0..layer.d_row()).collect();
        order.sort_by(|&a, &b| sensitivity[b].partial_cmp(&sensitivity[a]).expect("finite"));
        let n_high =
            ((layer.d_row() as f64 * self.high_fraction).round() as usize).clamp(0, layer.d_row());
        let mut bits = vec![self.low_bits; layer.d_row()];
        for &r in order.iter().take(n_high) {
            bits[r] = self.high_bits;
        }

        let mut deq = Matrix::zeros(layer.d_row(), layer.d_col());
        for r in 0..layer.d_row() {
            for (c, v) in rtn_slice(layer.weights.row(r), bits[r], 1.0)
                .into_iter()
                .enumerate()
            {
                deq[(r, c)] = v;
            }
        }
        let ebw = bits.iter().map(|&b| b as f64).sum::<f64>() / bits.len() as f64;
        Ok(QuantizedLayer {
            dequantized: deq,
            packed: None,
            stats: QuantStats {
                effective_bit_width: ebw,
                ..QuantStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::Rtn;
    use microscopiq_linalg::SeededRng;

    fn layer(seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let w = Matrix::from_fn(16, 32, |r, _| {
            rng.normal(0.0, if r < 4 { 0.08 } else { 0.02 })
        });
        let x = Matrix::from_fn(32, 24, |_, _| rng.normal(0.0, 1.0));
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn mixed_precision_beats_uniform_low() {
        let l = layer(1);
        let h = HawqLike::new(2, 4, 0.5)
            .quantize_layer(&l)
            .unwrap()
            .weight_error(&l);
        let r = Rtn::per_channel(2)
            .quantize_layer(&l)
            .unwrap()
            .weight_error(&l);
        assert!(h < r, "HAWQ {h} vs uniform 2-bit {r}");
    }

    #[test]
    fn ebw_is_the_width_mix() {
        let l = layer(2);
        let out = HawqLike::new(2, 4, 0.5).quantize_layer(&l).unwrap();
        assert!((out.stats.effective_bit_width - 3.0).abs() < 1e-9);
    }

    #[test]
    fn sensitive_channels_get_high_bits() {
        // Rows 0..4 have 4× the weight energy; they must be among the
        // high-precision half, hence reconstructed more finely.
        let l = layer(3);
        let out = HawqLike::new(2, 4, 0.25).quantize_layer(&l).unwrap();
        let row_err = |r: usize| {
            l.weights
                .row(r)
                .iter()
                .zip(out.dequantized.row(r).iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / l.weights.row(r).iter().map(|v| v.abs()).sum::<f64>()
        };
        assert!(
            row_err(0) < row_err(10),
            "{} vs {}",
            row_err(0),
            row_err(10)
        );
    }
}
