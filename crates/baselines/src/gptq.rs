//! GPTQ (Frantar et al.) — Hessian-compensated group quantization with
//! float scales and no special outlier handling. The reference point for
//! error-compensation quality in Table 2.

use microscopiq_core::error::QuantError;
use microscopiq_core::hessian::HessianState;
use microscopiq_core::traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};
use microscopiq_linalg::Matrix;

/// GPTQ quantizer.
#[derive(Debug, Clone)]
pub struct Gptq {
    bits: u32,
    group: usize,
    block: usize,
    percdamp: f64,
}

impl Gptq {
    /// GPTQ at the given width with group-`group` float scales (the paper's
    /// standard configuration is 4-bit, group 128, block 128).
    pub fn new(bits: u32, group: usize) -> Self {
        Self {
            bits,
            group,
            block: 128,
            percdamp: 0.01,
        }
    }

    /// Overrides the compensation block size.
    pub fn block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }

    /// Overrides the Hessian dampening fraction. Small, well-conditioned
    /// calibration sets (e.g. TinyFM traces) need far heavier damping than
    /// GPTQ's LLM default of 0.01 to keep low-bit compensation stable.
    pub fn percdamp(mut self, percdamp: f64) -> Self {
        self.percdamp = percdamp;
        self
    }
}

impl WeightQuantizer for Gptq {
    fn name(&self) -> &str {
        "GPTQ"
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let d_row = layer.d_row();
        let d_col = layer.d_col();
        let hessian = HessianState::from_calibration(&layer.calibration, self.percdamp)?;
        let qmax = ((1i64 << (self.bits - 1)) - 1) as f64;

        let mut work = layer.weights.clone();
        let mut deq = Matrix::zeros(d_row, d_col);
        // Per-row scale of the group currently being processed.
        let mut scales = vec![0.0_f64; d_row];

        let mut block_start = 0;
        while block_start < d_col {
            let block_end = (block_start + self.block).min(d_col);
            let mut err_block = Matrix::zeros(d_row, block_end - block_start);
            for j in block_start..block_end {
                if j % self.group == 0 || j == block_start {
                    // Refresh group scales from the current (compensated)
                    // weights, like GPTQ's dynamic group quantization.
                    let g_end = (j - (j % self.group) + self.group).min(d_col);
                    for (r, s) in scales.iter_mut().enumerate() {
                        let max_abs = work.row(r)[j..g_end]
                            .iter()
                            .fold(0.0_f64, |m, v| m.max(v.abs()));
                        *s = if max_abs == 0.0 { 0.0 } else { max_abs / qmax };
                    }
                }
                let urow = hessian.update_row(j, block_end);
                for r in 0..d_row {
                    let w = work[(r, j)];
                    let dq = if scales[r] == 0.0 {
                        0.0
                    } else {
                        (w / scales[r]).round().clamp(-qmax, qmax) * scales[r]
                    };
                    deq[(r, j)] = dq;
                    let e = (w - dq) / hessian.diag(j);
                    err_block[(r, j - block_start)] = e;
                    let row = work.row_mut(r);
                    for (k, &u) in urow.iter().enumerate() {
                        row[j + 1 + k] -= e * u;
                    }
                }
            }
            if block_end < d_col {
                for r in 0..d_row {
                    for k in block_end..d_col {
                        let mut acc = 0.0;
                        for jj in 0..(block_end - block_start) {
                            let e = err_block[(r, jj)];
                            if e != 0.0 {
                                acc += e * hessian.coupling(block_start + jj, k);
                            }
                        }
                        work[(r, k)] -= acc;
                    }
                }
            }
            block_start = block_end;
        }

        Ok(QuantizedLayer {
            dequantized: deq,
            packed: None,
            stats: QuantStats {
                effective_bit_width: self.bits as f64,
                ..QuantStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::Rtn;
    use microscopiq_linalg::{Matrix, SeededRng};

    fn layer(seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let w = Matrix::from_fn(8, 64, |_, _| rng.normal(0.0, 0.02));
        let x = Matrix::from_fn(64, 96, |_, _| rng.normal(0.0, 1.0));
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn gptq_beats_rtn_on_output_error() {
        let l = layer(1);
        let g = Gptq::new(4, 16).block(16);
        let r = Rtn::group(4, 16);
        let eg = g.quantize_layer(&l).unwrap().output_error(&l);
        let er = r.quantize_layer(&l).unwrap().output_error(&l);
        assert!(eg < er, "GPTQ {eg} must beat RTN {er}");
    }

    #[test]
    fn gptq_is_deterministic() {
        let l = layer(2);
        let g = Gptq::new(4, 16).block(16);
        let a = g.quantize_layer(&l).unwrap();
        let b = g.quantize_layer(&l).unwrap();
        assert_eq!(a.dequantized, b.dequantized);
    }

    #[test]
    fn more_bits_less_error() {
        let l = layer(3);
        let e2 = Gptq::new(2, 16)
            .block(16)
            .quantize_layer(&l)
            .unwrap()
            .output_error(&l);
        let e4 = Gptq::new(4, 16)
            .block(16)
            .quantize_layer(&l)
            .unwrap()
            .output_error(&l);
        assert!(e4 < e2);
    }

    #[test]
    fn name_is_gptq() {
        assert_eq!(Gptq::new(4, 128).name(), "GPTQ");
    }
}
