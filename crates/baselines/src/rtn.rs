//! Round-to-nearest baselines: plain group RTN, per-channel RTN
//! (SmoothQuant's weight path), and per-tensor RTN (the "INT-b scalar
//! quantization" row of Table 7 and the QMamba-like SSM baseline).

use crate::util::{rtn_group, rtn_per_channel, rtn_per_tensor};
use microscopiq_core::error::QuantError;
use microscopiq_core::traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};

/// Scale granularity for [`Rtn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtnGranularity {
    /// One scale for the entire tensor.
    PerTensor,
    /// One scale per output channel.
    PerChannel,
    /// One scale per `usize` contiguous input elements.
    Group(usize),
}

/// Round-to-nearest quantizer with no calibration awareness.
#[derive(Debug, Clone)]
pub struct Rtn {
    name: String,
    bits: u32,
    granularity: RtnGranularity,
}

impl Rtn {
    /// Group-`g` RTN at the given width.
    pub fn group(bits: u32, group: usize) -> Self {
        Self {
            name: format!("RTN-g{group}"),
            bits,
            granularity: RtnGranularity::Group(group),
        }
    }

    /// Per-output-channel RTN (SmoothQuant's weight quantizer).
    pub fn per_channel(bits: u32) -> Self {
        Self {
            name: "RTN-channel".to_string(),
            bits,
            granularity: RtnGranularity::PerChannel,
        }
    }

    /// Per-tensor RTN.
    pub fn per_tensor(bits: u32) -> Self {
        Self {
            name: "RTN-tensor".to_string(),
            bits,
            granularity: RtnGranularity::PerTensor,
        }
    }

    /// Overrides the display name (used when RTN stands in for a named
    /// method, e.g. "SmoothQuant" or "QMamba-like").
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }
}

impl WeightQuantizer for Rtn {
    fn name(&self) -> &str {
        &self.name
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let dequantized = match self.granularity {
            RtnGranularity::PerTensor => rtn_per_tensor(&layer.weights, self.bits),
            RtnGranularity::PerChannel => rtn_per_channel(&layer.weights, self.bits),
            RtnGranularity::Group(g) => rtn_group(&layer.weights, self.bits, g, 1.0),
        };
        Ok(QuantizedLayer {
            dequantized,
            packed: None,
            stats: QuantStats {
                effective_bit_width: self.bits as f64,
                ..QuantStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microscopiq_linalg::{Matrix, SeededRng};

    fn layer(seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
        w[(1, 3)] = 0.4;
        let x = Matrix::from_fn(32, 16, |_, _| rng.normal(0.0, 1.0));
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn finer_granularity_is_more_accurate() {
        let l = layer(1);
        let errs: Vec<f64> = [Rtn::per_tensor(4), Rtn::per_channel(4), Rtn::group(4, 8)]
            .iter()
            .map(|q| q.quantize_layer(&l).unwrap().weight_error(&l))
            .collect();
        assert!(
            errs[2] < errs[1],
            "group {} vs channel {}",
            errs[2],
            errs[1]
        );
        assert!(
            errs[1] < errs[0],
            "channel {} vs tensor {}",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn outlier_poisons_rtn_groups() {
        // The motivating failure: a 0.4 outlier in a 2-bit group flattens
        // every inlier in the group to zero.
        let l = layer(2);
        let q = Rtn::group(2, 32);
        let out = q.quantize_layer(&l).unwrap();
        let body_zeroed = (0..32)
            .filter(|&c| c != 3 && out.dequantized[(1, c)] == 0.0)
            .count();
        assert!(body_zeroed > 24, "only {body_zeroed} zeroed");
    }

    #[test]
    fn named_override() {
        let q = Rtn::per_tensor(4).named("QMamba-like");
        assert_eq!(q.name(), "QMamba-like");
    }

    #[test]
    fn ebw_equals_bits() {
        let l = layer(3);
        let out = Rtn::group(4, 16).quantize_layer(&l).unwrap();
        assert_eq!(out.stats.effective_bit_width, 4.0);
    }
}
