//! AWQ (Lin et al.) — activation-aware weight quantization: per-channel
//! scaling derived from activation magnitudes (grid-searched strength)
//! protects salient channels before plain group RTN. A group-B technique:
//! outliers stay at the same precision as inliers.

use crate::util::{channel_activation_magnitude, rtn_group};
use microscopiq_core::error::QuantError;
use microscopiq_core::traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};
use microscopiq_linalg::Matrix;

/// AWQ quantizer.
#[derive(Debug, Clone)]
pub struct Awq {
    bits: u32,
    group: usize,
    /// Grid of migration strengths searched (paper: 20 points in [0, 1]).
    grid: Vec<f64>,
}

impl Awq {
    /// AWQ at the given width and group size with the default α grid.
    pub fn new(bits: u32, group: usize) -> Self {
        Self {
            bits,
            group,
            grid: (0..=10).map(|i| i as f64 / 10.0).collect(),
        }
    }
}

impl WeightQuantizer for Awq {
    fn name(&self) -> &str {
        "AWQ"
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let act_mag = channel_activation_magnitude(&layer.calibration);
        let reference = layer.weights.matmul(&layer.calibration);

        let mut best: Option<(f64, Matrix)> = None;
        for &alpha in &self.grid {
            // Channel scale s_c = act_mag^α (weights multiplied by s, the
            // kernel divides at runtime — exact reparametrization).
            let scales: Vec<f64> = act_mag
                .iter()
                .map(|&m| if m > 0.0 { m.powf(alpha) } else { 1.0 })
                .collect();
            let mut scaled = layer.weights.clone();
            for r in 0..scaled.rows() {
                let row = scaled.row_mut(r);
                for (c, v) in row.iter_mut().enumerate() {
                    *v *= scales[c];
                }
            }
            let mut deq = rtn_group(&scaled, self.bits, self.group, 1.0);
            for r in 0..deq.rows() {
                let row = deq.row_mut(r);
                for (c, v) in row.iter_mut().enumerate() {
                    *v /= scales[c];
                }
            }
            let err = reference.frobenius_distance(&deq.matmul(&layer.calibration));
            if best.as_ref().is_none_or(|(e, _)| err < *e) {
                best = Some((err, deq));
            }
        }
        let (_, dequantized) = best.expect("non-empty grid");
        Ok(QuantizedLayer {
            dequantized,
            packed: None,
            stats: QuantStats {
                effective_bit_width: self.bits as f64,
                ..QuantStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::Rtn;
    use microscopiq_linalg::SeededRng;

    fn layer_with_salient_channel(seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let w = Matrix::from_fn(8, 32, |_, _| rng.normal(0.0, 0.02));
        let mut x = Matrix::from_fn(32, 48, |_, _| rng.normal(0.0, 0.3));
        for s in 0..48 {
            x[(5, s)] = rng.normal(0.0, 8.0); // hot channel
        }
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn awq_beats_plain_rtn_with_activation_outliers() {
        let l = layer_with_salient_channel(1);
        let a = Awq::new(4, 16).quantize_layer(&l).unwrap().output_error(&l);
        let r = Rtn::group(4, 16)
            .quantize_layer(&l)
            .unwrap()
            .output_error(&l);
        assert!(a <= r, "AWQ {a} must not lose to RTN {r}");
    }

    #[test]
    fn grid_search_is_deterministic() {
        let l = layer_with_salient_channel(2);
        let q = Awq::new(4, 16);
        assert_eq!(
            q.quantize_layer(&l).unwrap().dequantized,
            q.quantize_layer(&l).unwrap().dequantized
        );
    }

    #[test]
    fn alpha_zero_in_grid_guarantees_no_regression() {
        // α = 0 reduces to plain RTN, so AWQ can never be worse than RTN
        // on the calibration objective it optimizes.
        let l = layer_with_salient_channel(3);
        let a = Awq::new(2, 16).quantize_layer(&l).unwrap().output_error(&l);
        let r = Rtn::group(2, 16)
            .quantize_layer(&l)
            .unwrap()
            .output_error(&l);
        assert!(a <= r + 1e-12);
    }
}
