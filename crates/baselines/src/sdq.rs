//! SDQ (Jeong et al.) — sparse decomposed quantization: weights split into
//! a dense low-bit inlier component and a *rigid N:M* sparse outlier
//! component at higher precision. The rigidity is the contrast with
//! MicroScopiQ (§8): exactly N high-precision slots per M elements,
//! whether a block has more true outliers (excess clipped) or fewer
//! (slots wasted).

use crate::util::rtn_slice;
use microscopiq_core::error::QuantError;
use microscopiq_core::traits::{LayerTensors, QuantStats, QuantizedLayer, WeightQuantizer};
use microscopiq_linalg::Matrix;

/// SDQ quantizer with a fixed `n_high : m` pattern.
#[derive(Debug, Clone)]
pub struct Sdq {
    bits: u32,
    n_high: usize,
    m: usize,
}

impl Sdq {
    /// SDQ with base width `bits`, outliers at `2×bits`, and a fixed
    /// `n_high:m` sparse pattern (the paper's default shape is 2:8).
    pub fn new(bits: u32, n_high: usize, m: usize) -> Self {
        assert!(n_high < m, "pattern must leave dense slots");
        Self { bits, n_high, m }
    }
}

impl WeightQuantizer for Sdq {
    fn name(&self) -> &str {
        "SDQ"
    }

    fn quantize_layer(&self, layer: &LayerTensors) -> Result<QuantizedLayer, QuantError> {
        let mut deq = Matrix::zeros(layer.d_row(), layer.d_col());
        for r in 0..layer.d_row() {
            let row = layer.weights.row(r);
            for (b, chunk) in row.chunks(self.m).enumerate() {
                let base = b * self.m;
                // Rigid selection: exactly n_high largest magnitudes go to
                // the high-precision vector — no flexibility.
                let mut order: Vec<usize> = (0..chunk.len()).collect();
                order
                    .sort_by(|&a, &c| chunk[c].abs().partial_cmp(&chunk[a].abs()).expect("finite"));
                let n_high = self.n_high.min(chunk.len());
                let high_set: Vec<usize> = order[..n_high].to_vec();
                let high_vals: Vec<f64> = high_set.iter().map(|&i| chunk[i]).collect();
                let low_vals: Vec<f64> = (0..chunk.len())
                    .filter(|i| !high_set.contains(i))
                    .map(|i| chunk[i])
                    .collect();
                let high_q = rtn_slice(&high_vals, self.bits * 2, 1.0);
                let low_q = rtn_slice(&low_vals, self.bits, 1.0);
                let mut li = 0;
                for i in 0..chunk.len() {
                    if let Some(k) = high_set.iter().position(|&h| h == i) {
                        deq[(r, base + i)] = high_q[k];
                    } else {
                        deq[(r, base + i)] = low_q[li];
                        li += 1;
                    }
                }
            }
        }
        // EBW: n_high slots at 2×bits + the rest at bits, plus the N:M
        // index metadata (log2(m) bits per high slot).
        let idx_bits = (self.m as f64).log2();
        let ebw = (self.n_high as f64 * (2 * self.bits) as f64
            + (self.m - self.n_high) as f64 * self.bits as f64
            + self.n_high as f64 * idx_bits)
            / self.m as f64;
        Ok(QuantizedLayer {
            dequantized: deq,
            packed: None,
            stats: QuantStats {
                effective_bit_width: ebw,
                outlier_fraction: self.n_high as f64 / self.m as f64,
                ..QuantStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::Rtn;
    use microscopiq_linalg::SeededRng;

    fn layer(seed: u64) -> LayerTensors {
        let mut rng = SeededRng::new(seed);
        let mut w = Matrix::from_fn(8, 64, |_, _| rng.normal(0.0, 0.02));
        for i in 0..5 {
            w[(i, i * 11 + 4)] = rng.sign() * 0.35;
        }
        let x = Matrix::from_fn(64, 32, |_, _| rng.normal(0.0, 1.0));
        LayerTensors::new(w, x).unwrap()
    }

    #[test]
    fn sdq_beats_plain_rtn() {
        let l = layer(1);
        let s = Sdq::new(2, 2, 8)
            .quantize_layer(&l)
            .unwrap()
            .weight_error(&l);
        let r = Rtn::group(2, 8)
            .quantize_layer(&l)
            .unwrap()
            .weight_error(&l);
        assert!(s < r, "SDQ {s} vs RTN {r}");
    }

    #[test]
    fn rigid_pattern_clips_third_outlier() {
        // Three outliers in one 8-block; the 2:8 pattern can protect two.
        let mut rng = SeededRng::new(2);
        let mut w = Matrix::from_fn(1, 8, |_, _| rng.normal(0.0, 0.02));
        w[(0, 1)] = 0.50;
        w[(0, 4)] = 0.45;
        w[(0, 6)] = 0.40;
        let x = Matrix::from_fn(8, 16, |_, _| rng.normal(0.0, 1.0));
        let l = LayerTensors::new(w, x).unwrap();
        let out = Sdq::new(2, 2, 8).quantize_layer(&l).unwrap();
        // The weakest of the three lands in the 2-bit low vector. It sets
        // that vector's scale (so it survives), but the step becomes 0.40 —
        // every body value in the block is flattened to zero. That is the
        // rigidity cost MicroScopiQ's flexible per-μB count avoids.
        let e1 = (out.dequantized[(0, 1)] - 0.50).abs();
        assert!(e1 < 0.05, "protected outlier error {e1}");
        let body_zeroed = [0usize, 2, 3, 5, 7]
            .iter()
            .filter(|&&c| out.dequantized[(0, c)] == 0.0)
            .count();
        assert!(body_zeroed >= 4, "only {body_zeroed} body slots flattened");
    }

    #[test]
    fn ebw_accounts_for_pattern_and_indices() {
        let l = layer(3);
        let out = Sdq::new(2, 2, 8).quantize_layer(&l).unwrap();
        // (2·4 + 6·2 + 2·3)/8 = 3.25
        assert!((out.stats.effective_bit_width - 3.25).abs() < 1e-12);
    }
}
