//! Prefix-cache and N-way-fork conformance.
//!
//! Contracts under test:
//!
//! * **Exact-KV reuse is invisible** — serving a prompt whose prefix is
//!   resident in the cache (copy-on-write attach + suffix-only prefill)
//!   yields token streams **bitwise identical** to a cold session with
//!   no cache at all, for arbitrary prompt lengths, chunk sizes, and
//!   token budgets.
//! * **Quantized-KV reuse is group-aligned** — only whole quantized
//!   groups are ever attached, and reuse is deterministic (two warm
//!   sessions agree bitwise), though not required to match a cold run
//!   (the residual window sits elsewhere).
//! * **N-way forks are pure fan-out** — sample `i` of an N-way request
//!   is bitwise identical to a solo request with seed `seed + i`.
//! * **Failure isolation** — cancelling a request mid-suffix-prefill
//!   releases its copy-on-write tail, leaves shared trie segments
//!   intact, and perturbs no bystander stream.
//! * **No leaks** — after any amount of churn, shrinking the capacity to
//!   zero drains every resident byte; live KV occupancy returns to zero
//!   at idle.

use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{DequantGemm, KvCacheConfig, KvMode, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::{
    GenRequest, GenResult, PrefixCacheConfig, SchedulerConfig, Server, ServerConfig, Session,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A tiny 1-layer model so 512-token prefills stay cheap, shared across
/// proptest cases.
fn tiny_model() -> &'static PackedTinyFm {
    static MODEL: OnceLock<PackedTinyFm> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = TinyFmConfig {
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            n_layers: 1,
            vocab: 32,
        };
        let fm = TinyFm::teacher(cfg, 19);
        let mut rng = SeededRng::new(190);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(8, 0.9, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(16)
                .row_block(16)
                .build()
                .unwrap(),
        );
        PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
    })
}

/// A 2-layer model matching the serving conformance fixtures.
fn serving_model() -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 48,
    };
    let fm = TinyFm::teacher(cfg, 57);
    let mut rng = SeededRng::new(570);
    let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

fn prompt(rng: &mut SeededRng, len: usize, vocab: usize) -> Vec<usize> {
    (0..len).map(|_| rng.below(vocab)).collect()
}

/// Cold reference: the request served by a session with no prefix cache.
fn cold_reference(
    model: &PackedTinyFm,
    sched: SchedulerConfig,
    kv: KvMode,
    req: &GenRequest,
) -> GenResult {
    let mut session = Session::with_config(model.clone(), DequantGemm, sched, kv).unwrap();
    session.submit(req.clone());
    session.run_to_completion().pop().expect("request finished")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary shared-prefix lengths, suffix lengths, chunk sizes,
    /// and budgets: a warm admission (longest cached prefix attached
    /// copy-on-write, only the suffix prefilled) streams tokens bitwise
    /// identical to a cold no-cache session, reuse is actually counted,
    /// and shrinking the capacity to zero afterwards drains the trie
    /// completely.
    #[test]
    fn exact_kv_warm_reuse_is_bitwise_equal_to_cold(
        seed in 0u64..1_000,
        shared_len in 2usize..513,
        suffix_len in 1usize..17,
        chunk in 1usize..65,
        budget in 1usize..49,
    ) {
        let model = tiny_model();
        let vocab = model.config().vocab;
        let mut rng = SeededRng::new(seed);
        let shared = prompt(&mut rng, shared_len, vocab);
        let warmer = GenRequest {
            prompt: shared.clone(),
            max_new_tokens: 2,
            temperature: 0.8,
            seed: 7_100 + seed,
            ..Default::default()
        };
        let mut probe_prompt = shared;
        probe_prompt.extend(prompt(&mut rng, suffix_len, vocab));
        let probe = GenRequest {
            prompt: probe_prompt,
            max_new_tokens: 3,
            temperature: 0.8,
            seed: 7_200 + seed,
            ..Default::default()
        };

        let sched = SchedulerConfig::new(4).prefill_chunk(chunk).token_budget(budget);
        let want = cold_reference(model, sched, KvMode::Exact, &probe);

        let mut warm =
            Session::with_config(model.clone(), DequantGemm, sched, KvMode::Exact).unwrap();
        warm.enable_prefix_cache(PrefixCacheConfig::default());
        warm.submit(warmer);
        warm.run_to_completion();
        let probe_id = warm.submit(probe);
        let got = warm.run_to_completion().pop().expect("probe finished");
        prop_assert_eq!(got.id, probe_id);
        prop_assert_eq!(
            &got.tokens,
            &want.tokens,
            "warm reuse diverged from cold prefill (shared={} suffix={} chunk={} budget={})",
            shared_len,
            suffix_len,
            chunk,
            budget
        );
        prop_assert_eq!(got.new_tokens, want.new_tokens);

        let stats = warm.prefix_cache_stats().expect("cache enabled");
        prop_assert!(stats.hits >= 1, "probe admission must hit the cache");
        prop_assert!(stats.tokens_reused >= 1, "a non-empty prefix must be reused");
        let s = warm.stats();
        prop_assert_eq!(s.prefix_hits as u64, stats.hits);
        prop_assert_eq!(s.prefix_tokens_reused as u64, stats.tokens_reused);
        prop_assert_eq!(warm.kv_occupancy(), 0, "all live KV reclaimed at idle");

        // Nothing is referenced at idle, so a zero budget drains every
        // resident byte — the no-leak proof after churn.
        warm.set_prefix_cache_capacity(0);
        let drained = warm.prefix_cache_stats().unwrap();
        prop_assert_eq!(drained.resident_bytes, 0);
        prop_assert_eq!(drained.resident_nodes, 0);
    }
}

/// Quantized-KV reuse attaches only whole quantized groups
/// (`tokens_reused` is group-aligned) and is deterministic: two warm
/// sessions fed the same traffic agree bitwise on every stream.
#[test]
fn quantized_reuse_is_group_aligned_and_deterministic() {
    let model = serving_model();
    let group = 8;
    let kv = KvMode::Quantized(KvCacheConfig {
        bits: 4,
        group,
        residual: 8,
    });
    let vocab = model.config().vocab;
    let mut rng = SeededRng::new(41);
    let shared = prompt(&mut rng, 64, vocab);
    let mut probe_prompt = shared.clone();
    probe_prompt.extend(prompt(&mut rng, 9, vocab));
    let reqs = [
        GenRequest {
            prompt: shared,
            max_new_tokens: 3,
            temperature: 0.9,
            seed: 4_100,
            ..Default::default()
        },
        GenRequest {
            prompt: probe_prompt,
            max_new_tokens: 4,
            temperature: 0.9,
            seed: 4_200,
            ..Default::default()
        },
    ];

    let run = || {
        let sched = SchedulerConfig::new(4).prefill_chunk(6).token_budget(10);
        let mut session = Session::with_config(model.clone(), DequantGemm, sched, kv).unwrap();
        session.enable_prefix_cache(PrefixCacheConfig::default());
        let mut out = Vec::new();
        for r in &reqs {
            session.submit(r.clone());
            out.extend(session.run_to_completion());
        }
        let stats = session.prefix_cache_stats().unwrap();
        assert_eq!(session.kv_occupancy(), 0);
        (out, stats)
    };
    let (a, sa) = run();
    let (b, sb) = run();
    assert_eq!(a, b, "warm quantized serving must be deterministic");
    assert_eq!(sa, sb);
    assert!(sa.hits >= 1, "probe must hit the quantized cache");
    assert!(sa.tokens_reused > 0);
    assert_eq!(
        sa.tokens_reused % group as u64,
        0,
        "quantized reuse must be group-aligned"
    );
}

/// Sample `i` of an N-way request is bitwise identical to a solo request
/// with seed `seed + i`: one shared prefill, N continuations, no
/// numerical side effects from the copy-on-write fan-out.
#[test]
fn n_way_forks_match_solo_requests_bitwise() {
    let model = serving_model();
    let vocab = model.config().vocab;
    let mut rng = SeededRng::new(83);
    let base = GenRequest {
        prompt: prompt(&mut rng, 37, vocab),
        max_new_tokens: 6,
        temperature: 0.9,
        seed: 5_000,
        n_samples: 4,
        ..Default::default()
    };

    let sched = SchedulerConfig::new(4).prefill_chunk(5).token_budget(9);
    let mut session =
        Session::with_config(model.clone(), DequantGemm, sched, KvMode::Exact).unwrap();
    session.enable_prefix_cache(PrefixCacheConfig::default());
    let leader = session.submit(base.clone());
    let results = session.run_to_completion();
    assert_eq!(results.len(), 4, "one result per sample");
    let by_id: HashMap<usize, GenResult> = results.into_iter().map(|r| (r.id, r)).collect();

    for i in 0..4usize {
        let solo = GenRequest {
            seed: base.seed + i as u64,
            n_samples: 1,
            ..base.clone()
        };
        let want = cold_reference(&model, sched, KvMode::Exact, &solo);
        let got = by_id.get(&(leader + i)).expect("sample finished");
        assert_eq!(
            got.tokens, want.tokens,
            "sample {i} diverged from the solo request with its derived seed"
        );
        assert_eq!(got.new_tokens, want.new_tokens);
    }
    assert_eq!(session.kv_occupancy(), 0);
}

/// Zero-budget N-way requests finish instantly with one prompt-only
/// result per sample, on consecutive ids.
#[test]
fn zero_budget_n_way_yields_prompt_only_samples() {
    let model = serving_model();
    let mut session = Session::new(model, DequantGemm, 4);
    let req = GenRequest {
        prompt: vec![1, 2, 3],
        max_new_tokens: 0,
        temperature: 0.8,
        seed: 11,
        n_samples: 3,
        ..Default::default()
    };
    let leader = session.submit(req);
    let results = session.run_to_completion();
    assert_eq!(results.len(), 3);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.id, leader + i);
        assert_eq!(r.tokens, vec![1, 2, 3]);
        assert_eq!(r.new_tokens, 0);
    }
}

/// Failure injection: a request cancelled midway through its
/// suffix-only prefill releases its copy-on-write tail, leaves the
/// shared trie segments intact, and perturbs no bystander — after the
/// dust settles the cache drains to zero, proving every reference was
/// returned.
#[test]
fn cancel_mid_suffix_prefill_releases_cow_and_leaves_trie_intact() {
    let model = tiny_model();
    let vocab = model.config().vocab;
    let mut rng = SeededRng::new(67);
    let shared = prompt(&mut rng, 64, vocab);
    let sched = SchedulerConfig::new(4).prefill_chunk(8).token_budget(8);

    let bystander = GenRequest {
        prompt: prompt(&mut rng, 20, vocab),
        max_new_tokens: 5,
        temperature: 0.8,
        seed: 6_100,
        ..Default::default()
    };
    let bystander_want = cold_reference(model, sched, KvMode::Exact, &bystander);

    let mut session =
        Session::with_config(model.clone(), DequantGemm, sched, KvMode::Exact).unwrap();
    session.enable_prefix_cache(PrefixCacheConfig::default());
    session.submit(GenRequest {
        prompt: shared.clone(),
        max_new_tokens: 2,
        temperature: 0.8,
        seed: 6_200,
        ..Default::default()
    });
    session.run_to_completion();
    let resident = session.prefix_cache_stats().unwrap();
    assert!(resident.resident_bytes > 0, "warmer populated the trie");

    // The victim attaches the 64-token shared prefix and then has a
    // 200-token suffix to prefill in chunks of 8 — two steps in it is
    // unquestionably mid-suffix-prefill.
    let mut victim_prompt = shared;
    victim_prompt.extend(prompt(&mut rng, 200, vocab));
    let victim = session.submit(GenRequest {
        prompt: victim_prompt,
        max_new_tokens: 4,
        temperature: 0.8,
        seed: 6_300,
        ..Default::default()
    });
    let bystander_id = session.submit(bystander);
    let mut results = session.step();
    results.extend(session.step());
    assert!(session.is_live(victim), "victim still mid-prefill");
    let occ_with_victim = session.kv_occupancy();
    assert!(session.cancel(victim), "victim is live two steps in");
    assert!(
        session.kv_occupancy() < occ_with_victim,
        "cancel must release the victim's CoW tail"
    );

    // The shared trie segments survived the cancel untouched.
    let after = session.prefix_cache_stats().unwrap();
    assert_eq!(after.resident_bytes, resident.resident_bytes);
    assert_eq!(after.resident_nodes, resident.resident_nodes);
    assert_eq!(after.evictions, 0);

    results.extend(session.run_to_completion());
    let by_id: HashMap<usize, GenResult> = results.into_iter().map(|r| (r.id, r)).collect();
    assert!(!by_id.contains_key(&victim), "victim never finishes");
    let got = by_id.get(&bystander_id).expect("bystander finished");
    assert_eq!(
        got.tokens, bystander_want.tokens,
        "bystander stream must be bitwise unchanged by the cancel"
    );
    assert_eq!(session.kv_occupancy(), 0, "no live KV at idle");
    assert_eq!(session.stats().cancelled, 1);

    // Every CoW reference was returned: a zero budget drains the trie
    // to nothing (a leaked Arc would pin its node resident).
    session.set_prefix_cache_capacity(0);
    let drained = session.prefix_cache_stats().unwrap();
    assert_eq!(drained.resident_bytes, 0, "leaked cache bytes after churn");
    assert_eq!(drained.resident_nodes, 0);
}

/// The byte budget is enforced at idle (eviction strikes unreferenced
/// LRU leaves) and recently warmed prefixes still hit.
#[test]
fn capacity_budget_evicts_lru_at_idle() {
    let model = tiny_model();
    let vocab = model.config().vocab;
    // One 32-token resident prompt costs 32 rows * 16 lanes * 2 (K and
    // V) * 8 bytes = 8 KiB in exact mode, so a 20 KiB budget holds two.
    let capacity = 20 << 10;
    let mut session = Session::new(model.clone(), DequantGemm, 4);
    session.enable_prefix_cache(PrefixCacheConfig {
        capacity_bytes: capacity,
    });
    let mut rng = SeededRng::new(29);
    for i in 0..6u64 {
        session.submit(GenRequest {
            prompt: prompt(&mut rng, 32, vocab),
            max_new_tokens: 2,
            temperature: 0.8,
            seed: 8_000 + i,
            ..Default::default()
        });
        session.run_to_completion();
        let stats = session.prefix_cache_stats().unwrap();
        assert!(
            stats.resident_bytes <= capacity,
            "budget exceeded at idle: {} > {capacity}",
            stats.resident_bytes
        );
    }
    let stats = session.prefix_cache_stats().unwrap();
    assert!(
        stats.evictions > 0,
        "six 8 KiB prompts must evict under 20 KiB"
    );
    assert!(stats.resident_bytes > 0, "the newest prompts stay resident");
}

/// Server integration: warm streams are bitwise equal to the cold
/// offline reference, `prefix_cache_stats` counts the reuse,
/// `/metrics` exposes the prefix family, N-way requests fan out through
/// one stream, and the cache drains on demand through the handle.
#[test]
fn server_prefix_cache_and_n_way_end_to_end() {
    let model = serving_model();
    let vocab = model.config().vocab;
    let mut rng = SeededRng::new(59);
    let shared = prompt(&mut rng, 48, vocab);
    let mut probe_prompt = shared.clone();
    probe_prompt.extend(prompt(&mut rng, 6, vocab));

    let sched = SchedulerConfig::new(4).prefill_chunk(6).token_budget(12);
    let probe = GenRequest {
        prompt: probe_prompt,
        max_new_tokens: 5,
        temperature: 0.9,
        seed: 9_200,
        ..Default::default()
    };
    let probe_want = cold_reference(&model, sched, KvMode::Exact, &probe);
    let fork = GenRequest {
        prompt: shared.clone(),
        max_new_tokens: 4,
        temperature: 0.9,
        seed: 9_300,
        n_samples: 3,
        ..Default::default()
    };
    let fork_want: Vec<GenResult> = (0..3)
        .map(|i| {
            let solo = GenRequest {
                seed: fork.seed + i,
                n_samples: 1,
                ..fork.clone()
            };
            cold_reference(&model, sched, KvMode::Exact, &solo)
        })
        .collect();

    let server = Server::spawn(
        model,
        DequantGemm,
        ServerConfig {
            max_batch: 4,
            prefill_chunk: 6,
            token_budget: 12,
            prefix_cache: Some(PrefixCacheConfig::default()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    // Warm the trie, then probe it.
    let warmer = GenRequest {
        prompt: shared,
        max_new_tokens: 2,
        temperature: 0.9,
        seed: 9_100,
        ..Default::default()
    };
    handle.submit(warmer).unwrap().collect().unwrap();
    let got = handle.submit(probe).unwrap().collect().unwrap();
    assert_eq!(got.tokens, probe_want.tokens, "warm serving diverged");

    let stats = handle.prefix_cache_stats().expect("cache enabled");
    assert!(stats.hits >= 1);
    assert!(stats.tokens_reused > 0);
    let text = handle.render_metrics();
    for family in [
        "microscopiq_prefix_cache_hits",
        "microscopiq_prefix_cache_misses",
        "microscopiq_prefix_cache_evictions",
        "microscopiq_prefix_cache_resident_bytes",
    ] {
        assert!(text.contains(family), "metrics exposition missing {family}");
    }

    // One stream, three samples — each bitwise equal to its solo twin.
    let samples = handle.submit(fork).unwrap().collect_samples().unwrap();
    assert_eq!(samples.len(), 3);
    for (i, (got, want)) in samples.iter().zip(fork_want.iter()).enumerate() {
        assert_eq!(got.tokens, want.tokens, "server sample {i} diverged");
        assert_eq!(got.new_tokens, want.new_tokens);
    }

    // Drain through the handle: the worker applies the new budget
    // between steps.
    handle.set_prefix_cache_capacity(0);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = handle.prefix_cache_stats().unwrap();
        if s.resident_bytes == 0 && s.resident_nodes == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "cache never drained: {s:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    drop(handle);
    let report = server.shutdown();
    assert_eq!(report.served, 3, "three streams (the fork is one)");
    assert_eq!(report.final_kv_rows, 0);
}
