//! Seeded chaos suite for the self-healing fleet: scripted worker kills
//! (mid-prefill, mid-decode, under flood), KV memory-pressure squeezes,
//! and combined kill+squeeze churn. Every scenario pins the same three
//! invariants:
//!
//! 1. **Bitwise stream correctness** — a stream that survives via
//!    deterministic failover or preempt-and-recompute delivers exactly
//!    the tokens the offline single-session reference produces. Worker
//!    death and memory pressure are invisible in token streams.
//! 2. **Accounting identities** — failover/respawn/preemption counters
//!    move when (and only when) the scripted fault fires; interactive
//!    traffic is never preempted; peak KV stays under the budget.
//! 3. **Full KV drain** — after the churn retires, no worker holds KV.
//!
//! The determinism contract (any worker produces identical tokens for
//! the same request — `fleet_conformance`) is what makes these cheap:
//! replay-and-skip needs no state transfer, only a resubmission.

use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{DequantGemm, KvMode, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::net::{HttpClient, HttpConfig, HttpServer, Json};
use microscopiq_runtime::{
    Fleet, FleetConfig, GenRequest, QosClass, RequestOptions, ServeError, Server, ServerConfig,
    Session, SupervisionConfig,
};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn packed_model() -> &'static PackedTinyFm {
    static MODEL: OnceLock<PackedTinyFm> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = TinyFmConfig {
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_layers: 2,
            vocab: 48,
        };
        let fm = TinyFm::teacher(cfg, 91);
        let mut rng = SeededRng::new(0xc4a0);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.9, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
    })
}

/// Offline single-request reference — the bitwise ground truth any
/// worker (or any preempted/recovered execution) must reproduce.
fn offline_tokens(req: &GenRequest) -> Vec<usize> {
    let mut session =
        Session::with_kv_mode(packed_model().clone(), DequantGemm, 1, KvMode::Exact).unwrap();
    session.submit(req.clone());
    let results = session.run_to_completion();
    assert_eq!(results.len(), 1);
    results.into_iter().next().unwrap().tokens
}

fn chaos_request(i: usize, seed: u64, max_new: usize, class: QosClass) -> GenRequest {
    let vocab = packed_model().config().vocab;
    let mut rng = SeededRng::new(seed ^ (i as u64).wrapping_mul(0x9e37));
    GenRequest {
        prompt: (0..4 + rng.below(8)).map(|_| rng.below(vocab)).collect(),
        max_new_tokens: max_new,
        temperature: 0.8,
        seed: 3000 + i as u64,
        class,
        ..Default::default()
    }
}

fn failover_opts() -> RequestOptions {
    RequestOptions {
        failover: true,
        ..RequestOptions::default()
    }
}

fn paced_fleet(workers: usize, pace_ms: u64, supervised: bool) -> Fleet {
    Fleet::spawn(
        packed_model().clone(),
        |_| DequantGemm,
        FleetConfig {
            workers,
            server: ServerConfig {
                max_batch: 4,
                pace: Duration::from_millis(pace_ms),
                ..ServerConfig::default()
            },
            supervision: supervised.then(|| SupervisionConfig {
                max_restarts: 3,
                backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(100),
                interval: Duration::from_millis(10),
            }),
        },
    )
    .expect("spawn fleet")
}

#[test]
fn failover_mid_decode_is_bitwise_seamless() {
    let fleet = paced_fleet(2, 3, false);
    let handle = fleet.handle();
    let req = chaos_request(0, 0xdead, 24, QosClass::Interactive);
    let expected = offline_tokens(&req);

    let (idx, mut stream) = handle.submit_with(req, failover_opts()).expect("submit");
    // Read a few live tokens so the kill lands mid-decode, with part of
    // the stream already delivered to the client.
    let mut streamed = Vec::new();
    while streamed.len() < 3 {
        match stream.next_event().expect("live stream") {
            microscopiq_runtime::StreamEvent::Token(t) => streamed.push(t),
            other => panic!("unexpected early event: {other:?}"),
        }
    }
    handle.worker(idx).inject_worker_panic();
    let res = stream.collect().expect("failover must complete the stream");
    assert_eq!(res.tokens, expected, "failover stream diverged bitwise");
    assert!(
        handle.failovers() >= 1,
        "the kill must actually trigger failover"
    );
    assert!(
        handle
            .render_metrics()
            .contains("microscopiq_fleet_failovers_total"),
        "failovers are exposed as a fleet metric"
    );
    let report = fleet.shutdown();
    assert_eq!(report.lost(), 1, "exactly one incarnation died");
}

#[test]
fn failover_mid_prefill_replays_the_prompt() {
    let fleet = Fleet::spawn(
        packed_model().clone(),
        |_| DequantGemm,
        FleetConfig {
            workers: 2,
            server: ServerConfig {
                max_batch: 4,
                // Chunked prefill + pace: a 16-token prompt takes ≥ 8
                // paced steps before its first sampled token, so the
                // kill below lands mid-prefill.
                prefill_chunk: 2,
                pace: Duration::from_millis(3),
                ..ServerConfig::default()
            },
            supervision: None,
        },
    )
    .expect("spawn fleet");
    let handle = fleet.handle();
    let vocab = packed_model().config().vocab;
    let req = GenRequest {
        prompt: (0..16).map(|i| (i * 5 + 2) % vocab).collect(),
        max_new_tokens: 6,
        temperature: 0.8,
        seed: 4242,
        ..Default::default()
    };
    let expected = offline_tokens(&req);

    let (idx, stream) = handle.submit_with(req, failover_opts()).expect("submit");
    std::thread::sleep(Duration::from_millis(4));
    handle.worker(idx).inject_worker_panic();
    let res = stream.collect().expect("failover must complete the stream");
    assert_eq!(res.tokens, expected, "mid-prefill failover diverged");
    assert!(handle.failovers() >= 1);
    fleet.shutdown();
}

#[test]
fn failover_under_flood_completes_every_stream() {
    let fleet = paced_fleet(3, 1, false);
    let handle = fleet.handle();
    let reqs: Vec<GenRequest> = (0..16)
        .map(|i| chaos_request(i, 0xf100d, 8, QosClass::Interactive))
        .collect();
    let expected: Vec<Vec<usize>> = reqs.iter().map(offline_tokens).collect();

    let results: Vec<Vec<usize>> = std::thread::scope(|s| {
        let tasks: Vec<_> = reqs
            .iter()
            .map(|req| {
                let handle = handle.clone();
                let req = req.clone();
                s.spawn(move || {
                    let (_, stream) = handle.submit_with(req, failover_opts()).expect("submit");
                    stream.collect().expect("stream completes").tokens
                })
            })
            .collect();
        // Kill one worker while the flood is in flight; its orphans must
        // fail over while streams on the survivors are untouched.
        std::thread::sleep(Duration::from_millis(5));
        handle.worker(1).inject_worker_panic();
        tasks
            .into_iter()
            .map(|t| t.join().expect("no panic"))
            .collect()
    });
    for (i, (got, want)) in results.iter().zip(expected.iter()).enumerate() {
        assert_eq!(got, want, "stream {i} diverged under flood churn");
    }
    assert!(handle.failovers() >= 1, "the flood kill triggered failover");
    assert_eq!(handle.kv_rows(), 0, "KV drains after the flood retires");
    fleet.shutdown();
}

#[test]
fn supervisor_respawns_dead_worker_and_healthz_recovers() {
    let server = HttpServer::bind(
        "127.0.0.1:0",
        packed_model().clone(),
        |_| DequantGemm,
        HttpConfig {
            fleet: FleetConfig {
                workers: 2,
                server: ServerConfig {
                    max_batch: 4,
                    ..ServerConfig::default()
                },
                supervision: Some(SupervisionConfig {
                    max_restarts: 2,
                    backoff: Duration::from_millis(5),
                    max_backoff: Duration::from_millis(50),
                    interval: Duration::from_millis(10),
                }),
            },
            ..HttpConfig::default()
        },
    )
    .expect("bind fleet");
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    server.fleet().worker(0).inject_worker_panic();
    // Wait for the worker thread to actually die, then for the
    // supervisor sweep to respawn it: healthz goes back to 200/ok with
    // the respawn counted. Generous deadline; typical recovery is one
    // 10 ms sweep.
    let deadline = Instant::now() + Duration::from_secs(10);
    let health_json = loop {
        let health = client.get("/healthz").expect("healthz");
        let json = Json::parse(&health.text()).expect("healthz JSON");
        let respawned = json.get("respawns").and_then(Json::as_usize).unwrap_or(0) >= 1;
        if health.status == 200 && respawned {
            break json;
        }
        assert!(
            Instant::now() < deadline,
            "fleet did not heal in time: status {} body {}",
            health.status,
            health.text()
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(health_json.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health_json.get("workers_alive").and_then(Json::as_usize),
        Some(2),
        "full strength restored"
    );

    // The respawned slot serves: fleet metrics agree and a request
    // round-trips bitwise.
    let metrics = client.get("/metrics").expect("metrics").text();
    assert!(metrics.contains("microscopiq_fleet_workers_alive 2"));
    let respawn_line = metrics
        .lines()
        .find(|l| l.starts_with("microscopiq_fleet_respawns_total"))
        .expect("respawn counter exposed");
    let respawns: u64 = respawn_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("counter value");
    assert!(respawns >= 1, "respawn counted: {respawn_line}");

    let req = chaos_request(7, 0x4ea1, 5, QosClass::Interactive);
    let expected = offline_tokens(&req);
    let prompt = req
        .prompt
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let body = format!(
        r#"{{"prompt":[{prompt}],"max_new_tokens":{},"temperature":0.8,"seed":{}}}"#,
        req.max_new_tokens, req.seed,
    );
    let events = client
        .generate(&body)
        .expect("generate")
        .collect_events()
        .expect("events");
    let done = events.last().expect("terminal event");
    let tokens: Vec<usize> = done
        .get("tokens")
        .and_then(Json::as_arr)
        .expect("done tokens")
        .iter()
        .map(|t| t.as_usize().unwrap())
        .collect();
    assert_eq!(tokens, expected, "healed fleet serves bitwise");

    let report = server.shutdown();
    assert!(report.respawns >= 1, "report records the respawn");
    assert_eq!(report.lost(), 1, "one harvested corpse");
}

#[test]
fn kv_budget_squeeze_preempts_sheddable_and_stays_bitwise() {
    // Single worker under a KV byte ceiling: a best-effort pair acquires
    // KV first, then an interactive request arrives — its growth forces
    // a best-effort victim out (never interactive), peak KV must respect
    // the budget, and every stream — including preempted ones — must
    // come back bitwise identical.
    let budget = 24 * 1024; // d_model 32 × 2 layers → 1 KiB per token
    let server = Server::spawn(
        packed_model().clone(),
        DequantGemm,
        ServerConfig {
            max_batch: 2,
            prefill_chunk: 4,
            kv_byte_budget: Some(budget),
            pace: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .expect("spawn server");
    let handle = server.handle();
    let vocab = packed_model().config().vocab;
    let mk = |i: usize, prompt_len: usize, max_new: usize, class: QosClass| GenRequest {
        prompt: (0..prompt_len).map(|j| (j * 3 + i) % vocab).collect(),
        max_new_tokens: max_new,
        temperature: 0.8,
        seed: 5100 + i as u64,
        class,
        ..Default::default()
    };
    // The best-effort pair exactly fills the budget (4 + 8 = 12 KiB
    // each): it fits on its own, so only the interactive arrival can
    // push occupancy past the ceiling — that arrival is what must force
    // a best-effort victim out. Short prompts + long decodes keep the
    // pair in flight for ~8 paced steps, a wide window for the
    // interactive request to land mid-flight.
    let reqs = [
        mk(0, 4, 8, QosClass::BestEffort),
        mk(1, 4, 8, QosClass::BestEffort),
        mk(2, 8, 4, QosClass::Interactive),
    ];
    let expected: Vec<Vec<usize>> = reqs.iter().map(offline_tokens).collect();

    let results: Vec<Vec<usize>> = std::thread::scope(|s| {
        let run = |req: GenRequest| {
            let handle = handle.clone();
            s.spawn(move || {
                handle
                    .submit(req)
                    .expect("submit")
                    .collect()
                    .unwrap()
                    .tokens
            })
        };
        let be0 = run(reqs[0].clone());
        let be1 = run(reqs[1].clone());
        // Stagger: let the best-effort pair acquire KV before the
        // interactive request applies pressure.
        let deadline = Instant::now() + Duration::from_secs(10);
        while handle.kv_bytes() < 12 * 1024 {
            assert!(Instant::now() < deadline, "best-effort never acquired KV");
            std::thread::sleep(Duration::from_millis(1));
        }
        let int = run(reqs[2].clone());
        vec![be0, be1, int]
            .into_iter()
            .map(|t| t.join().expect("no panic"))
            .collect()
    });
    for (i, (got, want)) in results.iter().zip(expected.iter()).enumerate() {
        assert_eq!(got, want, "stream {i} diverged under the KV squeeze");
    }
    assert_eq!(handle.kv_rows(), 0, "KV drains once the squeeze retires");
    drop(handle); // the worker exits once every admission sender is gone
    let report = server.shutdown();
    let stats = report.session;
    assert!(stats.preempted() > 0, "the squeeze actually preempted");
    assert_eq!(stats.preemptions[0], 0, "interactive never preempted");
    assert!(
        stats.peak_kv_bytes <= budget,
        "peak {} exceeded budget {budget}",
        stats.peak_kv_bytes
    );
    assert_eq!(report.final_kv_rows, 0);
}

#[test]
fn kill_and_squeeze_churn_heals_and_drains() {
    // Everything at once: supervised fleet, KV budgets on every worker,
    // a mixed-class failover flood, and a worker kill mid-flight. All
    // streams complete bitwise, the fleet heals, and KV fully drains.
    let fleet = Fleet::spawn(
        packed_model().clone(),
        |_| DequantGemm,
        FleetConfig {
            workers: 2,
            server: ServerConfig {
                max_batch: 2,
                prefill_chunk: 4,
                kv_byte_budget: Some(24 * 1024),
                pace: Duration::from_millis(1),
                ..ServerConfig::default()
            },
            supervision: Some(SupervisionConfig {
                max_restarts: 3,
                backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(100),
                interval: Duration::from_millis(10),
            }),
        },
    )
    .expect("spawn fleet");
    let handle = fleet.handle();
    let reqs: Vec<GenRequest> = (0..12)
        .map(|i| {
            let class = match i % 3 {
                0 => QosClass::Interactive,
                1 => QosClass::Batch,
                _ => QosClass::BestEffort,
            };
            chaos_request(i, 0xc41f, 6, class)
        })
        .collect();
    let expected: Vec<Vec<usize>> = reqs.iter().map(offline_tokens).collect();

    let results: Vec<Vec<usize>> = std::thread::scope(|s| {
        let tasks: Vec<_> = reqs
            .iter()
            .map(|req| {
                let handle = handle.clone();
                let req = req.clone();
                s.spawn(move || {
                    let (_, stream) = handle.submit_with(req, failover_opts()).expect("submit");
                    stream.collect().expect("stream completes").tokens
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(4));
        handle.worker(0).inject_worker_panic();
        tasks
            .into_iter()
            .map(|t| t.join().expect("no panic"))
            .collect()
    });
    for (i, (got, want)) in results.iter().zip(expected.iter()).enumerate() {
        assert_eq!(got, want, "stream {i} diverged under kill+squeeze churn");
    }
    // Supervisor restores full strength: the killed incarnation is
    // harvested and its slot respawned (sweeps here are driven
    // explicitly so the test does not depend on traffic).
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.respawns() < 1 || handle.alive_workers() < 2 {
        handle.supervise();
        assert!(Instant::now() < deadline, "fleet failed to heal");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.kv_rows(), 0, "KV drains after the churn");
    let report = fleet.shutdown();
    assert_eq!(report.lost(), 1, "exactly one incarnation died");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Routing under churn: concurrent submissions racing a worker
    /// death never panic, land on in-range workers exactly once, and —
    /// with failover on — still deliver bitwise-correct streams. The
    /// dead-worker CAS and the respawn/mark-alive CAS are both
    /// exercised by the race.
    #[test]
    fn routing_survives_worker_churn(
        seed in 0u64..1_000,
        workers in 2usize..5,
        kill_at in 0usize..4,
        n_reqs in 4usize..13,
    ) {
        let kill = kill_at % workers;
        let supervised = seed % 2 == 0;
        let fleet = paced_fleet(workers, 1, supervised);
        let handle = fleet.handle();
        let reqs: Vec<GenRequest> = (0..n_reqs)
            .map(|i| chaos_request(i, seed, 5, QosClass::Interactive))
            .collect();
        let expected: Vec<Vec<usize>> = reqs.iter().map(offline_tokens).collect();

        let outcomes: Vec<(usize, Result<Vec<usize>, ServeError>)> =
            std::thread::scope(|s| {
                let tasks: Vec<_> = reqs
                    .iter()
                    .enumerate()
                    .map(|(i, req)| {
                        let handle = handle.clone();
                        let req = req.clone();
                        // Half the streams opt into failover; the other
                        // half keep the fault-to-client contract.
                        let opts = if i % 2 == 0 {
                            failover_opts()
                        } else {
                            RequestOptions::default()
                        };
                        s.spawn(move || {
                            let (idx, stream) =
                                handle.submit_with(req, opts).expect("submit never fails");
                            (idx, stream.collect().map(|r| r.tokens))
                        })
                    })
                    .collect();
                std::thread::sleep(Duration::from_millis(2));
                handle.worker(kill).inject_worker_panic();
                tasks.into_iter().map(|t| t.join().expect("no panic")).collect()
            });

        for (i, (idx, outcome)) in outcomes.iter().enumerate() {
            prop_assert!(*idx < workers, "routed to out-of-range worker {idx}");
            match outcome {
                Ok(tokens) => prop_assert_eq!(
                    tokens,
                    &expected[i],
                    "stream {} diverged under churn",
                    i
                ),
                // Only non-failover streams may fault, and only with the
                // two worker-death errors.
                Err(e) => {
                    prop_assert!(i % 2 == 1, "failover stream {} faulted: {e}", i);
                    prop_assert!(
                        matches!(e, ServeError::Disconnected | ServeError::WorkerPanicked(_)),
                        "unexpected fault: {e}"
                    );
                }
            }
        }
        fleet.shutdown();
    }
}
