//! Serving conformance and scheduler-fairness properties.
//!
//! **Conformance**: every token stream the threaded [`Server`] produces
//! must be bitwise identical to the offline
//! [`Session::run_to_completion`] output for the same (model, prompt,
//! seed, temperature, KV mode) — across server batch sizes 1/8/32, w2
//! and w4 weights, exact and quantized KV. Thread scheduling, admission
//! timing, and batching composition must never leak into results.
//!
//! **Fairness**: under mixed prompt lengths (1..512) no request
//! starves — the step-count gap between admission and first token is
//! bounded by queue position and the largest in-flight token budget.

use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{DequantGemm, KvCacheConfig, KvMode, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::{GenRequest, GenResult, RuntimeEngine, Server, ServerConfig, Session};
use proptest::prelude::*;
use std::sync::OnceLock;

fn packed_model(seed: u64, bits: u32) -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 48,
    };
    let fm = TinyFm::teacher(cfg, seed);
    let mut rng = SeededRng::new(seed ^ 0xbeef);
    let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::builder(bits)
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

/// A mixed fleet of requests: varied prompt lengths and budgets,
/// including a zero-budget request (finishes with no generated tokens).
fn request_fleet(n: usize, vocab: usize, seed: u64) -> Vec<GenRequest> {
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|i| GenRequest {
            prompt: (0..1 + rng.below(6)).map(|_| rng.below(vocab)).collect(),
            max_new_tokens: if i == n / 2 { 0 } else { 1 + rng.below(5) },
            temperature: 0.7 + 0.1 * (i % 3) as f64,
            seed: 1000 + i as u64,
            ..Default::default()
        })
        .collect()
}

/// Offline reference: one `Session` driven to completion on the main
/// thread. By the determinism contract its outputs depend only on each
/// request's own parameters and the KV mode.
fn offline_reference(model: &PackedTinyFm, kv: KvMode, reqs: &[GenRequest]) -> Vec<GenResult> {
    let mut session = Session::with_kv_mode(model.clone(), DequantGemm, 4, kv).unwrap();
    for r in reqs {
        session.submit(r.clone());
    }
    session.run_to_completion()
}

fn assert_server_matches_offline(model: &PackedTinyFm, kv: KvMode, max_batch: usize, label: &str) {
    let reqs = request_fleet(34, model.config().vocab, 9 + max_batch as u64);
    let expected = offline_reference(model, kv, &reqs);

    let server = Server::spawn(
        model.clone(),
        DequantGemm,
        ServerConfig {
            max_batch,
            queue_capacity: 64,
            max_in_flight: 64,
            kv_mode: kv,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let streams: Vec<_> = reqs
        .iter()
        .map(|r| handle.submit(r.clone()).expect("submit"))
        .collect();
    // Collect in submission order; `collect` also checks (via its debug
    // assertion) that the streamed tokens reconstruct the final suffix.
    let results: Vec<GenResult> = streams
        .into_iter()
        .map(|s| s.collect().expect("stream completes"))
        .collect();
    drop(handle);
    let report = server.shutdown();

    assert_eq!(results.len(), expected.len(), "{label}: completion count");
    for (got, want) in results.iter().zip(expected.iter()) {
        assert_eq!(
            got.tokens, want.tokens,
            "{label}: served stream diverged from offline decode"
        );
        assert_eq!(got.new_tokens, want.new_tokens, "{label}: token count");
    }
    assert_eq!(report.served, reqs.len(), "{label}: all requests served");
    assert_eq!(
        report.final_kv_rows, 0,
        "{label}: finished requests must release their KV rows eagerly"
    );
    assert_eq!(
        report.cancelled + report.expired + report.faulted,
        0,
        "{label}"
    );
}

fn quantized_kv() -> KvMode {
    // A small residual window so cache quantization actually engages at
    // these sequence lengths.
    KvMode::Quantized(KvCacheConfig {
        bits: 4,
        group: 8,
        residual: 8,
    })
}

#[test]
fn server_conformance_w4_exact_kv() {
    let model = packed_model(51, 4);
    for batch in [1, 8, 32] {
        assert_server_matches_offline(&model, KvMode::Exact, batch, &format!("w4/exact/b{batch}"));
    }
}

#[test]
fn server_conformance_w4_quantized_kv() {
    let model = packed_model(51, 4);
    for batch in [1, 8, 32] {
        assert_server_matches_offline(&model, quantized_kv(), batch, &format!("w4/qkv/b{batch}"));
    }
}

#[test]
fn server_conformance_w2_exact_kv() {
    let model = packed_model(52, 2);
    for batch in [1, 8, 32] {
        assert_server_matches_offline(&model, KvMode::Exact, batch, &format!("w2/exact/b{batch}"));
    }
}

#[test]
fn server_conformance_w2_quantized_kv() {
    let model = packed_model(52, 2);
    for batch in [1, 8, 32] {
        assert_server_matches_offline(&model, quantized_kv(), batch, &format!("w2/qkv/b{batch}"));
    }
}

#[test]
fn server_conformance_holds_on_the_fused_parallel_engine() {
    // Engine independence: the work-stealing fused engine serves the
    // same streams as the dequantize-then-matmul reference.
    let model = packed_model(51, 4);
    let reqs = request_fleet(12, model.config().vocab, 77);
    let expected = offline_reference(&model, KvMode::Exact, &reqs);
    let server = Server::spawn(
        model,
        RuntimeEngine::parallel(),
        ServerConfig {
            max_batch: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let streams: Vec<_> = reqs
        .iter()
        .map(|r| handle.submit(r.clone()).unwrap())
        .collect();
    for (s, want) in streams.into_iter().zip(expected.iter()) {
        assert_eq!(s.collect().unwrap().tokens, want.tokens);
    }
}

/// Fairness model for the proptest below: a tiny 1-layer model so the
/// 512-token prefills stay cheap, shared across proptest cases.
fn fairness_model() -> &'static PackedTinyFm {
    static MODEL: OnceLock<PackedTinyFm> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = TinyFmConfig {
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            n_layers: 1,
            vocab: 32,
        };
        let fm = TinyFm::teacher(cfg, 7);
        let mut rng = SeededRng::new(70);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(8, 0.9, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(16)
                .row_block(16)
                .build()
                .unwrap(),
        );
        PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// No starvation under mixed prompt lengths: a request admitted with
    /// `ahead` requests in front of it gets its first token within
    /// `Bmax × (ahead/max_batch + 1)` steps of admission, where `Bmax`
    /// is the largest token budget in play — prompts of length 1..512
    /// must not change scheduling (prefill is one step regardless).
    #[test]
    fn no_request_starves_under_mixed_prompt_lengths(
        seed in 0u64..1_000,
        max_batch in 1usize..9,
        n_reqs in 2usize..13,
    ) {
        const BMAX: usize = 4;
        let model = fairness_model();
        let vocab = model.config().vocab;
        let mut rng = SeededRng::new(seed);
        let mut session = Session::new(model.clone(), DequantGemm, max_batch);

        // (id, ahead-of-it-at-admission, steps-at-admission)
        let mut admitted = Vec::new();
        let submit = |session: &mut Session<DequantGemm>,
                          admitted: &mut Vec<(usize, usize, usize)>,
                          rng: &mut SeededRng| {
            // Mostly short prompts, occasionally near the 512 cap.
            let len = if rng.below(4) == 0 {
                1 + rng.below(512)
            } else {
                1 + rng.below(32)
            };
            let ahead = session.pending();
            let at_step = session.stats().steps;
            let id = session.submit(GenRequest {
                prompt: (0..len).map(|_| rng.below(vocab)).collect(),
                max_new_tokens: 1 + rng.below(BMAX),
                temperature: 0.8,
                seed: rng.below(1 << 30) as u64,
                ..Default::default()
            });
            admitted.push((id, ahead, at_step));
        };

        // Half the fleet up front, the rest mid-flight (continuous
        // admission must not let either group starve).
        let upfront = n_reqs.div_ceil(2);
        for _ in 0..upfront {
            submit(&mut session, &mut admitted, &mut rng);
        }
        let mut first_token_step = vec![None; n_reqs];
        let mut finished = 0usize;
        let mut late = n_reqs - upfront;
        while finished < n_reqs {
            let report = session.step_report();
            let now = session.stats().steps;
            for (id, _) in report.emitted {
                if first_token_step[id].is_none() {
                    first_token_step[id] = Some(now);
                }
            }
            for res in report.finished {
                // Zero-budget requests never emit; treat completion as
                // their first service.
                first_token_step[res.id].get_or_insert(now);
                finished += 1;
            }
            if late > 0 {
                submit(&mut session, &mut admitted, &mut rng);
                late -= 1;
            }
        }

        for &(id, ahead, at_step) in &admitted {
            let first = first_token_step[id].expect("every request served");
            let gap = first - at_step;
            let bound = BMAX * (ahead / max_batch + 1);
            prop_assert!(
                gap <= bound,
                "request {id} starved: ahead={ahead} max_batch={max_batch} \
                 gap={gap} > bound={bound}"
            );
        }
    }
}
