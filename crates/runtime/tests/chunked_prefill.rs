//! Chunk-boundary conformance for budgeted chunked prefill.
//!
//! The contract under test: in exact-KV mode, splitting a prompt into
//! prefill chunks of *any* size (and capping per-step tokens with any
//! budget) is a pure scheduling choice — every served token stream is
//! **bitwise identical** to whole-prompt prefill, KV rows are appended
//! token by token either way, and cancelling a request parked mid-prefill
//! reclaims its partial KV cache in full.

use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{DequantGemm, KvCacheConfig, KvMode, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::{
    GenRequest, GenResult, RuntimeEngine, SchedulerConfig, Server, ServerConfig, Session,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A tiny 1-layer model so 512-token prefills stay cheap, shared across
/// proptest cases.
fn tiny_model() -> &'static PackedTinyFm {
    static MODEL: OnceLock<PackedTinyFm> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = TinyFmConfig {
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            n_layers: 1,
            vocab: 32,
        };
        let fm = TinyFm::teacher(cfg, 19);
        let mut rng = SeededRng::new(190);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(8, 0.9, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(16)
                .row_block(16)
                .build()
                .unwrap(),
        );
        PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
    })
}

/// A 2-layer model matching the serving conformance fixtures.
fn serving_model() -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 48,
    };
    let fm = TinyFm::teacher(cfg, 57);
    let mut rng = SeededRng::new(570);
    let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

fn fleet(n: usize, vocab: usize, seed: u64, max_prompt: usize) -> Vec<GenRequest> {
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|i| GenRequest {
            prompt: (0..1 + rng.below(max_prompt))
                .map(|_| rng.below(vocab))
                .collect(),
            max_new_tokens: 1 + rng.below(5),
            temperature: 0.7 + 0.1 * (i % 3) as f64,
            seed: 4_000 + i as u64,
            ..Default::default()
        })
        .collect()
}

fn whole_prompt_reference(model: &PackedTinyFm, reqs: &[GenRequest]) -> Vec<GenResult> {
    let mut session = Session::new(model.clone(), DequantGemm, 4);
    for r in reqs {
        session.submit(r.clone());
    }
    session.run_to_completion()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary prompt lengths, chunk sizes, budgets, and mid-flight
    /// admissions, chunked exact-KV serving is bitwise equal to
    /// whole-prompt prefill, and cancelling a request parked mid-prefill
    /// leaves no KV behind.
    #[test]
    fn chunked_serving_is_bitwise_equal_to_whole_prompt(
        seed in 0u64..1_000,
        main_len in 1usize..513,
        chunk in 1usize..65,
        budget in 1usize..49,
        max_batch in 1usize..7,
    ) {
        let model = tiny_model();
        let vocab = model.config().vocab;
        let mut rng = SeededRng::new(seed);
        let main = GenRequest {
            prompt: (0..main_len).map(|_| rng.below(vocab)).collect(),
            max_new_tokens: 1 + rng.below(4),
            temperature: 0.8,
            seed: 7_000 + seed,
            ..Default::default()
        };
        let sides = fleet(3, vocab, seed ^ 0x51de, 24);
        // The victim's long prompt guarantees it is still mid-prefill
        // (or unscheduled) when cancelled two steps in.
        let victim = GenRequest {
            prompt: (0..300).map(|_| rng.below(vocab)).collect(),
            max_new_tokens: 4,
            temperature: 0.8,
            seed: 9_000 + seed,
            ..Default::default()
        };

        // Reference: whole-prompt prefill, everything submitted upfront
        // (by the determinism contract, admission timing is irrelevant).
        let mut all = vec![main.clone()];
        all.extend(sides.iter().cloned());
        let expected = whole_prompt_reference(model, &all);

        let cfg = SchedulerConfig::new(max_batch)
            .prefill_chunk(chunk)
            .token_budget(budget);
        let mut session =
            Session::with_config(model.clone(), DequantGemm, cfg, KvMode::Exact).unwrap();
        // main and sides[0] up front, the victim between them, the rest
        // admitted mid-flight.
        let main_id = session.submit(main);
        let s0_id = session.submit(sides[0].clone());
        let victim_id = session.submit(victim);
        let mut results: Vec<GenResult> = Vec::new();
        results.extend(session.step());
        results.extend(session.step());
        let occ_before = session.kv_occupancy();
        prop_assert!(session.cancel(victim_id), "victim is live two steps in");
        prop_assert!(
            session.kv_occupancy() <= occ_before,
            "cancel must never grow occupancy"
        );
        let s1_id = session.submit(sides[1].clone());
        let s2_id = session.submit(sides[2].clone());
        results.extend(session.run_to_completion());

        prop_assert_eq!(session.kv_occupancy(), 0, "all KV reclaimed at idle");
        prop_assert_eq!(session.stats().cancelled, 1);
        let by_id: HashMap<usize, GenResult> =
            results.into_iter().map(|r| (r.id, r)).collect();
        prop_assert!(!by_id.contains_key(&victim_id), "victim never finishes");
        for (got_id, want) in [
            (main_id, &expected[0]),
            (s0_id, &expected[1]),
            (s1_id, &expected[2]),
            (s2_id, &expected[3]),
        ] {
            let got = by_id.get(&got_id).expect("request finished");
            prop_assert_eq!(
                &got.tokens,
                &want.tokens,
                "chunk={} budget={} diverged from whole-prompt prefill",
                chunk,
                budget
            );
            prop_assert_eq!(got.new_tokens, want.new_tokens);
        }
    }
}

/// The threaded server under a chunked scheduler serves streams bitwise
/// equal to the offline whole-prompt reference (exact KV), on both the
/// reference engine and the fused parallel engine.
#[test]
fn chunked_server_matches_whole_prompt_offline_reference() {
    let model = serving_model();
    let reqs = fleet(14, model.config().vocab, 31, 40);
    let expected = whole_prompt_reference(&model, &reqs);

    for parallel in [false, true] {
        let cfg = ServerConfig {
            max_batch: 6,
            prefill_chunk: 4,
            token_budget: 9,
            ..ServerConfig::default()
        };
        let server = if parallel {
            Server::spawn(model.clone(), RuntimeEngine::parallel(), cfg).unwrap()
        } else {
            // Boxing is avoidable but spawn is generic; duplicate calls.
            Server::spawn(model.clone(), DequantGemm, cfg).unwrap()
        };
        let handle = server.handle();
        let streams: Vec<_> = reqs
            .iter()
            .map(|r| handle.submit(r.clone()).expect("submit"))
            .collect();
        for (s, want) in streams.into_iter().zip(expected.iter()) {
            let got = s.collect().expect("stream completes");
            assert_eq!(
                got.tokens, want.tokens,
                "chunked serving diverged (parallel={parallel})"
            );
        }
        drop(handle);
        let report = server.shutdown();
        assert_eq!(report.served, reqs.len());
        assert_eq!(report.final_kv_rows, 0);
        assert!(
            report.session.prefill_chunks > reqs.len(),
            "chunking must actually split prompts (got {} chunks for {} requests)",
            report.session.prefill_chunks,
            reqs.len()
        );
        assert_eq!(
            report.session.prefill_tokens,
            reqs.iter().map(|r| r.prompt.len()).sum::<usize>(),
            "every prompt token prefilled exactly once"
        );
    }
}

/// Under quantized KV, chunking changes when cache rows age past the
/// residual window, so the contract is server-vs-offline conformance at
/// the *same* chunk configuration (not chunked-vs-whole).
#[test]
fn quantized_kv_chunked_server_matches_chunked_offline_session() {
    let model = serving_model();
    let kv = KvMode::Quantized(KvCacheConfig {
        bits: 4,
        group: 8,
        residual: 8,
    });
    let reqs = fleet(10, model.config().vocab, 77, 32);
    let sched = SchedulerConfig::new(4).prefill_chunk(5).token_budget(11);
    let mut offline = Session::with_config(model.clone(), DequantGemm, sched, kv).unwrap();
    for r in &reqs {
        offline.submit(r.clone());
    }
    let expected = offline.run_to_completion();

    let server = Server::spawn(
        model,
        DequantGemm,
        ServerConfig {
            max_batch: 4,
            prefill_chunk: 5,
            token_budget: 11,
            kv_mode: kv,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let streams: Vec<_> = reqs
        .iter()
        .map(|r| handle.submit(r.clone()).unwrap())
        .collect();
    for (s, want) in streams.into_iter().zip(expected.iter()) {
        assert_eq!(s.collect().unwrap().tokens, want.tokens);
    }
}
