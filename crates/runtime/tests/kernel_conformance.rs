//! Kernel conformance suite: every registered kernel must match the
//! scalar `f64` oracle within its **pinned** tolerance across a sweep of
//! shapes × bit widths × outlier regimes × batch sizes — and the oracle
//! itself must match the dense `dequantize().matmul(..)` reference bit
//! for bit. A kernel whose pin loosens is an API change; this suite is
//! what holds the pin.
//!
//! Also carries the GEMV edge-case battery: m = 1 with odd reduction
//! lengths (partial tail macro- and micro-blocks), tiles that straddle
//! group boundaries, and outlier-heavy rows — through both the old
//! (scalar) and new (lane-blocked) kernels.

use microscopiq_core::config::GroupAxis;
use microscopiq_linalg::{Matrix, SeededRng};
use microscopiq_runtime::kernels::synth::{synth_packed, SynthSpec};
use microscopiq_runtime::kernels::{
    fused_gemm_serial, fused_gemv_serial, DispatchKey, KernelCtx, KernelRegistry, Tolerance,
    BUCKETED_LANE_KERNEL, LANE_KERNEL, SCALAR_KERNEL, SIMD_KERNEL,
};
use microscopiq_runtime::{DecodedCache, EngineConfig, KernelPolicy, RuntimeEngine};

/// The sweep's outlier regimes: none, the paper's ~3% operating point,
/// and outlier-heavy (most micro-blocks carry a pair).
const OUTLIER_REGIMES: [f64; 3] = [0.0, 0.03, 0.6];

fn assert_within(tol: Tolerance, got: &[f64], oracle: &[f64], what: &str) {
    assert_eq!(got.len(), oracle.len(), "{what}: length");
    for (i, (&a, &b)) in got.iter().zip(oracle.iter()).enumerate() {
        assert!(
            tol.accepts(a, b),
            "{what}: element {i} off by {:.3e} (allowed {:.3e})",
            (a - b).abs(),
            tol.allowed(b)
        );
    }
}

/// Runs one kernel over the full row range (GEMM) or through its GEMV
/// entry (m = 1), with a decoded cache in the context so cache-requiring
/// kernels participate.
fn run_kernel(
    registry: &KernelRegistry,
    name: &str,
    layer: &microscopiq_core::packed::PackedLayer,
    acts: &Matrix,
    cache: &DecodedCache,
    use_gemv: bool,
) -> Vec<f64> {
    let kernel = registry.get(name).expect("registered");
    let ctx = KernelCtx::cached(cache, layer.content_fingerprint());
    if use_gemv {
        let mut out = vec![0.0_f64; layer.d_row()];
        kernel.gemv(&ctx, layer, acts.as_slice(), &mut out);
        out
    } else {
        let mut out = vec![0.0_f64; layer.d_row() * acts.cols()];
        kernel.gemm_rows(&ctx, layer, acts, 0, layer.d_row(), &mut out);
        out
    }
}

#[test]
fn every_registered_kernel_meets_its_pin_across_the_sweep() {
    let registry = KernelRegistry::with_defaults();
    let mut cases = 0usize;
    for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
        for bits in [2u32, 4] {
            for rate in OUTLIER_REGIMES {
                // (d_row, d_col, macro): aligned, odd-k tail macro-block,
                // and tail micro-block shapes.
                for (d_row, d_col, macro_block) in [(24, 48, 16), (32, 52, 16), (16, 44, 8)] {
                    let layer = synth_packed(&SynthSpec {
                        axis,
                        d_row,
                        d_col,
                        bits,
                        micro: 8,
                        macro_block,
                        outlier_rate: rate,
                        seed: 1000 + cases as u64,
                    });
                    let mut rng = SeededRng::new(2000 + cases as u64);
                    for m in [1usize, 3, 9] {
                        let acts = Matrix::from_fn(d_col, m, |_, _| rng.normal(0.0, 1.0));
                        let oracle = fused_gemm_serial(&layer, &acts);
                        // The oracle's own pin: bitwise against dense.
                        assert_eq!(
                            oracle,
                            layer.dequantize().matmul(&acts),
                            "oracle must stay bit-identical to dense \
                             ({axis:?} bits={bits} rate={rate} m={m})"
                        );
                        let cache = DecodedCache::new(8 << 20);
                        for kernel in registry.kernels() {
                            let what = format!(
                                "{} {axis:?} bits={bits} rate={rate} \
                                 {d_row}x{d_col}/{macro_block} m={m}",
                                kernel.name()
                            );
                            let got =
                                run_kernel(&registry, kernel.name(), &layer, &acts, &cache, m == 1);
                            assert_within(kernel.tolerance(), &got, oracle.as_slice(), &what);
                        }
                        cases += 1;
                    }
                }
            }
        }
    }
    assert!(cases >= 100, "sweep shrank: only {cases} cases ran");
}

#[test]
fn gemv_odd_k_with_tail_blocks_through_old_and_new_kernels() {
    // m = 1 with k = 52 over macro 16 / micro 8: the last group holds 4
    // slots (one partial micro-block) — the historical off-by-one trap
    // for group-walking kernels.
    let registry = KernelRegistry::with_defaults();
    for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
        for bits in [2u32, 4] {
            for k in [52usize, 41, 17] {
                let layer = synth_packed(&SynthSpec {
                    axis,
                    d_row: 24,
                    d_col: k,
                    bits,
                    micro: 8,
                    macro_block: 16,
                    outlier_rate: 0.2,
                    seed: 7 + k as u64,
                });
                let mut rng = SeededRng::new(99 + k as u64);
                let x: Vec<f64> = (0..k).map(|_| rng.normal(0.0, 1.0)).collect();
                let oracle = fused_gemv_serial(&layer, &x);
                // Old kernel (scalar): bitwise against its GEMM shape.
                let acts = Matrix::from_vec(k, 1, x.clone());
                assert_eq!(
                    oracle,
                    fused_gemm_serial(&layer, &acts).as_slice().to_vec(),
                    "scalar gemv/gemm parity {axis:?} bits={bits} k={k}"
                );
                // Every registered kernel (lane, simd, bucketed-lane,
                // cached, …): within its pin.
                let cache = DecodedCache::new(1 << 20);
                for kernel in registry.kernels() {
                    let name = kernel.name();
                    let got = run_kernel(&registry, name, &layer, &acts, &cache, true);
                    assert_within(
                        kernel.tolerance(),
                        &got,
                        &oracle,
                        &format!("{name} {axis:?} k={k}"),
                    );
                }
            }
        }
    }
}

#[test]
fn group_boundary_straddling_tiles_agree_with_full_row_range() {
    // Row tiles that cut through the middle of a line's groups
    // (DotProduct) or straddle a macro-block (engine-level, where
    // OutputChannel quantizes tile edges): tiled execution must equal the
    // one-shot full-range call for every kernel, because each output
    // element's accumulation never crosses a tile.
    let registry = KernelRegistry::with_defaults();
    let layer = synth_packed(&SynthSpec {
        axis: GroupAxis::DotProduct,
        d_row: 29, // odd row count → ragged last tile
        d_col: 48,
        bits: 2,
        micro: 8,
        macro_block: 16,
        outlier_rate: 0.15,
        seed: 55,
    });
    let mut rng = SeededRng::new(56);
    let acts = Matrix::from_fn(48, 5, |_, _| rng.normal(0.0, 1.0));
    let cache = DecodedCache::new(1 << 20);
    for kernel in registry.kernels() {
        let ctx = KernelCtx::cached(&cache, layer.content_fingerprint());
        let mut full = vec![0.0_f64; 29 * 5];
        kernel.gemm_rows(&ctx, &layer, &acts, 0, 29, &mut full);
        let mut stitched = vec![0.0_f64; 29 * 5];
        for (lo, hi) in [(0usize, 3usize), (3, 10), (10, 17), (17, 29)] {
            let mut tile = vec![0.0_f64; (hi - lo) * 5];
            kernel.gemm_rows(&ctx, &layer, &acts, lo, hi, &mut tile);
            stitched[lo * 5..hi * 5].copy_from_slice(&tile);
        }
        assert_eq!(full, stitched, "{} tiling changed results", kernel.name());
    }
    // Engine level: tile_rows = 3 on an OutputChannel layer forces the
    // quantum round-up; results must match the untiled engine bitwise
    // (scalar dispatch) for m = 1 and m > 1.
    let oc = synth_packed(&SynthSpec {
        axis: GroupAxis::OutputChannel,
        d_row: 40,
        d_col: 32,
        bits: 2,
        micro: 8,
        macro_block: 16,
        outlier_rate: 0.3,
        seed: 57,
    });
    let mut rng = SeededRng::new(58);
    for m in [1usize, 7] {
        let acts = Matrix::from_fn(32, m, |_, _| rng.normal(0.0, 1.0));
        let tiled = RuntimeEngine::new(EngineConfig {
            threads: 3,
            cache_bytes: 0,
            tile_rows: 3,
            parallel_threshold: 0,
            ..EngineConfig::default()
        });
        assert_eq!(
            tiled.gemm(&oc, &acts),
            RuntimeEngine::scalar().gemm(&oc, &acts),
            "straddling tiles m={m}"
        );
    }
}

#[test]
fn outlier_heavy_rows_through_old_and_new_kernels() {
    // Nearly every micro-block carries an outlier pair: the scalar path
    // must stay bitwise, the lane kernel must hold its pin even though
    // dispatch would route this regime to scalar (supports() is advice,
    // not a correctness gate).
    let registry = KernelRegistry::with_defaults();
    for axis in [GroupAxis::DotProduct, GroupAxis::OutputChannel] {
        for bits in [2u32, 4] {
            let layer = synth_packed(&SynthSpec {
                axis,
                d_row: 32,
                d_col: 48,
                bits,
                micro: 8,
                macro_block: 16,
                outlier_rate: 0.95,
                seed: 77,
            });
            assert!(
                layer.outlier_micro_block_fraction() > 0.5,
                "regime must actually be outlier-heavy"
            );
            // Dispatch advice: Fast policy refuses lane here.
            let key = DispatchKey::for_call(&layer, 8);
            assert_eq!(
                registry
                    .select(KernelPolicy::Fast, &key, &KernelCtx::uncached())
                    .name(),
                SCALAR_KERNEL,
                "outlier-heavy dispatch must fall back to scalar"
            );
            let mut rng = SeededRng::new(78);
            let cache = DecodedCache::new(1 << 20);
            for m in [1usize, 8] {
                let acts = Matrix::from_fn(48, m, |_, _| rng.normal(0.0, 1.0));
                let oracle = fused_gemm_serial(&layer, &acts);
                assert_eq!(oracle, layer.dequantize().matmul(&acts), "oracle bitwise");
                for kernel in registry.kernels() {
                    let name = kernel.name();
                    let got = run_kernel(&registry, name, &layer, &acts, &cache, m == 1);
                    assert_within(
                        kernel.tolerance(),
                        &got,
                        oracle.as_slice(),
                        &format!("{name} heavy {axis:?} bits={bits} m={m}"),
                    );
                }
            }
        }
    }
}

#[test]
fn gemv_row_tiles_stitch_bitwise_for_every_kernel() {
    // The parallel-GEMV determinism contract: restricted-row-range GEMV
    // calls must accumulate each output element in the same order as the
    // full-range call, so disjoint tiles stitched in row order equal the
    // one-shot gemv bit for bit — for every registered kernel, on both
    // group axes. DotProduct tolerates ragged tile edges; OutputChannel
    // tiles align to the macro-block quantum like the engine's splitter.
    let registry = KernelRegistry::with_defaults();
    let tilings: [(&[(usize, usize)], GroupAxis); 2] = [
        (
            &[(0, 5), (5, 16), (16, 23), (23, 48)],
            GroupAxis::DotProduct,
        ),
        (&[(0, 16), (16, 32), (32, 48)], GroupAxis::OutputChannel),
    ];
    for (tiles, axis) in tilings {
        let layer = synth_packed(&SynthSpec {
            axis,
            d_row: 48,
            d_col: 64,
            bits: 2,
            micro: 8,
            macro_block: 16,
            outlier_rate: 0.15,
            seed: 91,
        });
        let mut rng = SeededRng::new(92);
        let x: Vec<f64> = (0..64).map(|_| rng.normal(0.0, 1.0)).collect();
        let cache = DecodedCache::new(1 << 20);
        for kernel in registry.kernels() {
            let ctx = KernelCtx::cached(&cache, layer.content_fingerprint());
            let mut full = vec![0.0_f64; 48];
            kernel.gemv(&ctx, &layer, &x, &mut full);
            let mut stitched = vec![0.0_f64; 48];
            for &(lo, hi) in tiles {
                let mut tile = vec![0.0_f64; hi - lo];
                kernel.gemv_rows(&ctx, &layer, &x, lo, hi, &mut tile);
                stitched[lo..hi].copy_from_slice(&tile);
            }
            assert_eq!(
                full,
                stitched,
                "{} gemv tiling changed results on {axis:?}",
                kernel.name()
            );
        }
    }
}

#[test]
fn without_simd_registry_falls_back_gracefully() {
    // The CI leg with SIMD force-disabled (and any host without AVX2 /
    // NEON) must resolve Fast dispatch deterministically through the
    // portable kernels — no simd-f32 in the registry, no behavior cliff.
    let registry = KernelRegistry::without_simd();
    assert!(
        !registry.names().contains(&SIMD_KERNEL),
        "without_simd must not register the SIMD kernel"
    );
    let ctx = KernelCtx::uncached();
    // m = 1 at 2 bits: the bucketed-lane kernel is the Fast pick.
    let gemv_key = DispatchKey {
        m: 1,
        bits: 2,
        outlier_frac: 0.03,
        group: 64,
    };
    assert_eq!(
        registry.select(KernelPolicy::Fast, &gemv_key, &ctx).name(),
        BUCKETED_LANE_KERNEL
    );
    // GEMM shapes fall back to the lane kernel.
    let gemm_key = DispatchKey {
        m: 8,
        bits: 2,
        outlier_frac: 0.03,
        group: 64,
    };
    assert_eq!(
        registry.select(KernelPolicy::Fast, &gemm_key, &ctx).name(),
        LANE_KERNEL
    );
    // And the fallback serving path is bitwise stable run-to-run: two
    // independent Fast engines over the portable registry agree exactly.
    let layer = synth_packed(&SynthSpec {
        axis: GroupAxis::DotProduct,
        d_row: 48,
        d_col: 64,
        bits: 2,
        micro: 8,
        macro_block: 16,
        outlier_rate: 0.03,
        seed: 93,
    });
    let mut rng = SeededRng::new(94);
    let x: Vec<f64> = (0..64).map(|_| rng.normal(0.0, 1.0)).collect();
    let acts = Matrix::from_fn(64, 6, |_, _| rng.normal(0.0, 1.0));
    let engine = |threads: usize| {
        RuntimeEngine::with_registry(
            EngineConfig {
                threads,
                cache_bytes: 0,
                policy: KernelPolicy::Fast,
                ..EngineConfig::default()
            },
            KernelRegistry::without_simd(),
        )
    };
    let (a, b) = (engine(1), engine(3));
    assert_eq!(a.gemv(&layer, &x), b.gemv(&layer, &x));
    assert_eq!(a.gemm(&layer, &acts), b.gemm(&layer, &acts));
    assert_eq!(a.gemv(&layer, &x), a.gemv(&layer, &x), "run-to-run");
}

#[test]
fn default_dispatch_serving_stays_bitwise_stable() {
    // The end-to-end guarantee the refactor must not move: a
    // default-policy engine without a cache equals the scalar oracle bit
    // for bit, and the m = 1 GEMV entry equals the m = 1 GEMM column.
    let layer = synth_packed(&SynthSpec {
        axis: GroupAxis::DotProduct,
        d_row: 64,
        d_col: 64,
        bits: 2,
        micro: 8,
        macro_block: 64,
        outlier_rate: 0.05,
        seed: 31,
    });
    let mut rng = SeededRng::new(32);
    let acts = Matrix::from_fn(64, 8, |_, _| rng.normal(0.0, 1.0));
    let default_uncached = RuntimeEngine::new(EngineConfig {
        threads: 1,
        cache_bytes: 0,
        ..EngineConfig::default()
    });
    assert_eq!(
        default_uncached.gemm(&layer, &acts),
        fused_gemm_serial(&layer, &acts)
    );
    let x: Vec<f64> = (0..64).map(|_| rng.normal(0.0, 1.0)).collect();
    assert_eq!(
        default_uncached.gemv(&layer, &x),
        fused_gemv_serial(&layer, &x)
    );
}
