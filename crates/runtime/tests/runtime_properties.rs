//! Property tests: the fused runtime must match the dequantize-then-matmul
//! dense reference over random layer geometries, bit budgets, grouping
//! axes, and outlier densities — bitwise for the uncached paths, within
//! the 1e-9 contract for the bucketed cached path.

use microscopiq_core::config::{GroupAxis, QuantConfig};
use microscopiq_core::solver::solve;
use microscopiq_core::traits::LayerTensors;
use microscopiq_linalg::{Matrix, SeededRng};
use microscopiq_runtime::{fused_gemm_serial, EngineConfig, KernelPolicy, RuntimeEngine};
use proptest::prelude::*;

fn build_packed(
    rows: usize,
    cols: usize,
    axis: GroupAxis,
    bits: u32,
    outlier_rate: f64,
    seed: u64,
) -> microscopiq_core::packed::PackedLayer {
    let mut rng = SeededRng::new(seed);
    let mut w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 0.02));
    let n_out = ((rows * cols) as f64 * outlier_rate).round() as usize;
    for _ in 0..n_out {
        let r = rng.below(rows);
        let c = rng.below(cols);
        w[(r, c)] = rng.sign() * rng.uniform_range(0.15, 0.5);
    }
    let x = Matrix::from_fn(cols, 8, |_, _| rng.normal(0.0, 1.0));
    let layer = LayerTensors::new(w, x).unwrap();
    let cfg = QuantConfig::builder(bits)
        .macro_block(16)
        .row_block(16)
        .group_axis(axis)
        .build()
        .unwrap();
    solve(&layer, &cfg).unwrap().packed.unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Runtime-vs-dense GEMM parity: max abs diff < 1e-9 (in fact 0) for
    /// every engine flavour, across axes, bit budgets, and outlier rates.
    #[test]
    fn fused_engines_match_dense_reference(
        seed in 0u64..1000,
        rows_blocks in 1usize..4,
        cols_blocks in 1usize..4,
        batch in 1usize..12,
        bits in prop_oneof![Just(2u32), Just(4u32)],
        axis in prop_oneof![Just(GroupAxis::DotProduct), Just(GroupAxis::OutputChannel)],
        rate in prop_oneof![Just(0.0), 0.005f64..0.08],
    ) {
        let rows = rows_blocks * 16;
        let cols = cols_blocks * 16;
        let packed = build_packed(rows, cols, axis, bits, rate, seed);
        let mut rng = SeededRng::new(seed ^ 0xABCD);
        let acts = Matrix::from_fn(cols, batch, |_, _| rng.normal(0.0, 1.0));
        let dense = packed.dequantize().matmul(&acts);

        let serial = fused_gemm_serial(&packed, &acts);
        let mut max_diff = 0.0_f64;
        for (a, b) in serial.as_slice().iter().zip(dense.as_slice().iter()) {
            max_diff = max_diff.max((a - b).abs());
        }
        prop_assert!(max_diff < 1e-9, "serial diff {}", max_diff);
        prop_assert_eq!(&serial, &dense);

        let parallel = RuntimeEngine::new(EngineConfig {
            threads: 4,
            cache_bytes: 0,
            tile_rows: 0,
            parallel_threshold: 0,
            ..EngineConfig::default()
        })
        .gemm(&packed, &acts);
        prop_assert_eq!(&parallel, &dense);

        // The cached engine reassociates per-bucket partial sums, so it
        // matches to the runtime's 1e-9 contract rather than bitwise; a
        // warm second pass must repeat the cold pass exactly.
        let cached = RuntimeEngine::new(EngineConfig {
            threads: 2,
            cache_bytes: 1 << 20,
            tile_rows: 0,
            parallel_threshold: 0,
            ..EngineConfig::default()
        });
        let cold = cached.gemm(&packed, &acts);
        let mut cached_diff = 0.0_f64;
        for (a, b) in cold.as_slice().iter().zip(dense.as_slice().iter()) {
            cached_diff = cached_diff.max((a - b).abs());
        }
        prop_assert!(cached_diff < 1e-9, "cached diff {}", cached_diff);
        prop_assert_eq!(&cached.gemm(&packed, &acts), &cold);

        // Fast-policy dispatch (lane-blocked f32 on supported shapes,
        // scalar elsewhere) must hold whichever kernel it picks to that
        // kernel's pinned tolerance.
        let fast = RuntimeEngine::new(EngineConfig {
            threads: 1,
            cache_bytes: 0,
            tile_rows: 0,
            parallel_threshold: usize::MAX,
            policy: KernelPolicy::Fast,
            prefetch: false,
        });
        let picked = fast.kernel_for(&packed, batch);
        let tol = fast.registry().get(picked).expect("registered").tolerance();
        let lane = fast.gemm(&packed, &acts);
        for (a, b) in lane.as_slice().iter().zip(dense.as_slice().iter()) {
            prop_assert!(
                tol.accepts(*a, *b),
                "fast-policy kernel {} off by {} (allowed {})",
                picked,
                (a - b).abs(),
                tol.allowed(*b)
            );
        }
    }

    /// A cache too small to hold the working set still computes exact
    /// results (evictions must never corrupt tiles).
    #[test]
    fn thrashing_cache_stays_exact(seed in 0u64..500) {
        let packed = build_packed(32, 48, GroupAxis::DotProduct, 2, 0.03, seed);
        let mut rng = SeededRng::new(seed);
        let acts = Matrix::from_fn(48, 5, |_, _| rng.normal(0.0, 1.0));
        let engine = RuntimeEngine::new(EngineConfig {
            threads: 2,
            cache_bytes: 1024, // far below the decoded working set
            tile_rows: 0,
            parallel_threshold: 0,
            ..EngineConfig::default()
        });
        let dense = packed.dequantize().matmul(&acts);
        for _pass in 0..2 {
            let got = engine.gemm(&packed, &acts);
            let mut diff = 0.0_f64;
            for (a, b) in got.as_slice().iter().zip(dense.as_slice().iter()) {
                diff = diff.max((a - b).abs());
            }
            prop_assert!(diff < 1e-9, "thrashing diff {}", diff);
        }
        let stats = engine.cache_stats().expect("cache enabled");
        prop_assert!(stats.evictions > 0, "cap must force eviction");
    }
}
