//! Property suite for the wire front-end's HTTP request parser.
//!
//! The parser sits directly on `read()` boundaries, so the properties
//! are framed the way the socket delivers bytes: a valid request must
//! parse identically however its bytes are split across feeds
//! (including byte-at-a-time), pipelined requests must come out one per
//! parse with nothing lost, and *no* input — truncations, flipped
//! bytes, inserted garbage, or pure random soup — may ever panic the
//! parser: every failure is a typed error carrying a clean 4xx/5xx
//! status.

use microscopiq_linalg::SeededRng;
use microscopiq_runtime::net::{HttpParseError, HttpRequest, ParserLimits, RequestParser};
use proptest::prelude::*;

/// A generated valid request: wire bytes plus the expected parse.
fn gen_request(rng: &mut SeededRng) -> (Vec<u8>, HttpRequest) {
    let methods = ["GET", "POST", "PUT", "DELETE", "PATCH"];
    let method = methods[rng.below(methods.len())];
    let target = match rng.below(3) {
        0 => "/v1/generate".to_string(),
        1 => "/metrics".to_string(),
        _ => format!("/path/{}", rng.below(1000)),
    };
    let crlf = if rng.below(2) == 0 { "\r\n" } else { "\n" };
    let mut wire = format!("{method} {target} HTTP/1.1{crlf}");
    let mut headers = Vec::new();
    let body_len = rng.below(200);
    let body: Vec<u8> = (0..body_len).map(|_| rng.below(256) as u8).collect();
    if body_len > 0 || rng.below(2) == 0 {
        wire.push_str(&format!("Content-Length: {body_len}{crlf}"));
        headers.push(("content-length".to_string(), body_len.to_string()));
    }
    for i in 0..rng.below(4) {
        let name = format!("X-Extra-{i}");
        let value = format!("value-{}", rng.below(100));
        wire.push_str(&format!("{name}: {value}{crlf}"));
        headers.push((name.to_ascii_lowercase(), value));
    }
    wire.push_str(crlf);
    let mut bytes = wire.into_bytes();
    bytes.extend_from_slice(&body);
    let expected = HttpRequest {
        method: method.to_string(),
        target,
        headers,
        body,
    };
    (bytes, expected)
}

/// Feeds `wire` split at `cuts` random boundaries; returns every
/// request parsed along the way.
fn feed_split(
    parser: &mut RequestParser,
    wire: &[u8],
    rng: &mut SeededRng,
    pieces: usize,
) -> Result<Vec<HttpRequest>, HttpParseError> {
    let mut cuts: Vec<usize> = (0..pieces.saturating_sub(1))
        .map(|_| rng.below(wire.len().max(1)))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    cuts.push(wire.len());
    let mut parsed = Vec::new();
    let mut start = 0;
    for cut in cuts {
        if let Some(req) = parser.feed(&wire[start..cut])? {
            parsed.push(req);
        }
        start = cut;
    }
    // Drain any further requests already buffered (pipelining).
    while let Some(req) = parser.feed(&[])? {
        parsed.push(req);
    }
    Ok(parsed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A valid request parses to the same [`HttpRequest`] no matter how
    /// its bytes are split across `read()` boundaries.
    #[test]
    fn valid_request_parses_under_arbitrary_splits(
        seed in 0u64..100_000,
        pieces in 1usize..12,
    ) {
        let mut rng = SeededRng::new(seed);
        let (wire, expected) = gen_request(&mut rng);
        let mut parser = RequestParser::new();
        let parsed = feed_split(&mut parser, &wire, &mut rng, pieces)
            .expect("valid request must parse");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &expected);
        prop_assert_eq!(parser.buffered(), 0);
    }

    /// Pipelined back-to-back requests parse one per call, in order,
    /// regardless of how the concatenated bytes are split.
    #[test]
    fn pipelined_requests_parse_in_order(
        seed in 0u64..100_000,
        count in 2usize..5,
        pieces in 1usize..16,
    ) {
        let mut rng = SeededRng::new(seed ^ 0x9e37);
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..count {
            let (bytes, req) = gen_request(&mut rng);
            wire.extend_from_slice(&bytes);
            expected.push(req);
        }
        let mut parser = RequestParser::new();
        let parsed = feed_split(&mut parser, &wire, &mut rng, pieces)
            .expect("valid pipeline must parse");
        prop_assert_eq!(parsed, expected);
        prop_assert_eq!(parser.buffered(), 0);
    }

    /// Mutating a valid request (flip / insert / delete bytes,
    /// truncate) never panics: the parser returns a parsed request, a
    /// need-more-bytes `None`, or an error whose status is a clean
    /// 4xx/5xx.
    #[test]
    fn mutated_requests_never_panic(
        seed in 0u64..100_000,
        mutations in 1usize..8,
        pieces in 1usize..8,
    ) {
        let mut rng = SeededRng::new(seed ^ 0xdead);
        let (mut wire, _) = gen_request(&mut rng);
        for _ in 0..mutations {
            if wire.is_empty() {
                break;
            }
            match rng.below(4) {
                0 => {
                    let i = rng.below(wire.len());
                    wire[i] = rng.below(256) as u8;
                }
                1 => {
                    let i = rng.below(wire.len() + 1);
                    wire.insert(i, rng.below(256) as u8);
                }
                2 => {
                    let i = rng.below(wire.len());
                    wire.remove(i);
                }
                _ => {
                    wire.truncate(rng.below(wire.len() + 1));
                }
            }
        }
        let mut parser = RequestParser::new();
        match feed_split(&mut parser, &wire, &mut rng, pieces) {
            Ok(_) => {}
            Err(err) => {
                prop_assert!(
                    matches!(err.status(), 400 | 413 | 431 | 501),
                    "unexpected status {} for {:?}", err.status(), err
                );
            }
        }
    }

    /// Pure random byte soup never panics either, and oversized heads
    /// are bounded by the limits even when no terminator ever arrives.
    #[test]
    fn random_bytes_never_panic(
        seed in 0u64..100_000,
        len in 0usize..4096,
        pieces in 1usize..8,
    ) {
        let mut rng = SeededRng::new(seed ^ 0xbeef);
        let wire: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let mut parser = RequestParser::with_limits(ParserLimits {
            max_head_bytes: 512,
            max_body_bytes: 512,
        });
        match feed_split(&mut parser, &wire, &mut rng, pieces) {
            Ok(_) => {
                // Anything still buffered must be under the head cap
                // plus one read's worth of slack.
                prop_assert!(parser.buffered() <= 4096);
            }
            Err(err) => {
                prop_assert!(matches!(err.status(), 400 | 413 | 431 | 501));
            }
        }
    }

    /// An oversized `Content-Length` is refused with 413 at header
    /// parse time — before any body bytes are buffered — however the
    /// request is split.
    #[test]
    fn oversized_bodies_rejected_before_buffering(
        seed in 0u64..100_000,
        pieces in 1usize..6,
    ) {
        let mut rng = SeededRng::new(seed ^ 0x7777);
        let wire =
            format!("POST /v1/generate HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 20);
        let mut parser = RequestParser::with_limits(ParserLimits {
            max_head_bytes: 1024,
            max_body_bytes: 4096,
        });
        let err = feed_split(&mut parser, wire.as_bytes(), &mut rng, pieces)
            .expect_err("must reject oversized body");
        prop_assert_eq!(err.status(), 413);
    }
}
