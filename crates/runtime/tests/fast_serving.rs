//! The f32-tolerant serving conformance tier: what qualifies
//! [`RuntimeEngine::fast`] (lane-blocked `f32` kernels under
//! `KernelPolicy::Fast`) to sit behind [`Server::spawn`].
//!
//! The default serving tier pins **bitwise** parity against the offline
//! reference; an `f32` kernel can never meet that bar. This tier pins the
//! two properties serving actually needs:
//!
//! 1. **Bounded logit deltas** — per-token logits from the fast engine
//!    stay within [`LOGIT_TOL`] of the bit-exact reference, through
//!    prefill and resumed decode steps alike.
//! 2. **Argmax-token parity** — over the pinned fixtures, the top token
//!    at every position is identical, so near-greedy serving through the
//!    fast tier streams the same tokens as the exact tier.
//!
//! Plus a pinned-fixture check that chunked prefill reproduces
//! whole-prompt *tokens* within the fast tier. Note the tier does NOT
//! promise bitwise logit stability across chunk sizes: the lane kernel's
//! m = 1 GEMV entry tree-reduces its f32 accumulation, which rounds
//! differently from the sequential per-column order its m ≥ 2 GEMM uses,
//! so a step's batch composition (did this token ride alone?) can move
//! logit bits within the pinned tolerance. The exact-KV *bitwise*
//! chunking guarantee belongs to the bit-exact engine tiers
//! (`tests/chunked_prefill.rs`); here the contract is deltas + argmax.

use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{DequantGemm, KvMode, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::{
    GenRequest, RuntimeEngine, SchedulerConfig, Server, ServerConfig, Session,
};

/// Pinned per-logit absolute tolerance for the fast serving tier.
/// Observed deltas on these fixtures are ~5e-6 (f32 accumulation inside
/// the lane kernel only — attention/norm math stays f64); the pin leaves
/// two orders of magnitude of headroom while still catching any
/// precision regression in the dispatch or kernel layers.
const LOGIT_TOL: f64 = 1e-3;

fn fixture_model(seed: u64) -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 48,
    };
    let fm = TinyFm::teacher(cfg, seed);
    let mut rng = SeededRng::new(seed ^ 0xfa57);
    let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::w4()
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

fn argmax(col: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in col.iter().enumerate() {
        if v > col[best] {
            best = i;
        }
    }
    best
}

/// Pinned fixture prompts (deterministic, in-vocabulary).
fn fixture_prompts(vocab: usize) -> Vec<Vec<usize>> {
    let mut rng = SeededRng::new(4242);
    (0..4)
        .map(|i| (0..6 + 9 * i).map(|_| rng.below(vocab)).collect())
        .collect()
}

#[test]
fn fast_engine_logits_bounded_with_argmax_parity_through_prefill_and_decode() {
    let model = fixture_model(91);
    let exact = RuntimeEngine::scalar();
    let fast = RuntimeEngine::fast();
    assert_eq!(
        fast.config().policy,
        microscopiq_runtime::KernelPolicy::Fast
    );

    let mut max_delta = 0.0_f64;
    for prompt in fixture_prompts(model.config().vocab) {
        let (mut state_e, logits_e) = model.prefill(&prompt, KvMode::Exact, &exact).unwrap();
        let (mut state_f, logits_f) = model.prefill(&prompt, KvMode::Exact, &fast).unwrap();
        for t in 0..prompt.len() {
            let col_e = logits_e.col(t);
            let col_f = logits_f.col(t);
            for (a, b) in col_e.iter().zip(col_f.iter()) {
                let d = (a - b).abs();
                max_delta = max_delta.max(d);
                assert!(
                    d <= LOGIT_TOL,
                    "prefill logit delta {d:.2e} exceeds serving tolerance at t={t}"
                );
            }
            assert_eq!(
                argmax(&col_e),
                argmax(&col_f),
                "prefill argmax diverged at position {t}"
            );
        }
        // Resumed decode: teacher-force the exact tier's greedy token
        // into both states so positions stay aligned.
        let mut tok = argmax(&logits_e.col(prompt.len() - 1));
        for step in 0..8 {
            let col_e = model.decode_step(&mut state_e, tok, &exact);
            let col_f = model.decode_step(&mut state_f, tok, &fast);
            for (a, b) in col_e.iter().zip(col_f.iter()) {
                let d = (a - b).abs();
                max_delta = max_delta.max(d);
                assert!(
                    d <= LOGIT_TOL,
                    "decode logit delta {d:.2e} exceeds serving tolerance at step {step}"
                );
            }
            assert_eq!(
                argmax(&col_e),
                argmax(&col_f),
                "decode argmax diverged at step {step}"
            );
            tok = argmax(&col_e);
        }
    }
    assert!(
        max_delta > 0.0,
        "the fast tier must actually run the f32 kernel (zero delta means \
         dispatch fell back to the oracle everywhere)"
    );
}

/// Near-greedy serving through the fast tier streams exactly the tokens
/// the bit-exact reference serves: at temperature 1e-6 the sampler is an
/// argmax, so this is argmax-token parity through the whole threaded
/// serving path (admission, batching, chunked prefill, streaming).
#[test]
fn fast_server_streams_match_exact_reference_at_near_greedy_temperature() {
    let model = fixture_model(92);
    let vocab = model.config().vocab;
    let mut rng = SeededRng::new(888);
    let reqs: Vec<GenRequest> = (0..10)
        .map(|i| GenRequest {
            prompt: (0..2 + rng.below(28)).map(|_| rng.below(vocab)).collect(),
            max_new_tokens: 6,
            temperature: 1e-6,
            seed: 600 + i as u64,
            ..Default::default()
        })
        .collect();
    let mut offline = Session::new(model.clone(), DequantGemm, 4);
    for r in &reqs {
        offline.submit(r.clone());
    }
    let expected = offline.run_to_completion();

    let server = Server::spawn(
        model,
        RuntimeEngine::fast(),
        ServerConfig {
            max_batch: 4,
            prefill_chunk: 8,
            token_budget: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let streams: Vec<_> = reqs
        .iter()
        .map(|r| handle.submit(r.clone()).unwrap())
        .collect();
    for (s, want) in streams.into_iter().zip(expected.iter()) {
        let got = s.collect().expect("stream completes");
        assert_eq!(
            got.tokens, want.tokens,
            "fast tier diverged from the exact reference at near-greedy temperature"
        );
    }
    drop(handle);
    let report = server.shutdown();
    assert_eq!(report.served, reqs.len());
    assert_eq!(report.final_kv_rows, 0);
}

/// Chunked fast-tier serving reproduces whole-prompt serving's *tokens*
/// on this pinned fleet. Token-level, not bitwise: when chunking changes
/// whether a step carries one segment or several, m = 1 calls route
/// through the lane GEMV (tree-reduced f32 accumulation) instead of the
/// GEMM path, moving logit bits within the pinned tolerance — sampled
/// tokens only flip if an RNG draw lands inside that delta, which the
/// deterministic fixtures here pin to never happening. A bitwise
/// guarantee needs a bit-exact engine (see `chunked_prefill.rs`).
#[test]
fn fast_tier_chunked_serving_reproduces_whole_prompt_tokens_on_pinned_fleet() {
    let model = fixture_model(93);
    let vocab = model.config().vocab;
    let mut rng = SeededRng::new(777);
    let reqs: Vec<GenRequest> = (0..6)
        .map(|i| GenRequest {
            prompt: (0..3 + rng.below(30)).map(|_| rng.below(vocab)).collect(),
            max_new_tokens: 4,
            temperature: 0.8,
            seed: 700 + i as u64,
            ..Default::default()
        })
        .collect();
    let mut whole = Session::new(model.clone(), RuntimeEngine::fast(), 3);
    for r in &reqs {
        whole.submit(r.clone());
    }
    let expected = whole.run_to_completion();

    for chunk in [1usize, 3, 8] {
        let cfg = SchedulerConfig::new(3).prefill_chunk(chunk).token_budget(7);
        let mut session =
            Session::with_config(model.clone(), RuntimeEngine::fast(), cfg, KvMode::Exact).unwrap();
        for r in &reqs {
            session.submit(r.clone());
        }
        assert_eq!(
            session.run_to_completion(),
            expected,
            "chunk={chunk} changed fast-tier outputs"
        );
    }
}
