//! Telemetry conformance: the observability layer must *observe*, never
//! *perturb*.
//!
//! * **Non-interference** — served token streams are bitwise identical
//!   whether server-side telemetry is off, on, or on with tracing, and
//!   identical to the offline [`Session::run_to_completion`] reference.
//! * **Accounting identity** — after the server drains, the lifecycle
//!   counters balance: admitted = finished + cancelled + expired +
//!   faulted; the queue-depth and KV gauges return to zero; histogram
//!   counts equal the token counts the client actually observed.
//! * **Trace schema** — the exported trace is valid Chrome trace-event
//!   JSON (checked with a hand-rolled parser, no serde) carrying the
//!   expected per-request and per-step events.

use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{DequantGemm, KvMode, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::{
    Deadline, GenRequest, GenResult, RequestOptions, RuntimeEngine, ServeError, Server,
    ServerConfig, ServerHandle, Session, StreamEvent,
};
use std::time::{Duration, Instant};

fn packed_model(seed: u64, bits: u32) -> PackedTinyFm {
    let cfg = TinyFmConfig {
        d_model: 32,
        n_heads: 2,
        d_ff: 64,
        n_layers: 2,
        vocab: 48,
    };
    let fm = TinyFm::teacher(cfg, seed);
    let mut rng = SeededRng::new(seed ^ 0xbeef);
    let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.9, &mut rng)).collect();
    let q = MicroScopiQ::new(
        QuantConfig::builder(bits)
            .macro_block(32)
            .row_block(32)
            .build()
            .unwrap(),
    );
    PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
}

fn request_fleet(n: usize, vocab: usize, seed: u64) -> Vec<GenRequest> {
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|i| GenRequest {
            prompt: (0..1 + rng.below(6)).map(|_| rng.below(vocab)).collect(),
            max_new_tokens: if i == n / 2 { 0 } else { 1 + rng.below(5) },
            temperature: 0.7 + 0.1 * (i % 3) as f64,
            seed: 1000 + i as u64,
            ..Default::default()
        })
        .collect()
}

fn serve_all(model: &PackedTinyFm, cfg: ServerConfig, reqs: &[GenRequest]) -> Vec<GenResult> {
    let server = Server::spawn(model.clone(), DequantGemm, cfg).unwrap();
    let handle = server.handle();
    let streams: Vec<_> = reqs
        .iter()
        .map(|r| handle.submit(r.clone()).expect("submit"))
        .collect();
    streams
        .into_iter()
        .map(|s| s.collect().expect("stream completes"))
        .collect()
}

/// Polls `cond` until it holds or the deadline passes.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------
// Non-interference: telemetry off / on / traced are bitwise identical.
// ---------------------------------------------------------------------

#[test]
fn streams_bitwise_identical_with_telemetry_off_on_and_traced() {
    let model = packed_model(51, 4);
    let reqs = request_fleet(24, model.config().vocab, 17);

    // Offline reference (no server, no telemetry wiring at all).
    let mut session = Session::with_kv_mode(model.clone(), DequantGemm, 4, KvMode::Exact).unwrap();
    for r in &reqs {
        session.submit(r.clone());
    }
    let offline = session.run_to_completion();

    let base = ServerConfig {
        max_batch: 8,
        prefill_chunk: 2,
        ..ServerConfig::default()
    };
    let off = serve_all(
        &model,
        ServerConfig {
            telemetry: false,
            ..base
        },
        &reqs,
    );
    let on = serve_all(
        &model,
        ServerConfig {
            telemetry: true,
            ..base
        },
        &reqs,
    );
    let traced = serve_all(
        &model,
        ServerConfig {
            telemetry: true,
            trace_events: 1 << 14,
            ..base
        },
        &reqs,
    );

    for (((want, a), b), c) in offline.iter().zip(&off).zip(&on).zip(&traced) {
        assert_eq!(a.tokens, want.tokens, "telemetry off diverged from offline");
        assert_eq!(b.tokens, want.tokens, "telemetry on diverged from offline");
        assert_eq!(c.tokens, want.tokens, "tracing diverged from offline");
    }
}

// ---------------------------------------------------------------------
// Accounting identity under churn.
// ---------------------------------------------------------------------

struct Observed {
    tokens: usize,
    finished: usize,
    expired: usize,
    faulted: usize,
    cancelled: usize,
}

/// Drains one stream to its terminal state, counting what the client saw.
/// Cancelled streams terminate as `Disconnected` (the worker retires them
/// without a terminal event).
fn drain(mut stream: microscopiq_runtime::ResponseStream, obs: &mut Observed) {
    loop {
        match stream.next_event() {
            Some(StreamEvent::Token(_)) => obs.tokens += 1,
            Some(StreamEvent::Sample { .. }) => {}
            Some(StreamEvent::Finished(_)) => {
                obs.finished += 1;
                return;
            }
            Some(StreamEvent::Error(ServeError::DeadlineExceeded)) => {
                obs.expired += 1;
                return;
            }
            Some(StreamEvent::Error(ServeError::WorkerPanicked(_))) => {
                obs.faulted += 1;
                return;
            }
            Some(StreamEvent::Error(ServeError::Disconnected)) | None => {
                obs.cancelled += 1;
                return;
            }
            Some(StreamEvent::Error(ServeError::Shed)) => {
                unreachable!("no shed policy configured in this test")
            }
        }
    }
}

#[test]
fn metrics_identity_holds_under_submit_cancel_deadline_churn() {
    let model = packed_model(52, 4);
    let vocab = model.config().vocab;
    let server = Server::spawn(
        model,
        DequantGemm,
        ServerConfig {
            max_batch: 4,
            max_in_flight: 8,
            pace: Duration::from_millis(1),
            trace_events: 1 << 12,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();

    // Three submitter threads racing the worker: normal requests,
    // cancel-at-submit requests, zero-step deadlines, and one malformed
    // prompt that faults at admission.
    let fleets: Vec<std::thread::JoinHandle<Observed>> = (0..3)
        .map(|t| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut rng = SeededRng::new(100 + t);
                let mut obs = Observed {
                    tokens: 0,
                    finished: 0,
                    expired: 0,
                    faulted: 0,
                    cancelled: 0,
                };
                let mut streams = Vec::new();
                for i in 0..12usize {
                    let req = GenRequest {
                        prompt: if t == 0 && i == 7 {
                            Vec::new() // malformed: faults at admission
                        } else {
                            (0..1 + rng.below(4)).map(|_| rng.below(vocab)).collect()
                        },
                        max_new_tokens: 1 + rng.below(4),
                        temperature: 0.8,
                        seed: t * 1000 + i as u64,
                        ..Default::default()
                    };
                    let opts = if i % 4 == 3 {
                        RequestOptions {
                            deadline: Some(Deadline::Steps(0)),
                            ..RequestOptions::default()
                        }
                    } else {
                        RequestOptions::default()
                    };
                    let stream = handle.submit_with(req, opts).expect("submit");
                    if i % 5 == 4 {
                        stream.cancel();
                    }
                    streams.push(stream);
                }
                for s in streams {
                    drain(s, &mut obs);
                }
                obs
            })
        })
        .collect();
    let mut obs = Observed {
        tokens: 0,
        finished: 0,
        expired: 0,
        faulted: 0,
        cancelled: 0,
    };
    let mut submitted = 0usize;
    for f in fleets {
        let o = f.join().unwrap();
        obs.tokens += o.tokens;
        obs.finished += o.finished;
        obs.expired += o.expired;
        obs.faulted += o.faulted;
        obs.cancelled += o.cancelled;
        submitted += 12;
    }

    // Every stream is terminal; wait for the worker to retire the last
    // request and publish its gauges.
    wait_until("server drain", || {
        handle.live_streams() == 0 && handle.queue_depth() == 0
    });

    let snap = handle.metrics_snapshot();
    let admitted = snap.counter("microscopiq_requests_admitted_total");
    let finished = snap.counter("microscopiq_requests_finished_total");
    let cancelled = snap.counter("microscopiq_requests_cancelled_total");
    let expired = snap.counter("microscopiq_requests_expired_total");
    let faulted = snap.counter("microscopiq_requests_faulted_total");

    // Identity: everything admitted reached exactly one terminal state
    // (in-flight is zero after the drain).
    assert_eq!(admitted, submitted as u64, "every submission was admitted");
    assert_eq!(
        admitted,
        finished + cancelled + expired + faulted,
        "lifecycle counters must balance after drain \
         (finished={finished} cancelled={cancelled} expired={expired} faulted={faulted})"
    );
    // Terminal outcomes agree with what the clients saw. (A stream
    // cancelled at submit can race its own first sweep, so the
    // client-observed cancelled/finished split may differ from the
    // server's by requests that finished before the flag was seen — but
    // expired and faulted are deterministic.)
    assert_eq!(
        finished as usize + cancelled as usize,
        obs.finished + obs.cancelled
    );
    assert_eq!(expired as usize, obs.expired, "deadline expiries");
    assert_eq!(faulted as usize, obs.faulted, "admission faults");

    // Gauges return to zero once drained.
    assert_eq!(snap.gauge("microscopiq_queue_depth"), Some(0));
    assert_eq!(snap.gauge("microscopiq_live_streams"), Some(0));
    assert_eq!(
        snap.gauge("microscopiq_kv_rows"),
        Some(0),
        "KV fully reclaimed"
    );
    assert_eq!(handle.kv_rows(), 0);

    // Token accounting: the server recorded exactly the tokens clients
    // observed (receivers stayed alive, so no send ever failed).
    assert_eq!(
        snap.counter("microscopiq_tokens_streamed_total"),
        obs.tokens as u64
    );
    let ttft = snap
        .histogram("microscopiq_ttft_us")
        .expect("ttft histogram");
    let inter = snap
        .histogram("microscopiq_inter_token_us")
        .expect("inter-token histogram");
    let streams_with_tokens = ttft.count;
    assert_eq!(
        ttft.count,
        snap.histogram("microscopiq_admit_to_first_token_us")
            .unwrap()
            .count,
        "both first-token histograms record the same events"
    );
    assert_eq!(
        streams_with_tokens + inter.count,
        obs.tokens as u64,
        "first-token + inter-token samples partition the token stream"
    );
    let queue_wait = snap.histogram("microscopiq_queue_wait_us").unwrap();
    assert!(
        queue_wait.count <= admitted && queue_wait.count >= finished,
        "queue-wait samples cover live admissions only"
    );

    drop(handle);
    let report = server.shutdown();
    assert_eq!(report.served, finished as usize);
    assert_eq!(report.cancelled, cancelled as usize);
    assert_eq!(report.expired, expired as usize);
    assert_eq!(report.faulted, faulted as usize);
}

// ---------------------------------------------------------------------
// Queue-depth visibility.
// ---------------------------------------------------------------------

#[test]
fn queue_depth_surfaces_backpressure_and_drains_to_zero() {
    let model = packed_model(53, 4);
    let vocab = model.config().vocab;
    let server = Server::spawn(
        model,
        DequantGemm,
        ServerConfig {
            max_batch: 1,
            max_in_flight: 1,
            queue_capacity: 16,
            pace: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    assert_eq!(handle.queue_depth(), 0, "idle server has an empty queue");

    let streams: Vec<_> = (0..4)
        .map(|i| {
            handle
                .submit(GenRequest {
                    prompt: vec![i % vocab],
                    max_new_tokens: 4,
                    temperature: 0.8,
                    seed: i as u64,
                    ..Default::default()
                })
                .unwrap()
        })
        .collect();
    // With max_in_flight = 1 the worker holds one request live and paces
    // 10 ms per step, so at least the last two submissions are still
    // queued (or being pulled) right now.
    assert!(
        handle.queue_depth() >= 2,
        "queued submissions must be visible, got {}",
        handle.queue_depth()
    );

    for s in streams {
        s.collect().expect("stream completes");
    }
    wait_until("queue drain", || {
        handle.queue_depth() == 0 && handle.live_streams() == 0
    });
}

// ---------------------------------------------------------------------
// Scheduler / kernel / cache instrumentation populates end to end.
// ---------------------------------------------------------------------

#[test]
fn scheduler_kernel_and_cache_metrics_populate() {
    let model = packed_model(54, 4);
    let reqs = request_fleet(10, model.config().vocab, 33);
    let total_new: usize = reqs.iter().map(|r| r.max_new_tokens).sum();
    // Zero-budget requests finish instantly without a prefill pass, so
    // their prompts never count as prefill tokens.
    let total_prompt: usize = reqs
        .iter()
        .filter(|r| r.max_new_tokens > 0)
        .map(|r| r.prompt.len())
        .sum();

    let server = Server::spawn(model, RuntimeEngine::parallel(), ServerConfig::default()).unwrap();
    let handle = server.handle();
    let streams: Vec<_> = reqs
        .iter()
        .map(|r| handle.submit(r.clone()).unwrap())
        .collect();
    for s in streams {
        s.collect().expect("stream completes");
    }
    wait_until("drain", || handle.live_streams() == 0);
    let snap = handle.metrics_snapshot();

    // Scheduler: steps ran, prompts prefilled, budgets generated.
    assert!(snap.counter("microscopiq_scheduler_steps_total") > 0);
    assert_eq!(
        snap.counter("microscopiq_tokens_generated_total"),
        total_new as u64
    );
    assert_eq!(
        snap.counter("microscopiq_prefill_tokens_total"),
        total_prompt as u64
    );
    assert!(
        snap.histogram("microscopiq_step_batch_requests")
            .unwrap()
            .count
            > 0
    );

    // Kernels: the engine recorded per-(kernel, op, bits) invocations
    // and decoded-group volume.
    assert!(
        snap.counter("microscopiq_kernel_calls_total") > 0,
        "kernel call counters must populate"
    );
    assert!(snap.counter("microscopiq_kernel_decoded_groups_total") > 0);
    let has_op_label = snap
        .samples
        .iter()
        .filter(|s| s.name == "microscopiq_kernel_calls_total")
        .all(|s| {
            s.labels.iter().any(|(k, _)| *k == "op")
                && s.labels.iter().any(|(k, _)| *k == "bits")
                && s.labels.iter().any(|(k, _)| *k == "kernel")
        });
    assert!(
        has_op_label,
        "kernel samples carry (kernel, op, bits) labels"
    );

    // Decoded cache (enabled on the parallel engine): every lookup is a
    // hit or a miss.
    let hits = snap
        .counter_with("microscopiq_cache_events_total", &[("event", "hit")])
        .expect("cache hit counter");
    let misses = snap
        .counter_with("microscopiq_cache_events_total", &[("event", "miss")])
        .expect("cache miss counter");
    assert!(hits + misses > 0, "decode ran through the cached path");

    drop(handle);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------

#[test]
fn render_text_emits_prometheus_exposition_format() {
    let model = packed_model(55, 2);
    let reqs = request_fleet(6, model.config().vocab, 5);
    let server = Server::spawn(model, DequantGemm, ServerConfig::default()).unwrap();
    let handle = server.handle();
    let streams: Vec<_> = reqs
        .iter()
        .map(|r| handle.submit(r.clone()).unwrap())
        .collect();
    for s in streams {
        s.collect().expect("stream completes");
    }
    let text = handle.render_metrics();

    for needle in [
        "# HELP microscopiq_requests_admitted_total",
        "# TYPE microscopiq_requests_admitted_total counter",
        "# TYPE microscopiq_queue_depth gauge",
        "# TYPE microscopiq_ttft_us histogram",
        "microscopiq_ttft_us_bucket{class=\"interactive\",le=\"+Inf\"}",
        "microscopiq_ttft_us_sum{class=\"interactive\"}",
        "microscopiq_ttft_us_count{class=\"interactive\"}",
        "microscopiq_requests_shed_total{class=\"best_effort\"} 0",
        "microscopiq_scheduler_steps_total",
    ] {
        assert!(
            text.contains(needle),
            "missing {needle:?} in rendering:\n{text}"
        );
    }
    drop(handle);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Trace export: valid Chrome trace-event JSON with the expected events.
// ---------------------------------------------------------------------

/// Minimal JSON value for schema checking (hand-rolled; the workspace has
/// no serde).
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.ws();
        assert_eq!(
            self.s.get(self.i).copied(),
            Some(b),
            "expected {:?} at byte {}",
            b as char,
            self.i
        );
        self.i += 1;
    }

    fn peek(&mut self) -> u8 {
        self.ws();
        *self
            .s
            .get(self.i)
            .unwrap_or_else(|| panic!("unexpected end of JSON"))
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        self.ws();
        assert!(
            self.s[self.i..].starts_with(word.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += word.len();
        v
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(fields);
        }
        loop {
            let key = self.string();
            self.expect(b':');
            fields.push((key, self.value()));
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(fields);
                }
                c => panic!("bad object separator {:?} at byte {}", c as char, self.i),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(items);
                }
                c => panic!("bad array separator {:?} at byte {}", c as char, self.i),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            let b = self.s[self.i];
            self.i += 1;
            match b {
                b'"' => return out,
                b'\\' => {
                    let e = self.s[self.i];
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4]).unwrap();
                            let cp = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            self.i += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => panic!("bad escape \\{} at byte {}", e as char, self.i),
                    }
                }
                _ => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Json {
        self.ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }

    fn parse(mut self) -> Json {
        let v = self.value();
        self.ws();
        assert_eq!(self.i, self.s.len(), "trailing bytes after JSON document");
        v
    }
}

fn serve_traced(model: &PackedTinyFm, reqs: &[GenRequest]) -> (String, ServerHandle, Server) {
    let server = Server::spawn(
        model.clone(),
        DequantGemm,
        ServerConfig {
            max_batch: 4,
            prefill_chunk: 2,
            trace_events: 1 << 14,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let streams: Vec<_> = reqs
        .iter()
        .map(|r| handle.submit(r.clone()).unwrap())
        .collect();
    for s in streams {
        s.collect().expect("stream completes");
    }
    wait_until("drain", || handle.live_streams() == 0);
    let json = handle.export_trace().expect("tracing was enabled");
    (json, handle, server)
}

#[test]
fn exported_trace_is_valid_chrome_trace_event_json() {
    let model = packed_model(56, 4);
    let mut reqs = request_fleet(8, model.config().vocab, 21);
    // Force chunked prefill spans: one prompt well past the chunk size.
    reqs[0].prompt = (0..9).map(|t| t % model.config().vocab).collect();
    let (json, handle, server) = serve_traced(&model, &reqs);

    let doc = Parser::new(&json).parse();
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "trace captured no events");

    let mut names = std::collections::BTreeSet::new();
    for ev in events {
        let name = ev.get("name").and_then(Json::as_str).expect("name: string");
        names.insert(name.to_string());
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph: string");
        let ts = ev.get("ts").and_then(Json::as_num).expect("ts: number");
        assert!(ts >= 0.0, "timestamps are non-negative microseconds");
        ev.get("pid").and_then(Json::as_num).expect("pid: number");
        let tid = ev.get("tid").and_then(Json::as_num).expect("tid: number");
        match ph {
            "X" => {
                let dur = ev.get("dur").and_then(Json::as_num).expect("X has dur");
                assert!(dur >= 0.0);
            }
            "i" => {
                assert_eq!(
                    ev.get("s").and_then(Json::as_str),
                    Some("t"),
                    "instants carry thread scope"
                );
            }
            other => panic!("unexpected phase {other:?}"),
        }
        // Scheduler lane (tid 0) carries only step spans; request lanes
        // are tid >= 1.
        if name == "step" {
            assert_eq!(tid, 0.0, "step spans live on the scheduler lane");
            let args = ev.get("args").expect("step spans carry batch args");
            for key in [
                "requests",
                "prefill_tokens",
                "new_tokens",
                "queue_depth",
                "kv_rows",
            ] {
                args.get(key)
                    .and_then(Json::as_num)
                    .unwrap_or_else(|| panic!("step args missing {key}"));
            }
        } else {
            assert!(tid >= 1.0, "per-request events live on request lanes");
        }
    }
    for expected in [
        "enqueued",
        "admitted",
        "prefill_chunk",
        "first_token",
        "finished",
        "step",
    ] {
        assert!(
            names.contains(expected),
            "trace missing {expected:?} events"
        );
    }

    drop(handle);
    server.shutdown();
}
