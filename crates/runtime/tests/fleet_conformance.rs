//! Fleet conformance: tokens streamed over the wire (HTTP/1.1 + SSE,
//! multiple concurrent connections) must be **bitwise identical** to
//! the offline [`Session::run_to_completion`] output on the exact
//! engine — across fleet sizes 1, 2, and 4. Worker choice, routing,
//! connection interleaving, and chunked framing must never leak into
//! token streams.
//!
//! Also pinned here: keep-alive connection reuse, the `/metrics` and
//! `/healthz` routes, QoS class round-tripping (a scheduling signal
//! only — never changes outputs), and clean 4xx behavior at the edge.

use microscopiq_core::{MicroScopiQ, QuantConfig};
use microscopiq_fm::{DequantGemm, KvMode, PackedTinyFm, TinyFm, TinyFmConfig};
use microscopiq_linalg::SeededRng;
use microscopiq_runtime::net::{HttpClient, HttpConfig, HttpServer, Json};
use microscopiq_runtime::{
    FleetConfig, GenRequest, GenResult, PrefixCacheConfig, ServerConfig, Session,
};
use std::sync::OnceLock;

fn packed_model() -> &'static PackedTinyFm {
    static MODEL: OnceLock<PackedTinyFm> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = TinyFmConfig {
            d_model: 32,
            n_heads: 2,
            d_ff: 64,
            n_layers: 2,
            vocab: 48,
        };
        let fm = TinyFm::teacher(cfg, 77);
        let mut rng = SeededRng::new(0xfee1);
        let calib: Vec<Vec<usize>> = (0..3).map(|_| fm.generate(10, 0.9, &mut rng)).collect();
        let q = MicroScopiQ::new(
            QuantConfig::w4()
                .macro_block(32)
                .row_block(32)
                .build()
                .unwrap(),
        );
        PackedTinyFm::quantize_from(&fm, &q, &calib).unwrap()
    })
}

fn request_fleet(n: usize, seed: u64) -> Vec<GenRequest> {
    let vocab = packed_model().config().vocab;
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|i| GenRequest {
            prompt: (0..1 + rng.below(6)).map(|_| rng.below(vocab)).collect(),
            max_new_tokens: 1 + rng.below(5),
            temperature: 0.7 + 0.1 * (i % 3) as f64,
            seed: 2000 + i as u64,
            ..Default::default()
        })
        .collect()
}

fn offline_reference(reqs: &[GenRequest]) -> Vec<GenResult> {
    let mut session =
        Session::with_kv_mode(packed_model().clone(), DequantGemm, 4, KvMode::Exact).unwrap();
    for r in reqs {
        session.submit(r.clone());
    }
    session.run_to_completion()
}

fn body_for(req: &GenRequest) -> String {
    let prompt = req
        .prompt
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        r#"{{"prompt":[{prompt}],"max_new_tokens":{},"temperature":{},"seed":{}}}"#,
        req.max_new_tokens, req.temperature, req.seed,
    )
}

/// Drives one generate call and returns `(streamed, done_tokens, worker)`.
fn run_over_wire(client: &mut HttpClient, req: &GenRequest) -> (Vec<usize>, Vec<usize>, usize) {
    let stream = client.generate(&body_for(req)).expect("generate");
    assert_eq!(
        stream.status,
        200,
        "{}",
        String::from_utf8_lossy(stream.error_body())
    );
    let events = stream.collect_events().expect("SSE events");
    let mut streamed = Vec::new();
    let mut done: Option<(Vec<usize>, usize)> = None;
    for ev in events {
        if let Some(tok) = ev.get("token").and_then(Json::as_usize) {
            assert!(done.is_none(), "token after terminal event");
            streamed.push(tok);
        } else if ev.get("done").is_some() {
            let tokens = ev
                .get("tokens")
                .and_then(Json::as_arr)
                .expect("done carries tokens")
                .iter()
                .map(|t| t.as_usize().expect("token id"))
                .collect();
            let worker = ev
                .get("worker")
                .and_then(Json::as_usize)
                .expect("worker id");
            done = Some((tokens, worker));
        } else {
            panic!("unexpected event: {ev:?}");
        }
    }
    let (tokens, worker) = done.expect("stream ended without a done event");
    (streamed, tokens, worker)
}

fn spawn_fleet(workers: usize) -> HttpServer {
    HttpServer::bind(
        "127.0.0.1:0",
        packed_model().clone(),
        |_| DequantGemm,
        HttpConfig {
            fleet: FleetConfig {
                workers,
                server: ServerConfig {
                    max_batch: 4,
                    queue_capacity: 64,
                    max_in_flight: 64,
                    // Exact-KV prefix reuse is bitwise invisible, so the
                    // wire-vs-offline suites double as reuse conformance.
                    prefix_cache: Some(PrefixCacheConfig::default()),
                    ..ServerConfig::default()
                },
                ..FleetConfig::default()
            },
            ..HttpConfig::default()
        },
    )
    .expect("bind fleet")
}

#[test]
fn wire_streams_match_offline_across_worker_counts() {
    for workers in [1usize, 2, 4] {
        let reqs = request_fleet(24, 31 + workers as u64);
        let expected = offline_reference(&reqs);
        let server = spawn_fleet(workers);
        let addr = server.addr();

        // 4 concurrent connections, each running its slice of requests
        // back-to-back over one keep-alive connection.
        let mut slices: Vec<Vec<(usize, GenRequest)>> = vec![Vec::new(); 4];
        for (i, r) in reqs.iter().enumerate() {
            slices[i % 4].push((i, r.clone()));
        }
        let outputs: Vec<(usize, Vec<usize>, Vec<usize>)> = std::thread::scope(|s| {
            let handles: Vec<_> = slices
                .into_iter()
                .map(|slice| {
                    s.spawn(move || {
                        let mut client = HttpClient::connect(addr).expect("connect");
                        slice
                            .into_iter()
                            .map(|(i, req)| {
                                let (streamed, tokens, worker) = run_over_wire(&mut client, &req);
                                assert!(worker < workers, "worker id in range");
                                (i, streamed, tokens)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });

        for (i, streamed, tokens) in outputs {
            let want = &expected[i];
            assert_eq!(
                tokens, want.tokens,
                "worker_count={workers} request {i}: wire result differs from offline"
            );
            assert_eq!(
                streamed,
                want.tokens[reqs[i].prompt.len()..],
                "worker_count={workers} request {i}: streamed tokens differ"
            );
        }
        let report = server.shutdown();
        assert_eq!(report.lost(), 0);
        assert_eq!(report.total(|r| r.served), 24);
    }
}

#[test]
fn fleet_spreads_load_across_workers() {
    let reqs = request_fleet(16, 99);
    let server = spawn_fleet(4);
    let addr = server.addr();
    let workers_seen: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = reqs
            .iter()
            .map(|req| {
                s.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    run_over_wire(&mut client, req).2
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // 16 concurrent requests over 4 workers: least-loaded routing must
    // not funnel everything into one replica.
    let distinct: std::collections::HashSet<_> = workers_seen.iter().collect();
    assert!(
        distinct.len() >= 2,
        "all {} requests landed on one worker",
        workers_seen.len()
    );
    server.shutdown();
}

#[test]
fn qos_class_round_trips_without_changing_outputs() {
    let server = spawn_fleet(2);
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let base = r#""prompt":[1,2,3],"max_new_tokens":4,"temperature":0.8,"seed":5"#;
    let mut outputs = Vec::new();
    for class in ["interactive", "batch", "best_effort", "best-effort"] {
        let body = format!(r#"{{{base},"class":"{class}"}}"#);
        let stream = client.generate(&body).expect("generate");
        assert_eq!(stream.status, 200, "class {class}");
        let events = stream.collect_events().expect("events");
        let done = events.last().expect("done event");
        let tokens: Vec<usize> = done
            .get("tokens")
            .and_then(Json::as_arr)
            .expect("tokens")
            .iter()
            .map(|t| t.as_usize().unwrap())
            .collect();
        outputs.push(tokens);
    }
    for pair in outputs.windows(2) {
        assert_eq!(pair[0], pair[1], "class changed the token stream");
    }
    server.shutdown();
}

#[test]
fn metrics_and_healthz_routes() {
    let server = spawn_fleet(2);
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    // Serve one request so counters move.
    let req = &request_fleet(1, 7)[0];
    run_over_wire(&mut client, req);

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let health_json = Json::parse(&health.text()).expect("healthz JSON");
    assert_eq!(health_json.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health_json.get("workers_total").and_then(Json::as_usize),
        Some(2)
    );
    assert_eq!(
        health_json.get("workers_alive").and_then(Json::as_usize),
        Some(2)
    );
    assert_eq!(
        health_json.get("respawns").and_then(Json::as_usize),
        Some(0)
    );

    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("# ---- fleet ----"));
    assert!(text.contains("microscopiq_fleet_workers_alive 2"));
    assert!(text.contains("microscopiq_fleet_respawns_total 0"));
    assert!(text.contains("microscopiq_fleet_failovers_total 0"));
    assert!(text.contains("# ---- worker 0 ----"));
    assert!(text.contains("# ---- worker 1 ----"));
    assert!(text.contains("microscopiq_requests_admitted_total"));
    assert!(text.contains("microscopiq_ttft_us_bucket{class=\"interactive\""));
    // The prefix-cache family rides along in each worker's section.
    assert!(text.contains("microscopiq_prefix_cache_hits"));
    assert!(text.contains("microscopiq_prefix_cache_resident_bytes"));
    server.shutdown();
}

#[test]
fn bad_requests_get_clean_4xx() {
    let server = spawn_fleet(1);
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let vocab = packed_model().config().vocab;
    for (body, why) in [
        (r#"{"max_new_tokens":4}"#.to_string(), "missing prompt"),
        (r#"{"prompt":[]}"#.to_string(), "empty prompt"),
        (format!(r#"{{"prompt":[{vocab}]}}"#), "OOV token"),
        (
            r#"{"prompt":[1],"class":"platinum"}"#.to_string(),
            "unknown class",
        ),
        (r#"not json"#.to_string(), "invalid JSON"),
        (
            r#"{"prompt":[1],"temperature":0}"#.to_string(),
            "zero temperature",
        ),
    ] {
        let resp = client.post("/v1/generate", &body).expect("post");
        assert_eq!(resp.status, 400, "{why}: {}", resp.text());
    }
    // Unknown route and method.
    assert_eq!(client.get("/nope").expect("get").status, 404);

    // The connection (and the fleet) still serves after every rejection.
    let req = &request_fleet(1, 8)[0];
    let expected = offline_reference(std::slice::from_ref(req));
    let (_, tokens, _) = run_over_wire(&mut client, req);
    assert_eq!(tokens, expected[0].tokens);
    let report = server.shutdown();
    assert_eq!(report.total(|r| r.served), 1);
}
