//! Incremental HTTP/1.1 request parser for the wire front-end.
//!
//! The parser is a byte-feed state machine: callers push whatever a
//! `read()` returned into [`RequestParser::feed`] and get back a
//! complete [`HttpRequest`] once one is buffered, `None` while more
//! bytes are needed, or a typed [`HttpParseError`] that maps onto a
//! clean 4xx/5xx status. It never panics on any input — the property
//! suite in `tests/http_parser.rs` feeds it arbitrary splits,
//! mutations, and random bytes.
//!
//! Scope matches what the serving fleet speaks, deliberately nothing
//! more: request line + headers terminated by a blank line (`\r\n` or
//! bare `\n` line endings), bodies sized by `Content-Length` only
//! (`Transfer-Encoding` in a *request* is refused with 501), bounded
//! head and body sizes, and leftover bytes retained so keep-alive
//! clients can pipeline back-to-back requests.

use std::collections::VecDeque;

/// Size caps enforced while a request is being buffered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserLimits {
    /// Most bytes the request line + headers may occupy before the
    /// blank-line terminator (431 when exceeded).
    pub max_head_bytes: usize,
    /// Largest accepted `Content-Length` (413 when exceeded).
    pub max_body_bytes: usize,
}

impl Default for ParserLimits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request. Header names are stored lowercased; lookups via
/// [`HttpRequest::header`] are case-insensitive by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// Request target, as sent (e.g. `/v1/generate`).
    pub target: String,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header matching `name` (any case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`); HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a buffered request could not be parsed. Each variant maps onto
/// the status code the server answers with before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// Request line or a header line is structurally invalid (400).
    Malformed(&'static str),
    /// Head exceeded [`ParserLimits::max_head_bytes`] (431).
    HeadTooLarge,
    /// `Content-Length` exceeded [`ParserLimits::max_body_bytes`] (413).
    BodyTooLarge,
    /// The request carried a `Transfer-Encoding`; this server only
    /// accepts `Content-Length` bodies (501).
    UnsupportedEncoding,
}

impl HttpParseError {
    /// The HTTP status code this error is answered with.
    pub fn status(&self) -> u16 {
        match self {
            Self::Malformed(_) => 400,
            Self::HeadTooLarge => 431,
            Self::BodyTooLarge => 413,
            Self::UnsupportedEncoding => 501,
        }
    }
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed request: {what}"),
            Self::HeadTooLarge => write!(f, "request head too large"),
            Self::BodyTooLarge => write!(f, "request body too large"),
            Self::UnsupportedEncoding => write!(f, "transfer-encoding not supported"),
        }
    }
}

impl std::error::Error for HttpParseError {}

/// Incremental parser over one connection's byte stream. Feed raw reads
/// in; complete requests come out. After an error the parser is poisoned
/// (every later feed repeats the error) — the connection must be closed,
/// which is the only sound recovery once framing is lost.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: VecDeque<u8>,
    limits: ParserLimits,
    poisoned: Option<HttpParseError>,
}

impl RequestParser {
    /// A parser with default [`ParserLimits`].
    pub fn new() -> Self {
        Self::with_limits(ParserLimits::default())
    }

    /// A parser with explicit size caps.
    pub fn with_limits(limits: ParserLimits) -> Self {
        Self {
            buf: VecDeque::new(),
            limits,
            poisoned: None,
        }
    }

    /// Bytes buffered but not yet consumed by a parsed request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends `bytes` and tries to parse one complete request.
    ///
    /// Returns `Ok(Some(..))` when a full request (head + body) is
    /// buffered — leftover bytes stay queued for the next call, so
    /// pipelined requests parse one per call (including with an empty
    /// `bytes`). Returns `Ok(None)` while more input is needed.
    ///
    /// # Errors
    ///
    /// A [`HttpParseError`] the caller should answer with
    /// [`HttpParseError::status`] and then close the connection; the
    /// parser stays poisoned with the same error afterwards.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<HttpRequest>, HttpParseError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        self.buf.extend(bytes.iter().copied());
        match self.try_parse() {
            Ok(req) => Ok(req),
            Err(err) => {
                self.poisoned = Some(err.clone());
                Err(err)
            }
        }
    }

    fn try_parse(&mut self) -> Result<Option<HttpRequest>, HttpParseError> {
        let head = self.buf.make_contiguous();
        let Some((head_len, body_start)) = find_head_end(head) else {
            // No terminator yet: the head must still fit the cap once
            // complete, so an oversized partial head fails early.
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(HttpParseError::HeadTooLarge);
            }
            return Ok(None);
        };
        if head_len > self.limits.max_head_bytes {
            return Err(HttpParseError::HeadTooLarge);
        }
        let head_bytes = &self.buf.make_contiguous()[..head_len];
        let head_text: Vec<u8> = head_bytes.to_vec();
        let (method, target, headers) = parse_head(&head_text)?;
        let mut content_len = 0usize;
        for (name, value) in &headers {
            if name == "transfer-encoding" {
                return Err(HttpParseError::UnsupportedEncoding);
            }
            if name == "content-length" {
                content_len = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| HttpParseError::Malformed("content-length not a number"))?;
            }
        }
        if content_len > self.limits.max_body_bytes {
            return Err(HttpParseError::BodyTooLarge);
        }
        if self.buf.len() < body_start + content_len {
            return Ok(None);
        }
        // Full request buffered: consume head + body, keep the rest.
        self.buf.drain(..body_start);
        let body: Vec<u8> = self.buf.drain(..content_len).collect();
        Ok(Some(HttpRequest {
            method,
            target,
            headers,
            body,
        }))
    }
}

/// Finds the end of the head: `(head_len, body_start)` where `head_len`
/// excludes the blank-line terminator. Accepts `\r\n\r\n` or `\n\n`
/// (and the mixed `\r\n\n` / `\n\r\n` forms a lenient reader sees when
/// a client mixes endings).
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] != b'\n' {
            i += 1;
            continue;
        }
        // `i` ends a line; a blank line follows if the next bytes are
        // `\n` or `\r\n`.
        if buf.get(i + 1) == Some(&b'\n') {
            return Some((i + 1, i + 2));
        }
        if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
            return Some((i + 1, i + 3));
        }
        i += 1;
    }
    None
}

/// `(method, target, headers)` from a parsed head.
type ParsedHead = (String, String, Vec<(String, String)>);

/// Splits the head into the request line and header lines, tolerating
/// `\r\n` or bare `\n` endings.
fn parse_head(head: &[u8]) -> Result<ParsedHead, HttpParseError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpParseError::Malformed("head is not valid UTF-8"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines
        .next()
        .ok_or(HttpParseError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or(HttpParseError::Malformed("missing method"))?;
    let target = parts
        .next()
        .ok_or(HttpParseError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpParseError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpParseError::Malformed("extra tokens in request line"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpParseError::Malformed("unsupported HTTP version"));
    }
    if method.is_empty()
        || !method
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(HttpParseError::Malformed("invalid method"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator line
        }
        let Some(colon) = line.find(':') else {
            return Err(HttpParseError::Malformed("header line missing colon"));
        };
        let name = &line[..colon];
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpParseError::Malformed("invalid header name"));
        }
        let value = line[colon + 1..].trim();
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }
    Ok((method.to_string(), target.to_string(), headers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_get() {
        let mut p = RequestParser::new();
        let req = p
            .feed(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn parses_body_and_pipelined_next_request() {
        let mut p = RequestParser::new();
        let wire =
            b"POST /v1/generate HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET / HTTP/1.1\r\n\r\n";
        let first = p.feed(wire).unwrap().unwrap();
        assert_eq!(first.body, b"abcd");
        let second = p.feed(b"").unwrap().unwrap();
        assert_eq!(second.method, "GET");
    }

    #[test]
    fn byte_at_a_time_feed_parses() {
        let wire = b"POST /x HTTP/1.1\nContent-Length: 2\n\nhi";
        let mut p = RequestParser::new();
        let mut got = None;
        for &b in wire.iter() {
            if let Some(req) = p.feed(&[b]).unwrap() {
                got = Some(req);
            }
        }
        let req = got.expect("parsed");
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn transfer_encoding_is_501() {
        let mut p = RequestParser::new();
        let err = p
            .feed(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.status(), 501);
        // Poisoned: later feeds repeat the error.
        assert_eq!(p.feed(b"GET / HTTP/1.1\r\n\r\n").unwrap_err().status(), 501);
    }

    #[test]
    fn oversized_head_is_431_even_without_terminator() {
        let mut p = RequestParser::with_limits(ParserLimits {
            max_head_bytes: 64,
            max_body_bytes: 64,
        });
        let long = vec![b'a'; 100];
        assert_eq!(p.feed(&long).unwrap_err().status(), 431);
    }

    #[test]
    fn oversized_body_is_413() {
        let mut p = RequestParser::with_limits(ParserLimits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
        });
        let err = p
            .feed(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn malformed_request_line_is_400() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/2 extra\r\n\r\n",
            b"GET / SPDY/9\r\n\r\n",
            b"G@T / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let mut p = RequestParser::new();
            assert_eq!(p.feed(bad).unwrap_err().status(), 400, "{bad:?}");
        }
    }
}
