//! Multi-worker fleet router: N replicated [`Server`] workers behind one
//! submission surface. Each worker owns its engine and session (no
//! shared mutable state), so determinism composes: a request produces
//! the same token stream whichever worker serves it, which is what lets
//! the conformance suite pin fleet output bitwise against the offline
//! single-session reference at any worker count.
//!
//! Routing is least-loaded: the router scores every *alive* worker by
//! `queue_depth + live_streams` (tie-broken by KV rows, then index) and
//! submits there. A worker whose handle reports
//! [`SubmitError::ServerClosed`] — its thread died, e.g. via the
//! failure-injection hook — is marked dead and removed from rotation on
//! the spot; the submission retries on the remaining workers, so one
//! crash never takes the fleet down.
//!
//! With [`FleetConfig::supervision`] set the fleet goes further and
//! *self-heals*: the fleet keeps the model and engine factory, and a
//! supervisor sweep ([`FleetHandle::supervise`], driven from the routing
//! path and/or the [`HttpServer`](super::HttpServer) supervisor thread)
//! harvests each dead worker's panic and respawns a fresh [`Server`] in
//! its slot, bounded by `max_restarts` with exponential backoff.
//! Determinism is what makes the companion failover feature
//! ([`RequestOptions::failover`]) exactly-once: a request orphaned by a
//! crash is resubmitted to a survivor, and the router-side stream skips
//! the bitwise-identical replay of whatever it already delivered.

use crate::server::{
    FailoverCtx, RequestOptions, ResponseStream, Server, ServerConfig, ServerHandle, ServerReport,
    SubmitError,
};
use crate::session::GenRequest;
use crate::telemetry::{Counter, EngineTelemetry, Gauge, MetricsRegistry};
use microscopiq_core::error::QuantError;
use microscopiq_fm::{PackedGemm, PackedTinyFm};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Supervised-respawn policy for [`FleetConfig::supervision`].
#[derive(Debug, Clone, Copy)]
pub struct SupervisionConfig {
    /// Respawns allowed per worker slot over the fleet's lifetime;
    /// a slot that exhausts its budget stays dead (crash-loop guard).
    pub max_restarts: usize,
    /// Base delay before the *second* respawn of the same slot (the
    /// first is immediate); doubles per respawn up to `max_backoff`.
    pub backoff: Duration,
    /// Ceiling on the per-slot respawn backoff.
    pub max_backoff: Duration,
    /// Sweep period of the [`HttpServer`](super::HttpServer) supervisor
    /// thread. Router-driven sweeps (every [`FleetHandle::submit`]) are
    /// not paced by this — they piggyback on traffic.
    pub interval: Duration,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            max_restarts: 4,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            interval: Duration::from_millis(25),
        }
    }
}

/// Fleet-level configuration: one [`ServerConfig`] stamped onto every
/// worker, plus the worker count and the optional supervision policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of replicated workers (≥ 1).
    pub workers: usize,
    /// Per-worker serving configuration (queue, QoS, shedding, …).
    pub server: ServerConfig,
    /// Optional supervised respawn. `None` (the default) keeps the
    /// PR-8 behavior: a dead worker leaves rotation forever and its
    /// capacity is lost.
    pub supervision: Option<SupervisionConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            server: ServerConfig::default(),
            supervision: None,
        }
    }
}

/// Everything about one worker slot that changes across incarnations.
struct SlotState {
    /// The current incarnation (owns the worker thread); `None` only
    /// transiently while a corpse is being harvested.
    server: Option<Server>,
    /// Routing handle of the current incarnation.
    handle: Option<ServerHandle>,
    /// Respawns performed on this slot so far.
    restarts: usize,
    /// Earliest instant the next respawn may run (backoff).
    next_restart_at: Option<Instant>,
    /// Panic messages harvested from dead incarnations of this slot.
    panics: Vec<String>,
}

struct WorkerSlot {
    /// Rotation flag: flipped false on death detection, true on respawn.
    /// Kept outside the mutex so the routing fast path stays lock-free
    /// for dead slots.
    alive: AtomicBool,
    state: Mutex<SlotState>,
}

type ServerFactory = Box<dyn Fn(usize) -> Result<Server, QuantError> + Send + Sync>;

/// State shared by every [`FleetHandle`] clone and the [`Fleet`] itself.
struct FleetShared {
    slots: Vec<WorkerSlot>,
    /// Spawns a replacement [`Server`] for slot `i` (captures the model
    /// and the engine factory).
    factory: ServerFactory,
    supervision: Option<SupervisionConfig>,
    /// Fleet-level instruments, rendered ahead of the per-worker
    /// sections in [`FleetHandle::render_metrics`].
    registry: MetricsRegistry,
    workers_alive: Arc<Gauge>,
    respawns: Arc<Counter>,
    failovers: Arc<Counter>,
}

impl FleetShared {
    /// Marks slot `i` out of rotation; the CAS guarantees the liveness
    /// gauge decrements exactly once per death even under racing
    /// submitters.
    fn mark_dead(&self, i: usize) {
        if self.slots[i]
            .alive
            .compare_exchange(true, false, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.workers_alive.add(-1);
        }
    }

    /// Marks slot `i` back in rotation (after a respawn, or when a
    /// blind `mark_dead` raced a respawn and hit the fresh incarnation).
    fn mark_alive(&self, i: usize) {
        if self.slots[i]
            .alive
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.workers_alive.add(1);
        }
    }

    /// The routing handle of slot `i` if the slot is in rotation and its
    /// worker thread still reports alive (the exit flag flips during
    /// unwinding, so a crash is visible without probing). A freshly
    /// discovered death is recorded on the spot.
    fn slot_handle(&self, i: usize) -> Option<ServerHandle> {
        if !self.slots[i].alive.load(Ordering::Relaxed) {
            return None;
        }
        let handle = self.slots[i].state.lock().unwrap().handle.clone()?;
        if handle.worker_alive() {
            return Some(handle);
        }
        self.mark_dead(i);
        None
    }
}

/// Shared routing state: per-worker slots plus liveness flags and fleet
/// metrics. Cloning a [`FleetHandle`] clones the `Arc`, so every
/// connection thread routes over the same liveness view.
pub struct FleetHandle {
    shared: Arc<FleetShared>,
}

impl Clone for FleetHandle {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl FleetHandle {
    /// Number of workers currently in rotation.
    pub fn alive_workers(&self) -> usize {
        (0..self.shared.slots.len())
            .filter(|&i| self.shared.slot_handle(i).is_some())
            .count()
    }

    /// Total worker slots, dead or alive.
    pub fn worker_count(&self) -> usize {
        self.shared.slots.len()
    }

    /// Respawns performed by the supervisor so far.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.get()
    }

    /// Failovers performed so far (orphaned streams respliced onto a
    /// survivor).
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.get()
    }

    /// The handle of worker `idx`'s *current* incarnation (for tests and
    /// failure injection). After a respawn this is the replacement, not
    /// the corpse.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn worker(&self, idx: usize) -> ServerHandle {
        self.shared.slots[idx]
            .state
            .lock()
            .unwrap()
            .handle
            .clone()
            .expect("worker slot has a handle")
    }

    /// One supervisor sweep: for every dead slot with restart budget and
    /// elapsed backoff, harvest the corpse's panic and spawn a fresh
    /// [`Server`] in its place. Returns the number of respawns
    /// performed. No-op (returns 0) without [`FleetConfig::supervision`];
    /// the fast path over an all-alive fleet takes no locks.
    pub fn supervise(&self) -> usize {
        let Some(sup) = self.shared.supervision else {
            return 0;
        };
        let mut respawned = 0;
        for (i, slot) in self.shared.slots.iter().enumerate() {
            if self.shared.slot_handle(i).is_some() {
                continue; // alive — nothing to do
            }
            let mut st = slot.state.lock().unwrap();
            // Re-check under the lock: a racing supervisor may have
            // respawned already, or a blind `mark_dead` may have raced a
            // respawn and flagged a healthy incarnation.
            if st.handle.as_ref().is_some_and(ServerHandle::worker_alive) {
                drop(st);
                self.shared.mark_alive(i);
                continue;
            }
            if st.restarts >= sup.max_restarts {
                continue; // crash-loop guard: slot stays dead
            }
            if st.next_restart_at.is_some_and(|t| Instant::now() < t) {
                continue; // backoff pending
            }
            // Harvest the corpse: the dead thread joins immediately and
            // yields its panic message for the fleet report.
            st.handle = None;
            if let Some(server) = st.server.take() {
                if let Err(panic) = server.try_shutdown() {
                    st.panics.push(panic);
                }
            }
            st.restarts += 1;
            let exp = (st.restarts - 1).min(20) as u32;
            let delay = sup.backoff.saturating_mul(1 << exp).min(sup.max_backoff);
            st.next_restart_at = Some(Instant::now() + delay);
            match (self.shared.factory)(i) {
                Ok(server) => {
                    st.handle = Some(server.handle());
                    st.server = Some(server);
                    drop(st);
                    self.shared.mark_alive(i);
                    self.shared.respawns.inc();
                    respawned += 1;
                }
                Err(_) => {
                    // Spawn failure burns a restart and waits out the
                    // backoff like a crash would.
                }
            }
        }
        respawned
    }

    /// Submits to the least-loaded alive worker; returns the worker
    /// index that accepted alongside the stream. Workers found dead
    /// ([`SubmitError::ServerClosed`]) are dropped from rotation and
    /// the submission retries elsewhere. Under supervision each submit
    /// also runs one supervisor sweep first, so a router-only fleet
    /// (no [`HttpServer`](super::HttpServer)) still heals.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ServerClosed`] once no worker is alive; other
    /// errors ([`SubmitError::QueueFull`], [`SubmitError::Shed`]) come
    /// from the chosen worker and are not retried — backpressure and
    /// shedding are per-worker signals the caller must surface.
    pub fn submit(&self, req: GenRequest) -> Result<(usize, ResponseStream), SubmitError> {
        self.submit_with(req, RequestOptions::default())
    }

    /// [`FleetHandle::submit`] with explicit [`RequestOptions`]. With
    /// [`RequestOptions::failover`] set, the returned stream carries a
    /// resubmit hook: if its worker dies mid-stream the request replays
    /// on a survivor and the stream splices the continuation after the
    /// already-delivered prefix — bitwise seamless, because every worker
    /// generates the identical token sequence for the same request.
    ///
    /// # Errors
    ///
    /// As [`FleetHandle::submit`].
    pub fn submit_with(
        &self,
        req: GenRequest,
        opts: RequestOptions,
    ) -> Result<(usize, ResponseStream), SubmitError> {
        self.supervise();
        let (idx, mut stream) = self.route(req.clone(), opts)?;
        if opts.failover {
            // Bounded: enough attempts to ride out every slot dying once
            // plus a respawn wave, but never an unbounded retry loop.
            let attempts = self.worker_count().max(2) * 2;
            let this = self.clone();
            let resubmit: Arc<dyn Fn() -> Option<ResponseStream> + Send + Sync> =
                Arc::new(move || {
                    this.supervise();
                    match this.route(req.clone(), opts) {
                        Ok((_, fresh)) => {
                            this.shared.failovers.inc();
                            Some(fresh)
                        }
                        Err(_) => None,
                    }
                });
            stream.failover = Some(FailoverCtx {
                resubmit,
                delivered_tokens: 0,
                skip_tokens: 0,
                delivered_samples: Vec::new(),
                attempts_left: attempts,
            });
        }
        Ok((idx, stream))
    }

    /// Least-loaded routing over alive slots, with dead-worker retry.
    /// The slot lock is never held across a submit: the handle is
    /// cloned out first, so a slow admission queue cannot stall the
    /// supervisor or other routers.
    fn route(
        &self,
        req: GenRequest,
        opts: RequestOptions,
    ) -> Result<(usize, ResponseStream), SubmitError> {
        loop {
            // Least-loaded among alive workers: fewest queued + live
            // requests, then fewest KV rows, then lowest index.
            let mut best: Option<(usize, ServerHandle, (usize, usize))> = None;
            for i in 0..self.shared.slots.len() {
                let Some(handle) = self.shared.slot_handle(i) else {
                    continue;
                };
                let load = handle.queue_depth() + handle.live_streams();
                let key = (load, handle.kv_rows());
                if best.as_ref().is_none_or(|(_, _, bk)| key < *bk) {
                    best = Some((i, handle, key));
                }
            }
            let Some((idx, handle, _)) = best else {
                return Err(SubmitError::ServerClosed);
            };
            match handle.submit_with(req.clone(), opts) {
                Ok(stream) => return Ok((idx, stream)),
                Err(SubmitError::ServerClosed) => {
                    // Worker thread died between the liveness check and
                    // the submit: pull it from rotation and retry on the
                    // survivors. (If this races a respawn and flags a
                    // fresh incarnation, the next supervisor sweep
                    // corrects the flag.)
                    self.shared.mark_dead(idx);
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Concatenated Prometheus exposition text: a `# ---- fleet ----`
    /// section (liveness gauge, respawn/failover counters) followed by
    /// every worker's section introduced by a `# ---- worker N ----`
    /// comment line (comments are legal exposition syntax, so scrapers
    /// that split on metric names still parse the whole document).
    pub fn render_metrics(&self) -> String {
        let mut out = String::from("# ---- fleet ----\n");
        out.push_str(&self.shared.registry.render_text());
        for i in 0..self.shared.slots.len() {
            out.push_str(&format!("# ---- worker {i} ----\n"));
            match self.shared.slot_handle(i) {
                Some(handle) => out.push_str(&handle.render_metrics()),
                None => out.push_str("# worker dead\n"),
            }
        }
        out
    }

    /// Sum of [`ServerHandle::kv_rows`] over alive workers.
    pub fn kv_rows(&self) -> usize {
        (0..self.shared.slots.len())
            .filter_map(|i| self.shared.slot_handle(i))
            .map(|h| h.kv_rows())
            .sum()
    }
}

/// Final fleet accounting from [`Fleet::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-worker reports of the incarnation serving each slot at
    /// shutdown, index-aligned with spawn order; `None` for a slot whose
    /// worker died (its panic message is in `panics`).
    pub per_worker: Vec<Option<ServerReport>>,
    /// Panic messages of every incarnation that died over the fleet's
    /// lifetime, grouped by slot in worker order — with supervision a
    /// slot can contribute several.
    pub panics: Vec<String>,
    /// Respawns performed by the supervisor (0 without supervision).
    pub respawns: usize,
}

impl FleetReport {
    /// Worker incarnations that died (with supervision this counts
    /// harvested corpses too, not just slots empty at shutdown).
    pub fn lost(&self) -> usize {
        self.panics.len()
    }

    /// Sums a field across surviving workers.
    pub fn total(&self, field: impl Fn(&ServerReport) -> usize) -> usize {
        self.per_worker.iter().flatten().map(field).sum()
    }
}

/// N replicated serving workers behind one router. Construction takes a
/// factory so every worker gets its *own* engine instance (engines may
/// hold caches or thread pools that must not be shared); the model is
/// cloned per worker — packed weights are immutable, so replicas stay
/// bitwise identical. The factory is retained for the fleet's lifetime:
/// it is what lets the supervisor respawn a dead worker's slot.
pub struct Fleet {
    handle: FleetHandle,
}

impl Fleet {
    /// Spawns `cfg.workers` servers over clones of `model`, one engine
    /// from `mk_engine(worker_index)` each.
    ///
    /// # Errors
    ///
    /// Propagates [`QuantError`] from the first worker whose serving
    /// config is invalid (already-spawned workers are dropped cleanly).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero.
    pub fn spawn<E, F>(
        model: PackedTinyFm,
        mk_engine: F,
        cfg: FleetConfig,
    ) -> Result<Self, QuantError>
    where
        E: PackedGemm + EngineTelemetry + Send + 'static,
        F: Fn(usize) -> E + Send + Sync + 'static,
    {
        assert!(cfg.workers >= 1, "fleet needs at least one worker");
        let server_cfg = cfg.server;
        let factory: ServerFactory =
            Box::new(move |i| Server::spawn(model.clone(), mk_engine(i), server_cfg));
        let mut slots = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let server = factory(i)?;
            slots.push(WorkerSlot {
                alive: AtomicBool::new(true),
                state: Mutex::new(SlotState {
                    handle: Some(server.handle()),
                    server: Some(server),
                    restarts: 0,
                    next_restart_at: None,
                    panics: Vec::new(),
                }),
            });
        }
        let registry = MetricsRegistry::new();
        let workers_alive = registry.gauge(
            "microscopiq_fleet_workers_alive",
            "Worker slots currently in rotation",
        );
        workers_alive.set(cfg.workers as i64);
        let respawns = registry.counter(
            "microscopiq_fleet_respawns_total",
            "Dead workers respawned by the supervisor",
        );
        let failovers = registry.counter(
            "microscopiq_fleet_failovers_total",
            "Orphaned streams respliced onto a surviving worker",
        );
        Ok(Self {
            handle: FleetHandle {
                shared: Arc::new(FleetShared {
                    slots,
                    factory,
                    supervision: cfg.supervision,
                    registry,
                    workers_alive,
                    respawns,
                    failovers,
                }),
            },
        })
    }

    /// The routing handle (cloneable; one per connection thread).
    pub fn handle(&self) -> FleetHandle {
        self.handle.clone()
    }

    /// Drains every worker and collects the fleet report. Dead workers
    /// contribute their panic message instead of a report; the fleet
    /// itself never panics on shutdown.
    pub fn shutdown(self) -> FleetReport {
        let shared = self.handle.shared;
        let mut report = FleetReport {
            respawns: shared.respawns.get() as usize,
            ..FleetReport::default()
        };
        for slot in &shared.slots {
            // Take the slot apart under the lock, then join outside it:
            // dropping the routing handle first is what lets the worker
            // see its admission channel close.
            let mut st = slot.state.lock().unwrap();
            st.handle = None;
            let server = st.server.take();
            let panics = std::mem::take(&mut st.panics);
            drop(st);
            report.panics.extend(panics);
            match server.map(Server::try_shutdown) {
                Some(Ok(r)) => report.per_worker.push(Some(r)),
                Some(Err(panic)) => {
                    report.per_worker.push(None);
                    report.panics.push(panic);
                }
                None => report.per_worker.push(None),
            }
        }
        report
    }
}
