//! Multi-worker fleet router: N replicated [`Server`] workers behind one
//! submission surface. Each worker owns its engine and session (no
//! shared mutable state), so determinism composes: a request produces
//! the same token stream whichever worker serves it, which is what lets
//! the conformance suite pin fleet output bitwise against the offline
//! single-session reference at any worker count.
//!
//! Routing is least-loaded: the router scores every *alive* worker by
//! `queue_depth + live_streams` (tie-broken by KV rows, then index) and
//! submits there. A worker whose handle reports
//! [`SubmitError::ServerClosed`] — its thread died, e.g. via the
//! failure-injection hook — is marked dead and removed from rotation on
//! the spot; the submission retries on the remaining workers, so one
//! crash never takes the fleet down.

use crate::server::{
    RequestOptions, ResponseStream, Server, ServerConfig, ServerHandle, ServerReport, SubmitError,
};
use crate::session::GenRequest;
use crate::telemetry::EngineTelemetry;
use microscopiq_core::error::QuantError;
use microscopiq_fm::{PackedGemm, PackedTinyFm};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Fleet-level configuration: one [`ServerConfig`] stamped onto every
/// worker, plus the worker count.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of replicated workers (≥ 1).
    pub workers: usize,
    /// Per-worker serving configuration (queue, QoS, shedding, …).
    pub server: ServerConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            server: ServerConfig::default(),
        }
    }
}

struct Worker {
    handle: ServerHandle,
    alive: Arc<AtomicBool>,
}

impl Worker {
    /// In rotation: not yet marked dead by a failed submit, and the
    /// worker thread itself still reports alive (its exit flag flips
    /// during unwinding, so a crash is visible without probing).
    fn in_rotation(&self) -> bool {
        if !self.alive.load(Ordering::Relaxed) {
            return false;
        }
        if self.handle.worker_alive() {
            return true;
        }
        self.alive.store(false, Ordering::Relaxed);
        false
    }
}

/// Shared routing state: per-worker handles plus liveness flags.
/// Cloning a [`FleetHandle`] clones the `Arc`, so every connection
/// thread routes over the same liveness view.
pub struct FleetHandle {
    workers: Arc<Vec<Worker>>,
}

impl Clone for FleetHandle {
    fn clone(&self) -> Self {
        Self {
            workers: Arc::clone(&self.workers),
        }
    }
}

impl FleetHandle {
    /// Number of workers still in rotation.
    pub fn alive_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.in_rotation()).count()
    }

    /// Total workers, dead or alive.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The handle of worker `idx` (for tests and failure injection).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn worker(&self, idx: usize) -> &ServerHandle {
        &self.workers[idx].handle
    }

    /// Submits to the least-loaded alive worker; returns the worker
    /// index that accepted alongside the stream. Workers found dead
    /// ([`SubmitError::ServerClosed`]) are dropped from rotation and
    /// the submission retries elsewhere.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ServerClosed`] once no worker is alive; other
    /// errors ([`SubmitError::QueueFull`], [`SubmitError::Shed`]) come
    /// from the chosen worker and are not retried — backpressure and
    /// shedding are per-worker signals the caller must surface.
    pub fn submit(&self, req: GenRequest) -> Result<(usize, ResponseStream), SubmitError> {
        self.submit_with(req, RequestOptions::default())
    }

    /// [`FleetHandle::submit`] with explicit [`RequestOptions`].
    ///
    /// # Errors
    ///
    /// As [`FleetHandle::submit`].
    pub fn submit_with(
        &self,
        req: GenRequest,
        opts: RequestOptions,
    ) -> Result<(usize, ResponseStream), SubmitError> {
        loop {
            // Least-loaded among alive workers: fewest queued + live
            // requests, then fewest KV rows, then lowest index.
            let mut best: Option<(usize, (usize, usize))> = None;
            for (i, w) in self.workers.iter().enumerate() {
                if !w.in_rotation() {
                    continue;
                }
                let load = w.handle.queue_depth() + w.handle.live_streams();
                let key = (load, w.handle.kv_rows());
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((i, key));
                }
            }
            let Some((idx, _)) = best else {
                return Err(SubmitError::ServerClosed);
            };
            match self.workers[idx].handle.submit_with(req.clone(), opts) {
                Ok(stream) => return Ok((idx, stream)),
                Err(SubmitError::ServerClosed) => {
                    // Worker thread died: pull it from rotation and
                    // retry the submission on the survivors.
                    self.workers[idx].alive.store(false, Ordering::Relaxed);
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Concatenated Prometheus exposition text of every worker, each
    /// section introduced by a `# ---- worker N ----` comment line
    /// (comments are legal exposition syntax, so scrapers that split on
    /// metric names still parse the whole document).
    pub fn render_metrics(&self) -> String {
        let mut out = String::new();
        for (i, w) in self.workers.iter().enumerate() {
            out.push_str(&format!("# ---- worker {i} ----\n"));
            if w.in_rotation() {
                out.push_str(&w.handle.render_metrics());
            } else {
                out.push_str("# worker dead\n");
            }
        }
        out
    }

    /// Sum of [`ServerHandle::kv_rows`] over alive workers.
    pub fn kv_rows(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.in_rotation())
            .map(|w| w.handle.kv_rows())
            .sum()
    }
}

/// Final fleet accounting from [`Fleet::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-worker reports, index-aligned with spawn order; `None` for a
    /// worker that died (its panic message is in `panics`).
    pub per_worker: Vec<Option<ServerReport>>,
    /// Panic messages of workers that died, in worker order.
    pub panics: Vec<String>,
}

impl FleetReport {
    /// Workers that did not survive to shutdown.
    pub fn lost(&self) -> usize {
        self.panics.len()
    }

    /// Sums a field across surviving workers.
    pub fn total(&self, field: impl Fn(&ServerReport) -> usize) -> usize {
        self.per_worker.iter().flatten().map(field).sum()
    }
}

/// N replicated serving workers behind one router. Construction takes a
/// factory so every worker gets its *own* engine instance (engines may
/// hold caches or thread pools that must not be shared); the model is
/// cloned per worker — packed weights are immutable, so replicas stay
/// bitwise identical.
pub struct Fleet {
    // Field order matters: the handle must drop before the servers —
    // `Server::drop` joins its worker, and workers only exit once
    // every routing handle (admission-channel sender) is gone.
    handle: FleetHandle,
    servers: Vec<Server>,
}

impl Fleet {
    /// Spawns `cfg.workers` servers over clones of `model`, one engine
    /// from `mk_engine(worker_index)` each.
    ///
    /// # Errors
    ///
    /// Propagates [`QuantError`] from the first worker whose serving
    /// config is invalid (already-spawned workers are dropped cleanly).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero.
    pub fn spawn<E, F>(
        model: PackedTinyFm,
        mk_engine: F,
        cfg: FleetConfig,
    ) -> Result<Self, QuantError>
    where
        E: PackedGemm + EngineTelemetry + Send + 'static,
        F: Fn(usize) -> E,
    {
        assert!(cfg.workers >= 1, "fleet needs at least one worker");
        let mut servers = Vec::with_capacity(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let server = Server::spawn(model.clone(), mk_engine(i), cfg.server)?;
            workers.push(Worker {
                handle: server.handle(),
                alive: Arc::new(AtomicBool::new(true)),
            });
            servers.push(server);
        }
        Ok(Self {
            servers,
            handle: FleetHandle {
                workers: Arc::new(workers),
            },
        })
    }

    /// The routing handle (cloneable; one per connection thread).
    pub fn handle(&self) -> FleetHandle {
        self.handle.clone()
    }

    /// Drains every worker and collects the fleet report. Dead workers
    /// contribute their panic message instead of a report; the fleet
    /// itself never panics on shutdown.
    pub fn shutdown(self) -> FleetReport {
        // Drop the router's own handle references first so workers see
        // their channels close once external handles are gone.
        let Fleet { servers, handle } = self;
        drop(handle);
        let mut report = FleetReport::default();
        for server in servers {
            match server.try_shutdown() {
                Ok(r) => report.per_worker.push(Some(r)),
                Err(panic) => {
                    report.per_worker.push(None);
                    report.panics.push(panic);
                }
            }
        }
        report
    }
}
