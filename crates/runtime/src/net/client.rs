//! Minimal blocking HTTP/1.1 client for the wire protocol — what the
//! conformance and failure-injection suites (and the example) speak to
//! the fleet with. One [`HttpClient`] is one TCP connection; keep-alive
//! reuse across requests is the default, and *dropping* the client
//! mid-stream is an abrupt TCP disconnect — exactly the failure the
//! server must map onto request cancellation.

use super::json::Json;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side robustness knobs. The default is bitwise-compatible with
/// the original client: no timeouts, no retries.
#[derive(Debug, Clone, Copy)]
pub struct HttpClientConfig {
    /// Bound on TCP connect; `None` (the default) blocks until the OS
    /// gives up.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout; a server silent for this long surfaces as
    /// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`] from
    /// whatever call was reading. `None` (the default) waits forever.
    pub read_timeout: Option<Duration>,
    /// Retries after a 503 response (overload shedding, queue-full, or
    /// fleet-wide death): the client sleeps out the server's
    /// `Retry-After` header — capped at `max_retry_delay` — and resends
    /// the request on the same keep-alive connection. 0 (the default)
    /// surfaces 503 immediately.
    pub retry_503: usize,
    /// Backoff before retry `n` when the 503 carried no `Retry-After`:
    /// `retry_backoff × 2ⁿ`, capped at `max_retry_delay`.
    pub retry_backoff: Duration,
    /// Ceiling on any single retry delay, including server-requested
    /// ones (a confused server cannot stall the client for minutes).
    pub max_retry_delay: Duration,
}

impl Default for HttpClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: None,
            read_timeout: None,
            retry_503: 0,
            retry_backoff: Duration::from_millis(100),
            max_retry_delay: Duration::from_secs(2),
        }
    }
}

impl HttpClientConfig {
    /// The delay before retry `attempt` (0-based) of a 503 whose
    /// `Retry-After` header was `retry_after`.
    fn retry_delay(&self, retry_after: Option<&str>, attempt: usize) -> Duration {
        let requested = retry_after
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_secs);
        let fallback = self
            .retry_backoff
            .saturating_mul(1u32 << attempt.min(20) as u32);
        requested.unwrap_or(fallback).min(self.max_retry_delay)
    }
}

/// A complete (non-streaming) HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the response line.
    pub status: u16,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The full body (chunked responses are de-chunked).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header matching `name` (any case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One keep-alive connection to the wire front-end.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
    cfg: HttpClientConfig,
}

impl HttpClient {
    /// Connects to `addr` with default (timeout-less, retry-less)
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with(addr, HttpClientConfig::default())
    }

    /// Connects to `addr` honoring `cfg.connect_timeout` and installing
    /// `cfg.read_timeout` on the socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors, including
    /// [`io::ErrorKind::TimedOut`] when the connect timeout expires.
    pub fn connect_with(addr: SocketAddr, cfg: HttpClientConfig) -> io::Result<Self> {
        let stream = match cfg.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(cfg.read_timeout)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
            cfg,
        })
    }

    /// `GET path`, reading the complete response. A 503 is retried up
    /// to [`HttpClientConfig::retry_503`] times, sleeping out the
    /// server's `Retry-After` (capped) between attempts.
    ///
    /// # Errors
    ///
    /// Socket errors or a malformed response.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        for attempt in 0..self.cfg.retry_503 {
            self.write_get(path)?;
            let resp = self.read_response()?;
            if resp.status != 503 {
                return Ok(resp);
            }
            // The 503 body is fully read, so the keep-alive connection
            // stays aligned for the resend.
            std::thread::sleep(self.cfg.retry_delay(resp.header("retry-after"), attempt));
        }
        self.write_get(path)?;
        self.read_response()
    }

    /// `POST path` with a JSON body, reading the complete response
    /// (including de-chunking a streamed one — use
    /// [`HttpClient::generate`] to consume events incrementally). A 503
    /// is retried like [`HttpClient::get`].
    ///
    /// # Errors
    ///
    /// Socket errors or a malformed response.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        for attempt in 0..self.cfg.retry_503 {
            self.write_post(path, body)?;
            let resp = self.read_response()?;
            if resp.status != 503 {
                return Ok(resp);
            }
            std::thread::sleep(self.cfg.retry_delay(resp.header("retry-after"), attempt));
        }
        self.write_post(path, body)?;
        self.read_response()
    }

    /// Starts a `POST /v1/generate` and returns the response head plus
    /// a [`GenStream`] over the SSE events. A 503 head is retried like
    /// [`HttpClient::get`] before surfacing; for any remaining non-200
    /// status the stream is already terminated and the error body is in
    /// [`GenStream::error_body`].
    ///
    /// # Errors
    ///
    /// Socket errors or a malformed response head.
    pub fn generate(&mut self, body: &str) -> io::Result<GenStream<'_>> {
        for attempt in 0..self.cfg.retry_503 {
            self.write_post("/v1/generate", body)?;
            let (status, headers) = self.read_head()?;
            if status != 503 {
                return self.finish_generate(status, &headers);
            }
            let retry_after = headers
                .iter()
                .find(|(n, _)| n == "retry-after")
                .map(|(_, v)| v.as_str());
            let delay = self.cfg.retry_delay(retry_after, attempt);
            let _ = self.read_body(&headers)?; // drain to stay aligned
            std::thread::sleep(delay);
        }
        self.write_post("/v1/generate", body)?;
        let (status, headers) = self.read_head()?;
        self.finish_generate(status, &headers)
    }

    fn finish_generate(
        &mut self,
        status: u16,
        headers: &[(String, String)],
    ) -> io::Result<GenStream<'_>> {
        if status != 200 {
            let body = self.read_body(headers)?;
            return Ok(GenStream {
                client: self,
                status,
                done: true,
                error_body: body,
            });
        }
        Ok(GenStream {
            client: self,
            status,
            done: false,
            error_body: Vec::new(),
        })
    }

    fn write_get(&mut self, path: &str) -> io::Result<()> {
        self.stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: fleet\r\n\r\n").as_bytes())
    }

    fn write_post(&mut self, path: &str, body: &str) -> io::Result<()> {
        self.stream.write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: fleet\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len(),
            )
            .as_bytes(),
        )
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let (status, headers) = self.read_head()?;
        let body = self.read_body(&headers)?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }

    fn read_head(&mut self) -> io::Result<(u16, Vec<(String, String)>)> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                return Ok((status, headers));
            }
            let colon = line
                .find(':')
                .ok_or_else(|| bad(format!("bad header line {line:?}")))?;
            headers.push((
                line[..colon].to_ascii_lowercase(),
                line[colon + 1..].trim().to_string(),
            ));
        }
    }

    fn read_body(&mut self, headers: &[(String, String)]) -> io::Result<Vec<u8>> {
        let chunked = headers
            .iter()
            .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        if chunked {
            let mut body = Vec::new();
            while let Some(chunk) = self.read_chunk()? {
                body.extend_from_slice(&chunk);
            }
            return Ok(body);
        }
        let len = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        self.read_exact_buffered(len)
    }

    /// One transfer chunk; `None` for the terminal zero-length chunk.
    fn read_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        let size_line = self.read_line()?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
        if size == 0 {
            // Trailer-less end: consume the final blank line.
            let _ = self.read_line()?;
            return Ok(None);
        }
        let data = self.read_exact_buffered(size)?;
        let crlf = self.read_line()?;
        if !crlf.is_empty() {
            return Err(bad("chunk not CRLF-terminated"));
        }
        Ok(Some(data))
    }

    fn read_line(&mut self) -> io::Result<String> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = std::str::from_utf8(&line)
                    .map_err(|_| bad("non-UTF-8 response line"))?
                    .trim_end_matches(['\r', '\n'])
                    .to_string();
                return Ok(text);
            }
            self.fill()?;
        }
    }

    fn read_exact_buffered(&mut self, len: usize) -> io::Result<Vec<u8>> {
        while self.buf.len() < len {
            self.fill()?;
        }
        Ok(self.buf.drain(..len).collect())
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// An in-flight `/v1/generate` SSE stream. Borrowing the client keeps
/// the connection alive; after the stream drains (terminal event plus
/// the zero chunk) the same client can issue the next request.
pub struct GenStream<'a> {
    client: &'a mut HttpClient,
    /// Response status (200 for a live stream).
    pub status: u16,
    done: bool,
    error_body: Vec<u8>,
}

impl GenStream<'_> {
    /// The error body of a non-200 response (empty for a live stream).
    pub fn error_body(&self) -> &[u8] {
        &self.error_body
    }

    /// The next SSE event's JSON payload; `None` once the stream ends.
    ///
    /// # Errors
    ///
    /// Socket errors, or [`io::ErrorKind::InvalidData`] for a frame
    /// that is not a well-formed `data: <json>` event.
    pub fn next_event(&mut self) -> io::Result<Option<Json>> {
        if self.done {
            return Ok(None);
        }
        let Some(chunk) = self.client.read_chunk()? else {
            self.done = true;
            return Ok(None);
        };
        let text = std::str::from_utf8(&chunk).map_err(|_| bad("non-UTF-8 SSE frame"))?;
        let payload = text
            .trim_end_matches('\n')
            .strip_prefix("data: ")
            .ok_or_else(|| bad(format!("not an SSE data frame: {text:?}")))?;
        let json = Json::parse(payload).map_err(bad)?;
        Ok(Some(json))
    }

    /// Drains the stream, returning every event in order.
    ///
    /// # Errors
    ///
    /// As [`GenStream::next_event`].
    pub fn collect_events(mut self) -> io::Result<Vec<Json>> {
        let mut events = Vec::new();
        while let Some(ev) = self.next_event()? {
            events.push(ev);
        }
        Ok(events)
    }
}
