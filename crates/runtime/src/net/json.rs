//! Minimal JSON used by the wire protocol — hand-rolled so the fleet
//! stays dependency-free. Supports exactly what `/v1/generate` and the
//! SSE frames need: parsing with a recursion cap, typed accessors, and
//! escaped string serialization. Numbers are `f64` (token ids and
//! counts fit exactly well past any realistic vocab).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always stored as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted for deterministic serialization.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first offending construct.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup; `None` unless `self` is an object with `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with an
    /// exact `usize` representation.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), escaping strings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number {text:?} at offset {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number at offset {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogates map to the replacement character —
                        // the wire protocol never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str upstream,
                // so boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                if (c as u32) < 0x20 {
                    return Err("unescaped control character in string".into());
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_generate_request() {
        let text = r#"{"prompt":[1,2,3],"max_new_tokens":8,"temperature":0.8,"seed":42,"class":"interactive"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("seed").unwrap().as_usize(), Some(42));
        assert_eq!(v.get("prompt").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("class").unwrap().as_str(), Some("interactive"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1e999",
            "\"\\u12\"",
            "{}x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn depth_cap_refuses_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd".into());
        assert_eq!(v.render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
