//! The HTTP/1.1 wire front-end over a [`Fleet`]: a `TcpListener`
//! accept loop plus one std thread per connection — no async runtime,
//! matching the rest of the serving stack.
//!
//! Routes:
//!
//! * `POST /v1/generate` — body is a JSON object: `prompt` (required,
//!   array of token ids), `max_new_tokens` (default 16), `temperature`
//!   (default 1.0), `seed` (default 0), `class` (`"interactive"` |
//!   `"batch"` | `"best_effort"`, default interactive), `n_samples`
//!   (default 1 — N-way generation sharing one prefill), `failover`
//!   (default false — deterministic resubmission to a surviving worker
//!   if the serving worker dies mid-stream). Answers with
//!   an SSE stream over chunked transfer-encoding: one
//!   `data: {"token":N}\n\n` event per generated token of sample 0 as
//!   its decode step completes, one
//!   `data: {"sample":I,"tokens":[..],"new_tokens":K}\n\n` event per
//!   extra sample as it finishes, then a terminal
//!   `data: {"done":true,"tokens":[..],"worker":W}\n\n` event carrying
//!   sample 0's full sequence and the worker that served it. Invalid
//!   requests get 400 before any tokens; overload gets 503
//!   (`Retry-After`).
//! * `GET /metrics` — the fleet's concatenated Prometheus exposition.
//! * `GET /healthz` — fleet liveness as JSON
//!   (`status`/`workers_total`/`workers_alive`/`respawns`): 200 only
//!   with every worker alive, 503 `degraded` on partial capacity, 503
//!   `down` with none.
//!
//! Connections are keep-alive by default; the per-connection parser
//! retains leftover bytes so pipelined requests work. A client that
//! disconnects mid-stream surfaces as a write error, which drops the
//! [`ResponseStream`](crate::server::ResponseStream) — the existing
//! drop-to-cancel path — so a TCP reset reclaims the request's batch
//! slot and KV cache without touching other streams.

use super::fleet::{Fleet, FleetConfig, FleetHandle, FleetReport};
use super::http::{HttpParseError, HttpRequest, ParserLimits, RequestParser};
use super::json::{obj, Json};
use crate::server::{RequestOptions, StreamEvent, SubmitError};
use crate::session::{GenRequest, QosClass};
use crate::telemetry::EngineTelemetry;
use microscopiq_core::error::QuantError;
use microscopiq_fm::{PackedGemm, PackedTinyFm};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Wire front-end configuration.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Fleet shape and per-worker serving configuration.
    pub fleet: FleetConfig,
    /// Request-parser size caps.
    pub limits: ParserLimits,
    /// Idle read timeout per keep-alive connection; a connection that
    /// sends nothing for this long is closed.
    pub keepalive: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            fleet: FleetConfig::default(),
            limits: ParserLimits::default(),
            keepalive: Duration::from_secs(5),
        }
    }
}

/// Errors starting the wire front-end.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure binding or configuring the listener.
    Io(io::Error),
    /// Invalid serving configuration for a fleet worker.
    Quant(QuantError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Quant(e) => write!(f, "serving config error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<QuantError> for NetError {
    fn from(e: QuantError) -> Self {
        Self::Quant(e)
    }
}

struct Inner {
    /// Dropped (set to `None`) during shutdown *before* the fleet is
    /// drained: a [`FleetHandle`] keeps every worker's admission
    /// channel open, and workers only exit once all senders are gone.
    fleet: Mutex<Option<FleetHandle>>,
    limits: ParserLimits,
    keepalive: Duration,
    vocab: usize,
    stop: AtomicBool,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn fleet(&self) -> Option<FleetHandle> {
        self.fleet.lock().expect("fleet handle").clone()
    }
}

/// The running wire front-end: a bound listener, its accept thread, and
/// the fleet behind it.
pub struct HttpServer {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    /// Supervisor sweep thread; present only with
    /// [`FleetConfig::supervision`] set. Joined before the fleet drains
    /// so a respawn can never race shutdown.
    supervisor: Option<JoinHandle<()>>,
    fleet: Option<Fleet>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving a fleet of `cfg.fleet.workers` workers over
    /// clones of `model`, one engine from `mk_engine(worker)` each.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the bind fails; [`NetError::Quant`] if the
    /// per-worker serving configuration is invalid.
    pub fn bind<E, F>(
        addr: &str,
        model: PackedTinyFm,
        mk_engine: F,
        cfg: HttpConfig,
    ) -> Result<Self, NetError>
    where
        E: PackedGemm + EngineTelemetry + Send + 'static,
        F: Fn(usize) -> E + Send + Sync + 'static,
    {
        let vocab = model.config().vocab;
        let supervision = cfg.fleet.supervision;
        let fleet = Fleet::spawn(model, mk_engine, cfg.fleet)?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            fleet: Mutex::new(Some(fleet.handle())),
            limits: cfg.limits,
            keepalive: cfg.keepalive,
            vocab,
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("microscopiq-http-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("spawn accept thread");
        // Periodic supervisor sweep: respawns dead workers even while no
        // traffic is flowing (the routing path also sweeps per submit).
        let supervisor = supervision.map(|sup| {
            let handle = fleet.handle();
            let sup_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("microscopiq-http-supervisor".into())
                .spawn(move || {
                    while !sup_inner.stop.load(Ordering::SeqCst) {
                        // Sleep in short slices so shutdown is prompt
                        // whatever the sweep interval.
                        let mut slept = Duration::ZERO;
                        while slept < sup.interval && !sup_inner.stop.load(Ordering::SeqCst) {
                            let slice = Duration::from_millis(10).min(sup.interval - slept);
                            std::thread::sleep(slice);
                            slept += slice;
                        }
                        if sup_inner.stop.load(Ordering::SeqCst) {
                            return;
                        }
                        handle.supervise();
                    }
                })
                .expect("spawn supervisor thread")
        });
        Ok(Self {
            addr: local,
            inner,
            accept: Some(accept),
            supervisor,
            fleet: Some(fleet),
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fleet's routing handle (for in-process submission or
    /// failure injection in tests). Note a handle kept across
    /// [`HttpServer::shutdown`] keeps worker admission channels open,
    /// which blocks the fleet drain — drop it first.
    ///
    /// # Panics
    ///
    /// Panics after shutdown has begun.
    pub fn fleet(&self) -> FleetHandle {
        self.inner.fleet().expect("server is running")
    }

    /// Stops accepting, joins every connection thread, drains the
    /// fleet, and returns its report.
    pub fn shutdown(mut self) -> FleetReport {
        self.stop_threads();
        self.fleet.take().map(Fleet::shutdown).unwrap_or_default()
    }

    fn stop_threads(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let conns = std::mem::take(&mut *self.inner.conns.lock().expect("conn registry"));
        for conn in conns {
            let _ = conn.join();
        }
        // Release the server's own routing handle so the fleet drain
        // below can observe worker channels closing.
        self.inner.fleet.lock().expect("fleet handle").take();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.fleet.is_some() {
            self.stop_threads();
            if let Some(fleet) = self.fleet.take() {
                fleet.shutdown();
            }
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let conn_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("microscopiq-http-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &conn_inner);
            })
            .expect("spawn connection thread");
        inner.conns.lock().expect("conn registry").push(handle);
    }
}

/// Drives one keep-alive connection until the client closes, asks to
/// close, errors, times out idle, or the server stops.
fn serve_connection(mut stream: TcpStream, inner: &Inner) -> io::Result<()> {
    // Short read timeout so the loop can observe the stop flag; the
    // idle budget is tracked across timeouts.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    stream.set_nodelay(true)?;
    let mut parser = RequestParser::with_limits(inner.limits);
    let mut idle = Duration::ZERO;
    let mut buf = [0u8; 4096];
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Feed newly-read bytes (or just re-examine leftovers, for a
        // pipelined request already buffered) until one request parses.
        let fed = match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                idle = Duration::ZERO;
                parser.feed(&buf[..n])
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                idle += Duration::from_millis(50);
                if idle >= inner.keepalive {
                    return Ok(());
                }
                parser.feed(&[])
            }
            Err(e) => return Err(e),
        };
        let req = match fed {
            Ok(Some(req)) => req,
            Ok(None) => continue,
            Err(err) => {
                respond_error(&mut stream, &err)?;
                return Ok(());
            }
        };
        let close = req.wants_close();
        route(&mut stream, &req, inner)?;
        if close {
            return Ok(());
        }
    }
}

fn route(stream: &mut TcpStream, req: &HttpRequest, inner: &Inner) -> io::Result<()> {
    let Some(fleet) = inner.fleet() else {
        return respond_status(stream, 503, "server shutting down");
    };
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/v1/generate") => generate(stream, req, &fleet, inner),
        ("GET", "/metrics") => {
            let body = fleet.render_metrics();
            respond(stream, 200, "text/plain; version=0.0.4", body.as_bytes())
        }
        ("GET", "/healthz") => {
            // Degradation-aware health: 200 only at full strength, so a
            // load balancer can drain a fleet running on survivors.
            let total = fleet.worker_count();
            let alive = fleet.alive_workers();
            let (status, state) = match alive {
                a if a == total => (200, "ok"),
                0 => (503, "down"),
                _ => (503, "degraded"),
            };
            let body = obj([
                ("status", Json::Str(state.into())),
                ("workers_total", Json::Num(total as f64)),
                ("workers_alive", Json::Num(alive as f64)),
                ("respawns", Json::Num(fleet.respawns() as f64)),
            ])
            .render();
            respond(stream, status, "application/json", body.as_bytes())
        }
        ("GET" | "POST", _) => respond_status(stream, 404, "not found"),
        _ => respond_status(stream, 405, "method not allowed"),
    }
}

/// Parses the generate body into a [`GenRequest`] plus per-request
/// options; `Err` is the 400 message sent back.
fn parse_gen_request(body: &[u8], vocab: usize) -> Result<(GenRequest, RequestOptions), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let prompt_json = json
        .get("prompt")
        .ok_or_else(|| "missing required field \"prompt\"".to_string())?;
    let items = prompt_json
        .as_arr()
        .ok_or_else(|| "\"prompt\" must be an array of token ids".to_string())?;
    if items.is_empty() {
        return Err("\"prompt\" must be non-empty".into());
    }
    let mut prompt = Vec::with_capacity(items.len());
    for item in items {
        let tok = item
            .as_usize()
            .ok_or_else(|| "\"prompt\" entries must be non-negative integers".to_string())?;
        if tok >= vocab {
            return Err(format!("token {tok} out of vocabulary (vocab {vocab})"));
        }
        prompt.push(tok);
    }
    let max_new_tokens = match json.get("max_new_tokens") {
        None => 16,
        Some(v) => v
            .as_usize()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "\"max_new_tokens\" must be a positive integer".to_string())?,
    };
    let temperature = match json.get("temperature") {
        None => 1.0,
        Some(v) => v
            .as_f64()
            .filter(|t| *t > 0.0)
            .ok_or_else(|| "\"temperature\" must be a positive number".to_string())?,
    };
    let seed = match json.get("seed") {
        None => 0,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?
            as u64,
    };
    let class = match json.get("class") {
        None => QosClass::default(),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| "\"class\" must be a string".to_string())?;
            QosClass::parse(name).ok_or_else(|| {
                format!("unknown class {name:?} (interactive | batch | best_effort)")
            })?
        }
    };
    let n_samples = match json.get("n_samples") {
        None => 1,
        Some(v) => v
            .as_usize()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "\"n_samples\" must be a positive integer".to_string())?,
    };
    let failover = match json.get("failover") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("\"failover\" must be a boolean".into()),
    };
    Ok((
        GenRequest {
            prompt,
            max_new_tokens,
            temperature,
            seed,
            class,
            n_samples,
        },
        RequestOptions {
            failover,
            ..RequestOptions::default()
        },
    ))
}

fn generate(
    stream: &mut TcpStream,
    req: &HttpRequest,
    fleet: &FleetHandle,
    inner: &Inner,
) -> io::Result<()> {
    let (gen, opts) = match parse_gen_request(&req.body, inner.vocab) {
        Ok(parsed) => parsed,
        Err(msg) => return respond_status(stream, 400, &msg),
    };
    let (worker, mut events) = match fleet.submit_with(gen, opts) {
        Ok(accepted) => accepted,
        Err(SubmitError::Shed) => return respond_overloaded(stream, "shed under overload"),
        Err(SubmitError::QueueFull) => return respond_overloaded(stream, "admission queue full"),
        Err(SubmitError::ServerClosed) => {
            return respond_status(stream, 503, "no serving workers alive")
        }
    };
    // SSE over chunked transfer-encoding: one chunk per event, flushed
    // as the worker emits it. Any write failure (client went away)
    // drops `events`, which cancels the request server-side.
    stream.write_all(
        b"HTTP/1.1 200 OK\r\n\
          Content-Type: text/event-stream\r\n\
          Cache-Control: no-store\r\n\
          Transfer-Encoding: chunked\r\n\r\n",
    )?;
    loop {
        // Bounded waits so a server shutdown can cut the stream loose.
        let Some(event) = events.recv_timeout(Duration::from_millis(100)) else {
            if inner.stop.load(Ordering::SeqCst) {
                return write_chunk_end(stream); // drops `events` → cancel
            }
            continue;
        };
        match event {
            StreamEvent::Token(tok) => {
                write_sse_chunk(stream, &obj([("token", Json::Num(tok as f64))]).render())?;
            }
            StreamEvent::Sample { index, result } => {
                let tokens =
                    Json::Arr(result.tokens.iter().map(|&t| Json::Num(t as f64)).collect());
                write_sse_chunk(
                    stream,
                    &obj([
                        ("sample", Json::Num(index as f64)),
                        ("tokens", tokens),
                        ("new_tokens", Json::Num(result.new_tokens as f64)),
                    ])
                    .render(),
                )?;
            }
            StreamEvent::Finished(result) => {
                let tokens =
                    Json::Arr(result.tokens.iter().map(|&t| Json::Num(t as f64)).collect());
                write_sse_chunk(
                    stream,
                    &obj([
                        ("done", Json::Bool(true)),
                        ("tokens", tokens),
                        ("new_tokens", Json::Num(result.new_tokens as f64)),
                        ("worker", Json::Num(worker as f64)),
                    ])
                    .render(),
                )?;
                return write_chunk_end(stream);
            }
            StreamEvent::Error(err) => {
                write_sse_chunk(
                    stream,
                    &obj([("error", Json::Str(err.to_string()))]).render(),
                )?;
                return write_chunk_end(stream);
            }
        }
    }
}

fn write_sse_chunk(stream: &mut TcpStream, payload: &str) -> io::Result<()> {
    let event = format!("data: {payload}\n\n");
    let chunk = format!("{:x}\r\n{event}\r\n", event.len());
    stream.write_all(chunk.as_bytes())?;
    stream.flush()
}

fn write_chunk_end(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        status_text(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn respond_status(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    let body = obj([("error", Json::Str(message.into()))]).render();
    respond(stream, status, "application/json", body.as_bytes())
}

fn respond_overloaded(stream: &mut TcpStream, message: &str) -> io::Result<()> {
    let body = obj([("error", Json::Str(message.into()))]).render();
    let head = format!(
        "HTTP/1.1 503 {}\r\nContent-Type: application/json\r\nRetry-After: 1\r\nContent-Length: {}\r\n\r\n",
        status_text(503),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn respond_error(stream: &mut TcpStream, err: &HttpParseError) -> io::Result<()> {
    respond_status(stream, err.status(), &err.to_string())
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Error",
    }
}
