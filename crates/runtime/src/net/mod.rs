//! The networked serving fleet: an HTTP/1.1 wire protocol over
//! `std::net::TcpListener` (no async runtime), a [`Fleet`] router
//! fanning requests across N replicated [`Server`](crate::Server)
//! workers, and the blocking [`HttpClient`] the test suites drive it
//! with.
//!
//! ```text
//! TCP clients            HttpServer                    Fleet
//! ───────────            ─────────────────────────     ─────────────────
//! POST /v1/generate ──▶  accept loop; thread per  ──▶  least-loaded alive
//!   (JSON body)          connection; RequestParser     worker (queue depth
//!       ◀── SSE tokens   per connection (keep-alive    + live streams) ──▶
//!           (chunked)    + pipelining); /metrics,      Server worker per
//!                        /healthz                      replica: own engine,
//!                                                      session, QoS + shed
//! ```
//!
//! Layering, bottom up:
//!
//! * [`http`] — incremental request parser (bytes in, requests out),
//!   pinned by the property suite: arbitrary read splits, malformed
//!   heads, size caps; never panics, always a clean 4xx/5xx.
//! * [`json`] — the hand-rolled JSON the wire speaks.
//! * [`fleet`] — worker replication + least-loaded routing + dead-worker
//!   removal. Determinism composes: every worker serves bitwise the
//!   same streams, so fleet output is worker-count-invariant.
//! * [`server`] — the `TcpListener` front-end: SSE streaming over
//!   chunked transfer-encoding, keep-alive connections, and the
//!   client-disconnect → drop-stream → cancel mapping that makes a TCP
//!   reset reclaim KV eagerly.
//! * [`client`] — the blocking client used by tests and examples.

pub mod client;
pub mod fleet;
pub mod http;
pub mod json;
pub mod server;

pub use client::{GenStream, HttpClient, HttpClientConfig, HttpResponse};
pub use fleet::{Fleet, FleetConfig, FleetHandle, FleetReport, SupervisionConfig};
pub use http::{HttpParseError, HttpRequest, ParserLimits, RequestParser};
pub use json::Json;
pub use server::{HttpConfig, HttpServer, NetError};
