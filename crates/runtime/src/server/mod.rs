//! Threaded serving front-end over [`Session`]/[`BatchScheduler`]: a
//! dedicated worker thread drives the continuous-batching decode loop
//! while any number of client threads submit requests and consume
//! per-token [`ResponseStream`]s — std threads and channels only, no
//! async runtime.
//!
//! ```text
//! client threads                     worker thread
//! ──────────────                     ─────────────────────────────────
//! handle.submit(req) ──bounded──▶    admit between steps   ┐
//!        │             queue        sweep deadlines/drops  │ per step
//!        ▼                          session.step_report()  │
//! ResponseStream ◀──per-request──   stream emitted tokens  ┘
//!   (drop = cancel)    channel      finish / expire / fault streams
//! ```
//!
//! Properties the conformance suite pins down:
//!
//! * **Continuous admission** — the worker drains the admission queue
//!   between *every* decode step, so requests join the running batch
//!   mid-flight, not at batch boundaries.
//! * **Determinism** — a request's token stream depends only on
//!   (model, prompt, seed, temperature, KV mode), never on batching or
//!   arrival timing: streams are bitwise identical to the offline
//!   [`Session::run_to_completion`] output.
//! * **Cooperative cancellation** — dropping a [`ResponseStream`] sets a
//!   shared flag; the worker retires the request at the next sweep,
//!   releasing its batch slot and KV cache without touching other
//!   streams.
//! * **Chunked prefill** — with [`ServerConfig::prefill_chunk`] set, a
//!   long prompt advances a bounded chunk per step instead of stalling
//!   every live stream for one monolithic quadratic-attention forward; a
//!   request parked mid-prefill emits no tokens until the step that
//!   completes its prompt, and exact-KV outputs are bitwise identical to
//!   whole-prompt prefill for any chunk size.
//! * **Deadlines** — per-request [`Deadline`]s are checked between
//!   steps; an expired request (even one still waiting for its prefill,
//!   or parked partway through a chunked prefill) is retired with
//!   [`ServeError::DeadlineExceeded`] and its partial KV reclaimed.
//! * **Backpressure** — the admission queue is bounded
//!   ([`ServerConfig::queue_capacity`]); when the worker is saturated
//!   ([`ServerConfig::max_in_flight`] live requests) submissions block
//!   or are rejected per [`AdmissionPolicy`].
//! * **Fault isolation** — a panic while admitting a request (e.g. a
//!   malformed prompt validated on the worker) faults only that stream;
//!   a panic inside the shared batched forward faults only the requests
//!   that rode the panicked batch — queued requests keep serving and
//!   the server keeps accepting new work.

mod admission;
mod stream;

pub use admission::{
    AdmissionPolicy, Deadline, RequestOptions, ServerConfig, ShedPolicy, SubmitError,
};
pub(crate) use stream::FailoverCtx;
pub use stream::{ResponseStream, ServeError, StreamEvent};

use crate::prefix::{PrefixCacheStats, PrefixMetrics};
use crate::session::{GenRequest, GenResult, QosClass, RequestId, Session, SessionStats};
use crate::telemetry::{
    Counter, EngineTelemetry, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, TraceArg,
    TraceSink,
};
use admission::{Incoming, WorkerMsg};
use microscopiq_core::error::QuantError;
use microscopiq_fm::{PackedGemm, PackedTinyFm};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server-side instruments, registered into the session's
/// [`MetricsRegistry`] at spawn and shared (via [`Shared`]) between the
/// worker and every [`ServerHandle`]. Latency histograms record whole
/// microseconds.
#[derive(Debug)]
struct ServerMetrics {
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    finished: Arc<Counter>,
    cancelled: Arc<Counter>,
    expired: Arc<Counter>,
    faulted: Arc<Counter>,
    tokens_streamed: Arc<Counter>,
    live: Arc<Gauge>,
    peak_live: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    /// The session's KV-rows gauge (registered by the session; shared
    /// here so [`ServerHandle::kv_rows`] reads it without a snapshot).
    kv_rows: Arc<Gauge>,
    /// The session's KV-bytes gauge — what
    /// [`ServerConfig::kv_byte_budget`] is enforced against.
    kv_bytes: Arc<Gauge>,
    /// The session's in-step peak KV-bytes gauge (high-water mark).
    kv_peak_bytes: Arc<Gauge>,
    queue_wait_us: Arc<Histogram>,
    admit_to_first_token_us: Arc<Histogram>,
    /// Per-[`QosClass`] series (indexed by [`QosClass::index`]) of the
    /// `microscopiq_ttft_us{class=..}` family — the substrate the
    /// [`ShedPolicy`] latency trigger reads.
    ttft_us: [Arc<Histogram>; 3],
    /// Per-class series of `microscopiq_inter_token_us{class=..}`.
    inter_token_us: [Arc<Histogram>; 3],
    /// Per-class `microscopiq_requests_shed_total{class=..}`: refused at
    /// submit or retired at admission by the shed policy.
    shed: [Arc<Counter>; 3],
}

impl ServerMetrics {
    fn register(
        reg: &MetricsRegistry,
        kv_rows: Arc<Gauge>,
        kv_bytes: Arc<Gauge>,
        kv_peak_bytes: Arc<Gauge>,
    ) -> Self {
        Self {
            admitted: reg.counter(
                "microscopiq_requests_admitted_total",
                "Submissions the worker pulled off the admission queue (including ones \
                 cancelled while queued or faulted at admission).",
            ),
            rejected: reg.counter(
                "microscopiq_requests_rejected_total",
                "Submissions refused at the queue under the Reject policy.",
            ),
            finished: reg.counter(
                "microscopiq_requests_finished_total",
                "Requests that ran to their token budget.",
            ),
            cancelled: reg.counter(
                "microscopiq_requests_cancelled_total",
                "Requests retired because their stream was dropped or cancelled.",
            ),
            expired: reg.counter(
                "microscopiq_requests_expired_total",
                "Requests retired by deadline expiry.",
            ),
            faulted: reg.counter(
                "microscopiq_requests_faulted_total",
                "Streams terminated by a worker panic.",
            ),
            tokens_streamed: reg.counter(
                "microscopiq_tokens_streamed_total",
                "Tokens pushed onto response streams.",
            ),
            live: reg.gauge(
                "microscopiq_live_streams",
                "Streams currently admitted and unfinished.",
            ),
            peak_live: reg.gauge(
                "microscopiq_peak_live_streams",
                "Most streams ever live at once.",
            ),
            queue_depth: reg.gauge(
                "microscopiq_queue_depth",
                "Submissions enqueued (or blocked entering the queue) and not yet \
                 pulled by the worker.",
            ),
            kv_rows,
            kv_bytes,
            kv_peak_bytes,
            queue_wait_us: reg.histogram(
                "microscopiq_queue_wait_us",
                "Enqueue-to-admission latency per request, microseconds.",
            ),
            admit_to_first_token_us: reg.histogram(
                "microscopiq_admit_to_first_token_us",
                "Admission-to-first-token latency per request, microseconds.",
            ),
            ttft_us: QosClass::ALL.map(|c| {
                reg.histogram_labeled(
                    "microscopiq_ttft_us",
                    "Enqueue-to-first-token latency per request, microseconds (the \
                     client-observed TTFT), by QoS class.",
                    vec![("class", c.label().to_string())],
                )
            }),
            inter_token_us: QosClass::ALL.map(|c| {
                reg.histogram_labeled(
                    "microscopiq_inter_token_us",
                    "Gap between consecutive streamed tokens of one request, \
                     microseconds, by QoS class.",
                    vec![("class", c.label().to_string())],
                )
            }),
            shed: QosClass::ALL.map(|c| {
                reg.counter_labeled(
                    "microscopiq_requests_shed_total",
                    "Requests refused or retired by the shed policy, by QoS class.",
                    vec![("class", c.label().to_string())],
                )
            }),
        }
    }
}

/// State shared between the worker thread and every [`ServerHandle`].
#[derive(Debug)]
struct Shared {
    registry: MetricsRegistry,
    metrics: ServerMetrics,
    /// Present only when [`ServerConfig::trace_events`] > 0.
    trace: Option<Arc<TraceSink>>,
    /// Prefix-cache metric handles, present only when
    /// [`ServerConfig::prefix_cache`] is set — lets
    /// [`ServerHandle::prefix_cache_stats`] read counters without
    /// crossing into the worker thread.
    prefix: Option<PrefixMetrics>,
    /// Mirror of [`ServerConfig::telemetry`] for the worker's hot path.
    telemetry: bool,
    /// Current overload shed level, published by the worker between
    /// steps and read by every handle at submit time. 0 = serve all;
    /// 1 = shed best-effort; 2 = shed batch too. Stays 0 without a
    /// [`ShedPolicy`].
    shed_level: AtomicU8,
    /// Set once the worker thread exits — through a drop guard, so a
    /// panicking worker (even one that died outside its per-request
    /// guards) flips it during unwinding. A fleet router uses this to
    /// pull dead workers from rotation without having to probe them
    /// with a doomed submission.
    worker_exited: AtomicBool,
}

/// Flips [`Shared::worker_exited`] when the worker's stack unwinds,
/// whether by normal return or panic.
struct ExitFlag(Arc<Shared>);

impl Drop for ExitFlag {
    fn drop(&mut self) {
        self.0.worker_exited.store(true, Ordering::SeqCst);
    }
}

/// Final accounting returned by [`Server::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Counters from the underlying [`Session`].
    pub session: SessionStats,
    /// Requests that ran to their token budget.
    pub served: usize,
    /// Requests retired because their stream was dropped or cancelled.
    pub cancelled: usize,
    /// Requests retired by deadline expiry.
    pub expired: usize,
    /// Streams terminated by a worker panic.
    pub faulted: usize,
    /// Queued requests retired at admission by the shed policy
    /// (submit-time refusals are counted only in the
    /// `microscopiq_requests_shed_total` metric — they were never
    /// admitted).
    pub shed: usize,
    /// KV rows still held at exit — 0 unless the worker died abnormally.
    pub final_kv_rows: usize,
    /// Most streams ever live at once (admitted and unfinished).
    pub peak_live: usize,
}

/// Cheap, cloneable submission endpoint for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    tx: mpsc::SyncSender<WorkerMsg>,
    policy: AdmissionPolicy,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Submits a request with default options, returning its stream.
    /// Under [`AdmissionPolicy::Block`] this blocks while the admission
    /// queue is full; under [`AdmissionPolicy::Reject`] it fails fast
    /// with [`SubmitError::QueueFull`].
    ///
    /// Prompt validation happens on the worker, not here: a malformed
    /// request (empty or out-of-vocabulary prompt) is accepted and then
    /// surfaces as [`ServeError::WorkerPanicked`] on its own stream.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] (reject policy, queue at capacity) or
    /// [`SubmitError::ServerClosed`] (worker gone).
    pub fn submit(&self, req: GenRequest) -> Result<ResponseStream, SubmitError> {
        self.submit_with(req, RequestOptions::default())
    }

    /// [`ServerHandle::submit`] with per-request options (deadline).
    ///
    /// # Errors
    ///
    /// Same as [`ServerHandle::submit`], plus [`SubmitError::Shed`]
    /// when the worker's [`ShedPolicy`] is currently shedding the
    /// request's QoS class.
    pub fn submit_with(
        &self,
        req: GenRequest,
        opts: RequestOptions,
    ) -> Result<ResponseStream, SubmitError> {
        // Fast-path overload rejection: the worker publishes its shed
        // level between steps; sheddable classes are refused here
        // before they ever consume a queue slot.
        let level = self.shared.shed_level.load(Ordering::Relaxed);
        if level >= ShedPolicy::shed_at(req.class) {
            self.shared.metrics.shed[req.class.index()].inc();
            return Err(SubmitError::Shed);
        }
        let (events, rx) = mpsc::channel();
        let cancelled = Arc::new(AtomicBool::new(false));
        let inc = Incoming {
            req,
            opts,
            events,
            cancelled: Arc::clone(&cancelled),
            submitted: Instant::now(),
        };
        // Count the submission into the queue-depth gauge *before* the
        // send: under `Block` a full queue parks this thread, and a
        // blocked submitter is queue pressure the worker should see.
        // The worker decrements on every pull, so depth returns to 0
        // once the queue drains; a failed send undoes the increment.
        let depth = &self.shared.metrics.queue_depth;
        depth.add(1);
        let sent = match self.policy {
            AdmissionPolicy::Block => self
                .tx
                .send(WorkerMsg::Submit(inc))
                .map_err(|_| SubmitError::ServerClosed),
            AdmissionPolicy::Reject => {
                self.tx
                    .try_send(WorkerMsg::Submit(inc))
                    .map_err(|e| match e {
                        mpsc::TrySendError::Full(_) => SubmitError::QueueFull,
                        mpsc::TrySendError::Disconnected(_) => SubmitError::ServerClosed,
                    })
            }
        };
        if let Err(e) = sent {
            depth.add(-1);
            if e == SubmitError::QueueFull {
                self.shared.metrics.rejected.inc();
            }
            return Err(e);
        }
        Ok(ResponseStream {
            rx,
            cancelled,
            terminated: false,
            failover: None,
        })
    }

    /// The current overload shed level: 0 = serving every class, 1 =
    /// shedding best-effort, 2 = shedding batch too. Always 0 without a
    /// [`ShedPolicy`].
    pub fn shed_level(&self) -> u8 {
        self.shared.shed_level.load(Ordering::Relaxed)
    }

    /// Whether the worker thread is still running. Flips to `false`
    /// the moment the worker exits — normal shutdown drain *or* a
    /// crash (set by a drop guard during unwinding) — so a router can
    /// pull a dead worker from rotation without probing it with a
    /// doomed submission.
    pub fn worker_alive(&self) -> bool {
        !self.shared.worker_exited.load(Ordering::SeqCst)
    }

    /// Failure-injection hook: makes the worker thread panic *outside*
    /// its per-step panic guard, killing it the way an unexpected crash
    /// would — live streams see [`ServeError::Disconnected`], later
    /// submissions fail with [`SubmitError::ServerClosed`], and a
    /// [`Fleet`](crate::net::Fleet) drops the worker from rotation.
    /// Used by the chaos tests; never called in normal operation.
    pub fn inject_worker_panic(&self) {
        let _ = self.tx.send(WorkerMsg::InjectPanic);
    }

    /// Streams currently live (admitted and unfinished).
    pub fn live_streams(&self) -> usize {
        self.shared.metrics.live.get().max(0) as usize
    }

    /// Most streams ever live at once.
    pub fn peak_live_streams(&self) -> usize {
        self.shared.metrics.peak_live.get().max(0) as usize
    }

    /// KV rows currently held by live requests (see
    /// [`Session::kv_occupancy`]).
    pub fn kv_rows(&self) -> usize {
        self.shared.metrics.kv_rows.get().max(0) as usize
    }

    /// KV storage bytes currently held by live requests (see
    /// [`Session::kv_occupancy_bytes`]) — the figure
    /// [`ServerConfig::kv_byte_budget`] bounds.
    pub fn kv_bytes(&self) -> usize {
        self.shared.metrics.kv_bytes.get().max(0) as usize
    }

    /// Largest KV byte occupancy ever observed inside a step (after the
    /// forward, before finished requests release). With
    /// [`ServerConfig::kv_byte_budget`] set this never exceeds the
    /// budget unless interactive demand alone exceeds it.
    pub fn peak_kv_bytes(&self) -> usize {
        self.shared.metrics.kv_peak_bytes.get().max(0) as usize
    }

    /// Prefix-cache counters and residency; `None` unless the server
    /// was spawned with [`ServerConfig::prefix_cache`] set. Reads the
    /// shared metric handles — no worker round-trip.
    pub fn prefix_cache_stats(&self) -> Option<PrefixCacheStats> {
        self.shared.prefix.as_ref().map(|m| m.snapshot())
    }

    /// Asks the worker to replace the prefix-cache byte budget, evicting
    /// down to it between steps (0 drains every unreferenced trie
    /// node). No-op when the cache is disabled or the worker is gone.
    pub fn set_prefix_cache_capacity(&self, capacity_bytes: usize) {
        let _ = self.tx.send(WorkerMsg::SetPrefixCapacity(capacity_bytes));
    }

    /// Submissions currently waiting in (or blocked entering) the
    /// admission queue — the backpressure a client would face right
    /// now. Under [`AdmissionPolicy::Reject`] a positive depth warns
    /// that `submit` may soon fail with
    /// [`SubmitError::QueueFull`]; previously that was observable only
    /// by failing.
    pub fn queue_depth(&self) -> usize {
        self.shared.metrics.queue_depth.get().max(0) as usize
    }

    /// A point-in-time snapshot of every registered instrument across
    /// the stack: scheduler, server lifecycle, kernels, and decoded
    /// cache. Render it for scraping with
    /// [`MetricsSnapshot::render_text`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.registry.snapshot()
    }

    /// The current metrics in Prometheus text exposition format —
    /// shorthand for `metrics_snapshot().render_text()`.
    pub fn render_metrics(&self) -> String {
        self.shared.registry.render_text()
    }

    /// Exports the retained trace window as Chrome trace-event JSON
    /// (Perfetto-loadable). `None` unless the server was spawned with
    /// [`ServerConfig::trace_events`] > 0.
    pub fn export_trace(&self) -> Option<String> {
        self.shared.trace.as_ref().map(|t| t.export_json())
    }
}

/// A running serving front-end: one worker thread owning a [`Session`],
/// fed through [`ServerHandle`]s. Dropping the `Server` (or calling
/// [`Server::shutdown`]) stops admission, drains in-flight requests, and
/// joins the worker — it blocks until every cloned handle is dropped,
/// since the worker only exits once all senders disconnect.
#[derive(Debug)]
pub struct Server {
    handle: Option<ServerHandle>,
    worker: Option<JoinHandle<ServerReport>>,
}

impl Server {
    /// Spawns the worker thread serving `model` through `engine` under
    /// `cfg`. The engine moves onto the worker, so it must be `Send`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration (validated before the thread starts).
    pub fn spawn<E: PackedGemm + EngineTelemetry + Send + 'static>(
        model: PackedTinyFm,
        engine: E,
        cfg: ServerConfig,
    ) -> Result<Self, QuantError> {
        let sched = crate::session::SchedulerConfig::new(cfg.max_batch)
            .prefill_chunk(cfg.prefill_chunk)
            .token_budget(cfg.token_budget)
            .qos(cfg.qos);
        let mut session = Session::with_config(model, engine, sched, cfg.kv_mode)?;
        if let Some(prefix_cfg) = cfg.prefix_cache {
            session.enable_prefix_cache(prefix_cfg);
        }
        session.set_kv_byte_budget(cfg.kv_byte_budget);
        // One registry for the whole stack: the session created it and
        // registered its scheduler instruments; the engine contributes
        // kernel/cache collectors; the server adds lifecycle metrics.
        let registry = session.metrics_registry().clone();
        session.engine().register_telemetry(&registry);
        let (kv_rows, kv_bytes, kv_peak_bytes) = session.kv_gauges();
        let metrics = ServerMetrics::register(&registry, kv_rows, kv_bytes, kv_peak_bytes);
        let trace = (cfg.trace_events > 0).then(|| Arc::new(TraceSink::new(cfg.trace_events)));
        let prefix = session.prefix_metrics();
        let shared = Arc::new(Shared {
            registry,
            metrics,
            trace,
            prefix,
            telemetry: cfg.telemetry,
            shed_level: AtomicU8::new(0),
            worker_exited: AtomicBool::new(false),
        });
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("microscopiq-serve".into())
            .spawn(move || worker_loop(session, rx, cfg, worker_shared))
            .expect("spawn serving worker");
        Ok(Self {
            handle: Some(ServerHandle {
                tx,
                policy: cfg.admission,
                shared,
            }),
            worker: Some(worker),
        })
    }

    /// A cloneable submission endpoint.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone().expect("server is running")
    }

    /// Stops admission, drains every in-flight request to its terminal
    /// event, joins the worker, and returns the final accounting.
    /// Blocks until all cloned handles are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread crashed outside its panic guard
    /// (e.g. via [`ServerHandle::inject_worker_panic`]); use
    /// [`Server::try_shutdown`] to observe that instead.
    pub fn shutdown(self) -> ServerReport {
        self.try_shutdown()
            .expect("serving worker crashed outside its panic guard")
    }

    /// Like [`Server::shutdown`], but a worker that died outside its
    /// panic guard returns `Err(panic message)` instead of propagating
    /// the panic — how a [`Fleet`](crate::net::Fleet) drains dead
    /// workers without dying itself.
    ///
    /// # Errors
    ///
    /// The worker thread's panic message, if it crashed.
    pub fn try_shutdown(mut self) -> Result<ServerReport, String> {
        self.handle.take();
        let worker = self.worker.take().expect("worker not yet joined");
        worker.join().map_err(panic_message)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.handle.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Worker-side record of one live request.
struct Live {
    events: mpsc::Sender<StreamEvent>,
    cancelled: Arc<AtomicBool>,
    deadline: Option<Deadline>,
    class: QosClass,
    admitted_step: usize,
    /// Client-side enqueue instant (zero point for TTFT).
    submitted: Instant,
    /// Worker-side admission instant.
    admitted_at: Instant,
    /// When the latest token was streamed; `None` until the first.
    last_token_at: Option<Instant>,
    /// Sample ids of this request not yet finished, leader included —
    /// a singleton for plain requests, `n` consecutive ids for N-way
    /// generation ([`GenRequest::n_samples`]). The stream terminates
    /// only once this empties.
    outstanding: Vec<RequestId>,
    /// The leader sample's result, held back until every extra sample
    /// has been delivered as a [`StreamEvent::Sample`].
    leader_result: Option<GenResult>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Trace lane for per-step scheduler events. Per-request lanes are
/// `request id + 1` so request 0 does not collide with this lane.
const SCHED_TID: u64 = 0;

fn request_tid(id: RequestId) -> u64 {
    id as u64 + 1
}

fn worker_loop<E: PackedGemm>(
    mut session: Session<E>,
    rx: mpsc::Receiver<WorkerMsg>,
    cfg: ServerConfig,
    shared: Arc<Shared>,
) -> ServerReport {
    let mut live: HashMap<RequestId, Live> = HashMap::new();
    // Extra-sample id → leader id, for routing fork results onto the
    // leader's stream. Entries are removed as samples finish or retire.
    let mut sample_of: HashMap<RequestId, RequestId> = HashMap::new();
    let mut report = ServerReport::default();
    let mut rx_open = true;
    let mut shed_state = ShedState::default();
    let _exit_flag = ExitFlag(Arc::clone(&shared));

    loop {
        // One clock sample per loop iteration: admission stamps and every
        // Deadline::At check this step agree on "now", so two requests
        // with the same deadline expire on the same step.
        let mut now = Instant::now();

        // Re-grade overload before admitting: the published level gates
        // both submit-time refusals (on client threads) and the
        // admission-time retirement below.
        if let Some(policy) = &cfg.shed {
            let backlog = shared.metrics.queue_depth.get().max(0) as usize + session.pending();
            let level = shed_state.grade(policy, &shared.metrics, backlog);
            shared.shed_level.store(level, Ordering::Relaxed);
        }

        // Continuous admission: pull waiting submissions into the
        // session between steps, up to the in-flight cap. Leaving the
        // rest queued is what gives the bounded queue its backpressure.
        while rx_open && live.len() < cfg.max_in_flight {
            match rx.try_recv() {
                Ok(WorkerMsg::Submit(inc)) => admit(
                    &mut session,
                    &mut live,
                    &mut sample_of,
                    &mut report,
                    inc,
                    now,
                    &shared,
                ),
                Ok(WorkerMsg::InjectPanic) => {
                    panic!("injected worker panic (failure-injection hook)")
                }
                Ok(WorkerMsg::SetPrefixCapacity(bytes)) => session.set_prefix_cache_capacity(bytes),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => rx_open = false,
            }
        }
        if live.is_empty() {
            if !rx_open {
                break;
            }
            // Idle: park until the next submission (or shutdown). The
            // park is unbounded, so restamp the clock before admitting.
            match rx.recv() {
                Ok(WorkerMsg::Submit(inc)) => {
                    now = Instant::now();
                    admit(
                        &mut session,
                        &mut live,
                        &mut sample_of,
                        &mut report,
                        inc,
                        now,
                        &shared,
                    );
                }
                Ok(WorkerMsg::InjectPanic) => {
                    panic!("injected worker panic (failure-injection hook)")
                }
                Ok(WorkerMsg::SetPrefixCapacity(bytes)) => session.set_prefix_cache_capacity(bytes),
                Err(_) => rx_open = false,
            }
            publish(&shared, &live);
            continue;
        }

        // Sweep before the step so a dropped stream frees its slot
        // without another forward, and a deadline of zero steps expires
        // before the request is ever prefilled.
        sweep(
            &mut session,
            &mut live,
            &mut sample_of,
            &mut report,
            now,
            &shared,
        );

        if !live.is_empty() {
            let step_start = shared.trace.as_deref().map(|t| t.ts(Instant::now()));
            match catch_unwind(AssertUnwindSafe(|| session.step_report())) {
                Ok(step) => {
                    // One timestamp for every token emitted this step:
                    // they left the same forward pass together.
                    let emitted_at =
                        (shared.telemetry || shared.trace.is_some()).then(Instant::now);
                    for (id, tok) in step.emitted {
                        if let Some(l) = live.get_mut(&id) {
                            if l.events.send(StreamEvent::Token(tok)).is_err() {
                                // Receiver gone: flag for the next sweep.
                                l.cancelled.store(true, Ordering::Relaxed);
                            }
                            if let Some(at) = emitted_at {
                                record_token(&shared, id, l, at);
                            }
                        }
                    }
                    for res in step.finished {
                        // Route a fork sample's result onto its
                        // leader's stream; a plain request is its own
                        // leader with a singleton group.
                        let leader = if live.contains_key(&res.id) {
                            res.id
                        } else if let Some(&leader) = sample_of.get(&res.id) {
                            leader
                        } else {
                            continue;
                        };
                        let Some(l) = live.get_mut(&leader) else {
                            continue;
                        };
                        l.outstanding.retain(|&s| s != res.id);
                        if res.id == leader {
                            l.leader_result = Some(res);
                        } else {
                            sample_of.remove(&res.id);
                            let _ = l.events.send(StreamEvent::Sample {
                                index: res.id - leader,
                                result: res,
                            });
                        }
                        if l.outstanding.is_empty() {
                            let mut l = live.remove(&leader).expect("leader is live");
                            report.served += 1;
                            shared.metrics.finished.inc();
                            if let Some(t) = shared.trace.as_deref() {
                                t.instant("finished", request_tid(leader), t.ts(now), vec![]);
                            }
                            let result = l
                                .leader_result
                                .take()
                                .expect("leader finished before its group emptied");
                            let _ = l.events.send(StreamEvent::Finished(result));
                        }
                    }
                    if let (Some(t), Some(start), Some(batch)) =
                        (shared.trace.as_deref(), step_start, step.batch.as_ref())
                    {
                        trace_step(t, start, batch);
                    }
                }
                Err(payload) => {
                    // The popped batch was lost when the step unwound;
                    // exactly those requests are no longer live in the
                    // session. They fault. Requests still waiting in the
                    // scheduler queue (and finished-but-undrained
                    // zero-budget ones) never rode the panicked batch —
                    // they keep serving, and the server keeps accepting
                    // new work.
                    let msg = panic_message(payload);
                    let ids: Vec<RequestId> = live.keys().copied().collect();
                    for id in ids {
                        // A stream faults if *any* of its samples died
                        // in the panicked batch; surviving group members
                        // are cancelled — their stream is gone.
                        let dead = live[&id].outstanding.iter().any(|&s| !session.is_live(s));
                        if dead {
                            let l = live.remove(&id).expect("id collected from live");
                            for s in &l.outstanding {
                                session.cancel(*s);
                                sample_of.remove(s);
                            }
                            report.faulted += 1;
                            shared.metrics.faulted.inc();
                            if let Some(t) = shared.trace.as_deref() {
                                t.instant("faulted", request_tid(id), t.ts(now), vec![]);
                            }
                            let _ = l
                                .events
                                .send(StreamEvent::Error(ServeError::WorkerPanicked(msg.clone())));
                        }
                    }
                }
            }
            if !cfg.pace.is_zero() {
                std::thread::sleep(cfg.pace);
            }
        }
        publish(&shared, &live);
    }

    report.session = session.stats();
    report.final_kv_rows = session.kv_occupancy();
    report.peak_live = shared.metrics.peak_live.get().max(0) as usize;
    publish(&shared, &live);
    report
}

/// Worker-side shed controller state. The queue-pressure trigger is
/// graded fresh every call; the latency trigger is graded over
/// *windows* of [`ShedPolicy::min_samples`] interactive TTFT samples
/// (via [`HistogramSnapshot::since`]) so that a breach long past cannot
/// latch shedding forever — the level recovers one window after
/// latencies do.
#[derive(Default)]
struct ShedState {
    /// Interactive TTFT snapshot at the start of the current window.
    window_start: crate::telemetry::HistogramSnapshot,
    /// Level from the last completed latency window.
    latency_level: u8,
}

impl ShedState {
    fn grade(&mut self, policy: &ShedPolicy, metrics: &ServerMetrics, backlog: usize) -> u8 {
        let current = metrics.ttft_us[QosClass::Interactive.index()].snapshot();
        let window = current.since(&self.window_start);
        if window.count >= policy.min_samples.max(1) {
            let p99 = window.percentile(99.0);
            let target = policy.interactive_ttft_p99.as_micros().max(1) as f64;
            self.latency_level = if p99 > 2.0 * target {
                2
            } else if p99 > target {
                1
            } else {
                0
            };
            self.window_start = current;
        }
        let queue_level = if backlog > policy.queue_high.saturating_mul(2) {
            2
        } else if backlog > policy.queue_high {
            1
        } else {
            0
        };
        self.latency_level.max(queue_level)
    }
}

/// Records per-token latency metrics and first-token trace events for
/// one stream. Every token emitted by a step shares one timestamp `at`.
fn record_token(shared: &Shared, id: RequestId, l: &mut Live, at: Instant) {
    if shared.telemetry {
        shared.metrics.tokens_streamed.inc();
        let class = l.class.index();
        match l.last_token_at {
            None => {
                shared.metrics.ttft_us[class]
                    .record_duration(at.saturating_duration_since(l.submitted));
                shared
                    .metrics
                    .admit_to_first_token_us
                    .record_duration(at.saturating_duration_since(l.admitted_at));
            }
            Some(prev) => {
                shared.metrics.inter_token_us[class]
                    .record_duration(at.saturating_duration_since(prev));
            }
        }
    }
    if l.last_token_at.is_none() {
        if let Some(t) = shared.trace.as_deref() {
            t.instant("first_token", request_tid(id), t.ts(at), vec![]);
        }
    }
    l.last_token_at = Some(at);
}

/// Emits the per-step scheduler span (lane 0) and one prefill-chunk span
/// per request that advanced its prompt this step.
fn trace_step(t: &TraceSink, start_us: u64, batch: &crate::session::StepBatch) {
    let end_us = t.ts(Instant::now());
    for &(id, tokens) in &batch.prefilled {
        t.complete(
            "prefill_chunk",
            request_tid(id),
            start_us,
            end_us,
            vec![("tokens", TraceArg::U64(tokens as u64))],
        );
    }
    t.complete(
        "step",
        SCHED_TID,
        start_us,
        end_us,
        vec![
            ("requests", TraceArg::U64(batch.requests as u64)),
            ("prefill_chunks", TraceArg::U64(batch.prefill_chunks as u64)),
            ("prefill_tokens", TraceArg::U64(batch.prefill_tokens as u64)),
            (
                "decode_segments",
                TraceArg::U64(batch.decode_segments as u64),
            ),
            ("new_tokens", TraceArg::U64(batch.new_tokens as u64)),
            ("queue_depth", TraceArg::U64(batch.queue_depth as u64)),
            ("kv_rows", TraceArg::U64(batch.kv_rows as u64)),
        ],
    );
}

fn publish(shared: &Shared, live: &HashMap<RequestId, Live>) {
    // KV gauges are maintained by the session itself at each step; the
    // server only tracks stream liveness here.
    shared.metrics.live.set(live.len() as i64);
    shared.metrics.peak_live.set_max(live.len() as i64);
}

fn admit<E: PackedGemm>(
    session: &mut Session<E>,
    live: &mut HashMap<RequestId, Live>,
    sample_of: &mut HashMap<RequestId, RequestId>,
    report: &mut ServerReport,
    inc: Incoming,
    now: Instant,
    shared: &Shared,
) {
    // Single decrement point for the queue-depth gauge: every submission
    // that made it into the channel passes through here exactly once.
    shared.metrics.queue_depth.add(-1);
    if inc.cancelled.load(Ordering::Relaxed) {
        // The stream was dropped while the submission sat in the queue.
        // It still counts as admitted so the accounting identity
        // admitted = finished + cancelled + expired + faulted + live
        // holds at every instant.
        report.cancelled += 1;
        shared.metrics.admitted.inc();
        shared.metrics.cancelled.inc();
        return;
    }
    // A request that was queued when the shed level rose past its class
    // is retired here without running: counted as admitted + shed so
    // the accounting identity (admitted = finished + cancelled +
    // expired + faulted + shed + live) still holds.
    let level = shared.shed_level.load(Ordering::Relaxed);
    if level >= ShedPolicy::shed_at(inc.req.class) {
        report.shed += 1;
        shared.metrics.admitted.inc();
        shared.metrics.shed[inc.req.class.index()].inc();
        let _ = inc.events.send(StreamEvent::Error(ServeError::Shed));
        return;
    }
    let admitted_step = session.stats().steps;
    let Incoming {
        req,
        opts,
        events,
        cancelled,
        submitted,
    } = inc;
    let prompt_tokens = req.prompt.len();
    let max_new_tokens = req.max_new_tokens;
    let class = req.class;
    let n_samples = req.n_samples.max(1);
    let prefix_before = session.stats();
    // `Session::submit` validates the prompt and panics on malformed
    // input; caught here, that faults only the offending stream.
    match catch_unwind(AssertUnwindSafe(|| session.submit(req))) {
        Ok(id) => {
            shared.metrics.admitted.inc();
            if shared.telemetry {
                shared
                    .metrics
                    .queue_wait_us
                    .record_duration(now.saturating_duration_since(submitted));
            }
            if let Some(t) = shared.trace.as_deref() {
                t.instant(
                    "enqueued",
                    request_tid(id),
                    t.ts(submitted),
                    vec![
                        ("prompt_tokens", TraceArg::U64(prompt_tokens as u64)),
                        ("max_new_tokens", TraceArg::U64(max_new_tokens as u64)),
                    ],
                );
                t.instant("admitted", request_tid(id), t.ts(now), vec![]);
                let after = session.stats();
                if after.prefix_hits > prefix_before.prefix_hits {
                    let reused = after.prefix_tokens_reused - prefix_before.prefix_tokens_reused;
                    t.instant(
                        "prefix_hit",
                        request_tid(id),
                        t.ts(now),
                        vec![("reused_tokens", TraceArg::U64(reused as u64))],
                    );
                }
            }
            for i in 1..n_samples {
                sample_of.insert(id + i, id);
            }
            live.insert(
                id,
                Live {
                    events,
                    cancelled,
                    deadline: opts.deadline,
                    class,
                    admitted_step,
                    submitted,
                    admitted_at: now,
                    last_token_at: None,
                    outstanding: (id..id + n_samples).collect(),
                    leader_result: None,
                },
            );
        }
        Err(payload) => {
            report.faulted += 1;
            shared.metrics.admitted.inc();
            shared.metrics.faulted.inc();
            let _ = events.send(StreamEvent::Error(ServeError::WorkerPanicked(
                panic_message(payload),
            )));
        }
    }
}

/// Retires cancelled and deadline-expired requests, reclaiming their
/// session slots and KV caches. All `Deadline::At` checks share the
/// caller's single per-step `now`, so coincident deadlines expire
/// together.
fn sweep<E: PackedGemm>(
    session: &mut Session<E>,
    live: &mut HashMap<RequestId, Live>,
    sample_of: &mut HashMap<RequestId, RequestId>,
    report: &mut ServerReport,
    now: Instant,
    shared: &Shared,
) {
    let now_steps = session.stats().steps;
    let retire: Vec<RequestId> = live
        .iter()
        .filter(|(_, l)| {
            l.cancelled.load(Ordering::Relaxed)
                || match l.deadline {
                    Some(Deadline::Steps(n)) => now_steps - l.admitted_step >= n,
                    Some(Deadline::At(t)) => now >= t,
                    None => false,
                }
        })
        .map(|(&id, _)| id)
        .collect();
    for id in retire {
        let l = live.remove(&id).expect("id collected from live");
        // Retire the whole sample group: the leader first (which also
        // reclaims any not-yet-dispersed forks), then dispersed
        // followers, which are ordinary session requests by now.
        for s in &l.outstanding {
            session.cancel(*s);
            sample_of.remove(s);
        }
        if l.cancelled.load(Ordering::Relaxed) {
            report.cancelled += 1;
            shared.metrics.cancelled.inc();
            if let Some(t) = shared.trace.as_deref() {
                t.instant("cancelled", request_tid(id), t.ts(now), vec![]);
            }
        } else {
            report.expired += 1;
            shared.metrics.expired.inc();
            if let Some(t) = shared.trace.as_deref() {
                t.instant("deadline_expired", request_tid(id), t.ts(now), vec![]);
            }
            let _ = l
                .events
                .send(StreamEvent::Error(ServeError::DeadlineExceeded));
        }
    }
}
