//! Threaded serving front-end over [`Session`]/[`BatchScheduler`]: a
//! dedicated worker thread drives the continuous-batching decode loop
//! while any number of client threads submit requests and consume
//! per-token [`ResponseStream`]s — std threads and channels only, no
//! async runtime.
//!
//! ```text
//! client threads                     worker thread
//! ──────────────                     ─────────────────────────────────
//! handle.submit(req) ──bounded──▶    admit between steps   ┐
//!        │             queue        sweep deadlines/drops  │ per step
//!        ▼                          session.step_report()  │
//! ResponseStream ◀──per-request──   stream emitted tokens  ┘
//!   (drop = cancel)    channel      finish / expire / fault streams
//! ```
//!
//! Properties the conformance suite pins down:
//!
//! * **Continuous admission** — the worker drains the admission queue
//!   between *every* decode step, so requests join the running batch
//!   mid-flight, not at batch boundaries.
//! * **Determinism** — a request's token stream depends only on
//!   (model, prompt, seed, temperature, KV mode), never on batching or
//!   arrival timing: streams are bitwise identical to the offline
//!   [`Session::run_to_completion`] output.
//! * **Cooperative cancellation** — dropping a [`ResponseStream`] sets a
//!   shared flag; the worker retires the request at the next sweep,
//!   releasing its batch slot and KV cache without touching other
//!   streams.
//! * **Chunked prefill** — with [`ServerConfig::prefill_chunk`] set, a
//!   long prompt advances a bounded chunk per step instead of stalling
//!   every live stream for one monolithic quadratic-attention forward; a
//!   request parked mid-prefill emits no tokens until the step that
//!   completes its prompt, and exact-KV outputs are bitwise identical to
//!   whole-prompt prefill for any chunk size.
//! * **Deadlines** — per-request [`Deadline`]s are checked between
//!   steps; an expired request (even one still waiting for its prefill,
//!   or parked partway through a chunked prefill) is retired with
//!   [`ServeError::DeadlineExceeded`] and its partial KV reclaimed.
//! * **Backpressure** — the admission queue is bounded
//!   ([`ServerConfig::queue_capacity`]); when the worker is saturated
//!   ([`ServerConfig::max_in_flight`] live requests) submissions block
//!   or are rejected per [`AdmissionPolicy`].
//! * **Fault isolation** — a panic while admitting a request (e.g. a
//!   malformed prompt validated on the worker) faults only that stream;
//!   a panic inside the shared batched forward faults only the requests
//!   that rode the panicked batch — queued requests keep serving and
//!   the server keeps accepting new work.

mod admission;
mod stream;

pub use admission::{AdmissionPolicy, Deadline, RequestOptions, ServerConfig, SubmitError};
pub use stream::{ResponseStream, ServeError, StreamEvent};

use crate::session::{GenRequest, RequestId, Session, SessionStats};
use admission::Incoming;
use microscopiq_core::error::QuantError;
use microscopiq_fm::{PackedGemm, PackedTinyFm};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Live gauges shared between the worker and every [`ServerHandle`],
/// updated once per scheduler iteration.
#[derive(Debug, Default)]
struct Gauges {
    live: AtomicUsize,
    peak_live: AtomicUsize,
    kv_rows: AtomicUsize,
}

/// Final accounting returned by [`Server::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Counters from the underlying [`Session`].
    pub session: SessionStats,
    /// Requests that ran to their token budget.
    pub served: usize,
    /// Requests retired because their stream was dropped or cancelled.
    pub cancelled: usize,
    /// Requests retired by deadline expiry.
    pub expired: usize,
    /// Streams terminated by a worker panic.
    pub faulted: usize,
    /// KV rows still held at exit — 0 unless the worker died abnormally.
    pub final_kv_rows: usize,
    /// Most streams ever live at once (admitted and unfinished).
    pub peak_live: usize,
}

/// Cheap, cloneable submission endpoint for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    tx: mpsc::SyncSender<Incoming>,
    policy: AdmissionPolicy,
    gauges: Arc<Gauges>,
}

impl ServerHandle {
    /// Submits a request with default options, returning its stream.
    /// Under [`AdmissionPolicy::Block`] this blocks while the admission
    /// queue is full; under [`AdmissionPolicy::Reject`] it fails fast
    /// with [`SubmitError::QueueFull`].
    ///
    /// Prompt validation happens on the worker, not here: a malformed
    /// request (empty or out-of-vocabulary prompt) is accepted and then
    /// surfaces as [`ServeError::WorkerPanicked`] on its own stream.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] (reject policy, queue at capacity) or
    /// [`SubmitError::ServerClosed`] (worker gone).
    pub fn submit(&self, req: GenRequest) -> Result<ResponseStream, SubmitError> {
        self.submit_with(req, RequestOptions::default())
    }

    /// [`ServerHandle::submit`] with per-request options (deadline).
    ///
    /// # Errors
    ///
    /// Same as [`ServerHandle::submit`].
    pub fn submit_with(
        &self,
        req: GenRequest,
        opts: RequestOptions,
    ) -> Result<ResponseStream, SubmitError> {
        let (events, rx) = mpsc::channel();
        let cancelled = Arc::new(AtomicBool::new(false));
        let inc = Incoming {
            req,
            opts,
            events,
            cancelled: Arc::clone(&cancelled),
        };
        match self.policy {
            AdmissionPolicy::Block => {
                self.tx.send(inc).map_err(|_| SubmitError::ServerClosed)?;
            }
            AdmissionPolicy::Reject => self.tx.try_send(inc).map_err(|e| match e {
                mpsc::TrySendError::Full(_) => SubmitError::QueueFull,
                mpsc::TrySendError::Disconnected(_) => SubmitError::ServerClosed,
            })?,
        }
        Ok(ResponseStream {
            rx,
            cancelled,
            terminated: false,
        })
    }

    /// Streams currently live (admitted and unfinished).
    pub fn live_streams(&self) -> usize {
        self.gauges.live.load(Ordering::Relaxed)
    }

    /// Most streams ever live at once.
    pub fn peak_live_streams(&self) -> usize {
        self.gauges.peak_live.load(Ordering::Relaxed)
    }

    /// KV rows currently held by live requests (see
    /// [`Session::kv_occupancy`]).
    pub fn kv_rows(&self) -> usize {
        self.gauges.kv_rows.load(Ordering::Relaxed)
    }
}

/// A running serving front-end: one worker thread owning a [`Session`],
/// fed through [`ServerHandle`]s. Dropping the `Server` (or calling
/// [`Server::shutdown`]) stops admission, drains in-flight requests, and
/// joins the worker — it blocks until every cloned handle is dropped,
/// since the worker only exits once all senders disconnect.
#[derive(Debug)]
pub struct Server {
    handle: Option<ServerHandle>,
    worker: Option<JoinHandle<ServerReport>>,
}

impl Server {
    /// Spawns the worker thread serving `model` through `engine` under
    /// `cfg`. The engine moves onto the worker, so it must be `Send`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConfig`] for an invalid quantized KV
    /// configuration (validated before the thread starts).
    pub fn spawn<E: PackedGemm + Send + 'static>(
        model: PackedTinyFm,
        engine: E,
        cfg: ServerConfig,
    ) -> Result<Self, QuantError> {
        let sched = crate::session::SchedulerConfig::new(cfg.max_batch)
            .prefill_chunk(cfg.prefill_chunk)
            .token_budget(cfg.token_budget);
        let session = Session::with_config(model, engine, sched, cfg.kv_mode)?;
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let gauges = Arc::new(Gauges::default());
        let worker_gauges = Arc::clone(&gauges);
        let worker = std::thread::Builder::new()
            .name("microscopiq-serve".into())
            .spawn(move || worker_loop(session, rx, cfg, worker_gauges))
            .expect("spawn serving worker");
        Ok(Self {
            handle: Some(ServerHandle {
                tx,
                policy: cfg.admission,
                gauges,
            }),
            worker: Some(worker),
        })
    }

    /// A cloneable submission endpoint.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone().expect("server is running")
    }

    /// Stops admission, drains every in-flight request to its terminal
    /// event, joins the worker, and returns the final accounting.
    /// Blocks until all cloned handles are dropped.
    pub fn shutdown(mut self) -> ServerReport {
        self.handle.take();
        let worker = self.worker.take().expect("worker not yet joined");
        worker
            .join()
            .expect("serving worker crashed outside its panic guard")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.handle.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Worker-side record of one live request.
struct Live {
    events: mpsc::Sender<StreamEvent>,
    cancelled: Arc<AtomicBool>,
    deadline: Option<Deadline>,
    admitted_step: usize,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

fn worker_loop<E: PackedGemm>(
    mut session: Session<E>,
    rx: mpsc::Receiver<Incoming>,
    cfg: ServerConfig,
    gauges: Arc<Gauges>,
) -> ServerReport {
    let mut live: HashMap<RequestId, Live> = HashMap::new();
    let mut report = ServerReport::default();
    let mut rx_open = true;

    loop {
        // Continuous admission: pull waiting submissions into the
        // session between steps, up to the in-flight cap. Leaving the
        // rest queued is what gives the bounded queue its backpressure.
        while rx_open && live.len() < cfg.max_in_flight {
            match rx.try_recv() {
                Ok(inc) => admit(&mut session, &mut live, &mut report, inc),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => rx_open = false,
            }
        }
        if live.is_empty() {
            if !rx_open {
                break;
            }
            // Idle: park until the next submission (or shutdown).
            match rx.recv() {
                Ok(inc) => admit(&mut session, &mut live, &mut report, inc),
                Err(_) => rx_open = false,
            }
            publish(&gauges, &live, &session);
            continue;
        }

        // Sweep before the step so a dropped stream frees its slot
        // without another forward, and a deadline of zero steps expires
        // before the request is ever prefilled.
        sweep(&mut session, &mut live, &mut report);

        if !live.is_empty() {
            match catch_unwind(AssertUnwindSafe(|| session.step_report())) {
                Ok(step) => {
                    for (id, tok) in step.emitted {
                        if let Some(l) = live.get(&id) {
                            if l.events.send(StreamEvent::Token(tok)).is_err() {
                                // Receiver gone: flag for the next sweep.
                                l.cancelled.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    for res in step.finished {
                        if let Some(l) = live.remove(&res.id) {
                            report.served += 1;
                            let _ = l.events.send(StreamEvent::Finished(res));
                        }
                    }
                }
                Err(payload) => {
                    // The popped batch was lost when the step unwound;
                    // exactly those requests are no longer live in the
                    // session. They fault. Requests still waiting in the
                    // scheduler queue (and finished-but-undrained
                    // zero-budget ones) never rode the panicked batch —
                    // they keep serving, and the server keeps accepting
                    // new work.
                    let msg = panic_message(payload);
                    let ids: Vec<RequestId> = live.keys().copied().collect();
                    for id in ids {
                        if !session.is_live(id) {
                            let l = live.remove(&id).expect("id collected from live");
                            report.faulted += 1;
                            let _ = l
                                .events
                                .send(StreamEvent::Error(ServeError::WorkerPanicked(msg.clone())));
                        }
                    }
                }
            }
            if !cfg.pace.is_zero() {
                std::thread::sleep(cfg.pace);
            }
        }
        publish(&gauges, &live, &session);
    }

    report.session = session.stats();
    report.final_kv_rows = session.kv_occupancy();
    report.peak_live = gauges.peak_live.load(Ordering::Relaxed);
    publish(&gauges, &live, &session);
    report
}

fn publish<E: PackedGemm>(gauges: &Gauges, live: &HashMap<RequestId, Live>, session: &Session<E>) {
    gauges.live.store(live.len(), Ordering::Relaxed);
    gauges.peak_live.fetch_max(live.len(), Ordering::Relaxed);
    gauges
        .kv_rows
        .store(session.kv_occupancy(), Ordering::Relaxed);
}

fn admit<E: PackedGemm>(
    session: &mut Session<E>,
    live: &mut HashMap<RequestId, Live>,
    report: &mut ServerReport,
    inc: Incoming,
) {
    if inc.cancelled.load(Ordering::Relaxed) {
        // The stream was dropped while the submission sat in the queue.
        report.cancelled += 1;
        return;
    }
    let admitted_step = session.stats().steps;
    let Incoming {
        req,
        opts,
        events,
        cancelled,
    } = inc;
    // `Session::submit` validates the prompt and panics on malformed
    // input; caught here, that faults only the offending stream.
    match catch_unwind(AssertUnwindSafe(|| session.submit(req))) {
        Ok(id) => {
            live.insert(
                id,
                Live {
                    events,
                    cancelled,
                    deadline: opts.deadline,
                    admitted_step,
                },
            );
        }
        Err(payload) => {
            report.faulted += 1;
            let _ = events.send(StreamEvent::Error(ServeError::WorkerPanicked(
                panic_message(payload),
            )));
        }
    }
}

/// Retires cancelled and deadline-expired requests, reclaiming their
/// session slots and KV caches.
fn sweep<E: PackedGemm>(
    session: &mut Session<E>,
    live: &mut HashMap<RequestId, Live>,
    report: &mut ServerReport,
) {
    let now_steps = session.stats().steps;
    let mut now = None; // sample the clock once, and only if needed
    let retire: Vec<RequestId> = live
        .iter()
        .filter(|(_, l)| {
            l.cancelled.load(Ordering::Relaxed)
                || match l.deadline {
                    Some(Deadline::Steps(n)) => now_steps - l.admitted_step >= n,
                    Some(Deadline::At(t)) => *now.get_or_insert_with(Instant::now) >= t,
                    None => false,
                }
        })
        .map(|(&id, _)| id)
        .collect();
    for id in retire {
        let l = live.remove(&id).expect("id collected from live");
        session.cancel(id);
        if l.cancelled.load(Ordering::Relaxed) {
            report.cancelled += 1;
        } else {
            report.expired += 1;
            let _ = l
                .events
                .send(StreamEvent::Error(ServeError::DeadlineExceeded));
        }
    }
}
